#!/usr/bin/env python3
"""Dependency-free documentation checker (see docs/index.md).

Validates, without requiring mkdocs:

* every page named in the ``mkdocs.yml`` nav exists;
* every ``docs/*.md`` page appears in the nav (no orphaned pages);
* every relative markdown link in ``docs/`` and the repo-level markdown
  files resolves to an existing file;
* every ``file.md#anchor`` link targets a real heading in that file.

Run from anywhere: ``python tools/check_docs.py``.  Exit code 0 means
clean, 1 means findings (listed on stdout), matching the lint
convention.  CI runs this alongside the mkdocs build, and
``tests/test_docs.py`` runs it in the regular suite so a broken link
fails ``pytest`` locally too.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Set

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"

#: Repo-level markdown whose relative links we also validate.
EXTRA_FILES = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md")

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def nav_pages(mkdocs_yml: Path) -> List[str]:
    """Page paths listed in the mkdocs nav (yaml if present, else regex)."""
    text = mkdocs_yml.read_text()
    try:
        import yaml

        config = yaml.safe_load(text)

        def walk(node) -> List[str]:
            pages: List[str] = []
            if isinstance(node, str):
                pages.append(node)
            elif isinstance(node, list):
                for item in node:
                    pages.extend(walk(item))
            elif isinstance(node, dict):
                for value in node.values():
                    pages.extend(walk(value))
            return pages

        return [p for p in walk(config.get("nav", [])) if p.endswith(".md")]
    except ImportError:
        in_nav = False
        pages = []
        for line in text.splitlines():
            if line.startswith("nav:"):
                in_nav = True
                continue
            if in_nav:
                if line and not line.startswith((" ", "\t", "-")):
                    break
                match = re.search(r"([\w./-]+\.md)\s*$", line)
                if match:
                    pages.append(match.group(1))
        return pages


def heading_anchors(path: Path) -> Set[str]:
    """GitHub/mkdocs-style anchor slugs of every heading in ``path``."""
    anchors: Set[str] = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        title = re.sub(r"[`*_]", "", match.group(1)).strip()
        slug = re.sub(r"[^\w\s-]", "", title.lower())
        slug = re.sub(r"[\s]+", "-", slug).strip("-")
        anchors.add(slug)
    return anchors


def markdown_links(path: Path) -> List[str]:
    """Every inline link target in ``path``, code fences excluded."""
    links: List[str] = []
    in_fence = False
    for line in path.read_text().splitlines():
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        links.extend(LINK_RE.findall(line))
    return links


def _display(path: Path) -> str:
    try:
        return str(path.relative_to(REPO))
    except ValueError:
        return str(path)


def check_links(path: Path, errors: List[str]) -> None:
    for target in markdown_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, anchor = target.partition("#")
        if not base:  # same-page anchor
            if anchor and anchor not in heading_anchors(path):
                errors.append(f"{_display(path)}: broken anchor #{anchor}")
            continue
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            errors.append(
                f"{_display(path)}: broken link {target!r} "
                f"(no {_display(resolved)})"
            )
            continue
        if anchor and resolved.suffix == ".md":
            if anchor not in heading_anchors(resolved):
                errors.append(
                    f"{_display(path)}: broken anchor "
                    f"{target!r} (no heading #{anchor} in {base})"
                )


def main() -> int:
    errors: List[str] = []

    mkdocs_yml = REPO / "mkdocs.yml"
    if not mkdocs_yml.exists():
        errors.append("mkdocs.yml is missing")
        nav: List[str] = []
    else:
        nav = nav_pages(mkdocs_yml)
        if not nav:
            errors.append("mkdocs.yml: empty or unparseable nav")

    for page in nav:
        if not (DOCS / page).exists():
            errors.append(f"mkdocs.yml: nav entry {page!r} does not exist")

    for page in sorted(DOCS.glob("*.md")):
        if page.name not in nav:
            errors.append(f"docs/{page.name}: orphaned (not in the mkdocs nav)")

    for page in sorted(DOCS.glob("*.md")):
        check_links(page, errors)
    for name in EXTRA_FILES:
        path = REPO / name
        if path.exists():
            check_links(path, errors)

    if errors:
        print(f"check_docs: {len(errors)} finding(s)")
        for error in errors:
            print(f"  - {error}")
        return 1
    pages = len(nav)
    print(f"check_docs: clean ({pages} nav pages, links and anchors resolve)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
