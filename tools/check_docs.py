#!/usr/bin/env python3
"""Dependency-free documentation checker (see docs/index.md).

Validates, without requiring mkdocs:

* every page named in the ``mkdocs.yml`` nav exists;
* every ``docs/*.md`` page appears in the nav (no orphaned pages);
* every relative markdown link in ``docs/`` and the repo-level markdown
  files resolves to an existing file;
* every ``file.md#anchor`` link targets a real heading in that file;
* ``docs/static_analysis.md`` and the ``repro.statics`` rule registry
  agree: every RC/OB/KC rule id registered in ``src/repro/statics/*.py``
  has a heading anchor in the page, and every RC/OB/KC heading in the
  page names a registered rule (both directions, source-scraped so the
  check needs no imports);
* the documented CLI surface and the real one agree: every subcommand
  registered on the top-level ``fabp-repro`` parser in
  ``src/repro/cli.py`` is mentioned as ``fabp-repro <cmd>`` somewhere in
  the docs (or the repo-level markdown), and every ``fabp-repro <cmd>``
  mention names a registered subcommand (both directions, so a renamed
  or new subcommand fails the build until the docs catch up).

Run from anywhere: ``python tools/check_docs.py``.  Exit code 0 means
clean, 1 means findings (listed on stdout), matching the lint
convention.  CI runs this alongside the mkdocs build, and
``tests/test_docs.py`` runs it in the regular suite so a broken link
fails ``pytest`` locally too.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Set

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"

#: Repo-level markdown whose relative links we also validate.
EXTRA_FILES = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md")

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def nav_pages(mkdocs_yml: Path) -> List[str]:
    """Page paths listed in the mkdocs nav (yaml if present, else regex)."""
    text = mkdocs_yml.read_text()
    try:
        import yaml

        config = yaml.safe_load(text)

        def walk(node) -> List[str]:
            pages: List[str] = []
            if isinstance(node, str):
                pages.append(node)
            elif isinstance(node, list):
                for item in node:
                    pages.extend(walk(item))
            elif isinstance(node, dict):
                for value in node.values():
                    pages.extend(walk(value))
            return pages

        return [p for p in walk(config.get("nav", [])) if p.endswith(".md")]
    except ImportError:
        in_nav = False
        pages = []
        for line in text.splitlines():
            if line.startswith("nav:"):
                in_nav = True
                continue
            if in_nav:
                if line and not line.startswith((" ", "\t", "-")):
                    break
                match = re.search(r"([\w./-]+\.md)\s*$", line)
                if match:
                    pages.append(match.group(1))
        return pages


def heading_anchors(path: Path) -> Set[str]:
    """GitHub/mkdocs-style anchor slugs of every heading in ``path``."""
    anchors: Set[str] = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        title = re.sub(r"[`*_]", "", match.group(1)).strip()
        slug = re.sub(r"[^\w\s-]", "", title.lower())
        slug = re.sub(r"[\s]+", "-", slug).strip("-")
        anchors.add(slug)
    return anchors


def markdown_links(path: Path) -> List[str]:
    """Every inline link target in ``path``, code fences excluded."""
    links: List[str] = []
    in_fence = False
    for line in path.read_text().splitlines():
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        links.extend(LINK_RE.findall(line))
    return links


def _display(path: Path) -> str:
    try:
        return str(path.relative_to(REPO))
    except ValueError:
        return str(path)


def check_links(path: Path, errors: List[str]) -> None:
    for target in markdown_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, anchor = target.partition("#")
        if not base:  # same-page anchor
            if anchor and anchor not in heading_anchors(path):
                errors.append(f"{_display(path)}: broken anchor #{anchor}")
            continue
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            errors.append(
                f"{_display(path)}: broken link {target!r} "
                f"(no {_display(resolved)})"
            )
            continue
        if anchor and resolved.suffix == ".md":
            if anchor not in heading_anchors(resolved):
                errors.append(
                    f"{_display(path)}: broken anchor "
                    f"{target!r} (no heading #{anchor} in {base})"
                )


#: ``STATIC_RULES.register("RC001", ...)`` in the statics rule families.
RULE_REGISTRATION_RE = re.compile(r"register\(\s*[\"']([A-Z]{2}\d{3})[\"']")

#: Heading anchors that look like rule entries (``rc001-...``).
RULE_ANCHOR_RE = re.compile(r"^([a-z]{2}\d{3})\b")


def registered_static_rules() -> Set[str]:
    """RC/OB/KC rule ids registered in ``src/repro/statics`` (source-scraped)."""
    rules: Set[str] = set()
    statics = REPO / "src" / "repro" / "statics"
    for path in sorted(statics.glob("*.py")):
        rules.update(RULE_REGISTRATION_RE.findall(path.read_text()))
    return rules


def check_rule_anchors(errors: List[str]) -> None:
    """``docs/static_analysis.md`` and the rule registry must agree."""
    page = DOCS / "static_analysis.md"
    if not page.exists():
        errors.append("docs/static_analysis.md is missing")
        return
    rules = registered_static_rules()
    if not rules:
        errors.append("src/repro/statics: no registered RC/OB rules found")
        return
    anchors = heading_anchors(page)
    documented = {
        match.group(1).upper()
        for anchor in anchors
        for match in [RULE_ANCHOR_RE.match(anchor)]
        if match
    }
    for rule in sorted(rules - documented):
        errors.append(
            f"docs/static_analysis.md: registered rule {rule} has no "
            f"heading anchor"
        )
    for rule in sorted(documented - rules):
        errors.append(
            f"docs/static_analysis.md: heading for {rule} names an "
            f"unregistered rule"
        )


#: Top-level ``sub.add_parser("name", ...)`` registrations in the CLI.
#: The lookbehind keeps nested groups (``obs_sub.add_parser``) out: those
#: are subcommands *of* a subcommand, not part of the top-level surface.
SUBCOMMAND_RE = re.compile(r"(?<![\w.])sub\.add_parser\(\s*[\"']([a-z0-9-]+)")

#: ``fabp-repro <cmd>`` mentions in prose or fenced shell examples.
CLI_MENTION_RE = re.compile(r"fabp-repro\s+([a-z][a-z0-9-]*)")


def cli_subcommands() -> Set[str]:
    """Subcommand names registered in ``src/repro/cli.py`` (source-scraped)."""
    cli = REPO / "src" / "repro" / "cli.py"
    if not cli.exists():
        return set()
    return set(SUBCOMMAND_RE.findall(cli.read_text()))


def documented_subcommands(paths: List[Path]) -> dict:
    """``fabp-repro <word>`` mentions per name, including code fences
    (that is where CLI walkthroughs live)."""
    mentions: dict = {}
    for path in paths:
        for name in CLI_MENTION_RE.findall(path.read_text()):
            mentions.setdefault(name, []).append(_display(path))
    return mentions


def check_cli_surface(errors: List[str]) -> None:
    """Docs and the argparse surface must name the same subcommands."""
    registered = cli_subcommands()
    if not registered:
        errors.append("src/repro/cli.py: no sub.add_parser registrations found")
        return
    pages = sorted(DOCS.glob("*.md"))
    pages += [REPO / name for name in EXTRA_FILES if (REPO / name).exists()]
    mentions = documented_subcommands(pages)
    for name in sorted(registered - set(mentions)):
        errors.append(
            f"docs: subcommand 'fabp-repro {name}' exists but is never "
            f"mentioned in docs/ or the repo-level markdown"
        )
    for name in sorted(set(mentions) - registered):
        errors.append(
            f"{mentions[name][0]}: 'fabp-repro {name}' is not a registered "
            f"subcommand"
        )


def main() -> int:
    errors: List[str] = []

    mkdocs_yml = REPO / "mkdocs.yml"
    if not mkdocs_yml.exists():
        errors.append("mkdocs.yml is missing")
        nav: List[str] = []
    else:
        nav = nav_pages(mkdocs_yml)
        if not nav:
            errors.append("mkdocs.yml: empty or unparseable nav")

    for page in nav:
        if not (DOCS / page).exists():
            errors.append(f"mkdocs.yml: nav entry {page!r} does not exist")

    for page in sorted(DOCS.glob("*.md")):
        if page.name not in nav:
            errors.append(f"docs/{page.name}: orphaned (not in the mkdocs nav)")

    for page in sorted(DOCS.glob("*.md")):
        check_links(page, errors)
    for name in EXTRA_FILES:
        path = REPO / name
        if path.exists():
            check_links(path, errors)

    check_rule_anchors(errors)
    check_cli_surface(errors)

    if errors:
        print(f"check_docs: {len(errors)} finding(s)")
        for error in errors:
            print(f"  - {error}")
        return 1
    pages = len(nav)
    print(f"check_docs: clean ({pages} nav pages, links and anchors resolve)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
