"""Overhead of the observability layer on the scoring hot path.

The acceptance bound for PR 5 is <= 5 % throughput change on the quick
benchmark with the full layer enabled.  This bench measures the bitscore
engine over a realistic reference with observability off vs on (metrics +
spans recording on every ``scores_from_codes`` call — the worst case,
since that hook fires far more often than any other) and asserts the
bound with headroom for timer noise on shared CI machines.
"""

import time

import numpy as np

from repro import obs
from repro.core.aligner import _reference_codes, scores_from_codes
from repro.core.encoding import encode_query
from repro.seq.generate import random_protein, random_rna

REPEATS = 9
CALLS_PER_REPEAT = 30
#: Acceptance bound is 5 %; assert with noise margin on top (CI machines).
MAX_OVERHEAD = 0.15


def _workload(rng):
    instructions = encode_query(random_protein(25, rng=rng)).as_array()
    ref_codes, _ = _reference_codes(random_rna(60_000, rng=rng))
    return instructions, ref_codes


def _best_rate(query, reference):
    """Positions/second, best of REPEATS (min wall time filters scheduler noise)."""
    positions = (len(reference) - len(query) + 1) * CALLS_PER_REPEAT
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(CALLS_PER_REPEAT):
            scores_from_codes(query, reference, engine="bitscore")
        best = min(best, time.perf_counter() - start)
    return positions / best


def test_observability_overhead_within_bound(rng, save_artifact):
    query, reference = _workload(rng)
    scores_from_codes(query, reference, engine="bitscore")  # warm caches

    obs.disable()
    obs.reset()
    rate_off = _best_rate(query, reference)

    obs.reset()
    obs.enable()
    try:
        rate_on = _best_rate(query, reference)
        calls = obs.REGISTRY.families()
    finally:
        obs.disable()

    overhead = max(0.0, 1.0 - rate_on / rate_off)
    lines = [
        f"observability off: {rate_off / 1e6:10.1f} Mpos/s",
        f"observability on:  {rate_on / 1e6:10.1f} Mpos/s",
        f"overhead:          {overhead:10.2%}  (bound {MAX_OVERHEAD:.0%})",
        f"instrumented families: {sorted(f.name for f in calls)}",
    ]
    save_artifact("obs_overhead", "\n".join(lines))

    # The hooks actually fired during the instrumented pass...
    assert {f.name for f in calls} >= {
        "fabp_score_calls_total",
        "fabp_score_seconds",
        "fabp_score_positions_total",
    }
    # ...and cost less than the bound.
    assert overhead <= MAX_OVERHEAD, (
        f"observability overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%}"
    )
    obs.reset()
