"""Ablation: multi-query fabric sharing (architecture extension).

Table I leaves ~42 % of the fabric idle for 50-aa queries while the design
is bandwidth-bound — sharing one reference pass across co-resident query
arrays converts that slack into throughput.  This bench sweeps query
length and reports co-residency capacity and the measured batch speedup on
a simulated stream.
"""

import numpy as np
import pytest

from repro.accel.multi_query import MultiQueryScheduler, queries_per_pass
from repro.analysis.report import text_table
from repro.seq.generate import random_protein, random_rna


def test_multiquery_ablation(save_artifact):
    rng = np.random.default_rng(53)
    reference = random_rna(256 * 60, rng=rng)
    scheduler = MultiQueryScheduler()
    rows = []
    for residues in (20, 40, 80, 160, 250):
        capacity = queries_per_pass(3 * residues)
        queries = [random_protein(residues, rng=rng) for _ in range(4)]
        _, summary = scheduler.search_all(queries, reference, min_identity=0.9)
        rows.append(
            [
                residues,
                capacity,
                int(summary["passes"]),
                f"{summary['speedup']:.2f}x",
            ]
        )
    table = text_table(
        ["query(aa)", "arrays/pass", "passes for 4 queries", "batch speedup"],
        rows,
        title="Multi-query fabric sharing (extension; 4-query batches)",
    )
    save_artifact("ablation_multiquery", table)
    by_len = {row[0]: row for row in rows}
    assert by_len[20][1] >= 2  # short queries co-reside
    assert by_len[250][1] == 1  # long queries already saturate the fabric
    assert float(by_len[20][3].rstrip("x")) > 1.8


def test_multiquery_planning_benchmark(benchmark, rng):
    queries = [random_protein(30, rng=rng) for _ in range(16)]
    scheduler = MultiQueryScheduler()
    groups = benchmark(scheduler.plan_groups, queries)
    assert sum(len(g) for g in groups) == 16
