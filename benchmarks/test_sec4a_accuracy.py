"""Experiment ``sec4a-acc`` — §IV-A's "negligible drop in alignment accuracy".

Plants homologs at controlled substitution rates and indel counts, then
compares recall of FabP (substitution-only), FabP extended mode (full Ser
codons) and the indel-tolerant TBLASTN baseline.  The paper's claim holds
when FabP's recall matches TBLASTN's on indel-free workloads and degrades
only on the (rare, per sec4a-indel) indel-containing ones.
"""

import pytest

from repro.analysis.accuracy import format_accuracy_table, run_accuracy_study


@pytest.fixture(scope="module")
def study():
    return run_accuracy_study(
        substitution_rates=(0.0, 0.02, 0.05, 0.10),
        indel_event_counts=(0, 1),
        cases_per_point=8,
        query_length=40,
        reference_length=6_000,
        min_identity=0.8,
        seed=2021,
    )


def test_sec4a_accuracy_reproduction(study, save_artifact):
    save_artifact(
        "sec4a_accuracy",
        "SEC IV-A accuracy study (recall on planted homologs)\n"
        + format_accuracy_table(study),
    )
    indel_free = [row for row in study if row.indel_events == 0]
    # Indel-free: substitution-only scoring loses nothing vs the baseline.
    for row in indel_free:
        assert row.fabp_recall >= row.tblastn_recall - 0.13
    # Moderate substitution pressure is tolerated by design.
    for row in indel_free:
        if row.substitution_rate <= 0.05:
            assert row.fabp_recall >= 0.85


def test_sec4a_accuracy_benchmark(benchmark):
    rows = benchmark(
        run_accuracy_study,
        substitution_rates=(0.0,),
        indel_event_counts=(0,),
        cases_per_point=3,
        query_length=25,
        reference_length=2500,
        seed=5,
    )
    assert rows[0].fabp_recall == 1.0
