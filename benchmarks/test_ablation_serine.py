"""Experiment ``ablate-ser`` — cost of the paper's dropped Ser codons.

The paper's Fig. 2 treatment reduces Serine to the ``UCN`` box, silently
dropping ``AGU``/``AGC`` (a six-codon set spanning two first-position
letters is inexpressible in the three-function Type III scheme).  This
ablation quantifies the sensitivity cost on Ser-rich homologs and measures
the extended mode (per-residue pattern disjunction) that repairs it.
"""

import numpy as np
import pytest

from repro.analysis.report import text_table
from repro.core.aligner import alignment_scores, alignment_scores_extended
from repro.core.codons import CODONS_FOR
from repro.seq.generate import random_protein, random_rna


def _serine_rich_query(fraction: float, length: int, rng) -> str:
    # Strip natural serines first so `fraction` is the exact Ser content.
    query = [
        aa if aa != "S" else "T" for aa in random_protein(length, rng=rng).letters
    ]
    positions = rng.choice(length, size=int(fraction * length), replace=False)
    for position in positions:
        query[position] = "S"
    return "".join(query)


def _worst_case_coding(query: str, rng) -> str:
    """Code every Ser with an AGY codon (the dropped box)."""
    out = []
    for residue in query:
        if residue == "S":
            out.append(("AGU", "AGC")[int(rng.integers(2))])
        else:
            pool = CODONS_FOR[residue]
            out.append(pool[int(rng.integers(len(pool)))])
    return "".join(out)


def test_serine_ablation_reproduction(save_artifact):
    rng = np.random.default_rng(99)
    rows = []
    for fraction in (0.0, 0.1, 0.2, 0.4):
        paper_scores = []
        extended_scores = []
        for _ in range(6):
            query = _serine_rich_query(fraction, 30, rng)
            region = _worst_case_coding(query, rng)
            background = random_rna(2000, rng=rng).letters
            reference = background[:900] + region + background[900:]
            perfect = 3 * len(query)
            paper_scores.append(alignment_scores(query, reference)[900] / perfect)
            extended_scores.append(
                alignment_scores_extended(query, reference)[900] / perfect
            )
        rows.append(
            [
                f"{fraction:.0%}",
                f"{np.mean(paper_scores):.3f}",
                f"{np.mean(extended_scores):.3f}",
            ]
        )
    table = text_table(
        ["Ser fraction", "paper-mode identity", "extended-mode identity"],
        rows,
        title="Serine ablation: AGY-coded homologs (worst case for paper mode)",
    )
    save_artifact("ablation_serine", table)
    # Extended mode always achieves a perfect score; paper mode degrades
    # with Ser content (each AGY Ser costs up to 2 of 3 positions).
    assert float(rows[0][1]) == 1.0  # no Ser -> identical
    assert float(rows[-1][1]) < 0.95
    assert all(float(row[2]) == 1.0 for row in rows)


def test_extended_mode_benchmark(benchmark, rng):
    query = random_protein(30, rng=rng)
    reference = random_rna(20_000, rng=rng).letters
    scores = benchmark(alignment_scores_extended, query, reference)
    assert scores.size > 0
