"""Experiment ``table1`` — Table I: Kintex-7 resource utilization.

Regenerates both design points (FabP-50 and FabP-250) from the structural
resource model (netlist-derived LUT/FF counts + documented calibration).

Paper values:  FabP-50 = 58 % LUT / 16 % FF / 19 % BRAM / 31 % DSP /
12.2 GB/s;  FabP-250 = 98 % / 40 % / 15 % / 68 % / 3.4 GB/s.
"""

import pytest

from repro.accel.resources import resource_report, table1
from repro.analysis.report import text_table

PAPER_ROWS = {
    50: {"LUT": "58%", "FF": "16%", "BRAM": "19%", "DSP": "31%", "DRAM BW": "12.2 GB/s"},
    250: {"LUT": "98%", "FF": "40%", "BRAM": "15%", "DSP": "68%", "DRAM BW": "3.4 GB/s"},
}


def test_table1_reproduction(save_artifact):
    reports = table1()
    rows = []
    for length, report in reports.items():
        measured = report.row()
        rows.append([f"FabP-{length} (paper)"] + [PAPER_ROWS[length][k] for k in measured])
        rows.append([f"FabP-{length} (model)"] + list(measured.values()))
    table = text_table(
        ["design point", "LUT", "FF", "BRAM", "DSP", "DRAM BW"],
        rows,
        title="Table I: resource utilization of FabP (paper vs model)",
    )
    save_artifact("table1_resources", table)

    r50, r250 = reports[50], reports[250]
    # Regime assertions (see DESIGN.md for why exact % are out of scope).
    assert r50.plan.segments == 1 and r250.plan.segments > 1
    assert r250.utilization["LUT"] > r50.utilization["LUT"]
    assert r250.utilization["FF"] > r50.utilization["FF"]
    assert r250.utilization["DSP"] > r50.utilization["DSP"]
    assert r250.utilization["BRAM"] < r50.utilization["BRAM"]
    assert r50.effective_bandwidth == pytest.approx(12.2e9, rel=0.02)
    assert 2.5e9 <= r250.effective_bandwidth <= 4.5e9


def test_table1_model_benchmark(benchmark):
    """Time one full design-point elaboration (includes netlist builds)."""
    report = benchmark(resource_report, 50)
    assert report.plan.segments == 1
