"""Experiment ``sec4b-xover`` — §IV-B's bandwidth/resource crossover.

"For sequences longer than ~70 [amino acids], the resource utilization is
the bottleneck of computation; while for shorter sequences the bandwidth is
the limiting factor."

We sweep query length, record segments (cycles/beat), effective bandwidth
and LUT utilization from the structural model, and locate the crossover.
Also reproduces the adjacent claim that "an FPGA with more LUTs can
outperform the GPU-based implementation" by re-running the sweep on a
larger device.
"""

import pytest

from repro.accel.device import KINTEX7, LARGE_FPGA
from repro.accel.scheduler import max_unsegmented_elements, plan_schedule
from repro.analysis.report import text_table
from repro.perf.fpga import estimate
from repro.perf.gpu import gpu_seconds
from repro.perf.workload import Workload

PAPER_CROSSOVER_AA = 70


def test_sec4b_crossover_reproduction(save_artifact):
    rows = []
    for residues in (10, 30, 50, 70, 96, 100, 150, 200, 250):
        plan = plan_schedule(3 * residues)
        est = estimate(Workload(residues))
        rows.append(
            [
                residues,
                plan.segments,
                "BW" if plan.bandwidth_bound else "LUTs",
                f"{plan.lut_utilization:.0%}",
                f"{est.effective_bandwidth / 1e9:.1f} GB/s",
            ]
        )
    crossover = max_unsegmented_elements() // 3
    table = text_table(
        ["query(aa)", "cycles/beat", "bottleneck", "LUT util", "eff. BW"],
        rows,
        title=(
            f"SEC IV-B crossover sweep — model crossover at {crossover} aa "
            f"(paper: ~{PAPER_CROSSOVER_AA} aa)"
        ),
    )
    save_artifact("sec4b_crossover", table)
    # The crossover exists and sits between the two Table I design points.
    assert 50 < crossover < 250
    # Below it: bandwidth-bound; above: resource-bound.
    assert plan_schedule(3 * 50).bandwidth_bound
    assert not plan_schedule(3 * 250).bandwidth_bound


def test_sec4b_bigger_fpga_beats_gpu(save_artifact):
    """§IV-B: more LUTs -> fewer iterations -> FabP beats the GPU at 250 aa."""
    workload = Workload(250)
    small = estimate(workload, KINTEX7).seconds
    large = estimate(workload, LARGE_FPGA).seconds
    gpu = gpu_seconds(workload)
    table = text_table(
        ["platform", "seconds"],
        [
            ["Kintex-7 FabP", f"{small:.3f}"],
            ["Large FPGA FabP", f"{large:.3f}"],
            ["GTX 1080 Ti", f"{gpu:.3f}"],
        ],
        title="SEC IV-B: larger FPGA vs GPU at 250 aa",
    )
    save_artifact("sec4b_large_fpga", table)
    assert large < small
    assert large < gpu


def test_sec4b_crossover_benchmark(benchmark):
    crossover = benchmark(max_unsegmented_elements)
    assert crossover > 0
