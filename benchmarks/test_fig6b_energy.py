"""Experiment ``fig6b`` — Fig. 6(b): normalized energy efficiency.

Regenerates the energy panel of Fig. 6 (efficiency normalized to
single-threaded TBLASTN).  Paper headline: FabP is 23.2x more energy
efficient than the GPU and 266.8x more than 12-thread TBLASTN.
"""

import pytest

from repro.analysis.report import ratio_summary, text_table
from repro.perf.energy import cpu_run, fabp_run, gpu_run
from repro.perf.figures import PLATFORM_ORDER, figure6
from repro.perf.workload import Workload

PAPER_ENERGY_VS_GPU = 23.2
PAPER_ENERGY_VS_CPU12 = 266.8


@pytest.fixture(scope="module")
def fig6():
    return figure6()


def test_fig6b_reproduction(fig6, save_artifact):
    rows = []
    for index, length in enumerate(fig6.lengths):
        row = [length]
        for platform in PLATFORM_ORDER:
            row.append(f"{fig6.series(platform, 'energy')[index]:.2f}")
        rows.append(row)
    headline = fig6.headline()
    table = text_table(
        ["len(aa)"] + list(PLATFORM_ORDER),
        rows,
        title="Fig. 6(b): energy efficiency normalized to TBLASTN-1",
    )
    summary = "\n".join(
        [
            ratio_summary("FabP vs GPU", PAPER_ENERGY_VS_GPU, headline["energy_vs_gpu"]),
            ratio_summary(
                "FabP vs TBLASTN-12", PAPER_ENERGY_VS_CPU12, headline["energy_vs_cpu12"]
            ),
        ]
    )
    save_artifact("fig6b_energy", table + "\n\n" + summary)
    assert 18 <= headline["energy_vs_gpu"] <= 30
    assert 200 <= headline["energy_vs_cpu12"] <= 330


def test_fig6b_joules_benchmark(benchmark):
    """Time a single workload's four-platform energy evaluation."""

    def evaluate():
        workload = Workload(150)
        return [
            fabp_run(workload).joules,
            gpu_run(workload).joules,
            cpu_run(workload, threads=1).joules,
            cpu_run(workload, threads=12).joules,
        ]

    joules = benchmark(evaluate)
    assert joules[0] < min(joules[1:])  # FabP uses the least energy
