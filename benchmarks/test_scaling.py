"""Scaling behaviour of the simulation substrate itself.

Not a paper table: verifies (and times) that the golden aligner and the
streaming kernel scale linearly in reference length and query length, so
the reproduction's experiments run at predictable cost.  Also reproduces,
at simulation scale, the §III-C claim that throughput is independent of
reference content (sequential streaming, no data-dependent work — unlike
the TBLASTN baseline, whose work follows seed density).
"""

import time

import numpy as np
import pytest

from repro.accel.kernel import FabPKernel
from repro.analysis.report import text_table
from repro.baselines.tblastn import Tblastn
from repro.core.aligner import alignment_scores
from repro.seq.generate import random_protein, random_rna
from repro.workloads.builder import encode_protein_as_rna


def test_kernel_cycles_linear_in_reference(save_artifact):
    rng = np.random.default_rng(31)
    query = random_protein(50, rng=rng)
    kernel = FabPKernel(query, min_identity=0.9)
    rows = []
    streaming_cycles = []
    for knt in (32, 64, 128, 256):
        reference = random_rna(knt * 1024, rng=rng)
        run = kernel.run(reference)
        streaming_cycles.append(run.compute_cycles + run.stall_cycles)
        rows.append(
            [f"{knt} knt", run.beats, run.total_cycles,
             f"{run.effective_bandwidth / 1e9:.2f} GB/s"]
        )
    table = text_table(
        ["reference", "beats", "cycles", "eff. BW"],
        rows,
        title="Kernel scaling with reference length",
    )
    save_artifact("scaling_kernel", table)
    # Streaming cycles (compute + stalls) double exactly with the reference;
    # load/drain/write-back are constants excluded here.
    for small, big in zip(streaming_cycles, streaming_cycles[1:]):
        assert big == pytest.approx(2 * small, abs=2)


def test_fabp_work_is_content_independent(save_artifact):
    """FabP streams; TBLASTN's work follows seed density (§II contrast)."""
    rng = np.random.default_rng(37)
    query = random_protein(40, rng=rng)
    background = random_rna(20_000, rng=rng).letters
    # A seed-dense reference: the query's own coding planted 8 times.
    region = encode_protein_as_rna(query, rng=rng).letters
    dense = background
    for i in range(8):
        position = 1000 + i * 2000
        dense = dense[:position] + region + dense[position + len(region) :]

    kernel = FabPKernel(query, min_identity=0.8)
    sparse_run = kernel.run(background)
    dense_run = kernel.run(dense)
    searcher = Tblastn(query)
    sparse_tbl = searcher.search(background)
    dense_tbl = searcher.search(dense)
    rows = [
        ["FabP compute cycles", sparse_run.compute_cycles, dense_run.compute_cycles],
        ["TBLASTN extensions", sparse_tbl.ungapped_extensions, dense_tbl.ungapped_extensions],
    ]
    table = text_table(
        ["work metric", "background", "8 planted homologs"],
        rows,
        title="Content-(in)dependence of work: streaming vs seeding",
    )
    save_artifact("scaling_content", table)
    assert dense_run.compute_cycles == sparse_run.compute_cycles
    assert dense_tbl.ungapped_extensions > sparse_tbl.ungapped_extensions


def test_golden_aligner_scaling_benchmark(benchmark, rng):
    query = random_protein(100, rng=rng)
    reference = random_rna(200_000, rng=rng)
    from repro.seq.packing import codes_from_text

    codes = codes_from_text(reference.letters)
    scores = benchmark(alignment_scores, query, codes)
    assert scores.size == codes.size - 300 + 1
