"""Benchmark-regression guard for the bit-parallel scoring engine.

Runs the CI-sized (``--quick``) score benchmark, re-checks the headline
claim — the SWAR fast path must stay at least 5x the naive reference on
the same machine, same run — and compares against the committed baseline
artifact with generous tolerance (machine-to-machine wall-clock varies;
catastrophic regressions do not hide inside a 50x band).

The fresh report is written to ``benchmarks/out/BENCH_scoring.json`` (the
same artifact ``fabp-repro bench`` produces and CI uploads).
"""

import json
import pathlib

import pytest

from repro.perf.scorebench import (
    SCHEMA_VERSION,
    format_report,
    quick_batch_benchmark,
    quick_benchmark,
)

BASELINE_PATH = pathlib.Path(__file__).parent / "baselines" / "BENCH_scoring.json"

#: Required same-run advantage of bitscore over the naive Python path.
MIN_NAIVE_SPEEDUP = 5.0

#: Allowed slowdown vs the committed baseline before the guard trips.
#: Wide on purpose: CI machines differ; this catches order-of-magnitude
#: regressions (e.g. the packed path silently falling back to Python).
BASELINE_SLOWDOWN_LIMIT = 50.0


@pytest.fixture(scope="module")
def quick_report(artifact_dir):
    report = quick_benchmark()
    path = report.write(artifact_dir / "BENCH_scoring.json")
    print(f"\n{format_report(report)}\n[written to {path}]")
    return report


def test_artifact_schema(quick_report):
    payload = quick_report.to_dict()
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["records"], "benchmark produced no records"
    for record in payload["records"]:
        for field in ("engine", "L_q", "L_r", "n_refs", "wall_s", "positions_per_s"):
            assert field in record, field
        assert record["wall_s"] > 0
        assert record["positions_per_s"] > 0


def test_bitscore_beats_naive_by_5x(quick_report):
    speedup = quick_report.speedups.get("bitscore_vs_naive", 0.0)
    assert speedup >= MIN_NAIVE_SPEEDUP, (
        f"bitscore is only {speedup:.2f}x the naive path "
        f"(required >= {MIN_NAIVE_SPEEDUP}x)"
    )


def test_bitscore_beats_vectorized(quick_report):
    """The fast path must actually be the fast path on its home workload."""
    speedup = quick_report.speedups.get("bitscore_vs_vectorized", 0.0)
    assert speedup > 1.0, f"bitscore slower than vectorized ({speedup:.2f}x)"


def test_against_committed_baseline(quick_report):
    baseline = json.loads(BASELINE_PATH.read_text())
    assert baseline["schema_version"] == SCHEMA_VERSION
    baseline_bitscore = next(
        r for r in baseline["records"] if r["engine"] == "bitscore"
    )
    current = quick_report.record_for("bitscore")
    assert current is not None
    floor = baseline_bitscore["positions_per_s"] / BASELINE_SLOWDOWN_LIMIT
    assert current.positions_per_s >= floor, (
        f"bitscore throughput {current.positions_per_s:,.0f} positions/s is "
        f">{BASELINE_SLOWDOWN_LIMIT}x below the committed baseline "
        f"({baseline_bitscore['positions_per_s']:,.0f})"
    )


def test_baseline_records_the_acceptance_workload():
    """The committed artifact must carry the L_q=750 / L_r=1e6 headline."""
    baseline = json.loads(BASELINE_PATH.read_text())
    bitscore = next(r for r in baseline["records"] if r["engine"] == "bitscore")
    vectorized = next(r for r in baseline["records"] if r["engine"] == "vectorized")
    assert bitscore["L_q"] == 750
    assert bitscore["L_r"] == 1_000_000
    assert baseline["speedups"]["bitscore_vs_vectorized"] >= 5.0
    assert baseline["speedups"]["bitscore_vs_naive"] >= 5.0
    scan_workers = [
        r["workers"] for r in baseline["records"] if r["engine"] == "parallel-scan"
    ]
    assert scan_workers == [1, 2, 4]
    assert vectorized["L_r"] == 1_000_000


def test_baseline_records_the_batch_workload():
    """The committed artifact must carry the batched-kernel headline.

    One shared sweep scoring 8 queries must have amortized the reference
    stream at least 3x over 8 sequential sweeps on the recording machine,
    and the cutover pair (``parallel-scan-small``) plus the warm-session
    records must be present so :func:`repro.host.scan.derive_cutover` and
    the docs have data to stand on.
    """
    baseline = json.loads(BASELINE_PATH.read_text())
    batch_records = [
        r for r in baseline["records"] if r["engine"] == "bitscore_batch"
    ]
    assert [r["batch"] for r in batch_records] == [1, 4, 8]
    sequential = [
        r for r in baseline["records"] if r["engine"] == "bitscore-sequential"
    ]
    assert [r["batch"] for r in sequential] == [1, 4, 8]
    assert baseline["speedups"]["batch_amortization_k8"] >= 3.0
    assert baseline["speedups"]["batch_amortization_k4"] >= 2.0
    assert baseline["speedups"]["session_warm_speedup"] > 0
    small_workers = [
        r["workers"]
        for r in baseline["records"]
        if r["engine"] == "parallel-scan-small"
    ]
    assert small_workers == [1, 2]
    for engine in ("scan-session-cold", "scan-session-warm"):
        assert any(r["engine"] == engine for r in baseline["records"]), engine


def test_quick_batch_benchmark_amortizes():
    """Same-run gate: the shared sweep must beat k sequential sweeps.

    The hard 3x CI gate lives in ``fabp-repro bench --batch
    --min-batch-amortization 3``; this in-suite bound is looser so noisy
    shared runners do not flake, while still catching the batch path
    silently degenerating into the sequential loop.
    """
    report = quick_batch_benchmark()
    k8 = report.speedups.get("batch_amortization_k8", 0.0)
    assert k8 >= 1.5, f"k=8 amortization only {k8:.2f}x"
    assert report.speedups.get("session_warm_speedup", 0.0) > 0
