"""Extension: background realism — does the null model survive real genomes?

The paper evaluates on real NCBI sequence, where the background is not
white noise but *other genes*.  A natural worry: do coding regions (start
codons, biased codon usage, both strands) systematically inflate FabP's
degenerate-pattern matching, invalidating thresholds calibrated on the
uniform-background null model?

Measurement: the same queries and thresholds over (a) uniform random RNA
and (b) a gene-rich synthetic genome (60 % coding, human codon usage,
both strands).  Finding — reproducible here and worth recording — the
spurious-hit densities are statistically indistinguishable and both match
the analytic model: per-position nucleotide statistics of coding sequence
are close enough to uniform that FabP's null calibration transfers to
genomic databases.
"""

import numpy as np
import pytest

from repro.analysis.report import text_table
from repro.analysis.statistics import null_score_model
from repro.core.aligner import alignment_scores
from repro.seq.generate import random_protein, random_rna
from repro.workloads.genomic import build_genomic_reference


def test_background_realism(save_artifact):
    rng = np.random.default_rng(61)
    length = 150_000
    uniform = random_rna(length, rng=rng)
    genomic = build_genomic_reference(
        length, coding_fraction=0.6, organism="human", rng=rng
    )
    rows = []
    for trial in range(3):
        query = random_protein(30, rng=rng)
        model = null_score_model(query)
        # Operate where the model expects a countable number of random hits.
        threshold = model.threshold_for_fpr(150.0, length)
        uniform_scores = alignment_scores(query, uniform)
        genomic_scores = alignment_scores(query, genomic.sequence)
        fp_uniform = int((uniform_scores >= threshold).sum())
        fp_genomic = int((genomic_scores >= threshold).sum())
        expected = model.expected_hits(threshold, length)
        rows.append([trial, threshold, f"{expected:.1f}", fp_uniform, fp_genomic])
        # Both backgrounds within 4-sigma Poisson bands of the model.
        sigma = max(1.0, expected**0.5)
        assert abs(fp_uniform - expected) < 4 * sigma + 2
        assert abs(fp_genomic - expected) < 4 * sigma + 2
    table = text_table(
        ["trial", "threshold", "model E[hits]", "uniform FPs", "genomic FPs"],
        rows,
        title="Background realism: uniform vs gene-rich references (150 knt)",
    )
    note = (
        "Finding: gene-rich backgrounds (60% coding, human usage, both\n"
        "strands) produce the same spurious-hit density as uniform RNA and\n"
        "both match the analytic null model — FabP threshold calibration\n"
        "transfers from the uniform model to genomic databases."
    )
    save_artifact("background_realism", table + "\n\n" + note)


def test_genomic_builder_benchmark(benchmark, rng):
    genome = benchmark(
        build_genomic_reference, 30_000, coding_fraction=0.5, rng=rng
    )
    assert len(genome.sequence) == 30_000
