"""Experiment ``sec4a-indel`` — §IV-A's 10,000-query indel statistic.

The paper reports that among 10,000 queries only ~0.02 % "involved indels",
citing an empirical distribution (mean 0.09 indels/kb, sd 0.36/kb, median
0).  We reproduce the Monte-Carlo experiment with that exact distribution
and report both the raw fraction of query regions containing an indel and
the stricter fraction whose *alignment outcome* an indel actually changes.

Note (EXPERIMENTS.md discusses this): the cited distribution mathematically
implies a few percent of 150-residue regions contain an indel, so 0.02 %
can only refer to the stricter outcome-changed statistic; our model brackets
the paper's number between the two.
"""

import pytest

from repro.analysis.indels import run_indel_study
from repro.analysis.report import text_table

PAPER_FRACTION = 0.0002  # "~0.02%"


def test_sec4a_indel_reproduction(save_artifact):
    rows = []
    results = {}
    for residues in (50, 150, 250):
        result = run_indel_study(
            num_queries=10_000, query_residues=residues, seed=2021
        )
        results[residues] = result
        rows.append(
            [
                residues,
                f"{result.fraction_with_indels:.2%}",
                f"{result.fraction_alignment_affected:.3%}",
                f"{result.mean_events_per_kb:.3f}",
            ]
        )
    table = text_table(
        ["query(aa)", "regions w/ indel", "alignment affected", "events/kb"],
        rows,
        title=(
            "SEC IV-A indel study (10,000 queries each; paper reports ~0.02% "
            "'involved indels')"
        ),
    )
    save_artifact("sec4a_indel_stats", table)
    # Shape: indels are rare; the outcome-affected fraction is rarer still
    # and the mean rate matches the cited 0.09/kb.
    for result in results.values():
        assert result.fraction_with_indels < 0.08
        assert result.fraction_alignment_affected <= result.fraction_with_indels
    assert results[150].mean_events_per_kb == pytest.approx(0.09, abs=0.04)


def test_sec4a_indel_benchmark(benchmark):
    result = benchmark(run_indel_study, num_queries=2000, query_residues=150, seed=1)
    assert result.num_queries == 2000
