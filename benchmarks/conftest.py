"""Shared helpers for the benchmark/reproduction harness.

Every bench writes its reproduced table to ``benchmarks/out/<name>.txt`` so
the artifacts survive the run (EXPERIMENTS.md references them), and prints
it (visible with ``pytest -s``).
"""

import pathlib

import numpy as np
import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def rng():
    return np.random.default_rng(0xFAB9)


@pytest.fixture(scope="session")
def artifact_dir():
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def save_artifact(artifact_dir):
    def _save(name: str, text: str) -> None:
        path = artifact_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n--- {name} ---\n{text}\n[written to {path}]")

    return _save
