"""Experiment ``sec3d-pc`` — §III-D's pop-counter area claim.

"FabP LUT-level optimized Pop-Counter shows 20% area reduction as compared
to the simple HDL description of a tree-adder-style Pop-Counter."

Both pop-counters are elaborated as real netlists and their physical LUTs
counted.  Two naive variants bracket what a synthesizer would emit from the
simple HDL: plain single-output LUTs (pessimistic) and fractured LUT6_2
full adders (optimistic).  The paper's direction (hand-crafted smaller)
reproduces robustly; our measured margin is larger than 20 % because the
Python naive model cannot capture every synthesizer optimization
(EXPERIMENTS.md discusses the delta).
"""

import pytest

from repro.analysis.report import text_table
from repro.rtl.netlist import Netlist
from repro.rtl.popcount import add_ripple_adder, add_tree_adder_popcount, build_popcounter

PAPER_REDUCTION = 0.20


def _tree_fractured_luts(width: int) -> int:
    netlist = Netlist()
    bits = netlist.add_input_bus("bits", width)
    add_tree_adder_popcount(netlist, bits, fractured=True)
    return netlist.lut_count


def test_sec3d_ablation_reproduction(save_artifact):
    rows = []
    reductions = []
    for residues in (50, 100, 150, 200, 250):
        width = 3 * residues
        fabp = build_popcounter(width, style="fabp", pipelined=False)
        tree_plain = build_popcounter(width, style="tree", pipelined=False)
        tree_fractured = _tree_fractured_luts(width)
        reduction_plain = 1 - fabp.lut_count / tree_plain.lut_count
        reduction_fractured = 1 - fabp.lut_count / tree_fractured
        reductions.append((reduction_plain, reduction_fractured))
        rows.append(
            [
                width,
                fabp.lut_count,
                tree_plain.lut_count,
                tree_fractured,
                f"{reduction_plain:.0%}",
                f"{reduction_fractured:.0%}",
            ]
        )
    table = text_table(
        ["bits", "FabP LUTs", "tree(plain)", "tree(LUT6_2)", "red. plain", "red. frac"],
        rows,
        title="SEC III-D pop-counter ablation (paper claims 20% reduction)",
    )
    save_artifact("sec3d_popcounter_ablation", table)
    for reduction_plain, reduction_fractured in reductions:
        assert reduction_plain >= PAPER_REDUCTION
        assert reduction_fractured >= PAPER_REDUCTION


def test_sec3d_build_benchmark(benchmark):
    block = benchmark(build_popcounter, 750, style="fabp", pipelined=True)
    assert block.score_bits == 10
