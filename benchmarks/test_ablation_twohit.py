"""Ablation: BLAST's two-hit heuristic — work saved vs sensitivity kept.

§II describes BLAST's seeding as the CPU bottleneck; the two-hit criterion
is its main work-reduction lever.  This ablation runs the TBLASTN pipeline
with the heuristic on and off over planted homologs and reports extension
counts (the work) and recall (the sensitivity) — the trade-off FabP
sidesteps entirely by brute-force streaming.
"""

import numpy as np
import pytest

from repro.analysis.report import text_table
from repro.baselines.tblastn import Tblastn, TblastnParams
from repro.workloads.builder import build_database, sample_queries


def test_twohit_ablation(save_artifact):
    rng = np.random.default_rng(17)
    queries = sample_queries(6, length=40, rng=rng)
    database = build_database(
        queries,
        num_references=6,
        reference_length=8000,
        substitution_rate=0.05,
        rng=rng,
    )
    rows = []
    for two_hit in (True, False):
        extensions = 0
        word_hits = 0
        recovered = 0
        for query, planting in zip(queries, database.planted):
            searcher = Tblastn(query, TblastnParams(two_hit=two_hit))
            result = searcher.search(database.references[planting.reference_index])
            extensions += result.ungapped_extensions
            word_hits += result.word_hits
            if any(
                abs(h.nucleotide_start - planting.position) <= 6 for h in result.hsps
            ):
                recovered += 1
        rows.append(
            [
                "on" if two_hit else "off",
                f"{word_hits:,}",
                f"{extensions:,}",
                f"{recovered}/{len(queries)}",
            ]
        )
    table = text_table(
        ["two-hit", "word hits", "extensions", "recall"],
        rows,
        title="TBLASTN two-hit ablation (6 planted homologs, 5% divergence)",
    )
    save_artifact("ablation_twohit", table)
    on_ext = int(rows[0][2].replace(",", ""))
    off_ext = int(rows[1][2].replace(",", ""))
    assert on_ext < off_ext / 3  # the heuristic saves most extension work
    assert rows[0][3] == rows[1][3]  # without losing the planted homologs


def test_twohit_benchmark(benchmark, rng):
    from repro.seq.generate import random_protein, random_rna

    query = random_protein(40, rng=rng)
    reference = random_rna(15_000, rng=rng)
    searcher = Tblastn(query)
    result = benchmark(searcher.search, reference)
    assert result.word_hits > 0
