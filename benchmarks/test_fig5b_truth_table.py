"""Experiment ``fig2-fig5b`` — regenerate Fig. 5(b)'s comparator truth table.

Enumerates the comparison LUT (all populated columns: four Type I
nucleotides, four Type II conditions, four Type III function/S pairs) and
checks every readable row of the paper's figure.  Also times exhaustive
LUT-netlist verification — the kind of check a hardware team would script.
"""

import numpy as np
import pytest

from repro.analysis.report import text_table
from repro.core import comparator as cmp
from repro.rtl.comparator import build_element_comparator
from repro.rtl.simulator import Simulator

#: Readable rows of Fig. 5(b): column label -> {ref: output}.  The figure's
#: A/C column in the scanned PDF is OCR-damaged; its semantically implied
#: values (match A or C) are used — see EXPERIMENTS.md.
PAPER_FIG5B = {
    "00-A": {"A": 1, "C": 0, "G": 0, "U": 0},
    "00-C": {"A": 0, "C": 1, "G": 0, "U": 0},
    "00-G": {"A": 0, "C": 0, "G": 1, "U": 0},
    "00-U": {"A": 0, "C": 0, "G": 0, "U": 1},
    "01-C/U": {"A": 0, "C": 1, "G": 0, "U": 1},
    "01-A/G": {"A": 1, "C": 0, "G": 1, "U": 0},
    "01-~G": {"A": 1, "C": 1, "G": 0, "U": 1},
    "01-A/C": {"A": 1, "C": 1, "G": 0, "U": 0},
    "1-00-0": {"A": 1, "C": 0, "G": 1, "U": 0},  # Stop, prev=A
    "1-00-1": {"A": 1, "C": 0, "G": 0, "U": 0},  # Stop, prev=G
    "1-01-0": {"A": 1, "C": 1, "G": 1, "U": 1},  # Leu, first=C
    "1-01-1": {"A": 1, "C": 0, "G": 1, "U": 0},  # Leu, first=U
    "1-10-0": {"A": 1, "C": 0, "G": 1, "U": 0},  # Arg, first=A
    "1-10-1": {"A": 1, "C": 1, "G": 1, "U": 1},  # Arg, first=C
    "1-11-0": {"A": 1, "C": 1, "G": 1, "U": 1},  # D
    "1-11-1": {"A": 1, "C": 1, "G": 1, "U": 1},  # D
}


def test_fig5b_truth_table_reproduction(save_artifact):
    generated = {}
    for label, ref, out in cmp.truth_table_rows():
        generated.setdefault(label, {})[ref] = out
    rows = [
        [label] + [generated[label][r] for r in "ACGU"] for label in sorted(generated)
    ]
    table = text_table(
        ["column", "A", "C", "G", "U"],
        rows,
        title="Fig. 5(b): comparator truth table (regenerated)",
    )
    save_artifact("fig5b_truth_table", table)
    for label, expected in PAPER_FIG5B.items():
        assert generated[label] == expected, label


def test_fig5b_exhaustive_netlist_verification_benchmark(benchmark):
    """Time the exhaustive (4096-vector) LUT-netlist verification."""
    netlist = build_element_comparator()

    def verify():
        batch = 4096
        sim = Simulator(netlist, batch=batch)
        index = np.arange(batch)
        inputs = {}
        inputs.update(sim.set_input_bus("q", index % 64))
        inputs.update(sim.set_input_bus("ref", (index // 64) % 4))
        inputs.update(sim.set_input_bus("prev1", (index // 256) % 4))
        inputs.update(sim.set_input_bus("prev2", (index // 1024) % 4))
        sim.settle(inputs)
        return sim.output_bus("match")

    got = benchmark(verify)
    assert got.size == 4096
