"""Ablation: organism codon usage vs FabP sensitivity.

The paper evaluates on NCBI sequence without discussing codon bias.  Real
transcripts pick synonymous codons non-uniformly — and in particular put
~40-45 % of Serine in the AGU/AGC box the paper's encoding drops.  This
ablation plants homologs coded with human and E. coli usage and measures
the realized identity of FabP's perfect-homology hits (the only loss
channel is the Ser box), plus the organism-level exposure numbers.
"""

import numpy as np
import pytest

from repro.analysis.report import text_table
from repro.core.aligner import alignment_scores, alignment_scores_extended
from repro.seq.codon_usage import serine_agy_fraction
from repro.seq.generate import random_protein, random_rna
from repro.workloads.builder import encode_protein_as_rna


def test_codon_usage_ablation(save_artifact):
    rng = np.random.default_rng(23)
    rows = []
    for usage in ("paper", "uniform", "human", "ecoli"):
        paper_identity = []
        extended_identity = []
        for _ in range(10):
            query = random_protein(40, rng=rng)
            region = encode_protein_as_rna(query, rng=rng, codon_usage=usage).letters
            background = random_rna(2000, rng=rng).letters
            reference = background[:800] + region + background[800:]
            perfect = 3 * len(query)
            paper_identity.append(alignment_scores(query, reference)[800] / perfect)
            extended_identity.append(
                alignment_scores_extended(query, reference)[800] / perfect
            )
        rows.append(
            [
                usage,
                f"{np.mean(paper_identity):.4f}",
                f"{np.mean(extended_identity):.4f}",
            ]
        )
    exposure = "\n".join(
        f"Ser AGY fraction ({org}): {serine_agy_fraction(org):.0%}"
        for org in ("human", "ecoli")
    )
    table = text_table(
        ["codon usage", "paper-mode identity", "extended-mode identity"],
        rows,
        title="Codon-usage ablation: perfect homologs, loss only via Ser AGY",
    )
    save_artifact("ablation_codon_usage", table + "\n\n" + exposure)
    by_usage = {row[0]: (float(row[1]), float(row[2])) for row in rows}
    # Paper-mode coding is lossless by construction; extended mode always is.
    assert by_usage["paper"][0] == 1.0
    for usage in ("paper", "uniform", "human", "ecoli"):
        assert by_usage[usage][1] == 1.0
    # Realistic usage costs paper mode a little (Ser AGY codons).
    assert by_usage["human"][0] < 1.0
    assert by_usage["ecoli"][0] < 1.0


def test_usage_sampling_benchmark(benchmark, rng):
    query = random_protein(100, rng=rng)
    rna = benchmark(encode_protein_as_rna, query, rng=rng, codon_usage="human")
    assert len(rna) == 300
