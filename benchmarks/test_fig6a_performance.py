"""Experiment ``fig6a`` — Fig. 6(a): normalized performance vs query length.

Regenerates the paper's performance panel: for query lengths 50..250 aa and
platforms {TBLASTN-1, TBLASTN-12, GPU, FabP}, speedup normalized to
single-threaded TBLASTN on the 1-GB reference workload.  Paper headline:
FabP is on average 8.1 % faster than the GPU and 24.8x faster than
12-thread TBLASTN.
"""

import pytest

from repro.analysis.report import ratio_summary, text_table
from repro.perf.figures import PLATFORM_ORDER, figure6

PAPER_SPEEDUP_VS_GPU = 1.081
PAPER_SPEEDUP_VS_CPU12 = 24.8


@pytest.fixture(scope="module")
def fig6():
    return figure6()


def test_fig6a_reproduction(fig6, save_artifact):
    rows = []
    for length in fig6.lengths:
        row = [length]
        for platform in PLATFORM_ORDER:
            index = list(fig6.lengths).index(length)
            row.append(f"{fig6.series(platform)[index]:.2f}")
        rows.append(row)
    headline = fig6.headline()
    table = text_table(
        ["len(aa)"] + list(PLATFORM_ORDER),
        rows,
        title="Fig. 6(a): speedup normalized to TBLASTN-1",
    )
    summary = "\n".join(
        [
            ratio_summary("FabP vs GPU", PAPER_SPEEDUP_VS_GPU, headline["speedup_vs_gpu"]),
            ratio_summary(
                "FabP vs TBLASTN-12", PAPER_SPEEDUP_VS_CPU12, headline["speedup_vs_cpu12"]
            ),
        ]
    )
    save_artifact("fig6a_performance", table + "\n\n" + summary)
    # Shape assertions: who wins, by roughly what factor.
    assert 1.0 <= headline["speedup_vs_gpu"] <= 1.25
    assert 18 <= headline["speedup_vs_cpu12"] <= 32


def test_fig6a_sweep_benchmark(benchmark):
    """Time the full Fig. 6 model sweep (closed-form, no simulation)."""
    result = benchmark(figure6)
    assert len(result.points) == 20
