"""Timing closure check: does the modeled datapath support 200 MHz?

Not a paper table, but a paper *premise*: the 12.8 GB/s bandwidth math of
§III-C assumes the fabric runs the 512-bit AXI datapath at 200 MHz.  This
bench runs static timing analysis on the actual netlists (comparator,
pipelined pop-counters, the small RTL array) and checks the premise holds
under the documented Kintex-7 delay model.
"""

import pytest

from repro.accel.rtl_kernel import build_alignment_array
from repro.analysis.report import text_table
from repro.rtl.comparator import build_element_comparator
from repro.rtl.popcount import build_popcounter
from repro.rtl.timing import analyze

TARGET_MHZ = 200.0


def test_datapath_timing_closure(save_artifact):
    designs = {
        "comparator (2 LUTs)": build_element_comparator(),
        "pop-counter 150b (pipelined)": build_popcounter(150, style="fabp").netlist,
        "pop-counter 750b (pipelined)": build_popcounter(750, style="fabp").netlist,
        "pop-counter 750b (flat)": build_popcounter(
            750, style="fabp", pipelined=False
        ).netlist,
        "array MFW x2 instances": build_alignment_array(
            "MFW", instances=2, threshold=8
        ).netlist,
    }
    rows = []
    reports = {}
    for name, netlist in designs.items():
        report = analyze(netlist)
        reports[name] = report
        rows.append(
            [
                name,
                report.critical_depth,
                f"{report.critical_path_ns:.2f} ns",
                f"{report.fmax_mhz:.0f} MHz",
                "yes" if report.meets(TARGET_MHZ) else "NO",
            ]
        )
    table = text_table(
        ["design", "depth", "critical path", "fmax", ">=200 MHz"],
        rows,
        title="Static timing of the modeled datapath (Kintex-7 delay model)",
    )
    note = (
        "note: the demo RTL array keeps its pop-count tree combinational for\n"
        "simplicity, so it lands just under target — the production design\n"
        "pipelines it (Fig. 4 'pipelined Pop-Counter'), as rows 2-3 show."
    )
    save_artifact("timing_fmax", table + "\n\n" + note)
    # The paper's pipelined blocks close 200 MHz; the deliberately
    # unpipelined wide pop-counter does not (that is *why* it is pipelined).
    assert reports["comparator (2 LUTs)"].meets(TARGET_MHZ)
    assert reports["pop-counter 150b (pipelined)"].meets(TARGET_MHZ)
    assert reports["pop-counter 750b (pipelined)"].meets(TARGET_MHZ)
    assert not reports["pop-counter 750b (flat)"].meets(TARGET_MHZ)


def test_timing_analysis_benchmark(benchmark):
    netlist = build_popcounter(750, style="fabp").netlist
    report = benchmark(analyze, netlist)
    assert report.endpoints > 0
