"""Lint + resource regression tracking for the generated netlists.

Runs the full static-analysis pass (the same one ``fabp-repro lint`` and CI
execute) over every demo design, asserts the paper's structural budgets
(§III-D: two LUTs per element; Fig. 4: 36 LUTs per Pop36), and writes the
machine-readable report — lint findings plus per-design resource and timing
records — to ``benchmarks/out/lint_resources.json`` so LUT/FF counts and
fmax can be diffed across revisions.
"""

import json

from repro.core.encoding import encode_query
from repro.core.instr_lint import lint_query
from repro.lint import render_json
from repro.rtl.lint import demo_designs, lint_netlist
from repro.rtl.timing import analyze

#: Exact structural budgets from the paper (None = tracked, not pinned).
LUT_BUDGETS = {
    "element_comparator": 2,  # §III-D: two physical LUTs per query element
    "instance_comparator_4": 8,  # 2 LUTs x 4 elements
    "popcounter_fabp_36": 36,  # Fig. 4: one Pop36 block
    "popcounter_fabp_72": None,
    "popcounter_fabp_750": None,
    "popcounter_tree_36": None,
}


def test_lint_resources(artifact_dir):
    designs = dict(demo_designs())
    reports = []
    resources = {}
    timing = {}
    for name, netlist in designs.items():
        reports.append(lint_netlist(netlist))
        resources[name] = netlist.stats()
        timing[name] = analyze(netlist).to_dict()
    reports.append(lint_query(encode_query("ACDEFGHIKLMNPQRSTVWY")))

    # Acceptance bar: the shipped generators and the default encoder carry
    # zero lint errors.
    for report in reports:
        assert report.ok, [str(f) for f in report.errors]

    for name, budget in LUT_BUDGETS.items():
        assert name in resources, f"demo design {name} disappeared"
        if budget is not None:
            assert resources[name]["luts"] == budget, (
                f"{name}: {resources[name]['luts']} LUTs, paper budget {budget}"
            )

    # The §III-D area claim, restated as a budget: the hand-crafted
    # pop-counter must beat the naive tree adder at equal width.
    assert (
        resources["popcounter_fabp_36"]["luts"]
        < resources["popcounter_tree_36"]["luts"]
    )

    payload = render_json(
        reports,
        extra={
            "resources": resources,
            "timing": timing,
            "budgets": {k: v for k, v in LUT_BUDGETS.items() if v is not None},
        },
    )
    path = artifact_dir / "lint_resources.json"
    path.write_text(payload + "\n", encoding="utf-8")
    print(f"\n[written to {path}]")

    # The artifact must round-trip and keep the summary consistent.
    parsed = json.loads(payload)
    assert parsed["summary"]["errors"] == 0
    assert set(parsed["resources"]) == set(designs)
    assert set(parsed["timing"]) == set(designs)
    for record in parsed["timing"].values():
        assert record["fmax_mhz"] > 0
