"""Validation bench: the analytic statistics against end-to-end searches.

Closes the loop between the library's two statistics layers and the actual
aligner: run real searches of random queries against random references and
check that (1) the measured random-hit counts match the exact null model's
expectation, and (2) measured recall on diverged homologs matches the
analytic detection model.  If these hold, the threshold advice the CLI
gives (`repro stats`) is trustworthy.
"""

import numpy as np
import pytest

from repro.analysis.report import text_table
from repro.analysis.sensitivity import detection_model
from repro.analysis.statistics import null_score_model
from repro.core.aligner import align, alignment_scores
from repro.seq import alphabet
from repro.seq.generate import random_protein, random_rna
from repro.seq.mutate import substitute
from repro.workloads.builder import encode_protein_as_rna


def test_null_model_predicts_random_hits(save_artifact):
    rng = np.random.default_rng(41)
    rows = []
    for trial in range(4):
        query = random_protein(20, rng=rng)
        model = null_score_model(query)
        reference = random_rna(400_000, rng=rng)
        threshold = model.threshold_for_fpr(20.0, len(reference.letters))
        result = align(query, reference, threshold=threshold)
        expected = model.expected_hits(threshold, len(reference.letters))
        rows.append([trial, threshold, f"{expected:.1f}", len(result.hits)])
        # Poisson-ish tolerance: within 4 sigma of the expectation.
        sigma = max(1.0, expected**0.5)
        assert abs(len(result.hits) - expected) < 4 * sigma + 2
    table = text_table(
        ["trial", "threshold", "expected random hits", "measured"],
        rows,
        title="Null-model validation: expected vs measured random hits (400 knt)",
    )
    save_artifact("null_model_validation", table)


def test_detection_model_predicts_recall(save_artifact):
    rng = np.random.default_rng(43)
    query = random_protein(30, rng=rng)
    elements = 90
    rows = []
    for rate in (0.02, 0.06, 0.10):
        model = detection_model(query, rate)
        threshold = int(0.82 * elements)
        predicted = model.detection_probability(threshold)
        trials = 300
        detected = 0
        for _ in range(trials):
            region = encode_protein_as_rna(query, rng=rng, codon_usage="paper").letters
            mutated = substitute(region, rate, alphabet.RNA_NUCLEOTIDES, rng=rng)
            if alignment_scores(query, mutated.letters)[0] >= threshold:
                detected += 1
        measured = detected / trials
        rows.append([f"{rate:.2f}", f"{predicted:.3f}", f"{measured:.3f}"])
        assert measured == pytest.approx(predicted, abs=0.08)
    table = text_table(
        ["sub rate", "predicted recall", "measured recall"],
        rows,
        title="Detection-model validation (threshold = 82% identity)",
    )
    save_artifact("detection_model_validation", table)


def test_null_model_benchmark(benchmark, rng):
    query = random_protein(100, rng=rng)
    model = benchmark(null_score_model, query)
    assert model.pmf.size == 301
