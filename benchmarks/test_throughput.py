"""Library throughput benchmarks (pytest-benchmark proper).

Not a paper table — these time the reproduction's own hot paths so
regressions in the simulation substrate are visible: the vectorized golden
aligner, the streaming kernel, Smith-Waterman, the TBLASTN pipeline, and
the LUT-level simulator.
"""

import numpy as np
import pytest

from repro.accel.kernel import FabPKernel
from repro.accel.rtl_kernel import RtlKernel
from repro.baselines.smith_waterman import smith_waterman
from repro.baselines.tblastn import Tblastn
from repro.core.aligner import alignment_scores
from repro.core.encoding import encode_query
from repro.seq.generate import random_protein, random_rna
from repro.seq.packing import codes_from_text


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(1)
    query = random_protein(50, rng=rng)
    reference = random_rna(100_000, rng=rng)
    return query, reference


def test_golden_aligner_throughput(benchmark, workload):
    """Vectorized substitution-only scan: 100 knt x 150 elements."""
    query, reference = workload
    encoded = encode_query(query)
    codes = codes_from_text(reference.letters)
    scores = benchmark(alignment_scores, encoded, codes)
    assert scores.size == codes.size - len(encoded) + 1


def test_streaming_kernel_throughput(benchmark, workload):
    """Beat-level functional kernel on the same scan."""
    query, reference = workload
    kernel = FabPKernel(query, min_identity=0.9)
    run = benchmark(kernel.run, reference)
    assert run.beats == -(-100_000 // 256)


def test_encode_query_throughput(benchmark):
    rng = np.random.default_rng(2)
    query = random_protein(250, rng=rng)
    encoded = benchmark(encode_query, query)
    assert len(encoded) == 750


def test_smith_waterman_throughput(benchmark):
    rng = np.random.default_rng(3)
    a = random_protein(100, rng=rng).letters
    b = random_protein(400, rng=rng).letters
    result = benchmark(smith_waterman, a, b)
    assert result.score >= 0


def test_tblastn_pipeline_throughput(benchmark):
    rng = np.random.default_rng(4)
    query = random_protein(50, rng=rng)
    reference = random_rna(20_000, rng=rng)
    searcher = Tblastn(query)
    result = benchmark(searcher.search, reference)
    assert result.word_hits > 0


def test_rtl_simulation_throughput(benchmark):
    """LUT-level array streaming a 200-nt reference (batch=1 cycle sim)."""
    rng = np.random.default_rng(5)
    query = random_protein(4, rng=rng)
    reference = random_rna(200, rng=rng)
    kernel = RtlKernel(query, instances=2, threshold=9)
    scores, _ = benchmark(kernel.run, reference)
    assert scores.size == 200 - 12 + 1
