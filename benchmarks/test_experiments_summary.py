"""Final collation: one artifact summarizing every reproduced experiment.

Runs last (alphabetically early module names run their own experiments
first) — but does not depend on them: it recomputes the headline numbers
directly so the summary is self-contained, then writes
``benchmarks/out/SUMMARY.txt`` in the EXPERIMENTS.md layout.
"""

import pytest

from repro.accel.resources import table1
from repro.accel.scheduler import max_unsegmented_elements
from repro.analysis.indels import run_indel_study
from repro.analysis.report import text_table
from repro.perf.figures import figure6
from repro.rtl.popcount import build_popcounter

PAPER = {
    "speedup_vs_gpu": 1.081,
    "speedup_vs_cpu12": 24.8,
    "energy_vs_gpu": 23.2,
    "energy_vs_cpu12": 266.8,
}


def test_write_summary(save_artifact):
    fig = figure6()
    headline = fig.headline()
    rows = []
    for key, paper_value in PAPER.items():
        measured = headline[key]
        deviation = (measured - paper_value) / paper_value
        rows.append([key, f"{paper_value}x", f"{measured:.2f}x", f"{deviation:+.1%}"])

    reports = table1()
    for length in (50, 250):
        measured = reports[length].row()
        rows.append(
            [
                f"table1 FabP-{length} LUT",
                {"50": "58%", "250": "98%"}[str(length)],
                measured["LUT"],
                "",
            ]
        )
        rows.append(
            [
                f"table1 FabP-{length} BW",
                {"50": "12.2 GB/s", "250": "3.4 GB/s"}[str(length)],
                measured["DRAM BW"],
                "",
            ]
        )

    crossover = max_unsegmented_elements() // 3
    rows.append(["sec4b crossover", "~70 aa", f"{crossover} aa", ""])

    fabp_pc = build_popcounter(750, style="fabp").lut_count
    tree_pc = build_popcounter(750, style="tree").lut_count
    rows.append(
        [
            "sec3d pop-counter saving",
            "20%",
            f"{1 - fabp_pc / tree_pc:.0%}",
            "naive-model dep.",
        ]
    )

    indel = run_indel_study(num_queries=10_000, query_residues=150, seed=2021)
    rows.append(
        [
            "sec4a queries w/ indels",
            "~0.02%",
            f"{indel.fraction_with_indels:.2%}",
            "see EXPERIMENTS.md",
        ]
    )

    table = text_table(
        ["experiment", "paper", "measured", "note"],
        rows,
        title="FabP reproduction — paper vs measured summary",
    )
    save_artifact("SUMMARY", table)

    # The four headline ratios stay within 10 % of the paper.
    for key, paper_value in PAPER.items():
        assert headline[key] == pytest.approx(paper_value, rel=0.10)


def test_summary_benchmark(benchmark):
    result = benchmark(figure6)
    assert result.headline()
