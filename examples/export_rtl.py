#!/usr/bin/env python
"""Export the FabP datapath as structural Verilog + a VCD waveform.

Builds the two-LUT comparator and a small alignment array, writes them as
primitive-instantiation Verilog (the paper's implementation style: direct
``LUT6``/``FDRE`` instances), then records a VCD waveform of the array
streaming a reference — openable in GTKWave.

Run:  python examples/export_rtl.py [output-dir]
"""

import pathlib
import sys

from repro.accel.rtl_kernel import build_alignment_array
from repro.rtl.comparator import build_element_comparator
from repro.rtl.simulator import Simulator
from repro.rtl.vcd import VcdTracer
from repro.rtl.verilog import write_verilog
from repro.seq.packing import codes_from_text


def main() -> None:
    out_dir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "rtl_export")
    out_dir.mkdir(exist_ok=True)

    # 1. The custom comparator (Fig. 5) as Verilog.
    comparator = build_element_comparator()
    lines = write_verilog(comparator, out_dir / "fabp_comparator.v", "fabp_comparator")
    print(f"fabp_comparator.v: {lines} lines, {comparator.lut_count} LUT6 instances")

    # 2. A 2-instance alignment array for query 'MFW' (Fig. 3), as Verilog.
    array = build_alignment_array("MFW", instances=2, threshold=8)
    lines = write_verilog(array.netlist, out_dir / "fabp_array.v", "fabp_array")
    stats = array.netlist.stats()
    print(
        f"fabp_array.v: {lines} lines, {stats['luts']} LUTs, {stats['ffs']} FFs"
    )

    # 3. Waveform: stream a small reference through the array.
    reference = "GGAUGUUUUGGCCAAUGUUCUGG"
    codes = codes_from_text(reference)
    simulator = Simulator(array.netlist)
    signals = {"nt[0]": array.netlist.inputs["nt[0]"],
               "nt[1]": array.netlist.inputs["nt[1]"],
               "valid": array.netlist.inputs["valid"]}
    for bit in range(4):
        name = f"score0[{bit}]"
        if name in array.netlist.outputs:
            signals[name] = array.netlist.outputs[name]
    signals["hit0"] = array.netlist.outputs["hit0[0]"]
    tracer = VcdTracer(simulator, signals)
    for index, code in enumerate(codes):
        stall = index % 7 == 6  # exercise the AXI-stall path in the wave
        tracer.step(
            {
                "nt[0]": int(code) & 1,
                "nt[1]": (int(code) >> 1) & 1,
                "valid": 0 if stall else 1,
            }
        )
    size = tracer.write(out_dir / "fabp_array.vcd")
    print(f"fabp_array.vcd: {size} bytes over {len(codes)} cycles "
          f"(open with: gtkwave {out_dir}/fabp_array.vcd)")


if __name__ == "__main__":
    main()
