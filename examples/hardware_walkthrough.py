#!/usr/bin/env python
"""Hardware walkthrough: the FabP datapath at LUT level.

Builds the paper's actual hardware blocks as netlists — the two-LUT custom
comparator (Fig. 5), the Pop36 pop-counter (Fig. 4) and a small alignment
array (Fig. 3) — simulates them cycle by cycle, and prints the Table I
resource model for the full-scale design.

Run:  python examples/hardware_walkthrough.py
"""

import numpy as np

from repro.accel.resources import table1
from repro.accel.rtl_kernel import RtlKernel
from repro.accel.scheduler import plan_schedule
from repro.analysis.report import text_table
from repro.core import comparator
from repro.rtl.comparator import build_element_comparator
from repro.rtl.popcount import build_popcounter
from repro.rtl.simulator import Simulator


def show_comparator() -> None:
    netlist = build_element_comparator()
    print("Custom comparator (Fig. 5): one query element")
    print(f"  physical LUTs: {netlist.lut_count}  (mux LUT + comparison LUT)")
    print(f"  comparison LUT INIT = 0x{comparator.comparison_lut_init():016X}")
    print(f"  mux LUT INIT        = 0x{comparator.mux_lut_init():016X}")

    # Drive it: a Type III 'Stop' third element against all four nucleotides,
    # with the preceding reference nucleotide being A, then G.
    from repro.core import backtranslate as bt
    from repro.core.encoding import encode_element

    instruction = encode_element(bt.DependentElement(bt.FUNCTION_STOP))
    sim = Simulator(netlist, batch=8)
    index = np.arange(8)
    inputs = {}
    inputs.update(sim.set_input_bus("q", np.full(8, instruction)))
    inputs.update(sim.set_input_bus("ref", index % 4))
    inputs.update(sim.set_input_bus("prev1", (index // 4) * 2))  # A then G
    inputs.update(sim.set_input_bus("prev2", np.zeros(8, dtype=int)))
    sim.settle(inputs)
    out = sim.output_bus("match")
    print("  Stop third element vs reference {A,C,G,U}:")
    print(f"    after A (UAx): {list(out[:4])}   (A and G match -> UAA, UAG)")
    print(f"    after G (UGx): {list(out[4:])}   (only A matches -> UGA)")


def show_popcounter() -> None:
    print("\nPop-counter (Fig. 4):")
    rows = []
    for width in (36, 150, 750):
        fabp = build_popcounter(width, style="fabp", pipelined=True)
        tree = build_popcounter(width, style="tree", pipelined=True)
        rows.append(
            [
                width,
                fabp.lut_count,
                fabp.ff_count,
                fabp.latency,
                tree.lut_count,
                f"{1 - fabp.lut_count / tree.lut_count:.0%}",
            ]
        )
    print(
        text_table(
            ["bits", "FabP LUTs", "FFs", "latency", "tree LUTs", "saving"],
            rows,
        )
    )


def show_array() -> None:
    print("\nAlignment array (Fig. 3), small-scale RTL simulation:")
    query = "MFW"
    reference = "GGAUGUUUUGGCCAUGUUCUGGCC"  # two plantings (UUU and UUC Phe)
    kernel = RtlKernel(query, instances=2, threshold=9)
    stats = kernel.array.netlist.stats()
    print(f"  query {query!r} x 2 instances -> {stats['luts']} LUTs, "
          f"{stats['ffs']} FFs")
    scores, hits = kernel.run(reference)
    print(f"  reference: {reference}")
    print(f"  RTL scores: {list(scores)}")
    print(f"  hits (score >= 9): {[str(h) for h in hits]}")


def show_full_scale() -> None:
    print("\nFull-scale design points (Table I model):")
    rows = []
    for length, report in table1().items():
        plan = report.plan
        row = report.row()
        rows.append(
            [
                f"FabP-{length}",
                plan.instances,
                plan.segments,
                row["LUT"],
                row["FF"],
                row["BRAM"],
                row["DSP"],
                row["DRAM BW"],
            ]
        )
    print(
        text_table(
            ["design", "instances", "cycles/beat", "LUT", "FF", "BRAM", "DSP", "BW"],
            rows,
        )
    )
    plan = plan_schedule(750)
    print(f"\n  FabP-250 schedules {plan.segment_elements} of 750 elements per "
          f"cycle ({plan.segments} cycles/beat), hence the Table I bandwidth drop.")


def main() -> None:
    show_comparator()
    show_popcounter()
    show_array()
    show_full_scale()


if __name__ == "__main__":
    main()
