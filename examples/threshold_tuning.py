#!/usr/bin/env python
"""Threshold tuning: from "user-defined threshold" to a principled choice.

The paper's write-back stage reports "every alignment instance with a
higher score than a user-defined threshold" and leaves the choice to the
user.  This example shows the two tools the reproduction provides:

1. the **analytic null model** (exact Poisson-binomial score distribution
   at random positions) — pick a threshold from an acceptable false-
   positive budget *before* running anything;
2. an **empirical ROC sweep** on a planted workload — check sensitivity at
   that operating point under realistic mutation pressure;
3. per-residue **composition analytics** — why two queries of the same
   length need different thresholds.

Run:  python examples/threshold_tuning.py
"""

import numpy as np

from repro.analysis.composition import format_composition_table, query_composition
from repro.analysis.roc import format_roc, roc_curve
from repro.analysis.statistics import null_score_model
from repro.seq.generate import random_protein


def main() -> None:
    rng = np.random.default_rng(7)
    query = random_protein(40, rng=rng, name="demo")
    elements = 3 * len(query)

    print(f"Query: {len(query)} aa = {elements} encoded elements\n")

    # --- 1. analytic null model.
    model = null_score_model(query)
    print(
        f"Null score at a random position: mean {model.mean:.1f}, "
        f"sd {model.variance ** 0.5:.2f} (max possible {elements})"
    )
    for reference_nt in (1_000_000, 4_000_000_000):
        threshold = model.threshold_for_fpr(1.0, reference_nt)
        print(
            f"  <= 1 expected random hit over {reference_nt:>13,} nt: "
            f"threshold {threshold} ({threshold / elements:.0%} identity)"
        )

    # --- 2. empirical ROC under mutation pressure.
    print("\nROC sweep, planted homologs at 5% substitution divergence:")
    curve = roc_curve(
        cases=8,
        query_length=40,
        reference_length=6000,
        substitution_rate=0.05,
        seed=13,
    )
    print(format_roc(curve))
    best = curve.best_threshold(max_fp_per_mb=1.0)
    print(
        f"\nOperating point (<=1 FP/Mb): threshold {best.threshold} "
        f"({best.identity:.0%} identity), recall {best.true_positive_rate:.0%}"
    )

    # --- 3. composition: queries are not interchangeable.
    loose = "L" * 40
    strict = "MW" * 20
    for label, q in (("Leu-rich (permissive patterns)", loose),
                     ("Met/Trp (unique codons)", strict)):
        composition = query_composition(q)
        model_q = null_score_model(q)
        threshold = model_q.threshold_for_fpr(1.0, 4_000_000_000)
        print(
            f"\n{label}: expected null {composition.expected_null_score:.0f}/"
            f"{composition.max_score}, information "
            f"{composition.total_information_bits:.0f} bits "
            f"-> threshold {threshold} ({threshold / composition.max_score:.0%})"
        )

    print("\nPer-residue pattern table:")
    print(format_composition_table())


if __name__ == "__main__":
    main()
