#!/usr/bin/env python
"""Accuracy study: what does substitution-only alignment cost? (§IV-A)

Sweeps substitution rates and indel counts on planted-homolog databases and
compares recall of FabP (paper mode), FabP extended mode (full Serine codon
set) and the indel-tolerant TBLASTN baseline.  Also reruns the paper's
10,000-query indel-frequency statistic.

Run:  python examples/accuracy_study.py        (takes ~1 minute)
"""

from repro.analysis.accuracy import format_accuracy_table, run_accuracy_study
from repro.analysis.indels import run_indel_study


def main() -> None:
    print("Indel frequency study (paper: 'among 10,000 queries, only two of")
    print("them involved indels (~0.02%)'):\n")
    for residues in (50, 150, 250):
        result = run_indel_study(num_queries=10_000, query_residues=residues)
        print(
            f"  {residues:>3} aa queries: {result.fraction_with_indels:6.2%} of "
            f"regions contain an indel; {result.fraction_alignment_affected:6.3%} "
            f"would change FabP's top-hit outcome"
        )
    print(
        "\n(The cited distribution — mean 0.09 indels/kb — mathematically\n"
        "implies percent-level region rates; the paper's 0.02% matches the\n"
        "stricter outcome-changed reading.  See EXPERIMENTS.md.)\n"
    )

    print("Recall on planted homologs (8 cases per point, 40-aa queries):\n")
    rows = run_accuracy_study(
        substitution_rates=(0.0, 0.02, 0.05, 0.10),
        indel_event_counts=(0, 1),
        cases_per_point=8,
        query_length=40,
        reference_length=6_000,
        min_identity=0.8,
    )
    print(format_accuracy_table(rows))
    print(
        "\nReading: with no indels, FabP matches the gapped baseline at every\n"
        "substitution rate (the paper's 'negligible drop'); a planted indel\n"
        "can break FabP's frame while TBLASTN's gapped extension absorbs it —\n"
        "but such cases are rare in real coding regions (above)."
    )


if __name__ == "__main__":
    main()
