#!/usr/bin/env python
"""Deployment planning: what does FabP buy for *your* workload?

Uses the calibrated platform models to compare a FabP installation
(device choice, board count, multi-query fabric sharing) against the
paper's GPU and CPU baselines for a realistic mixed query stream — the
question a prospective adopter asks before buying hardware.

Run:  python examples/deployment_planning.py
(or interactively: python -m repro plan --queries 50x100 250x20 --boards 4)
"""

from repro.accel.device import KINTEX7, LARGE_FPGA
from repro.analysis.planner import (
    WorkloadMix,
    compare_deployments,
    format_deployment_table,
    plan_fabp,
)


def main() -> None:
    # A metagenomics-flavored batch: mostly short reads' ORFs, some long.
    mix = WorkloadMix(
        database_nucleotides=4_000_000_000,  # the paper's 1-GB database
        query_counts={30: 500, 50: 300, 150: 150, 250: 50},
    )
    print(
        f"Workload: {mix.total_queries} queries against "
        f"{mix.database_nucleotides / 1e9:.0f} Gnt\n"
    )
    print(format_deployment_table(compare_deployments(mix)))

    print("\nFabP configuration options:\n")
    rows = []
    for label, plan in [
        ("1x Kintex-7, no sharing", plan_fabp(mix, share_fabric=False)),
        ("1x Kintex-7, shared fabric", plan_fabp(mix)),
        ("4x Kintex-7 cluster", plan_fabp(mix, boards=4)),
        ("1x large FPGA", plan_fabp(mix, device=LARGE_FPGA)),
    ]:
        rows.append(
            f"  {label:<28} {plan.batch_seconds:8.1f} s   "
            f"{plan.queries_per_hour:>10,.0f} q/h   {plan.joules_per_query:6.2f} J/q"
        )
    print("\n".join(rows))
    print(
        "\nReading: fabric sharing helps the short-query bulk; boards divide"
        "\nthe database; the larger device removes the long-query iteration"
        "\npenalty (SEC IV-B's 'an FPGA with more LUTs')."
    )


if __name__ == "__main__":
    main()
