#!/usr/bin/env python
"""Observability tour: metrics, traces, and stage breakdowns of a scan.

Runs a small supervised database scan twice — once with the `repro.obs`
layer off (the default) and once with it on — then shows everything the
layer captured: the Prometheus-style metric families, the Chrome trace
timeline, the ScanReport v2 stage breakdown, and the `obs summarize`
tables.  Along the way it demonstrates the core guarantee: enabling
observability never changes a single hit.

Run:  python examples/observability_tour.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import obs
from repro.core.encoding import encode_query
from repro.host.resilience import RetryPolicy, supervised_scan
from repro.host.scan import PackedDatabase
from repro.seq.generate import random_protein, random_rna

NUM_REFERENCES = 6
REFERENCE_LENGTH = 20_000


def build_workload():
    rng = np.random.default_rng(2021)
    query = random_protein(25, rng=rng)
    references = [random_rna(REFERENCE_LENGTH, rng=rng) for _ in range(NUM_REFERENCES)]
    names = [f"ref_{i}" for i in range(NUM_REFERENCES)]
    return encode_query(query), PackedDatabase.from_references(references, names=names)


def run_scan(encoded, database):
    return supervised_scan(
        encoded,
        database,
        threshold=int(0.6 * len(encoded)),
        engine="bitscore",
        workers=2,
        policy=RetryPolicy(seed=0),
    )


def hits_of(outcome):
    return [
        [(hit.position, hit.score) for hit in result.hits]
        for result in outcome.results
    ]


def main() -> None:
    encoded, database = build_workload()

    # 1. Baseline: observability off (the default) costs nothing.
    baseline = run_scan(encoded, database)
    print(f"baseline scan: {baseline.report.summary()}")

    # 2. Same scan, instrumented.  One switch, no other code changes.
    obs.reset()
    obs.enable()
    instrumented = run_scan(encoded, database)
    obs.disable()
    identical = hits_of(baseline) == hits_of(instrumented)
    print(f"results identical with observability on: {identical}")
    assert identical, "observability must never change results"

    # 3. The metrics registry: counters, gauges, histograms.
    print("\n--- Prometheus text exposition (excerpt) ---")
    lines = obs.to_prometheus().splitlines()
    for line in lines:
        if line.startswith(("# TYPE", "fabp_scan", "fabp_shm")):
            print(f"  {line}")

    # 4. The span timeline: hierarchical stages, chunk attempts.
    print("\n--- recorded spans ---")
    for span in obs.RECORDER.spans():
        indent = "    " if span.parent else "  "
        print(f"{indent}{span.name:<22} {span.duration * 1e3:8.2f} ms "
              f"[{span.category}]")

    # 5. The ScanReport v2 carries its own stage breakdown — even with
    #    observability off, the supervised runtime times its stages.
    print("\n--- ScanReport v2 metrics section ---")
    for key, value in instrumented.report.to_dict()["metrics"].items():
        print(f"  {key}: {value}")

    # 6. Artifacts + the summarize view the CLI exposes as
    #    `fabp-repro obs summarize PATH`.
    with tempfile.TemporaryDirectory() as tmp:
        metrics_path = Path(tmp) / "metrics.json"
        trace_path = Path(tmp) / "trace.json"
        obs.write_metrics_json(metrics_path)
        obs.write_trace_json(trace_path)
        print("\n--- obs summarize metrics.json ---")
        print(obs.summarize(metrics_path))
        print("\n--- obs summarize trace.json ---")
        print(obs.summarize(trace_path))

    obs.reset()
    print("\nTour complete: enable() -> run -> write_*() -> summarize().")


if __name__ == "__main__":
    main()
