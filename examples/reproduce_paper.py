#!/usr/bin/env python
"""Regenerate every paper table and figure in one run.

Prints Fig. 6(a), Fig. 6(b), Table I, the §IV-B crossover sweep and the
§III-D pop-counter ablation, each alongside the paper's reported values.
(The full experiment index lives in DESIGN.md; the bench suite under
``benchmarks/`` writes the same artifacts with assertions.)

Run:  python examples/reproduce_paper.py
"""

from repro.accel.resources import table1
from repro.accel.scheduler import max_unsegmented_elements, plan_schedule
from repro.analysis.report import ratio_summary, text_table
from repro.perf.figures import PLATFORM_ORDER, figure6
from repro.rtl.popcount import build_popcounter


def show_fig6() -> None:
    fig = figure6()
    for metric, title, paper in [
        ("speedup", "Fig. 6(a) speedup vs TBLASTN-1", ("1.081x GPU", "24.8x CPU-12")),
        ("energy", "Fig. 6(b) energy efficiency vs TBLASTN-1", ("23.2x GPU", "266.8x CPU-12")),
    ]:
        rows = []
        for index, length in enumerate(fig.lengths):
            rows.append(
                [length]
                + [f"{fig.series(p, metric)[index]:.1f}" for p in PLATFORM_ORDER]
            )
        print(text_table(["len(aa)"] + list(PLATFORM_ORDER), rows, title=title))
        print(f"  paper headline: {paper[0]}, {paper[1]}\n")
    headline = fig.headline()
    print(ratio_summary("  FabP vs GPU (perf)", 1.081, headline["speedup_vs_gpu"]))
    print(ratio_summary("  FabP vs CPU-12 (perf)", 24.8, headline["speedup_vs_cpu12"]))
    print(ratio_summary("  FabP vs GPU (energy)", 23.2, headline["energy_vs_gpu"]))
    print(ratio_summary("  FabP vs CPU-12 (energy)", 266.8, headline["energy_vs_cpu12"]))


def show_table1() -> None:
    paper = {
        50: ["58%", "16%", "19%", "31%", "12.2 GB/s"],
        250: ["98%", "40%", "15%", "68%", "3.4 GB/s"],
    }
    rows = []
    for length, report in table1().items():
        measured = report.row()
        rows.append([f"FabP-{length} paper"] + paper[length])
        rows.append([f"FabP-{length} model"] + list(measured.values()))
    print()
    print(
        text_table(
            ["design", "LUT", "FF", "BRAM", "DSP", "DRAM BW"],
            rows,
            title="Table I: resource utilization",
        )
    )


def show_crossover() -> None:
    crossover = max_unsegmented_elements() // 3
    print(f"\nSEC IV-B crossover: model {crossover} aa (paper ~70 aa)")
    for residues in (50, crossover, 250):
        plan = plan_schedule(3 * residues)
        bound = "bandwidth" if plan.bandwidth_bound else "resources"
        print(f"  {residues:>3} aa: {plan.segments} cycle(s)/beat, bound by {bound}")


def show_popcounter() -> None:
    fabp = build_popcounter(750, style="fabp")
    tree = build_popcounter(750, style="tree")
    saving = 1 - fabp.lut_count / tree.lut_count
    print(
        f"\nSEC III-D pop-counter: {fabp.lut_count} vs {tree.lut_count} LUTs "
        f"({saving:.0%} saving; paper reports 20%)"
    )


def main() -> None:
    show_fig6()
    show_table1()
    show_crossover()
    show_popcounter()


if __name__ == "__main__":
    main()
