#!/usr/bin/env python
"""Quickstart: back-translate a protein query and align it against RNA.

Walks the paper's worked example (§III-B): the query Met-Phe-Ser-Arg-Stop
is back-translated into a degenerate codon pattern, encoded into 6-bit
instructions, and aligned against a reference — recovering a planted
coding region regardless of which synonymous codons the reference used.

Run:  python examples/quickstart.py
"""

from repro import align, back_translate, encode_query, pattern_string
from repro.core.encoding import instruction_bit_string

QUERY = "MFSR*"  # the paper's worked example: Met-Phe-Ser-Arg-Stop


def main() -> None:
    print(f"Protein query: {QUERY}")

    # 1. Back-translation: one degenerate codon pattern per residue.
    print("\nBack-translated pattern (paper notation):")
    print(f"  {pattern_string(QUERY)}")
    for amino, pattern in zip(QUERY, back_translate(QUERY)):
        kinds = [type(e).__name__.replace("Element", "") for e in pattern.elements]
        print(f"  {amino}: {str(pattern):<18} element types: {kinds}")

    # 2. Encoding: three 6-bit instructions per residue (§III-B).
    encoded = encode_query(QUERY)
    print(f"\nEncoded query: {len(encoded)} instructions x 6 bits "
          f"= {encoded.storage_bits()} bits of FPGA distributed memory")
    bit_strings = [instruction_bit_string(i) for i in encoded.instructions]
    print("  " + " ".join(bit_strings[:6]) + " ...")

    # 3. Alignment: slide over a reference; count matching elements.
    #    Two references code the same protein with different codons.
    reference_a = "GGGG" + "AUGUUUUCGCGAUGA" + "CCCC"  # UCG serine, CGA arg
    reference_b = "GGGG" + "AUGUUCUCUAGGUAA" + "CCCC"  # UUC phe, AGG arg
    for name, reference in [("A", reference_a), ("B", reference_b)]:
        result = align(QUERY, reference, min_identity=0.9, keep_scores=True)
        print(f"\nReference {name}: {reference}")
        print(f"  threshold {result.threshold}/{result.perfect_score} "
              f"-> hits: {[str(h) for h in result.hits]}")

    # 4. Mismatches just lower the score (substitution-only model).
    mutated = "GGGG" + "AUGUUUUCGCGAUGA".replace("UUU", "UUG") + "CCCC"
    result = align(QUERY, mutated, min_identity=0.8, keep_scores=True)
    print(f"\nMutated reference (Phe codon broken): best {result.best_hit}")
    print("A single substitution costs one element of the score — indels are")
    print("not modeled, by design (they are rare in coding regions, §IV-A).")


if __name__ == "__main__":
    main()
