#!/usr/bin/env python
"""Database search: FabP vs TBLASTN on a synthetic NCBI-style workload.

Builds a synthetic nucleotide database with planted homologs (the
reproduction's substitute for NCBI nt), then searches it with both the
FabP accelerator model and the from-scratch TBLASTN pipeline, comparing
hits and work done — the paper's central use case end to end.

Run:  python examples/database_search.py
"""

import numpy as np

from repro.accel.kernel import FabPKernel
from repro.analysis.report import text_table
from repro.baselines.tblastn import Tblastn
from repro.workloads.builder import build_database, sample_queries


def main() -> None:
    rng = np.random.default_rng(42)
    queries = sample_queries(3, length=40, rng=rng)
    database = build_database(
        queries,
        num_references=3,
        reference_length=30_000,
        substitution_rate=0.02,  # mild divergence, like real homologs
        codon_usage="paper",
        rng=rng,
    )
    print(
        f"Synthetic database: {len(database.references)} references, "
        f"{database.total_nucleotides:,} nt, {len(database.planted)} planted homologs"
    )

    rows = []
    for query, planting in zip(queries, database.planted):
        reference = database.references[planting.reference_index]

        # --- FabP: stream the reference through the accelerator model.
        kernel = FabPKernel(query, min_identity=0.85)
        run = kernel.run(reference)
        fabp_found = any(
            abs(h.position - planting.position) <= 2 for h in run.hits
        )

        # --- TBLASTN: six-frame translation + seeded extension.
        result = Tblastn(query).search(reference)
        tbl_found = any(
            abs(h.nucleotide_start - planting.position) <= 6 for h in result.hsps
        )

        rows.append(
            [
                query.name,
                planting.position,
                "yes" if fabp_found else "NO",
                f"{run.total_cycles:,}",
                f"{run.effective_bandwidth / 1e9:.1f} GB/s",
                "yes" if tbl_found else "NO",
                f"{result.word_hits:,}",
            ]
        )

    print()
    print(
        text_table(
            [
                "query",
                "planted@",
                "FabP hit",
                "FPGA cycles",
                "eff. BW",
                "TBLASTN hit",
                "word probes",
            ],
            rows,
            title="FabP (sequential streaming) vs TBLASTN (random-access seeding)",
        )
    )
    print(
        "\nNote the contrast the paper draws: FabP's work is a fixed number of"
        "\nstreaming beats, while TBLASTN's hash probes are data-dependent"
        "\nrandom accesses (its CPU bottleneck, §II)."
    )


if __name__ == "__main__":
    main()
