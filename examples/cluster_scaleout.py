#!/usr/bin/env python
"""Scale-out demo: multi-FPGA sharding and multi-query fabric sharing.

Two ways this reproduction scales beyond one query on one board:

1. **Database sharding** (`repro.host.cluster`): a pool of boards each
   holds a slice of the references; the straggler sets the pace.
2. **Multi-query fabric sharing** (`repro.accel.multi_query`): Table I's
   idle LUTs at short query lengths host extra query arrays, so one
   reference pass serves a whole batch.

Run:  python examples/cluster_scaleout.py
"""

import numpy as np

from repro.accel.multi_query import MultiQueryScheduler, queries_per_pass
from repro.analysis.report import text_table
from repro.host.cluster import FabPCluster
from repro.seq.generate import random_protein, random_rna


def show_cluster(rng) -> None:
    references = [random_rna(256 * 100, rng=rng, name=f"shard_src_{i}") for i in range(8)]
    query = random_protein(40, rng=rng)
    print("Database sharding (8 references x 25.6 knt, 40-aa query):\n")
    rows = []
    for boards in (1, 2, 4, 8):
        cluster = FabPCluster(boards)
        cluster.add_references(references)
        result = cluster.search(query, min_identity=0.9)
        rows.append(
            [
                boards,
                f"{result.elapsed_seconds * 1e3:.3f} ms",
                f"{result.scaling_efficiency:.0%}",
                f"{cluster.load_imbalance():.2f}",
            ]
        )
    print(text_table(["boards", "elapsed", "efficiency", "imbalance"], rows))


def show_multiquery(rng) -> None:
    print("\nMulti-query fabric sharing (4-query batches, one 15.4-knt pass):\n")
    reference = random_rna(256 * 60, rng=rng)
    scheduler = MultiQueryScheduler()
    rows = []
    for residues in (20, 40, 80, 250):
        queries = [random_protein(residues, rng=rng) for _ in range(4)]
        _, summary = scheduler.search_all(queries, reference, min_identity=0.9)
        rows.append(
            [
                residues,
                queries_per_pass(3 * residues),
                int(summary["passes"]),
                f"{summary['speedup']:.2f}x",
            ]
        )
    print(text_table(["query (aa)", "arrays/pass", "passes", "batch speedup"], rows))
    print(
        "\nShort queries leave most of the Kintex-7 idle (Table I: 57% LUTs"
        "\nat 50 aa) — co-residency converts that slack into throughput; long"
        "\nqueries already saturate the fabric, so they gain nothing."
    )


def main() -> None:
    rng = np.random.default_rng(6)
    show_cluster(rng)
    show_multiquery(rng)


if __name__ == "__main__":
    main()
