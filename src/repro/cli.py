"""Command-line interface: ``python -m repro.cli <command>``.

Subcommands:

* ``encode``    — back-translate and encode protein queries (FASTA or inline)
* ``search``    — align queries against a reference database (FASTA)
* ``scan``      — fault-tolerant software scan of a FASTA database through
  the supervised runtime: retries/timeouts/backoff, checkpoint/resume,
  deterministic fault injection, machine-readable ``ScanReport``
* ``serve``     — front-door scan daemon over one resident warm runtime:
  HTTP job admission (``POST /scan``), batched passes, LRU result cache,
  Prometheus ``/metrics``, graceful SIGTERM drain (``docs/service.md``)
* ``generate``  — build a synthetic database with planted homologs
* ``table1``    — print the Table I resource model
* ``fig6``      — print the Fig. 6 performance/energy sweep
* ``crossover`` — print the §IV-B bandwidth/resource crossover sweep
* ``stats``     — null-score statistics and threshold suggestion for a query
* ``bench``     — score-engine benchmark (naive/vectorized/bitscore/parallel
  scan) writing the ``BENCH_scoring.json`` perf artifact
* ``lint``      — static lint of generated netlists and instruction streams
* ``prove``     — symbolic proofs: comparator/reference equivalence per
  amino acid, popcount score-range bounds, block equivalence
* ``obs``       — observability utilities: ``obs summarize`` renders the
  stage/engine breakdown of a ``--metrics-json``, ``--trace-json`` or
  ``--report-json`` artifact

``scan`` and ``bench`` accept ``--metrics-json PATH`` and ``--trace-json
PATH``: either flag turns the :mod:`repro.obs` layer on for the run and
writes the corresponding artifact (Prometheus-convention metrics as JSON;
Chrome ``trace_event`` JSON openable in ``about:tracing`` / Perfetto).

Exit codes: ``lint``/``prove`` follow the lint convention (0 clean, 1
findings/refutations, 2 usage error).  ``scan``, ``serve`` and ``bench``
follow the robustness contract documented in ``docs/robustness.md``:
0 = clean, 3 = completed **with degradation** (the report says how),
4 = completed **with dead shards** (``--shards`` only: some shard
exhausted its health budget and its references are missing from the
results), 1 = fatal, 2 = usage error (argparse).  ``serve`` applies the
same scheme to its whole run — the worst outcome of any job it served —
and maps it onto HTTP statuses per ``docs/service.md``.  Everything is
deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.accel.device import KINTEX7, LARGE_FPGA, FpgaDevice

DEVICES = {"kintex7": KINTEX7, "large": LARGE_FPGA}


def _device(name: str) -> FpgaDevice:
    return DEVICES[name]


def _load_queries(args) -> List:
    from repro.seq import fasta
    from repro.seq.sequence import ProteinSequence

    if args.query_file:
        return fasta.read_proteins(args.query_file)
    if args.query:
        return [ProteinSequence(q, name=f"query_{i}") for i, q in enumerate(args.query)]
    raise SystemExit("provide --query SEQ... or --query-file FASTA")


def cmd_encode(args) -> int:
    from repro.core import pattern_string
    from repro.core.encoding import encode_query, instruction_bit_string

    for query in _load_queries(args):
        encoded = encode_query(query)
        print(f">{query.name or 'query'}  ({len(query)} aa, "
              f"{encoded.storage_bits()} bits)")
        print(f"  pattern: {pattern_string(query)}")
        if args.bits:
            bits = " ".join(instruction_bit_string(i) for i in encoded.instructions)
            print(f"  instructions: {bits}")
        else:
            hex_str = "".join(f"{i:02x}" for i in encoded.instructions)
            print(f"  instructions (hex bytes): {hex_str}")
    return 0


def cmd_search(args) -> int:
    from repro.analysis.report import text_table
    from repro.host.session import FabPHost
    from repro.seq import fasta

    host = FabPHost(_device(args.device))
    count = host.load_fasta(args.database)
    print(f"database: {count} references, {host.database_nucleotides:,} nt "
          f"({host.database_bytes:,} packed bytes) on {host.device.name}")
    reference_texts = None
    if args.rescore:
        reference_texts = {
            header: sequence for header, sequence in fasta.read_fasta(args.database)
        }
    rows = []
    for query in _load_queries(args):
        result = host.search(
            query,
            min_identity=args.min_identity,
            both_strands=args.both_strands,
        )
        if args.rescore:
            from repro.host.rescore import rescore_search_result

            report = rescore_search_result(
                result, reference_texts, max_evalue=args.max_evalue
            )
            for rescored in report.hits[: args.max_hits]:
                rows.append(
                    [
                        query.name or "query",
                        rescored.hit.reference,
                        rescored.hit.position,
                        rescored.hit.strand,
                        rescored.alignment.score,
                        f"{rescored.evalue:.2g}",
                    ]
                )
            print(
                f"{query.name}: {len(result.hits)} raw hits -> "
                f"{len(report.hits)} verified (E <= {args.max_evalue})"
            )
            continue
        shown = result.hits[: args.max_hits]
        for hit in shown:
            rows.append(
                [
                    query.name or "query",
                    hit.reference,
                    hit.position,
                    hit.strand,
                    hit.score,
                    f"{hit.score / len(result.query):.0%}",
                ]
            )
        if not shown:
            rows.append([query.name or "query", "-", "-", "-", "-", "-"])
        print(
            f"{query.name}: {len(result.hits)} hits >= {result.threshold}, "
            f"{result.total_seconds * 1e3:.2f} ms modeled "
            f"({result.kernel_seconds * 1e3:.2f} ms kernel)"
        )
    print()
    last_column = "E-value" if args.rescore else "identity"
    print(
        text_table(
            ["query", "reference", "position", "strand", "score", last_column], rows
        )
    )
    return 0


#: Engine choices for the scan subcommand (mirrors repro.core.aligner.ENGINES
#: without importing the scoring stack at parser-build time).
SCAN_ENGINES = (
    "bitscore",
    "bitscore_batch",
    "packed",
    "diagonal",
    "vectorized",
    "naive",
)


def _obs_begin(args) -> bool:
    """Enable observability when the command asked for an artifact."""
    if not (getattr(args, "metrics_json", None) or getattr(args, "trace_json", None)):
        return False
    from repro import obs

    obs.reset()
    obs.enable()
    return True


def _obs_finish(args, active: bool) -> None:
    """Write the requested artifacts and switch observability back off."""
    if not active:
        return
    from repro import obs

    try:
        if args.metrics_json:
            print(f"wrote {obs.write_metrics_json(args.metrics_json)}")
        if args.trace_json:
            print(f"wrote {obs.write_trace_json(args.trace_json)}")
    finally:
        obs.disable()


def cmd_scan(args) -> int:
    """Supervised scan; exit 0 clean / 3 degraded / 4 dead shards / 1 fatal."""
    import json
    import pathlib

    from repro.analysis.report import text_table
    from repro.host.errors import ScanError
    from repro.host.faults import FaultPlan
    from repro.host.resilience import RetryPolicy
    from repro.host.scan import (
        PackedDatabase,
        chunk_bounds,
        resolve_chunk_size,
        resolve_workers,
        scan_database,
    )
    from repro.seq import fasta

    on_error = None if args.on_bad_record == "ignore" else args.on_bad_record
    obs_active = _obs_begin(args)
    queries = _load_queries(args)
    payload: Dict[str, object] = {"version": 1, "queries": []}
    degraded_any = False
    rows: List[list] = []
    try:
        skipped: List[fasta.SkippedRecord] = []
        references = fasta.read_rna(args.database, on_error=on_error, skipped=skipped)
        database = PackedDatabase.from_references(references)
        num_workers = resolve_workers(args.workers)
        size = resolve_chunk_size(database.num_references, num_workers, args.chunk_size)
        num_chunks = (
            len(chunk_bounds(database.num_references, size))
            if database.num_references
            else 0
        )
        print(
            f"database: {database.num_references} references, "
            f"{database.total_nucleotides:,} nt in {num_chunks} chunks of "
            f"<= {size} (workers={num_workers})"
        )
        if skipped:
            print(f"quarantined {len(skipped)} bad records:")
            for record in skipped[:10]:
                print(f"  - {record}")
            payload["skipped_records"] = [
                {"header": s.header, "reason": s.reason, "line": s.line}
                for s in skipped
            ]

        policy = RetryPolicy(
            max_retries=args.retries,
            timeout=args.chunk_timeout if args.chunk_timeout > 0 else None,
            backoff=args.backoff,
            hedge_after=args.hedge_after,
            max_respawns=args.max_respawns,
            degrade=not args.no_degrade,
            seed=args.seed,
        )
        plan = None
        if args.inject_faults:
            plan = FaultPlan.parse(
                args.inject_faults, hang_seconds=args.fault_hang_seconds
            )
        elif args.fault_rate > 0:
            plan = FaultPlan.from_seed(
                args.fault_seed,
                num_chunks,
                rate=args.fault_rate,
                max_attempts=args.fault_attempts,
                hang_seconds=args.fault_hang_seconds,
            )

        threshold = args.threshold
        min_identity = None if threshold is not None else args.min_identity
        engine = args.engine or (
            "bitscore_batch" if args.session or args.shards else "bitscore"
        )
        outcomes = []
        dead_any = False
        if args.shards is not None:
            # S supervised shard runtimes (one warm session each), merged
            # seam-exactly; shard death degrades to partial results.
            if args.session:
                raise ValueError("--shards and --session are mutually exclusive")
            if plan is not None:
                raise ValueError(
                    "--shards takes shard-scoped faults via --shard-faults, "
                    "not --inject-faults/--fault-rate"
                )
            from repro.host.faults import ShardFaultPlan
            from repro.host.shards import ShardedScanRuntime, ShardPolicy

            shard_plan = None
            if args.shard_faults:
                shard_plan = ShardFaultPlan.parse(
                    args.shard_faults, hang_seconds=args.fault_hang_seconds
                )
            shard_policy = ShardPolicy(
                max_attempts=args.retries + 1,
                timeout=args.chunk_timeout if args.chunk_timeout > 0 else None,
                backoff=args.backoff,
                hedge_after=args.hedge_after,
                allow_partial=not args.no_degrade,
                seed=args.seed,
            )
            runtime = ShardedScanRuntime(
                database,
                num_shards=args.shards,
                engine=engine,
                policy=shard_policy,
                faults=shard_plan,
            )
            print(
                f"shards: {runtime.num_shards} supervised runtimes, "
                f"engine={engine}"
            )
            checkpoint_dir = (
                pathlib.Path(args.checkpoint) if args.checkpoint else None
            )
            batches, report = runtime.scan_batch(
                queries,
                threshold=threshold,
                min_identity=min_identity,
                checkpoint_dir=checkpoint_dir,
                resume=args.resume,
                with_report=True,
            )
            dead_any = report.dead_shards > 0
            outcomes = [
                (query, results, report)
                for query, results in zip(queries, batches)
            ]
        elif args.shard_faults:
            raise ValueError("--shard-faults requires --shards")
        elif args.session:
            # One warm runtime for the whole query stream: the packed image
            # and worker pool are set up once, queries share passes, and a
            # single batch report covers every query.
            if plan is not None:
                raise ValueError("--session does not support fault injection")
            from repro.host.scan_session import ScanSession

            checkpoint_dir = (
                pathlib.Path(args.checkpoint) if args.checkpoint else None
            )
            with ScanSession(database, engine=engine, workers=args.workers) as warm:
                print(
                    f"session: {warm.resident_bytes:,} resident bytes, "
                    f"{warm.num_workers} workers, engine={engine}"
                )
                batches, report = warm.scan_batch(
                    queries,
                    threshold=threshold,
                    min_identity=min_identity,
                    policy=policy,
                    checkpoint_dir=checkpoint_dir,
                    resume=args.resume,
                    with_report=True,
                )
            outcomes = [
                (query, results, report)
                for query, results in zip(queries, batches)
            ]
        else:
            for index, query in enumerate(queries):
                checkpoint_dir = None
                if args.checkpoint:
                    checkpoint_dir = pathlib.Path(args.checkpoint)
                    if len(queries) > 1:
                        checkpoint_dir = checkpoint_dir / f"q{index:03d}"
                results, report = scan_database(
                    query,
                    database,
                    threshold=threshold,
                    min_identity=min_identity,
                    engine=engine,
                    workers=args.workers,
                    chunk_size=args.chunk_size,
                    policy=policy,
                    faults=plan,
                    checkpoint_dir=checkpoint_dir,
                    resume=args.resume,
                    with_report=True,
                )
                outcomes.append((query, results, report))
        for index, (query, results, report) in enumerate(outcomes):
            hits = sorted(
                (
                    (result.reference_name, hit.position, hit.score)
                    for result in results
                    for hit in result.hits
                ),
                key=lambda item: (-item[2], item[0], item[1]),
            )
            for reference, position, score in hits[: args.max_hits]:
                rows.append([query.name or "query", reference, position, score])
            degraded_any = degraded_any or report.degraded
            print(f"{query.name or 'query'}: {len(hits)} hits; {report.summary()}")
            if report.degraded:
                print(f"  DEGRADED: {report.degraded_reason}")
            for shard in report.shards:
                if shard.status == "dead":
                    print(
                        f"  DEAD SHARD {shard.shard} "
                        f"(references {shard.start}..{shard.stop}): "
                        f"{shard.detail}"
                    )
            payload["queries"].append(  # type: ignore[union-attr]
                {
                    "query": query.name or f"query_{index}",
                    "num_hits": len(hits),
                    "report": report.to_dict(),
                }
            )
    except (ScanError, fasta.FastaError, OSError, ValueError) as exc:
        print(f"fatal: {exc}", file=sys.stderr)
        _obs_finish(args, obs_active)
        return 1
    if rows:
        print()
        print(text_table(["query", "reference", "position", "score"], rows))
    payload["degraded"] = degraded_any
    payload["dead_shards"] = dead_any
    if args.report_json:
        path = pathlib.Path(args.report_json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path}")
    _obs_finish(args, obs_active)
    if dead_any:
        return 4
    return 3 if degraded_any else 0


def cmd_serve(args) -> int:
    """Front-door daemon; exits with the worst job outcome after drain."""
    import pathlib

    from repro import obs
    from repro.host.errors import ScanError
    from repro.host.scan import PackedDatabase
    from repro.seq import fasta
    from repro.service import ScanServer, ScanService

    on_error = None if args.on_bad_record == "ignore" else args.on_bad_record
    service = None
    try:
        skipped: List[fasta.SkippedRecord] = []
        references = fasta.read_rna(
            args.database, on_error=on_error, skipped=skipped
        )
        database = PackedDatabase.from_references(references)
        if skipped:
            print(f"quarantined {len(skipped)} bad records")
        if not args.no_obs:
            # The daemon keeps the registry live for /metrics scrapes.
            obs.reset()
            obs.enable()
        service = ScanService(
            database,
            engine=args.engine,
            workers=args.workers,
            shards=args.shards,
            max_queue=args.max_queue,
            max_batch=args.max_batch,
            cache_entries=args.cache_entries,
            checkpoint_dir=args.checkpoint,
        )
        server = ScanServer(
            service, host=args.host, port=args.port, verbose=args.verbose
        )
    except (ScanError, fasta.FastaError, OSError, ValueError) as exc:
        print(f"fatal: {exc}", file=sys.stderr)
        if service is not None:
            service.close(drain=False)
        return 1
    host, port = server.address
    backend = (
        f"shards={args.shards}" if args.shards is not None
        else f"workers={service.stats()['backend']['workers']}"
    )
    print(
        f"serving http://{host}:{port} — {database.num_references} references, "
        f"{database.total_nucleotides:,} nt resident "
        f"(engine={service.engine}, {backend}, "
        f"cache={args.cache_entries} entries, queue<={args.max_queue})"
    )
    print(
        "endpoints: POST /scan | GET /jobs/<id> /results/<id> "
        "/healthz /metrics — SIGTERM drains gracefully"
    )
    if args.ready_file:
        # Test/CI rendezvous: the resolved address, written once listening.
        ready = pathlib.Path(args.ready_file)
        ready.parent.mkdir(parents=True, exist_ok=True)
        ready.write_text(f"{host} {port}\n")
    server.install_signal_handlers()
    server.serve_forever()
    stats = service.stats()
    cache = stats["cache"]
    print(
        f"drained: {stats['jobs']['done']} done, "
        f"{stats['jobs']['failed']} failed, "
        f"{stats['batches_dispatched']} batches, "
        f"cache hit ratio {cache['hit_ratio']:.0%}"
    )
    if args.metrics_json:
        print(f"wrote {obs.write_metrics_json(args.metrics_json)}")
    if not args.no_obs:
        obs.disable()
    return service.exit_code()


def cmd_generate(args) -> int:
    from repro.seq import fasta
    from repro.workloads.builder import build_database, sample_queries

    rng = np.random.default_rng(args.seed)
    queries = sample_queries(args.queries, length=args.length, rng=rng)
    database = build_database(
        queries,
        num_references=args.references,
        reference_length=args.reference_length,
        substitution_rate=args.substitution_rate,
        indel_events=args.indels,
        codon_usage=args.codon_usage,
        rng=rng,
    )
    fasta.write_fasta(
        args.out_db, [(r.name, r.letters) for r in database.references]
    )
    fasta.write_fasta(args.out_queries, [(q.name, q.letters) for q in queries])
    print(f"wrote {args.references} references -> {args.out_db}")
    print(f"wrote {args.queries} queries -> {args.out_queries}")
    for planting in database.planted:
        print(
            f"  planted {planting.query.name} in ref {planting.reference_index} "
            f"@ {planting.position} (subs={planting.substitutions}, "
            f"indels={planting.indels})"
        )
    return 0


def cmd_table1(args) -> int:
    from repro.accel.resources import table1
    from repro.analysis.report import text_table

    rows = []
    for length, report in table1(_device(args.device)).items():
        row = report.row()
        rows.append([f"FabP-{length}", report.plan.segments] + list(row.values()))
    print(
        text_table(
            ["design", "cycles/beat", "LUT", "FF", "BRAM", "DSP", "DRAM BW"],
            rows,
            title=f"Table I model on {_device(args.device).name}",
        )
    )
    return 0


def cmd_fig6(args) -> int:
    from repro.perf.figures import figure6

    fig = figure6(device=_device(args.device))
    print(fig.table("speedup"))
    print()
    print(fig.table("energy"))
    print()
    for key, value in fig.headline().items():
        print(f"{key}: {value:.2f}")
    return 0


def cmd_crossover(args) -> int:
    from repro.accel.scheduler import max_unsegmented_elements, plan_schedule
    from repro.analysis.report import text_table

    device = _device(args.device)
    rows = []
    for residues in (25, 50, 75, 100, 150, 200, 250):
        plan = plan_schedule(3 * residues, device)
        rows.append(
            [
                residues,
                plan.segments,
                "BW" if plan.bandwidth_bound else "LUTs",
                f"{plan.lut_utilization:.0%}",
            ]
        )
    crossover = max_unsegmented_elements(device) // 3
    print(
        text_table(
            ["query(aa)", "cycles/beat", "bound", "LUT util"],
            rows,
            title=f"{device.name}: crossover at {crossover} aa",
        )
    )
    return 0


def cmd_stats(args) -> int:
    from repro.analysis.statistics import null_score_model

    for query in _load_queries(args):
        model = null_score_model(query)
        elements = len(model.query)
        print(f">{query.name or 'query'} ({len(query)} aa, {elements} elements)")
        print(f"  null score: mean {model.mean:.2f}, sd {model.variance ** 0.5:.2f}")
        for identity in (0.7, 0.8, 0.9):
            threshold = int(np.ceil(identity * elements))
            expected = model.expected_hits(threshold, args.reference_length)
            print(
                f"  identity >= {identity:.0%} (threshold {threshold}): "
                f"{expected:.3g} expected random hits / {args.reference_length:,} nt"
            )
        suggested = model.threshold_for_fpr(args.target_fpr, args.reference_length)
        print(
            f"  suggested threshold for <= {args.target_fpr} random hits: "
            f"{suggested} ({suggested / elements:.0%} identity)"
        )
    return 0


def cmd_export_rtl(args) -> int:
    import pathlib

    from repro.accel.rtl_kernel import build_alignment_array
    from repro.rtl.timing import analyze
    from repro.rtl.verilog import write_verilog

    queries = _load_queries(args)
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    for query in queries:
        array = build_alignment_array(
            query, instances=args.instances, threshold=args.threshold,
            loadable=args.loadable,
        )
        name = (query.name or "query").replace(" ", "_")
        path = out_dir / f"fabp_{name}.v"
        lines = write_verilog(array.netlist, path, f"fabp_{name}")
        report = analyze(array.netlist)
        stats = array.netlist.stats()
        print(
            f"{path}: {lines} lines, {stats['luts']} LUTs, {stats['ffs']} FFs, "
            f"fmax ~{report.fmax_mhz:.0f} MHz"
        )
    return 0


def cmd_compose(args) -> int:
    from repro.analysis.composition import (
        format_composition_table,
        query_composition,
    )

    print(format_composition_table())
    for query in _load_queries(args) if (args.query or args.query_file) else []:
        composition = query_composition(query)
        print(
            f"\n>{query.name or 'query'}: {composition.residues} aa, "
            f"{composition.total_information_bits:.0f} bits, expected null "
            f"{composition.expected_null_score:.1f}/{composition.max_score}"
        )
    return 0


def cmd_plan(args) -> int:
    from repro.analysis.planner import (
        WorkloadMix,
        compare_deployments,
        format_deployment_table,
    )

    counts = {}
    for spec in args.queries:
        try:
            length, count = spec.lower().split("x")
            counts[int(length)] = counts.get(int(length), 0) + int(count)
        except ValueError:
            raise SystemExit(f"bad query spec {spec!r}; expected LENxCOUNT like 50x60")
    mix = WorkloadMix(args.database_nt, counts)
    plans = compare_deployments(
        mix,
        device=_device(args.device),
        boards=args.boards,
        share_fabric=not args.no_share,
    )
    print(format_deployment_table(plans))
    fabp, gpu, cpu12 = plans[0], plans[1], plans[2]
    print(
        f"\nFabP vs GPU: {gpu.batch_seconds / fabp.batch_seconds:.2f}x faster, "
        f"{gpu.joules_per_query / fabp.joules_per_query:.1f}x less energy/query"
    )
    print(
        f"FabP vs TBLASTN-12: {cpu12.batch_seconds / fabp.batch_seconds:.1f}x faster, "
        f"{cpu12.joules_per_query / fabp.joules_per_query:.1f}x less energy/query"
    )
    return 0


def cmd_bench(args) -> int:
    from repro.perf.scorebench import (
        format_report,
        quick_batch_benchmark,
        quick_benchmark,
        run_batch_benchmark,
        run_score_benchmark,
    )

    obs_active = _obs_begin(args)
    try:
        if args.quick:
            report = quick_benchmark(seed=args.seed)
        else:
            report = run_score_benchmark(
                residues=args.residues,
                reference_length=args.reference_length,
                scan_references=args.scan_references,
                scan_reference_length=args.scan_reference_length,
                workers_sweep=tuple(args.workers),
                repeats=args.repeats,
                seed=args.seed,
            )
        if args.batch:
            if args.quick:
                batch_report = quick_batch_benchmark(seed=args.seed)
            else:
                batch_report = run_batch_benchmark(
                    residues=args.residues,
                    reference_length=args.reference_length,
                    repeats=args.repeats,
                    seed=args.seed,
                )
            # One merged artifact: the batch/session rows and speedups ride
            # in the same schema as the engine sweep.
            report.records.extend(batch_report.records)
            report.speedups.update(batch_report.speedups)
            report.meta["batch"] = batch_report.meta
    finally:
        _obs_finish(args, obs_active)
    print(format_report(report))
    if args.out:
        path = report.write(args.out)
        print(f"\nwrote {path}")
    if args.min_speedup > 0:
        achieved = report.speedups.get("bitscore_vs_naive", 0.0)
        if achieved < args.min_speedup:
            # Exit-code contract (docs/robustness.md): the benchmark ran to
            # completion but below the bar — completed-with-degradation (3),
            # reserving 1 for fatal errors.
            print(
                f"FAIL: bitscore is {achieved:.2f}x the naive path, "
                f"required >= {args.min_speedup:.2f}x"
            )
            return 3
        print(
            f"bitscore speedup gate: {achieved:.1f}x >= "
            f"{args.min_speedup:.1f}x required"
        )
    if args.min_batch_amortization > 0:
        achieved = report.speedups.get("batch_amortization_k8", 0.0)
        if achieved < args.min_batch_amortization:
            print(
                f"FAIL: batched bitscore amortizes {achieved:.2f}x at k=8, "
                f"required >= {args.min_batch_amortization:.2f}x "
                f"(run with --batch to produce the records)"
            )
            return 3
        print(
            f"batch amortization gate: {achieved:.1f}x >= "
            f"{args.min_batch_amortization:.1f}x required at k=8"
        )
    return 0


def _emit_reports(reports, args, *, extra=None, sarif_rules=None) -> None:
    """Serialize reports per ``--format`` and write to ``--out`` or stdout.

    The one serializer stack (text/json/sarif over the shared Finding
    model) serves both ``lint`` and ``check`` — SARIF is what GitHub code
    scanning ingests.
    """
    from repro.lint import render_json, render_sarif, render_text

    if args.format == "json":
        text = render_json(reports, extra=extra)
    elif args.format == "sarif":
        text = render_sarif(reports, rules=sarif_rules)
    else:
        text = render_text(reports)
    _write_or_print(text, args.out)


def _write_or_print(text: str, out: Optional[str]) -> None:
    if out:
        import pathlib

        path = pathlib.Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n")
        print(f"wrote {path}")
    else:
        print(text)


def cmd_lint(args) -> int:
    from repro.core.encoding import encode_query
    from repro.core.instr_lint import lint_query
    from repro.rtl.lint import demo_designs, lint_netlist
    from repro.rtl.timing import analyze
    from repro.seq.sequence import ProteinSequence

    ignore = [r for spec in args.ignore for r in spec.split(",") if r]
    reports = []
    resources = {}
    timing = {}
    for name, netlist in demo_designs():
        reports.append(lint_netlist(netlist, ignore=ignore, symbolic=args.symbolic))
        resources[name] = netlist.stats()
        timing[name] = analyze(
            netlist, exclude_false_paths=args.symbolic
        ).to_dict()
    if args.query or args.query_file:
        queries = _load_queries(args)
    else:
        # Default: the full amino-acid alphabet exercises every opcode.
        queries = [ProteinSequence("ACDEFGHIKLMNPQRSTVWY", name="alphabet")]
    for query in queries:
        reports.append(lint_query(encode_query(query), ignore=ignore))

    _emit_reports(
        reports, args, extra={"resources": resources, "timing": timing}
    )

    failed = any(not r.ok for r in reports)
    if args.strict:
        failed = failed or any(r.warnings for r in reports)
    return 1 if failed else 0


def cmd_check(args) -> int:
    """Static analysis (RC/OB/KC rules) over the repo's own source.

    Same exit-code contract as ``lint``: 0 clean, 1 findings (errors, or
    warnings under ``--strict``), 2 usage error.  ``--ignore`` accepts
    exact ids, same-family ranges (``RC001-RC004``) and globs (``KC00*``)
    — the same selector grammar line pragmas use.
    """
    from repro.lint import rule_pattern_matches
    from repro.statics import STATIC_RULES, rule_catalogue, run_statics

    ignore = [r for spec in args.ignore for r in spec.split(",") if r]
    known_ids = STATIC_RULES.ids()
    for pattern in ignore:
        if not any(rule_pattern_matches(pattern, rid) for rid in known_ids):
            print(
                f"check: --ignore pattern {pattern!r} matches no known rule",
                file=sys.stderr,
            )
    try:
        reports = run_statics(args.root, ignore=ignore)
    except OSError as error:
        print(f"check: cannot analyze {args.root}: {error}", file=sys.stderr)
        return 2
    if not reports:
        print(f"check: no Python modules under {args.root}", file=sys.stderr)
        return 2

    catalogue = rule_catalogue()
    _emit_reports(reports, args, extra={"rules": catalogue}, sarif_rules=catalogue)

    failed = any(not r.ok for r in reports)
    if args.strict:
        failed = failed or any(r.warnings for r in reports)
    return 1 if failed else 0


def _prove_popcounter(width: int, style: str):
    from repro.rtl.netlist import Netlist
    from repro.rtl.popcount import add_pop36, add_tree_adder_popcount

    netlist = Netlist(f"pc_{style}_{width}")
    bits = netlist.add_input_bus("bits", width)
    if style == "fabp":
        out = add_pop36(netlist, bits)[: max(1, width.bit_length())]
    else:
        out = add_tree_adder_popcount(netlist, bits)
    netlist.set_output_bus("score", out)
    return netlist


def _prove_self_test() -> Dict[str, object]:
    """Refute two seeded single-bit mutations; both must yield witnesses."""
    import dataclasses

    from repro.core.absint import check_comparator_netlist
    from repro.rtl.comparator import build_instance_comparator
    from repro.rtl.equivalence import check_equivalence

    # One flipped INIT bit in element 1's comparison LUT.
    mutated = build_instance_comparator(3)
    lut = mutated.luts[2]
    mutated.luts[2] = dataclasses.replace(lut, init=lut.init ^ (1 << 7))
    divergences = check_comparator_netlist(mutated, 3)
    comparator_refuted = len(divergences) == 1 and divergences[0].element == 1

    # One flipped INIT bit in the first popcount LUT of an 18-bit block.
    broken = _prove_popcounter(18, "fabp")
    lut = broken.luts[0]
    broken.luts[0] = dataclasses.replace(lut, init=lut.init ^ 1)
    result = check_equivalence(_prove_popcounter(18, "tree"), broken, mode="symbolic")
    popcount_refuted = result.proven and not result.equivalent

    return {
        "ok": comparator_refuted and popcount_refuted,
        "comparator_mutation": {
            "refuted": comparator_refuted,
            "counterexamples": [d.to_dict() for d in divergences],
        },
        "popcount_mutation": {
            "refuted": popcount_refuted,
            "result": result.to_dict(),
        },
    }


def _cmd_prove_kernel(args) -> int:
    """``fabp-repro prove kernel``: lane budgets + dtype envelopes as one artifact."""
    import json

    from repro.statics import prove_kernels

    payload = prove_kernels(self_test=args.self_test)
    lines: List[str] = []

    budget = payload["lane_budget"]
    status = "exact" if budget["exact"] else ("bound" if budget["proven"] else "FAILED")
    lines.append(
        f"lane budget: popcount({payload['max_query_elements']}) needs "
        f"{budget['needed_bits']} bits of the {budget['out_bits']}-bit count "
        f"word [{status}] — {'fits' if budget['fits'] else 'DOES NOT FIT'}"
    )
    flow = payload["dtype_flow"]
    for name, bits in sorted(payload["accumulator_value_bits"].items()):
        report = flow[name]
        if not report["analyzed"]:
            verdict = "NOT ANALYZED"
        elif report["clean"]:
            returns = ", ".join(report["returns"]) or "—"
            verdict = f"dtype flow clean (returns {returns})"
        else:
            verdict = f"{len(report['events'])} dtype-flow event(s)"
        lines.append(f"engine {name}: {bits} accumulator value bits; {verdict}")
        for event in report["events"]:
            lines.append(f"  {event['kind']} at line {event['line']}: {event['message']}")
    if args.self_test:
        self_test = payload["self_test"]
        lines.append(
            "self-test: seeded overflow + undersized budget "
            + ("refuted" if self_test["ok"] else "NOT refuted")
        )
    ok = bool(payload["ok"])
    lines.append(f"verdict: {'kernel contracts hold' if ok else 'REFUTED'}")

    text = json.dumps(payload, indent=2) if args.format == "json" else "\n".join(lines)
    _write_or_print(text, args.out)
    if args.out and args.format != "json":
        print("\n".join(lines))
    return 0 if ok else 1


def cmd_prove(args) -> int:
    if args.target == "kernel":
        return _cmd_prove_kernel(args)

    import json

    from repro.core.absint import verify_all_amino_acids
    from repro.rtl.equivalence import check_equivalence
    from repro.rtl.popcount import build_popcounter
    from repro.rtl.ranges import prove_count_range

    payload: Dict[str, object] = {}
    lines: List[str] = []
    ok = True

    # 1. Cross-layer: every amino acid's generated comparator == the §III-B
    #    reference semantics, exact over all 2^11 combinations per element.
    reports = verify_all_amino_acids()
    payload["comparators"] = {aa: r.to_dict() for aa, r in reports.items()}
    failed = sorted(aa for aa, report in reports.items() if not report.ok)
    ok = ok and not failed
    if failed:
        lines.append(f"comparators: FAILED for {', '.join(failed)}")
        for aa in failed:
            for divergence in reports[aa].divergences:
                lines.append(f"  {aa}: {divergence.describe()}")
            for mismatch in reports[aa].codon_mismatches:
                lines.append(f"  {aa}: {mismatch}")
    else:
        lines.append(
            f"comparators: {len(reports)} amino acids verified against the "
            "reference semantics (symbolic, no vectors)"
        )

    # 2. Word-level score-range proofs at the Table I design points.
    ranges: List[Dict[str, object]] = []
    for width in args.widths:
        proof = prove_count_range(build_popcounter(width, style="fabp").netlist)
        ranges.append(proof.to_dict())
        ok = ok and proof.width_ok
        status = "exact" if proof.exact else ("bound" if proof.proven else "FAILED")
        lines.append(
            f"range: fabp_{width} score in [{proof.min_value}, "
            f"{proof.max_value}] fits {proof.out_width} bits [{status}]"
            + ("" if proof.width_ok else f" — {proof.reason}")
        )
    payload["ranges"] = ranges

    # 3. Symbolic block equivalence: hand-optimized Pop36 compressor vs the
    #    naive tree adder, proven per output cone at a tractable width.
    result = check_equivalence(
        _prove_popcounter(args.equivalence_width, "fabp"),
        _prove_popcounter(args.equivalence_width, "tree"),
        mode="symbolic",
    )
    payload["equivalence"] = result.to_dict()
    ok = ok and result.equivalent
    lines.append(
        f"equivalence: fabp vs tree popcount at {args.equivalence_width} bits "
        + ("proven equivalent (symbolic)" if result else f"REFUTED: {result.counterexample}")
    )

    # 4. Optional negative control: seeded mutations must be refuted.
    if args.self_test:
        self_test = _prove_self_test()
        payload["self_test"] = self_test
        ok = ok and bool(self_test["ok"])
        lines.append(
            "self-test: seeded single-bit mutations "
            + ("refuted with counterexamples" if self_test["ok"] else "NOT refuted")
        )

    payload["ok"] = ok
    lines.append(f"verdict: {'all proofs hold' if ok else 'REFUTED'}")

    text = json.dumps(payload, indent=2) if args.format == "json" else "\n".join(lines)
    _write_or_print(text, args.out)
    if args.out and args.format != "json":
        print("\n".join(lines))
    return 0 if ok else 1


def cmd_obs_summarize(args) -> int:
    """Render the stage breakdown of an observability artifact."""
    import json

    from repro import obs

    try:
        kind, payload = obs.load_artifact(args.artifact)
    except (OSError, ValueError) as exc:
        print(f"fatal: {exc}", file=sys.stderr)
        return 1
    if args.format == "json":
        if kind == "scan-report" and "queries" not in payload:
            payload = obs.normalize_report_dict(payload)
        print(json.dumps({"kind": kind, "artifact": payload}, indent=2))
        return 0
    print(f"{args.artifact}: {kind} artifact")
    print()
    print(obs.summarize(args.artifact, kind))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FabP reproduction command-line interface"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_query_args(p):
        p.add_argument("--query", nargs="*", help="inline protein sequence(s)")
        p.add_argument("--query-file", help="protein FASTA file")

    def add_obs_args(p):
        p.add_argument("--metrics-json", metavar="PATH",
                       help="enable observability and write the metrics "
                       "registry here as JSON")
        p.add_argument("--trace-json", metavar="PATH",
                       help="enable observability and write the span "
                       "timeline here as Chrome trace JSON "
                       "(about:tracing / Perfetto)")

    p = sub.add_parser("encode", help="back-translate and encode queries")
    add_query_args(p)
    p.add_argument("--bits", action="store_true", help="print raw bit strings")
    p.set_defaults(func=cmd_encode)

    p = sub.add_parser("search", help="search queries against a FASTA database")
    add_query_args(p)
    p.add_argument("--database", required=True, help="nucleotide FASTA (.gz ok)")
    p.add_argument("--min-identity", type=float, default=0.9)
    p.add_argument("--max-hits", type=int, default=20)
    p.add_argument("--both-strands", action="store_true",
                   help="also search the reverse complement")
    p.add_argument("--rescore", action="store_true",
                   help="verify hits with gapped SW and rank by E-value")
    p.add_argument("--max-evalue", type=float, default=1e-3)
    p.add_argument("--device", choices=sorted(DEVICES), default="kintex7")
    p.set_defaults(func=cmd_search)

    p = sub.add_parser(
        "scan",
        help="fault-tolerant software scan of a FASTA database "
        "(supervised runtime; exit 0 clean, 3 degraded, 4 dead shards, "
        "1 fatal)",
    )
    add_query_args(p)
    p.add_argument("--database", required=True, help="nucleotide FASTA (.gz ok)")
    p.add_argument("--min-identity", type=float, default=0.9)
    p.add_argument("--threshold", type=int, default=None,
                   help="absolute score threshold (overrides --min-identity)")
    p.add_argument("--engine", choices=SCAN_ENGINES, default=None,
                   help="scoring engine (default: bitscore, or "
                   "bitscore_batch under --session)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes (default: one per CPU; 1 = serial)")
    p.add_argument("--session", action="store_true",
                   help="scan all queries through one warm ScanSession: the "
                   "database image and worker pool are set up once, queries "
                   "are grouped into shared passes, and each database "
                   "window is swept once per pass")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="partition the database into N supervised shard "
                   "runtimes (one warm session each) with per-shard health "
                   "budgets, elastic checkpoint resume, hedging, and "
                   "partial-result degraded mode (exit 4 on dead shards)")
    p.add_argument("--shard-faults", metavar="SPEC",
                   help="deterministic shard fault plan, e.g. "
                   "'shard:0:crash,shard:1:hang:1:always' "
                   "(shard:IDX:KIND[:CHUNK[:ATTEMPTS]]); requires --shards")
    p.add_argument("--chunk-size", type=int, default=None,
                   help="references per chunk (retry/checkpoint granule)")
    p.add_argument("--max-hits", type=int, default=10)
    p.add_argument("--retries", type=int, default=3,
                   help="extra attempts per chunk after the first failure")
    p.add_argument("--chunk-timeout", type=float, default=300.0,
                   help="per-chunk attempt timeout in seconds (0 disables)")
    p.add_argument("--backoff", type=float, default=0.05,
                   help="base retry backoff in seconds (doubles per failure)")
    p.add_argument("--hedge-after", type=float, default=None,
                   help="re-dispatch straggler chunks older than this many "
                   "seconds once the queue drains")
    p.add_argument("--max-respawns", type=int, default=8,
                   help="worker respawns tolerated before the pool is "
                   "declared unhealthy")
    p.add_argument("--no-degrade", action="store_true",
                   help="raise instead of falling back to the serial engine "
                   "when the pool is unhealthy or a chunk exhausts retries")
    p.add_argument("--seed", type=int, default=0,
                   help="seed of the backoff-jitter RNG")
    p.add_argument("--checkpoint", metavar="DIR",
                   help="persist completed chunks here (manifest + one .npz "
                   "per chunk) so a killed scan can --resume")
    p.add_argument("--resume", action="store_true",
                   help="skip chunks already completed in --checkpoint; "
                   "refuses on a fingerprint mismatch")
    p.add_argument("--report-json", metavar="PATH",
                   help="write the machine-readable ScanReport payload here")
    p.add_argument("--on-bad-record", choices=("skip", "raise", "ignore"),
                   default="skip",
                   help="what to do with malformed/empty/duplicate FASTA "
                   "records (default: quarantine and report)")
    p.add_argument("--inject-faults", metavar="SPEC",
                   help="deterministic fault plan, e.g. '1:crash,4:hang,"
                   "7:corrupt:2' (CHUNK:KIND[:ATTEMPTS])")
    p.add_argument("--fault-rate", type=float, default=0.0,
                   help="instead of --inject-faults: fault each chunk with "
                   "this probability (seeded)")
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument("--fault-attempts", type=int, default=1,
                   help="max leading faulty attempts per chosen chunk")
    p.add_argument("--fault-hang-seconds", type=float, default=3600.0,
                   help="how long an injected hang sleeps (serial mode "
                   "hangs are not supervised)")
    add_obs_args(p)
    p.set_defaults(func=cmd_scan)

    p = sub.add_parser(
        "serve",
        help="front-door scan daemon: HTTP job admission over one warm "
        "runtime, batched passes, LRU result cache, /metrics, graceful "
        "SIGTERM drain (exit: worst job outcome, 0/3/4, or 1 fatal)",
    )
    p.add_argument("--database", required=True, help="nucleotide FASTA (.gz ok)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: loopback only)")
    p.add_argument("--port", type=int, default=8765,
                   help="TCP port (0 = OS-assigned; see --ready-file)")
    p.add_argument("--engine", choices=SCAN_ENGINES, default=None,
                   help="scoring engine (default: bitscore_batch)")
    p.add_argument("--workers", type=int, default=None,
                   help="resident worker processes of the warm session "
                   "(default: one per CPU; 1 = serial)")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="serve from N supervised shard runtimes instead of "
                   "one session (dead shards surface as per-job exit 4)")
    p.add_argument("--max-queue", type=int, default=64,
                   help="admission queue bound; a full queue answers 503")
    p.add_argument("--max-batch", type=int, default=16,
                   help="most jobs coalesced into one scan_batch dispatch")
    p.add_argument("--cache-entries", type=int, default=256,
                   help="LRU result-cache entries (0 disables caching)")
    p.add_argument("--checkpoint", metavar="DIR",
                   help="durable per-batch checkpoints under DIR; an "
                   "interrupted drain leaves chunks an identical re-submit "
                   "resumes")
    p.add_argument("--on-bad-record", choices=("skip", "raise", "ignore"),
                   default="skip",
                   help="what to do with malformed FASTA records")
    p.add_argument("--ready-file", metavar="PATH",
                   help="write 'HOST PORT' here once listening (handshake "
                   "for tests/CI, pairs with --port 0)")
    p.add_argument("--no-obs", action="store_true",
                   help="do not enable the metrics registry (/metrics will "
                   "serve an empty exposition)")
    p.add_argument("--metrics-json", metavar="PATH",
                   help="write the final metrics registry here as JSON "
                   "after the drain")
    p.add_argument("--verbose", action="store_true",
                   help="log each HTTP request to stderr")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("generate", help="build a synthetic planted database")
    p.add_argument("--queries", type=int, default=3)
    p.add_argument("--length", type=int, default=40)
    p.add_argument("--references", type=int, default=2)
    p.add_argument("--reference-length", type=int, default=20_000)
    p.add_argument("--substitution-rate", type=float, default=0.0)
    p.add_argument("--indels", type=int, default=0)
    p.add_argument("--codon-usage", choices=("uniform", "paper", "first"),
                   default="paper")
    p.add_argument("--seed", type=int, default=2021)
    p.add_argument("--out-db", default="synthetic_db.fasta")
    p.add_argument("--out-queries", default="synthetic_queries.fasta")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("table1", help="print the Table I resource model")
    p.add_argument("--device", choices=sorted(DEVICES), default="kintex7")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("fig6", help="print the Fig. 6 sweep")
    p.add_argument("--device", choices=sorted(DEVICES), default="kintex7")
    p.set_defaults(func=cmd_fig6)

    p = sub.add_parser("crossover", help="print the SEC IV-B crossover sweep")
    p.add_argument("--device", choices=sorted(DEVICES), default="kintex7")
    p.set_defaults(func=cmd_crossover)

    p = sub.add_parser("export-rtl", help="export query datapaths as Verilog")
    add_query_args(p)
    p.add_argument("--out", default="rtl_export")
    p.add_argument("--instances", type=int, default=2)
    p.add_argument("--threshold", type=int, default=8)
    p.add_argument("--loadable", action="store_true",
                   help="build the FF query memory instead of constants")
    p.set_defaults(func=cmd_export_rtl)

    p = sub.add_parser("compose", help="pattern composition table / query info")
    add_query_args(p)
    p.set_defaults(func=cmd_compose)

    p = sub.add_parser("plan", help="deployment planning: time/energy per platform")
    p.add_argument("--database-nt", type=int, default=4_000_000_000,
                   help="database size in nucleotides")
    p.add_argument("--queries", nargs="+", default=["50x60", "150x30", "250x10"],
                   metavar="LENxCOUNT", help="query mix, e.g. 50x60 250x10")
    p.add_argument("--boards", type=int, default=1)
    p.add_argument("--no-share", action="store_true",
                   help="disable multi-query fabric sharing")
    p.add_argument("--device", choices=sorted(DEVICES), default="kintex7")
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser(
        "bench",
        help="score-engine benchmark: naive vs vectorized vs bitscore vs "
        "the chunked multi-process database scan",
    )
    p.add_argument("--quick", action="store_true",
                   help="CI-sized workload (seconds, not minutes)")
    p.add_argument("--residues", type=int, default=250,
                   help="query residues (L_q = 3x this, elements)")
    p.add_argument("--reference-length", type=int, default=1_000_000,
                   help="single-reference workload length (nt)")
    p.add_argument("--scan-references", type=int, default=8)
    p.add_argument("--scan-reference-length", type=int, default=250_000)
    p.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4],
                   help="worker counts for the parallel-scan sweep")
    p.add_argument("--repeats", type=int, default=3,
                   help="best-of repeats per vectorized measurement")
    p.add_argument("--seed", type=int, default=2021)
    p.add_argument("--out", default="BENCH_scoring.json",
                   help="artifact path ('' to skip writing)")
    p.add_argument("--min-speedup", type=float, default=0.0,
                   help="exit 3 (completed-with-degradation) unless bitscore "
                   ">= this multiple of the naive path (CI regression gate)")
    p.add_argument("--batch", action="store_true",
                   help="also run the batched-kernel and warm-session "
                   "benchmark (k sequential sweeps vs one shared sweep, "
                   "cold vs warm ScanSession); records merge into the "
                   "same artifact")
    p.add_argument("--min-batch-amortization", type=float, default=0.0,
                   help="exit 3 unless the shared sweep at k=8 achieves >= "
                   "this multiple of k sequential sweeps (implies --batch "
                   "records must be present)")
    add_obs_args(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "obs",
        help="observability utilities (see docs/observability.md)",
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    p = obs_sub.add_parser(
        "summarize",
        help="stage/engine breakdown of a metrics, trace or scan-report "
        "artifact (kind auto-detected)",
    )
    p.add_argument("artifact", help="path to the JSON artifact")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.set_defaults(func=cmd_obs_summarize)

    p = sub.add_parser(
        "lint", help="static lint of generated netlists and instruction streams"
    )
    add_query_args(p)
    p.add_argument("--format", choices=("text", "json", "sarif"), default="text")
    p.add_argument("--out", help="write the report to a file instead of stdout")
    p.add_argument("--ignore", action="append", default=[], metavar="RULES",
                   help="comma-separated rule ids to suppress (repeatable)")
    p.add_argument("--strict", action="store_true",
                   help="treat warnings as failures (exit codes: 0 clean, "
                   "1 findings, 2 usage error)")
    p.add_argument("--symbolic", action="store_true",
                   help="append the SA-family symbolic proofs (comparator "
                   "divergence, score-range, false paths) and exclude "
                   "proven false paths from the timing payload")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "check",
        help="static analysis of the repo's own source (rules RC001-RC008, "
        "OB001-OB004, KC001-KC008)",
    )
    p.add_argument("--root", default=None,
                   help="package directory to analyze (default: the "
                   "installed repro package)")
    p.add_argument("--format", choices=("text", "json", "sarif"), default="text")
    p.add_argument("--out", help="write the report to a file instead of stdout")
    p.add_argument("--ignore", action="append", default=[], metavar="RULES",
                   help="comma-separated rule ids, ranges (RC001-RC004) or "
                   "globs (KC00*) to suppress (repeatable); line pragmas "
                   "use the same selector grammar and are applied after "
                   "CLI ignores")
    p.add_argument("--strict", action="store_true",
                   help="treat warnings as failures (exit codes: 0 clean, "
                   "1 findings, 2 usage error)")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "prove",
        help="symbolic verification: comparator semantics per amino acid, "
        "score-range bounds at the Table I design points, block equivalence; "
        "'prove kernel' proves engine lane budgets and dtype envelopes",
    )
    p.add_argument("target", nargs="?", choices=("rtl", "kernel"), default="rtl",
                   help="what to prove: 'rtl' (default) runs the symbolic "
                   "netlist proofs; 'kernel' emits the engine-contract "
                   "proof artifact (lane budget at 750 elements, dtype-flow "
                   "verdict per scoring engine)")
    p.add_argument("--widths", type=int, nargs="+",
                   default=[150, 300, 450, 600, 750],
                   help="popcount widths (elements) to range-prove")
    p.add_argument("--equivalence-width", type=int, default=18,
                   help="input width for the symbolic fabp-vs-tree "
                   "equivalence proof (per-output cones must stay within "
                   "the truth-table limit)")
    p.add_argument("--self-test", action="store_true",
                   help="also refute seeded single-bit LUT mutations "
                   "(negative control: each must produce a counterexample)")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--out", help="write the report/artifact to a file")
    p.set_defaults(func=cmd_prove)

    p = sub.add_parser("stats", help="null-score statistics for queries")
    add_query_args(p)
    p.add_argument("--reference-length", type=int, default=4_000_000_000)
    p.add_argument("--target-fpr", type=float, default=1.0,
                   help="acceptable expected random hits over the reference")
    p.set_defaults(func=cmd_stats)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    import os

    if os.environ.get("FABP_SHMSAN") == "1":
        # Arm the shared-memory sanitizer for this process (and, with
        # FABP_SHMSAN_LOG, its event trail) — how the kill-mid-chunk
        # integration test audits a dying scan's /dev/shm hygiene.
        from repro.statics import shmsan

        if not shmsan.is_installed():
            shmsan.install()
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
