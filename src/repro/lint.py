"""Static-analysis framework shared by the netlist and instruction linters.

The paper's headline hardware claims are *structural* — exactly two LUT6s
per query element (§III-D), a Pop36-based pop-counter whose score fits 10
bits at 750 elements (Table I), and 6-bit instructions whose config bits
only reference earlier nucleotides of the same codon (§III-B).  The passes
in :mod:`repro.rtl.lint` and :mod:`repro.core.instr_lint` prove or refute
those invariants on every generated design without running a single
simulation vector; this module provides the machinery they share:

* :class:`Severity` / :class:`Finding` — one typed record per defect, with
  a stable rule id, a location, a message and an optional suggested fix;
* :class:`Rule` — a registered pass: metadata (severity, the paper claim it
  guards) plus the checking callable;
* :class:`LintReport` — the findings of one subject, with severity rollups;
* :func:`render_text` / :func:`render_json` — the two reporter backends
  behind ``fabp-repro lint --format {text,json}``.

Suppression: every entry point takes ``ignore`` (an iterable of rule ids);
findings from ignored rules are dropped before the report is built.  See
``docs/lint_rules.md`` for the rule catalogue.
"""

from __future__ import annotations

import enum
import fnmatch
import json
import re
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)


class Severity(enum.IntEnum):
    """Finding severity, ordered so comparisons read naturally."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One defect located by a lint rule.

    ``data`` carries an optional machine-readable payload (a proof record,
    a minimized counterexample) for the JSON reporter; it is excluded from
    equality/hashing so findings stay usable in sets.
    """

    rule_id: str
    severity: Severity
    location: str
    message: str
    suggested_fix: Optional[str] = None
    data: Optional[Dict[str, object]] = field(default=None, compare=False)

    def __str__(self) -> str:
        text = f"{self.rule_id} [{self.severity}] {self.location}: {self.message}"
        if self.suggested_fix:
            text += f"  (fix: {self.suggested_fix})"
        return text

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "location": self.location,
            "message": self.message,
            "suggested_fix": self.suggested_fix,
        }
        if self.data is not None:
            record["data"] = dict(self.data)
        return record


#: A rule's checking callable: subject plus keyword context, yielding findings.
CheckFunction = Callable[..., Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """A registered lint pass.

    ``guards`` names the paper claim (or engineering invariant) the rule
    protects — surfaced in reports and in ``docs/lint_rules.md`` so a
    finding can always be traced back to why it matters.
    """

    rule_id: str
    name: str
    severity: Severity
    guards: str
    check: CheckFunction

    def finding(
        self,
        location: str,
        message: str,
        *,
        suggested_fix: Optional[str] = None,
        severity: Optional[Severity] = None,
        data: Optional[Dict[str, object]] = None,
    ) -> Finding:
        """Build a finding attributed to this rule (severity overridable)."""
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity if severity is None else severity,
            location=location,
            message=message,
            suggested_fix=suggested_fix,
            data=data,
        )


class RuleRegistry:
    """An ordered, id-unique collection of rules (one per lint domain)."""

    def __init__(self, domain: str) -> None:
        self.domain = domain
        self._rules: Dict[str, Rule] = {}

    def register(
        self, rule_id: str, name: str, severity: Severity, guards: str
    ) -> Callable[[CheckFunction], CheckFunction]:
        """Decorator: register ``check`` under ``rule_id``."""

        def decorate(check: CheckFunction) -> CheckFunction:
            if rule_id in self._rules:
                raise ValueError(f"duplicate rule id {rule_id!r} in {self.domain}")
            self._rules[rule_id] = Rule(rule_id, name, severity, guards, check)
            return check

        return decorate

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules.values())

    def __len__(self) -> int:
        return len(self._rules)

    def get(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError(
                f"no rule {rule_id!r} in {self.domain} "
                f"(known: {', '.join(sorted(self._rules))})"
            ) from None

    def ids(self) -> Tuple[str, ...]:
        return tuple(self._rules)

    def run(
        self,
        subject_name: str,
        *,
        ignore: Iterable[str] = (),
        rules: Optional[Sequence[str]] = None,
        **context: object,
    ) -> "LintReport":
        """Run every (non-ignored) rule and collect findings into a report."""
        ignored = _normalize_ignore(ignore)
        selected = [self.get(r) for r in rules] if rules is not None else list(self)
        findings: List[Finding] = []
        for rule in selected:
            if any(rule_pattern_matches(p, rule.rule_id) for p in ignored):
                continue
            findings.extend(rule.check(rule=rule, **context))
        return LintReport(subject=subject_name, findings=tuple(findings))


def _normalize_ignore(ignore: Iterable[str]) -> FrozenSet[str]:
    if isinstance(ignore, str):
        ignore = [ignore]
    return frozenset(r.strip() for r in ignore if r and r.strip())


#: A concrete rule id: two-letter family, three-digit number.
_RULE_ID_RE = re.compile(r"[A-Z]{2}\d{3}")


def rule_pattern_matches(pattern: str, rule_id: str) -> bool:
    """True when ``pattern`` selects ``rule_id``.

    Three pattern forms, shared by ``--ignore`` flags and suppression
    pragmas so both spell selections identically:

    * an exact id — ``"RC001"``;
    * a glob — ``"KC00*"`` (``fnmatch`` over the id);
    * an inclusive range within one family — ``"RC001-RC004"``.

    A range with mismatched family prefixes (``"RC001-OB004"``) selects
    nothing: silently widening across families would hide typos.
    """
    pattern = pattern.strip()
    if not pattern:
        return False
    if "*" in pattern or "?" in pattern:
        return fnmatch.fnmatchcase(rule_id, pattern)
    if "-" in pattern:
        lo, _, hi = pattern.partition("-")
        lo, hi = lo.strip(), hi.strip()
        if not (_RULE_ID_RE.fullmatch(lo) and _RULE_ID_RE.fullmatch(hi)):
            return False
        if lo[:2] != hi[:2] or rule_id[:2] != lo[:2]:
            return False
        return lo <= rule_id <= hi
    return pattern == rule_id


def expand_rule_patterns(
    patterns: Iterable[str], known_ids: Iterable[str]
) -> Tuple[str, ...]:
    """The concrete ids out of ``known_ids`` selected by any pattern."""
    normalized = _normalize_ignore(patterns)
    return tuple(
        rule_id
        for rule_id in known_ids
        if any(rule_pattern_matches(p, rule_id) for p in normalized)
    )


@dataclass(frozen=True)
class LintReport:
    """All findings for one linted subject (a netlist or a stream)."""

    subject: str
    findings: Tuple[Finding, ...] = field(default_factory=tuple)

    @property
    def errors(self) -> Tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity >= Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity == Severity.WARNING)

    @property
    def infos(self) -> Tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity == Severity.INFO)

    @property
    def ok(self) -> bool:
        """True when the subject carries no error-level findings."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """True when the subject carries no findings at all."""
        return not self.findings

    def count(self, severity: Severity) -> int:
        return sum(1 for f in self.findings if f.severity == severity)

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "info": len(self.infos),
            },
            "findings": [f.to_dict() for f in self.findings],
        }


def merge_reports(subject: str, reports: Iterable[LintReport]) -> LintReport:
    """Concatenate several reports under one subject (prefixing locations)."""
    findings: List[Finding] = []
    for report in reports:
        for finding in report.findings:
            findings.append(
                Finding(
                    rule_id=finding.rule_id,
                    severity=finding.severity,
                    location=f"{report.subject}:{finding.location}",
                    message=finding.message,
                    suggested_fix=finding.suggested_fix,
                    data=finding.data,
                )
            )
    return LintReport(subject=subject, findings=tuple(findings))


def render_text(reports: Sequence[LintReport], *, verbose: bool = True) -> str:
    """Human-readable report: one block per subject plus a summary line."""
    lines: List[str] = []
    total_by_severity = {Severity.ERROR: 0, Severity.WARNING: 0, Severity.INFO: 0}
    for report in reports:
        status = "clean" if report.clean else ("ok" if report.ok else "FAIL")
        lines.append(f"{report.subject}: {status} ({len(report.findings)} findings)")
        for finding in report.findings if verbose else report.errors:
            lines.append(f"  {finding}")
        for severity in total_by_severity:
            total_by_severity[severity] += report.count(severity)
    lines.append(
        "summary: {} subjects, {} errors, {} warnings, {} infos".format(
            len(reports),
            total_by_severity[Severity.ERROR],
            total_by_severity[Severity.WARNING],
            total_by_severity[Severity.INFO],
        )
    )
    return "\n".join(lines)


def render_json(
    reports: Sequence[LintReport],
    *,
    extra: Optional[Dict[str, object]] = None,
    indent: int = 2,
) -> str:
    """Machine-readable report (``fabp-repro lint --format json``).

    ``extra`` lets callers attach resource-budget payloads (LUT/FF counts
    per design) so the JSON dropped into ``benchmarks/out/`` doubles as a
    resource-regression artifact.
    """
    payload: Dict[str, object] = {
        "subjects": [r.to_dict() for r in reports],
        "summary": {
            "subjects": len(reports),
            "errors": sum(len(r.errors) for r in reports),
            "warnings": sum(len(r.warnings) for r in reports),
            "infos": sum(len(r.infos) for r in reports),
            "ok": all(r.ok for r in reports),
        },
    }
    if extra:
        payload.update(extra)
    return json.dumps(payload, indent=indent, sort_keys=False)


_SARIF_LEVELS: Dict[Severity, str] = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _sarif_location(location: str) -> Tuple[str, Optional[int]]:
    """Split a finding location into ``(uri, line)``.

    Locations are ``file:line`` (possibly prefixed by a merged subject,
    ``module:file:line``); a missing or non-numeric tail means no line.
    """
    head, sep, tail = location.rpartition(":")
    if sep and tail.isdigit():
        return head or location, int(tail)
    return location, None


def render_sarif(
    reports: Sequence[LintReport],
    *,
    tool_name: str = "fabp-repro",
    rules: Optional[Sequence[Dict[str, str]]] = None,
    indent: int = 2,
) -> str:
    """SARIF 2.1.0 report — the GitHub code-scanning upload format.

    One serializer over the shared :class:`Finding` model serves every
    subcommand (``lint --format sarif``, ``check --format sarif``);
    ``rules`` is optional rule metadata (``rule``/``name``/``guards``
    mappings, e.g. :func:`repro.statics.engine.rule_catalogue`) embedded
    as the driver's rule descriptors.
    """
    driver: Dict[str, object] = {
        "name": tool_name,
        "informationUri": "https://example.invalid/fabp-repro",
    }
    if rules:
        driver["rules"] = [
            {
                "id": entry["rule"],
                "shortDescription": {"text": entry.get("name", entry["rule"])},
                "fullDescription": {"text": entry.get("guards", "")},
            }
            for entry in rules
        ]
    results: List[Dict[str, object]] = []
    for report in reports:
        for finding in report.findings:
            uri, line = _sarif_location(finding.location)
            region: Dict[str, object] = {"startLine": line} if line is not None else {}
            physical: Dict[str, object] = {"artifactLocation": {"uri": uri}}
            if region:
                physical["region"] = region
            message = finding.message
            if finding.suggested_fix:
                message += f" (fix: {finding.suggested_fix})"
            results.append(
                {
                    "ruleId": finding.rule_id,
                    "level": _SARIF_LEVELS[finding.severity],
                    "message": {"text": message},
                    "locations": [{"physicalLocation": physical}],
                    "properties": {"subject": report.subject},
                }
            )
    payload: Dict[str, object] = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{"tool": {"driver": driver}, "results": results}],
    }
    return json.dumps(payload, indent=indent, sort_keys=False)
