"""Software golden model of FabP alignment (§III-C).

FabP slides the encoded query over the reference and, for each of the
``L_r - L_q + 1`` alignment positions, counts how many query elements match
(substitution-only scoring; no indels).  This module computes exactly the
scores the hardware produces, in two implementations:

* :func:`alignment_scores` — vectorized numpy, used by benches and examples;
* :func:`alignment_scores_naive` — straight-line Python, used as a
  cross-check oracle in tests (and it is the easiest version to read against
  the paper).

The LUT-level netlist model in :mod:`repro.accel` is verified against this
module on randomized inputs, so all three implementations agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.core import backtranslate as bt
from repro.core import comparator as cmp
from repro.core.encoding import EncodedQuery, encode_query
from repro.seq import packing
from repro.seq.sequence import DnaSequence, ProteinSequence, RnaSequence, as_rna

#: Anything the aligner accepts as a query: pre-encoded, protein, or letters.
QueryLike = Union[EncodedQuery, ProteinSequence, str]
#: Anything accepted as a reference: letters, sequence objects, or 2-bit codes.
ReferenceLike = Union[str, DnaSequence, RnaSequence, np.ndarray]


@dataclass(frozen=True)
class Hit:
    """One alignment position whose score cleared the threshold."""

    position: int
    score: int

    def __str__(self) -> str:
        return f"pos={self.position} score={self.score}"


@dataclass(frozen=True)
class AlignmentResult:
    """Result of aligning one encoded query against one reference."""

    query: EncodedQuery
    reference_name: str
    reference_length: int
    threshold: int
    hits: Tuple[Hit, ...]
    scores: Optional[np.ndarray] = field(default=None, compare=False)

    @property
    def max_score(self) -> int:
        """Best score over all positions (0 when the query does not fit)."""
        if self.scores is not None and self.scores.size:
            return int(self.scores.max())
        if self.hits:
            return max(h.score for h in self.hits)
        return 0

    @property
    def best_hit(self) -> Optional[Hit]:
        return max(self.hits, key=lambda h: (h.score, -h.position), default=None)

    @property
    def perfect_score(self) -> int:
        """The maximum achievable score, one per encoded element."""
        return len(self.query)

    def __str__(self) -> str:
        return (
            f"AlignmentResult({self.reference_name or '<ref>'}: "
            f"{len(self.hits)} hits >= {self.threshold}, max={self.max_score}/"
            f"{self.perfect_score})"
        )


def _coerce_query(query: QueryLike) -> EncodedQuery:
    if isinstance(query, EncodedQuery):
        return query
    return encode_query(query)


def _reference_codes(reference: ReferenceLike) -> Tuple[np.ndarray, str]:
    if isinstance(reference, np.ndarray):
        return np.asarray(reference, dtype=np.uint8), ""
    rna = as_rna(reference)
    return packing.codes_from_text(rna.letters), rna.name


def resolve_threshold(
    query: EncodedQuery,
    threshold: Optional[int] = None,
    min_identity: Optional[float] = None,
) -> int:
    """Turn a user threshold spec into an absolute score.

    Exactly one of ``threshold`` (absolute element count) or ``min_identity``
    (fraction of the perfect score, 0..1) may be given; with neither, the
    default asks for 90 % identity, a sensible "high similarity" cut for the
    paper's use case.
    """
    if threshold is not None and min_identity is not None:
        raise ValueError("give either threshold or min_identity, not both")
    perfect = len(query)
    if threshold is not None:
        if not 0 <= threshold <= perfect:
            raise ValueError(
                f"threshold {threshold} outside [0, {perfect}] for this query"
            )
        return int(threshold)
    identity = 0.9 if min_identity is None else min_identity
    if not 0.0 <= identity <= 1.0:
        raise ValueError("min_identity must be within [0, 1]")
    return int(np.ceil(identity * perfect))


def _x_bit_arrays(ref_codes: np.ndarray) -> np.ndarray:
    """Per-position X-source bit arrays, indexed by config code.

    Returns an array of shape ``(4, L_r)``: row ``config`` holds the X bit at
    every reference position for that source.  Row 0 (CONFIG_SELF) is a
    placeholder (the aligner substitutes the instruction's own b3).  Missing
    look-back positions read as nucleotide ``A`` (code 0), matching hardware.
    """
    length = ref_codes.size
    prev1 = np.zeros(length, dtype=np.uint8)
    prev2 = np.zeros(length, dtype=np.uint8)
    if length > 1:
        prev1[1:] = ref_codes[:-1]
    if length > 2:
        prev2[2:] = ref_codes[:-2]
    rows = np.zeros((4, length), dtype=np.uint8)
    rows[1] = (prev1 >> 1) & 1  # CONFIG_PREV1_HI
    rows[2] = prev2 & 1  # CONFIG_PREV2_LO
    rows[3] = (prev2 >> 1) & 1  # CONFIG_PREV2_HI
    return rows


def alignment_scores(query: QueryLike, reference: ReferenceLike) -> np.ndarray:
    """Scores of all ``L_r - L_q + 1`` alignment positions (vectorized).

    ``query`` is an :class:`EncodedQuery`, protein sequence or string;
    ``reference`` is an RNA/DNA sequence, string, or a 2-bit code array.
    Returns an empty array when the query is longer than the reference.
    """
    encoded = _coerce_query(query)
    ref_codes, _ = _reference_codes(reference)
    num_elements = len(encoded)
    num_positions = ref_codes.size - num_elements + 1
    if num_positions <= 0:
        return np.zeros(0, dtype=np.int32)
    instructions = encoded.as_array()
    tables, configs = cmp.instruction_tables(instructions)
    x_rows = _x_bit_arrays(ref_codes)
    scores = np.zeros(num_positions, dtype=np.int32)
    for i in range(num_elements):
        window = ref_codes[i : i + num_positions]
        config = int(configs[i])
        if config == 0:
            x = (instructions[i] >> 3) & 1
            scores += tables[i, x, window]
        else:
            x_bits = x_rows[config, i : i + num_positions]
            scores += tables[i, x_bits, window]
    return scores


def alignment_scores_naive(query: QueryLike, reference: ReferenceLike) -> np.ndarray:
    """Reference implementation with explicit loops (test oracle)."""
    encoded = _coerce_query(query)
    ref_codes, _ = _reference_codes(reference)
    instructions = list(encoded.instructions)
    num_positions = ref_codes.size - len(instructions) + 1
    if num_positions <= 0:
        return np.zeros(0, dtype=np.int32)
    scores = np.zeros(num_positions, dtype=np.int32)
    codes = [int(c) for c in ref_codes]
    for k in range(num_positions):
        total = 0
        for i, instruction in enumerate(instructions):
            pos = k + i
            prev1 = codes[pos - 1] if pos >= 1 else 0
            prev2 = codes[pos - 2] if pos >= 2 else 0
            if cmp.instruction_matches(instruction, codes[pos], prev1, prev2):
                total += 1
        scores[k] = total
    return scores


def alignment_scores_extended(
    protein: Union[ProteinSequence, str], reference: ReferenceLike
) -> np.ndarray:
    """Extended-mode scores: per residue, the best of *all* its patterns.

    This removes the paper's Serine approximation (see DESIGN.md).  It is a
    software-only extension: per residue the score contribution is the
    maximum over that residue's patterns, so six-codon amino acids get full
    sensitivity.  Hardware cost of this mode is estimated in
    :mod:`repro.accel.resources`.
    """
    ref_codes, _ = _reference_codes(reference)
    pattern_groups = bt.back_translate_extended(protein)
    num_elements = 3 * len(pattern_groups)
    num_positions = ref_codes.size - num_elements + 1
    if num_positions <= 0:
        return np.zeros(0, dtype=np.int32)
    x_rows = _x_bit_arrays(ref_codes)
    scores = np.zeros(num_positions, dtype=np.int32)
    from repro.core.encoding import encode_pattern

    for residue_index, patterns in enumerate(pattern_groups):
        best = np.zeros(num_positions, dtype=np.int32)
        for pattern in patterns:
            instrs = np.asarray(encode_pattern(pattern), dtype=np.uint8)
            tables, configs = cmp.instruction_tables(instrs)
            partial = np.zeros(num_positions, dtype=np.int32)
            for j in range(3):
                i = 3 * residue_index + j
                window = ref_codes[i : i + num_positions]
                config = int(configs[j])
                if config == 0:
                    x = (int(instrs[j]) >> 3) & 1
                    partial += tables[j, x, window]
                else:
                    x_bits = x_rows[config, i : i + num_positions]
                    partial += tables[j, x_bits, window]
            np.maximum(best, partial, out=best)
        scores += best
    return scores


def align(
    query: QueryLike,
    reference: ReferenceLike,
    *,
    threshold: Optional[int] = None,
    min_identity: Optional[float] = None,
    keep_scores: bool = False,
) -> AlignmentResult:
    """Align a protein query against one reference; return thresholded hits.

    This is the library's primary one-call API — back-translation, encoding,
    scoring and thresholding in one step, mirroring the accelerator's
    end-to-end behaviour (the hardware writes back exactly the positions
    whose score clears the threshold).
    """
    encoded = _coerce_query(query)
    ref_codes, ref_name = _reference_codes(reference)
    resolved = resolve_threshold(encoded, threshold, min_identity)
    scores = alignment_scores(encoded, ref_codes)
    positions = np.nonzero(scores >= resolved)[0]
    hits = tuple(Hit(int(p), int(scores[p])) for p in positions)
    return AlignmentResult(
        query=encoded,
        reference_name=ref_name,
        reference_length=int(ref_codes.size),
        threshold=resolved,
        hits=hits,
        scores=scores if keep_scores else None,
    )


def search_database(
    query: QueryLike,
    references: Iterable[ReferenceLike],
    *,
    threshold: Optional[int] = None,
    min_identity: Optional[float] = None,
) -> List[AlignmentResult]:
    """Align one query against many references; results in input order."""
    encoded = _coerce_query(query)
    return [
        align(encoded, reference, threshold=threshold, min_identity=min_identity)
        for reference in references
    ]
