"""Software golden model of FabP alignment (§III-C).

FabP slides the encoded query over the reference and, for each of the
``L_r - L_q + 1`` alignment positions, counts how many query elements match
(substitution-only scoring; no indels).  This module computes exactly the
scores the hardware produces, through several interchangeable engines:

* ``engine="bitscore"`` (default) — the bit-parallel SWAR engine of
  :mod:`repro.core.bitscore`: packed match bitplanes summed by a carry-save
  vertical-counter popcount, the software analog of the hardware's Pop36
  tree, with a strided-diagonal fallback for short references;
* ``engine="vectorized"`` — per-element numpy table gathers (the previous
  default, kept as an independent mid-speed implementation);
* ``engine="naive"`` — straight-line Python, used as a cross-check oracle
  in tests (and the easiest version to read against the paper).

All engines are bit-identical (enforced by the property-test suite); the
LUT-level netlist model in :mod:`repro.accel` is verified against this
module on randomized inputs, so every representation agrees.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.core import backtranslate as bt
from repro.core import bitscore
from repro.core import comparator as cmp
from repro.core.contracts import engine_contract
from repro.core.encoding import EncodedQuery, encode_pattern, encode_query
from repro.obs import profile as _obs_profile
from repro.obs import state as _obs_state
from repro.seq import packing
from repro.seq.sequence import (
    DnaSequence,
    ProteinSequence,
    RnaSequence,
    as_protein,
    as_rna,
)

#: Anything the aligner accepts as a query: pre-encoded, protein, or letters.
QueryLike = Union[EncodedQuery, ProteinSequence, str]
#: Anything accepted as a reference: letters, sequence objects, or 2-bit codes.
ReferenceLike = Union[str, DnaSequence, RnaSequence, np.ndarray]


@dataclass(frozen=True)
class Hit:
    """One alignment position whose score cleared the threshold."""

    position: int
    score: int

    def __str__(self) -> str:
        return f"pos={self.position} score={self.score}"


@dataclass(frozen=True)
class AlignmentResult:
    """Result of aligning one encoded query against one reference."""

    query: EncodedQuery
    reference_name: str
    reference_length: int
    threshold: int
    hits: Tuple[Hit, ...]
    scores: Optional[np.ndarray] = field(default=None, compare=False)

    @property
    def max_score(self) -> int:
        """Best score over all positions (0 when the query does not fit)."""
        if self.scores is not None and self.scores.size:
            return int(self.scores.max())
        if self.hits:
            return max(h.score for h in self.hits)
        return 0

    @property
    def best_hit(self) -> Optional[Hit]:
        return max(self.hits, key=lambda h: (h.score, -h.position), default=None)

    @property
    def perfect_score(self) -> int:
        """The maximum achievable score, one per encoded element."""
        return len(self.query)

    def __str__(self) -> str:
        return (
            f"AlignmentResult({self.reference_name or '<ref>'}: "
            f"{len(self.hits)} hits >= {self.threshold}, max={self.max_score}/"
            f"{self.perfect_score})"
        )


def _coerce_query(query: QueryLike) -> EncodedQuery:
    if isinstance(query, EncodedQuery):
        return query
    return encode_query(query)


def _reference_codes(reference: ReferenceLike) -> Tuple[np.ndarray, str]:
    if isinstance(reference, np.ndarray):
        return np.asarray(reference, dtype=np.uint8), ""
    rna = as_rna(reference)
    return packing.codes_from_text(rna.letters), rna.name


def resolve_threshold(
    query: EncodedQuery,
    threshold: Optional[int] = None,
    min_identity: Optional[float] = None,
) -> int:
    """Turn a user threshold spec into an absolute score.

    Exactly one of ``threshold`` (absolute element count) or ``min_identity``
    (fraction of the perfect score, 0..1) may be given; with neither, the
    default asks for 90 % identity, a sensible "high similarity" cut for the
    paper's use case.
    """
    if threshold is not None and min_identity is not None:
        raise ValueError("give either threshold or min_identity, not both")
    perfect = len(query)
    if threshold is not None:
        if not 0 <= threshold <= perfect:
            raise ValueError(
                f"threshold {threshold} outside [0, {perfect}] for this query"
            )
        return int(threshold)
    identity = 0.9 if min_identity is None else min_identity
    if not 0.0 <= identity <= 1.0:
        raise ValueError("min_identity must be within [0, 1]")
    return int(np.ceil(identity * perfect))


#: Per-position X-source bit arrays (shared with the SWAR engine).
_x_bit_arrays = bitscore.x_bit_rows

#: Engine names accepted by :func:`alignment_scores` and friends.
ENGINES = (
    "bitscore",
    "bitscore_batch",
    "packed",
    "diagonal",
    "vectorized",
    "naive",
)

#: The default scoring engine (the mandatory fast path).
DEFAULT_ENGINE = "bitscore"


@engine_contract("vectorized")
def _vectorized_scores(instructions: np.ndarray, ref_codes: np.ndarray) -> np.ndarray:
    """Per-element table-gather scoring (the pre-SWAR vectorized engine)."""
    num_elements = instructions.size
    num_positions = ref_codes.size - num_elements + 1
    if num_positions <= 0:
        return np.zeros(0, dtype=np.int32)
    tables, configs = cmp.instruction_tables(instructions)
    x_rows = _x_bit_arrays(ref_codes)
    scores = np.zeros(num_positions, dtype=np.int32)
    for i in range(num_elements):
        window = ref_codes[i : i + num_positions]
        config = int(configs[i])
        if config == 0:
            x = (instructions[i] >> 3) & 1
            scores += tables[i, x, window]
        else:
            x_bits = x_rows[config, i : i + num_positions]
            scores += tables[i, x_bits, window]
    return scores


@engine_contract("naive")
def _naive_scores(instructions: np.ndarray, ref_codes: np.ndarray) -> np.ndarray:
    """Straight-line Python scoring (the test oracle)."""
    instruction_list = [int(i) for i in instructions]
    num_positions = ref_codes.size - len(instruction_list) + 1
    if num_positions <= 0:
        return np.zeros(0, dtype=np.int32)
    scores = np.zeros(num_positions, dtype=np.int32)
    codes = [int(c) for c in ref_codes]
    for k in range(num_positions):
        total = 0
        for i, instruction in enumerate(instruction_list):
            pos = k + i
            prev1 = codes[pos - 1] if pos >= 1 else 0
            prev2 = codes[pos - 2] if pos >= 2 else 0
            if cmp.instruction_matches(instruction, codes[pos], prev1, prev2):
                total += 1
        scores[k] = total
    return scores


def scores_from_codes(
    instructions: np.ndarray, ref_codes: np.ndarray, engine: str = DEFAULT_ENGINE
) -> np.ndarray:
    """Dispatch scoring of a raw instruction array over a code array.

    This is the single entry point every engine routes through —
    :mod:`repro.host.scan` workers call it directly on pre-packed codes.
    With observability enabled (:mod:`repro.obs`) each dispatch records
    its engine, wall time, and positions scored; disabled, the guard is a
    single boolean check.
    """
    if not _obs_state.enabled():
        return _dispatch_scores(instructions, ref_codes, engine)
    start = time.perf_counter()
    scores = _dispatch_scores(instructions, ref_codes, engine)
    _obs_profile.record_score_call(
        engine, time.perf_counter() - start, int(scores.size)
    )
    return scores


def _dispatch_scores(
    instructions: np.ndarray, ref_codes: np.ndarray, engine: str
) -> np.ndarray:
    if engine == "bitscore":
        return bitscore.scores(instructions, ref_codes)
    if engine == "bitscore_batch":
        return bitscore.bitscore_batch_scores(instructions, ref_codes)
    if engine == "packed":
        return bitscore.packed_scores(instructions, ref_codes)
    if engine == "diagonal":
        return bitscore.diagonal_scores(instructions, ref_codes)
    if engine == "vectorized":
        return _vectorized_scores(instructions, ref_codes)
    if engine == "naive":
        return _naive_scores(instructions, ref_codes)
    raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")


def scores_batch_from_codes(
    instruction_batch: List[np.ndarray],
    ref_codes: np.ndarray,
    engine: str = DEFAULT_ENGINE,
) -> List[np.ndarray]:
    """Dispatch batched scoring of many instruction arrays over one reference.

    The ``bitscore_batch`` engine shares one comparator/packing pass over
    the reference across the whole batch (one sweep, ``k`` scores — the
    software analogue of ``k`` comparator arrays); every other engine is
    applied per query, so results are engine-for-engine bit-identical to
    :func:`scores_from_codes` in all cases.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if engine != "bitscore_batch":
        return [
            scores_from_codes(instructions, ref_codes, engine)
            for instructions in instruction_batch
        ]
    if not _obs_state.enabled():
        return bitscore.scores_batch(instruction_batch, ref_codes)
    start = time.perf_counter()
    batch = bitscore.scores_batch(instruction_batch, ref_codes)
    _obs_profile.record_score_call(
        engine,
        time.perf_counter() - start,
        sum(int(scores.size) for scores in batch),
    )
    return batch


def alignment_scores(
    query: QueryLike, reference: ReferenceLike, *, engine: str = DEFAULT_ENGINE
) -> np.ndarray:
    """Scores of all ``L_r - L_q + 1`` alignment positions.

    ``query`` is an :class:`EncodedQuery`, protein sequence or string;
    ``reference`` is an RNA/DNA sequence, string, or a 2-bit code array.
    Returns an empty array when the query is longer than the reference.
    ``engine`` selects the implementation (:data:`ENGINES`); the default
    bit-parallel engine is bit-identical to every other.
    """
    encoded = _coerce_query(query)
    ref_codes, _ = _reference_codes(reference)
    return scores_from_codes(encoded.as_array(), ref_codes, engine)


def alignment_scores_batch(
    queries: Iterable[QueryLike],
    reference: ReferenceLike,
    *,
    engine: str = DEFAULT_ENGINE,
) -> List[np.ndarray]:
    """Scores of every query in a batch against one reference.

    Input order is preserved and a batch of one is bit-identical to
    :func:`alignment_scores` for every engine.  With
    ``engine="bitscore_batch"`` the whole batch shares a single sweep of
    the reference (match bitplanes computed and packed once).
    """
    encoded = [_coerce_query(query) for query in queries]
    ref_codes, _ = _reference_codes(reference)
    return scores_batch_from_codes(
        [query.as_array() for query in encoded], ref_codes, engine
    )


def alignment_scores_naive(query: QueryLike, reference: ReferenceLike) -> np.ndarray:
    """Reference implementation with explicit loops (test oracle)."""
    encoded = _coerce_query(query)
    ref_codes, _ = _reference_codes(reference)
    return _naive_scores(encoded.as_array(), ref_codes)


# The extended alphabet has 21 letters, so 32 entries hold every residue a
# long-lived service can ever ask for while keeping the cache *bounded*
# (maxsize=None would grow without limit if keys ever diversified).
# Effectiveness is observable via the fabp_encoding_cache_* gauges.
@lru_cache(maxsize=32)
def _extended_residue_tables(
    residue: str,
) -> Tuple[Tuple[np.ndarray, np.ndarray, np.ndarray], ...]:
    """Per-amino-acid extended-mode tables, computed once per process.

    For each of the residue's patterns: ``(instructions, tables, configs)``
    as produced by :func:`repro.core.encoding.encode_pattern` and
    :func:`repro.core.comparator.instruction_tables`.  Extended mode used to
    re-encode and re-tabulate every pattern per residue *per call*; the
    cache removes that constant work.
    """
    patterns = bt.EXTENDED_TABLE[residue]
    entries = []
    for pattern in patterns:
        instrs = np.asarray(encode_pattern(pattern), dtype=np.uint8)
        tables, configs = cmp.instruction_tables(instrs)
        instrs.setflags(write=False)
        tables.setflags(write=False)
        configs.setflags(write=False)
        entries.append((instrs, tables, configs))
    return tuple(entries)


def alignment_scores_extended(
    protein: Union[ProteinSequence, str], reference: ReferenceLike
) -> np.ndarray:
    """Extended-mode scores: per residue, the best of *all* its patterns.

    This removes the paper's Serine approximation (see DESIGN.md).  It is a
    software-only extension: per residue the score contribution is the
    maximum over that residue's patterns, so six-codon amino acids get full
    sensitivity.  Hardware cost of this mode is estimated in
    :mod:`repro.accel.resources`.
    """
    ref_codes, _ = _reference_codes(reference)
    sequence = as_protein(protein)
    num_elements = 3 * len(sequence)
    num_positions = ref_codes.size - num_elements + 1
    if num_positions <= 0:
        return np.zeros(0, dtype=np.int32)
    x_rows = _x_bit_arrays(ref_codes)
    scores = np.zeros(num_positions, dtype=np.int32)
    for residue_index, residue in enumerate(sequence.letters):
        best = np.zeros(num_positions, dtype=np.int32)
        for instrs, tables, configs in _extended_residue_tables(residue):
            partial = np.zeros(num_positions, dtype=np.int32)
            for j in range(3):
                i = 3 * residue_index + j
                window = ref_codes[i : i + num_positions]
                config = int(configs[j])
                if config == 0:
                    x = (int(instrs[j]) >> 3) & 1
                    partial += tables[j, x, window]
                else:
                    x_bits = x_rows[config, i : i + num_positions]
                    partial += tables[j, x_bits, window]
            np.maximum(best, partial, out=best)
        scores += best
    if _obs_state.enabled():
        info = _extended_residue_tables.cache_info()
        _obs_profile.record_encoding_cache(info.hits, info.misses, info.currsize)
    return scores


def align_prepared(
    encoded: EncodedQuery,
    ref_codes: np.ndarray,
    resolved_threshold: int,
    *,
    reference_name: str = "",
    keep_scores: bool = False,
    engine: str = DEFAULT_ENGINE,
) -> AlignmentResult:
    """Score + threshold with everything pre-resolved (the scan hot loop).

    Callers that already hold an :class:`EncodedQuery`, a 2-bit code array
    and an absolute threshold (database scanners, workers) come in here and
    skip re-coercion entirely.
    """
    scores = scores_from_codes(encoded.as_array(), ref_codes, engine)
    positions = np.nonzero(scores >= resolved_threshold)[0]
    hits = tuple(Hit(int(p), int(scores[p])) for p in positions)
    return AlignmentResult(
        query=encoded,
        reference_name=reference_name,
        reference_length=int(ref_codes.size),
        threshold=resolved_threshold,
        hits=hits,
        scores=scores if keep_scores else None,
    )


def align(
    query: QueryLike,
    reference: ReferenceLike,
    *,
    threshold: Optional[int] = None,
    min_identity: Optional[float] = None,
    keep_scores: bool = False,
    engine: str = DEFAULT_ENGINE,
) -> AlignmentResult:
    """Align a protein query against one reference; return thresholded hits.

    This is the library's primary one-call API — back-translation, encoding,
    scoring and thresholding in one step, mirroring the accelerator's
    end-to-end behaviour (the hardware writes back exactly the positions
    whose score clears the threshold).  ``engine`` selects the scoring
    implementation (:data:`ENGINES`); all of them are bit-identical.
    """
    encoded = _coerce_query(query)
    ref_codes, ref_name = _reference_codes(reference)
    resolved = resolve_threshold(encoded, threshold, min_identity)
    return align_prepared(
        encoded,
        ref_codes,
        resolved,
        reference_name=ref_name,
        keep_scores=keep_scores,
        engine=engine,
    )


def iter_reference_codes(
    references: Iterable[ReferenceLike],
) -> Iterator[Tuple[np.ndarray, str]]:
    """Coerce references to ``(codes, name)`` pairs, parsing each only once.

    Pre-packed 2-bit code arrays pass through without any re-parsing.
    """
    for reference in references:
        yield _reference_codes(reference)


def search_database(
    query: QueryLike,
    references: Iterable[ReferenceLike],
    *,
    threshold: Optional[int] = None,
    min_identity: Optional[float] = None,
    keep_scores: bool = False,
    engine: str = DEFAULT_ENGINE,
    workers: int = 1,
    chunk_size: Optional[int] = None,
) -> List[AlignmentResult]:
    """Align one query against many references; results in input order.

    The query is encoded and the threshold resolved exactly once, and
    pre-packed code arrays are accepted without re-parsing.  With
    ``workers > 1`` the scan fans out over a process pool via
    :func:`repro.host.scan.scan_database` (chunked shared-memory scan with
    an ordered merge); ``chunk_size`` tunes references per work item.
    """
    encoded = _coerce_query(query)
    resolved = resolve_threshold(encoded, threshold, min_identity)
    if workers > 1:
        # Local import: repro.host sits above repro.core in the layering.
        from repro.host.scan import scan_database

        return scan_database(
            encoded,
            references,
            threshold=resolved,
            keep_scores=keep_scores,
            engine=engine,
            workers=workers,
            chunk_size=chunk_size,
        )
    return [
        align_prepared(
            encoded,
            codes,
            resolved,
            reference_name=name,
            keep_scores=keep_scores,
            engine=engine,
        )
        for codes, name in iter_reference_codes(references)
    ]
