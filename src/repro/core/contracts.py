"""Machine-checked engine contracts for the scoring-kernel layer.

Every scoring engine in :data:`repro.core.aligner.ENGINES` must stay
bit-identical to the hardware semantics, and the next performance leap —
a compiled or GPU port of the bitplane scan — is only safe while that
contract is *checkable*.  This module turns the contract from folklore
into data:

* :func:`engine_contract` — a zero-overhead decorator that declares, per
  engine, the canonical signature inputs (``instructions`` 6-bit opcodes,
  ``ref_codes`` 2-bit nucleotides), the score-accumulator dtype, and the
  supported query-length envelope (:data:`MAX_QUERY_ELEMENTS`).  The
  declarations land in :data:`ENGINE_CONTRACTS` for runtime provers
  (``fabp-repro prove kernel``) and are parsed straight from the AST by
  the KC static rules (:mod:`repro.statics.kernels`), so the same claim
  is checked both ways.
* :func:`kernel_summary` — declares the dtype/value envelope of a kernel
  helper's return values (``match_bytes`` emits 0/1 bytes, ``pack_row``
  emits full-range uint64 words, …).  The dtype-flow abstract interpreter
  (:mod:`repro.statics.dtypeflow`) uses these summaries to propagate
  bounds across helper calls without whole-program analysis.

The paper's Pop36 carry-save design works because every counter lane has
a proven bit budget (Table I: 750 elements fit 10 bits).  The software
analogue is the pair *(accumulator dtype, MAX_QUERY_ELEMENTS)* declared
here and proven against the word-level prover in
:mod:`repro.rtl.ranges` — see ``docs/static_analysis.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Tuple, TypeVar

import numpy as np

#: The documented maximum query length in encoded elements (250 residues x
#: 3 codon positions — the paper's largest design point, Table I FabP-250).
#: The score of any alignment position is the number of matching elements,
#: so every accumulator dtype must hold [0, MAX_QUERY_ELEMENTS].
MAX_QUERY_ELEMENTS = 750

_F = TypeVar("_F", bound=Callable[..., object])


@dataclass(frozen=True)
class ArgSpec:
    """Declared dtype and value interval of one engine input array."""

    dtype: str
    lo: int
    hi: int

    def to_dict(self) -> Dict[str, object]:
        return {"dtype": self.dtype, "lo": self.lo, "hi": self.hi}


#: The canonical engine inputs: 6-bit instructions over 2-bit nucleotides.
DEFAULT_INPUTS: Mapping[str, ArgSpec] = {
    "instructions": ArgSpec("uint8", 0, 63),
    "ref_codes": ArgSpec("uint8", 0, 3),
}


@dataclass(frozen=True)
class EngineContract:
    """One engine's declared envelope: what every implementation must obey."""

    engine: str
    function: str
    module: str
    inputs: Mapping[str, ArgSpec] = field(default_factory=lambda: DEFAULT_INPUTS)
    accumulator: str = "int32"
    max_elements: int = MAX_QUERY_ELEMENTS
    deterministic: bool = True

    @property
    def accumulator_dtype(self) -> np.dtype:
        return np.dtype(self.accumulator)

    @property
    def max_score(self) -> int:
        """Largest score any position can reach: one per query element."""
        return self.max_elements

    @property
    def accumulator_value_bits(self) -> int:
        """Non-sign value bits of the declared accumulator dtype."""
        info = np.iinfo(self.accumulator_dtype)
        return int(info.max).bit_length()

    def fits_accumulator(self, max_value: int) -> bool:
        """True when ``max_value`` is representable in the accumulator."""
        return 0 <= max_value <= int(np.iinfo(self.accumulator_dtype).max)

    def to_dict(self) -> Dict[str, object]:
        return {
            "engine": self.engine,
            "function": self.function,
            "module": self.module,
            "inputs": {name: spec.to_dict() for name, spec in self.inputs.items()},
            "accumulator": self.accumulator,
            "accumulator_value_bits": self.accumulator_value_bits,
            "max_elements": self.max_elements,
            "deterministic": self.deterministic,
        }


#: Every declared engine contract, keyed by engine name (the key used in
#: :data:`repro.core.aligner.ENGINES` and the ``engine=`` dispatch).
ENGINE_CONTRACTS: Dict[str, EngineContract] = {}

#: Declared return envelopes of kernel helpers, keyed by function name:
#: a tuple of ``(dtype, lo, hi)`` triples, one per returned array.
HELPER_SUMMARIES: Dict[str, Tuple[Tuple[str, int, int], ...]] = {}


def engine_contract(
    engine: str,
    *,
    accumulator: str = "int32",
    max_elements: int = MAX_QUERY_ELEMENTS,
    inputs: Mapping[str, ArgSpec] = DEFAULT_INPUTS,
    deterministic: bool = True,
) -> Callable[[_F], _F]:
    """Declare (and register) the contract of one scoring engine.

    The decorated function is returned unchanged — the contract is pure
    metadata, attached as ``__engine_contract__`` and registered in
    :data:`ENGINE_CONTRACTS`.  Re-decorating the same function (module
    reload) is idempotent; claiming an engine name owned by a *different*
    function is an error, because the dispatch table would be ambiguous.
    """

    def decorate(func: _F) -> _F:
        contract = EngineContract(
            engine=engine,
            function=getattr(func, "__qualname__", getattr(func, "__name__", "?")),
            module=getattr(func, "__module__", "?"),
            inputs=dict(inputs),
            accumulator=accumulator,
            max_elements=max_elements,
            deterministic=deterministic,
        )
        existing = ENGINE_CONTRACTS.get(engine)
        if existing is not None and (
            existing.function != contract.function
            or existing.module != contract.module
        ):
            raise ValueError(
                f"engine {engine!r} already contracted by "
                f"{existing.module}.{existing.function}"
            )
        ENGINE_CONTRACTS[engine] = contract
        setattr(func, "__engine_contract__", contract)
        return func

    return decorate


def kernel_summary(
    *returns: Tuple[str, int, int]
) -> Callable[[_F], _F]:
    """Declare the per-return ``(dtype, lo, hi)`` envelope of a helper.

    Zero overhead: metadata only, attached as ``__kernel_summary__`` and
    registered in :data:`HELPER_SUMMARIES` under the bare function name
    (the dtype-flow interpreter resolves calls by their dotted tail).
    """

    def decorate(func: _F) -> _F:
        summary = tuple(returns)
        HELPER_SUMMARIES[getattr(func, "__name__", "?")] = summary
        setattr(func, "__kernel_summary__", summary)
        return func

    return decorate
