"""Bit-parallel SWAR scoring engine — the Pop36 datapath, in software.

The FPGA scores 256 nucleotides per beat because each query element owns a
two-LUT comparator producing *one bit*, and a carry-save Pop36 tree counts
the bits (§III-C/D).  The software counterpart of that datapath is SWAR
(SIMD-within-a-register) bit-parallelism over 64-bit words:

1. **Match bitplanes.**  A query of ``L_q`` elements carries at most 64
   *distinct* 6-bit instructions (in practice ~20).  For each distinct
   instruction we evaluate the comparator once over every reference
   position — the match bit depends only on ``(instruction, Ref[p],
   Ref[p-1], Ref[p-2])`` — and pack the resulting 0/1 vector into uint64
   words, LSB-first (bit ``p % 64`` of word ``p // 64`` is position ``p``).
   The Type-III X-bit lanes (:func:`x_bit_rows`) are folded into this pass,
   exactly as the hardware mux LUT feeds the comparison LUT.

2. **Diagonal accumulation with CSA vertical counters.**  The score of
   alignment position ``k`` is ``sum_i match_i[k + i]``, so element ``i``
   contributes its bitplane *shifted right by i bits*.  Rows are summed
   with a carry-save-adder vertical counter: counter plane ``c_l`` holds
   bit ``l`` of every position's running count, and adding a row is
   ``carry = c_l & row; c_l ^= row`` rippled upward — the direct software
   analog of the Pop36 carry-save tree (each 64-bit word is 64 independent
   one-bit adders working in parallel).  Rows are fed pairwise through a
   3:2 compressor step (``ones = a ^ b``, ``twos = a & b``) to halve
   low-plane traffic, mirroring the hardware's 6:3 compression stage.

For short references the fixed cost of packing dominates, so
:func:`diagonal_scores` provides a strided-diagonal uint8 path: the
per-element match matrix is viewed along alignment diagonals with stride
tricks and summed by a single einsum reduction.  :func:`scores` picks the
winner by workload size.

Both paths are bit-identical to :func:`repro.core.aligner.alignment_scores_naive`
(enforced by the property-test suite in ``tests/property``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core import comparator as cmp
from repro.core.contracts import MAX_QUERY_ELEMENTS, engine_contract, kernel_summary

#: Bits per SWAR word (the software "beat" width).
WORD_BITS = 64

#: Below this many score cells (positions x elements) the strided-diagonal
#: uint8 path beats the packed path (packing overhead is not amortized).
DIAGONAL_MAX_CELLS = 1 << 21

_WORD_DTYPE = np.dtype("<u8")


@kernel_summary(("uint8", 0, 1))
def x_bit_rows(ref_codes: np.ndarray) -> np.ndarray:
    """Per-position X-source bit arrays, indexed by config code.

    Returns an array of shape ``(4, L_r)``: row ``config`` holds the X bit
    at every reference position for that source.  Row 0 (CONFIG_SELF) is a
    placeholder (the caller substitutes the instruction's own b3).  Missing
    look-back positions read as nucleotide ``A`` (code 0), matching the
    hardware stream buffer reset.
    """
    length = ref_codes.size
    prev1 = np.zeros(length, dtype=np.uint8)
    prev2 = np.zeros(length, dtype=np.uint8)
    if length > 1:
        prev1[1:] = ref_codes[:-1]
    if length > 2:
        prev2[2:] = ref_codes[:-2]
    rows = np.zeros((4, length), dtype=np.uint8)
    rows[1] = (prev1 >> 1) & 1  # CONFIG_PREV1_HI
    rows[2] = prev2 & 1  # CONFIG_PREV2_LO
    rows[3] = (prev2 >> 1) & 1  # CONFIG_PREV2_HI
    return rows


@kernel_summary(("uint8", 0, 1), ("intp", 0, 63))
def match_bytes(
    instructions: np.ndarray, ref_codes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Match bit (as uint8 0/1) of every *distinct* instruction at every position.

    Returns ``(rows, element_rows)``: ``rows[j, p]`` is the comparator
    output of distinct instruction ``j`` at reference position ``p``, and
    ``element_rows[i]`` maps query element ``i`` to its row.  Evaluating
    per distinct instruction turns ``L_q`` table gathers into at most 64.
    """
    instructions = np.asarray(instructions, dtype=np.uint8)
    ref_codes = np.asarray(ref_codes, dtype=np.uint8)
    distinct, element_rows = np.unique(instructions, return_inverse=True)
    tables, configs = cmp.instruction_tables(distinct)
    x_rows = x_bit_rows(ref_codes)
    rows = np.empty((distinct.size, ref_codes.size), dtype=np.uint8)
    for j in range(distinct.size):
        config = int(configs[j])
        if config == 0:
            x = (int(distinct[j]) >> 3) & 1
            rows[j] = tables[j, x, ref_codes]
        else:
            rows[j] = tables[j, x_rows[config], ref_codes]
    return rows, np.asarray(element_rows, dtype=np.intp).ravel()


@kernel_summary(("uint64", 0, (1 << 64) - 1))
def pack_row(bits: np.ndarray, pad_words: int = 1) -> np.ndarray:
    """Pack a uint8 0/1 vector into little-endian uint64 words.

    Bit ``p % 64`` of word ``p // 64`` is position ``p``.  ``pad_words``
    zero words are appended so shifted reads never index past the end.
    """
    packed = np.packbits(bits, bitorder="little")
    num_words = (bits.size + WORD_BITS - 1) // WORD_BITS + pad_words
    buffer = np.zeros(num_words * 8, dtype=np.uint8)
    buffer[: packed.size] = packed
    return buffer.view(_WORD_DTYPE)


@kernel_summary(("uint64", 0, (1 << 64) - 1))
def shifted_row(words: np.ndarray, shift: int, num_words: int) -> np.ndarray:
    """``num_words`` words of ``words`` right-shifted by ``shift`` bits.

    Output bit ``k`` equals input bit ``k + shift`` — this aligns element
    ``i``'s match bitplane onto the alignment-position axis.
    """
    offset, remainder = divmod(shift, WORD_BITS)
    low = words[offset : offset + num_words]
    if remainder == 0:
        return low.copy()
    high = words[offset + 1 : offset + 1 + num_words]
    return (low >> np.uint64(remainder)) | (high << np.uint64(WORD_BITS - remainder))


class VerticalCounter:
    """Carry-save vertical counter: per-bit-column counts over packed words.

    Plane ``l`` holds bit ``l`` of each position's running count.  This is
    the software analog of the paper's Pop36 carry-save pop-counter: one
    64-bit AND/XOR pair performs 64 independent single-bit additions.
    """

    def __init__(self, num_words: int) -> None:
        self._num_words = num_words
        self.planes: List[np.ndarray] = []

    def _add_at(self, row: np.ndarray, level: int) -> None:
        """Add ``row * 2**level``; ``row`` is consumed (may be mutated)."""
        carry = row
        while level < len(self.planes):
            plane = self.planes[level]
            carry_out = plane & carry
            np.bitwise_xor(plane, carry, out=plane)
            if not carry_out.any():
                return
            carry = carry_out
            level += 1
        while level > len(self.planes):
            self.planes.append(np.zeros(self._num_words, dtype=_WORD_DTYPE))
        self.planes.append(carry)

    def add(self, row: np.ndarray) -> None:
        """Add one match row (weight 1) to every position's count."""
        self._add_at(row, 0)

    def add_pair(self, first: np.ndarray, second: np.ndarray) -> None:
        """Add two rows via one 3:2 compressor step (``a + b = ones + 2*twos``)."""
        twos = first & second
        ones = first ^ second
        self._add_at(ones, 0)
        if twos.any():
            self._add_at(twos, 1)

    @kernel_summary(("int32", 0, MAX_QUERY_ELEMENTS))
    def decode(self, num_positions: int) -> np.ndarray:
        """Materialize the counts as an int32 array of ``num_positions``."""
        scores = np.zeros(num_positions, dtype=np.int32)
        for level, plane in enumerate(self.planes):
            bits = np.unpackbits(
                plane.view(np.uint8), bitorder="little", count=num_positions
            )
            scores += bits.astype(np.int32) << level
        return scores


@engine_contract("packed")
def packed_scores(instructions: np.ndarray, ref_codes: np.ndarray) -> np.ndarray:
    """All alignment-position scores via packed bitplanes + CSA popcount."""
    instructions = np.asarray(instructions, dtype=np.uint8)
    ref_codes = np.asarray(ref_codes, dtype=np.uint8)
    num_elements = instructions.size
    num_positions = ref_codes.size - num_elements + 1
    if num_positions <= 0:
        return np.zeros(0, dtype=np.int32)
    if num_elements == 0:
        return np.zeros(num_positions, dtype=np.int32)
    rows, element_rows = match_bytes(instructions, ref_codes)
    # One extra pad word lets shifted_row read its high half at any offset.
    pad = 1 + (num_elements - 1) // WORD_BITS
    planes = [pack_row(rows[j], pad_words=pad) for j in range(rows.shape[0])]
    num_words = (num_positions + WORD_BITS - 1) // WORD_BITS
    counter = VerticalCounter(num_words)
    for i in range(0, num_elements - 1, 2):
        counter.add_pair(
            shifted_row(planes[element_rows[i]], i, num_words),
            shifted_row(planes[element_rows[i + 1]], i + 1, num_words),
        )
    if num_elements % 2:
        i = num_elements - 1
        counter.add(shifted_row(planes[element_rows[i]], i, num_words))
    return counter.decode(num_positions)


@engine_contract("diagonal")
def diagonal_scores(instructions: np.ndarray, ref_codes: np.ndarray) -> np.ndarray:
    """All alignment-position scores via a strided-diagonal uint8 reduction.

    Builds the per-element match matrix ``M[i, p]`` and sums its alignment
    diagonals ``score[k] = sum_i M[i, k + i]`` through a zero-copy stride
    view — element ``[k, i]`` lives at byte offset ``k*s_p + i*(s_e + s_p)``
    — reduced by one einsum.  Wins when ``positions * elements`` is small.
    """
    instructions = np.asarray(instructions, dtype=np.uint8)
    ref_codes = np.asarray(ref_codes, dtype=np.uint8)
    num_elements = instructions.size
    num_positions = ref_codes.size - num_elements + 1
    if num_positions <= 0:
        return np.zeros(0, dtype=np.int32)
    if num_elements == 0:
        return np.zeros(num_positions, dtype=np.int32)
    rows, element_rows = match_bytes(instructions, ref_codes)
    matrix = np.ascontiguousarray(rows[element_rows])
    stride_e, stride_p = matrix.strides
    diagonals = np.lib.stride_tricks.as_strided(
        matrix,
        shape=(num_positions, num_elements),
        strides=(stride_p, stride_e + stride_p),
    )
    return np.einsum("ki->k", diagonals, dtype=np.int32, casting="unsafe")


@engine_contract("bitscore")
def scores(
    instructions: np.ndarray,
    ref_codes: np.ndarray,
    *,
    method: Optional[str] = None,
) -> np.ndarray:
    """Bit-parallel scores with automatic path selection.

    ``method`` forces ``"packed"`` or ``"diagonal"``; by default short
    workloads (fewer than :data:`DIAGONAL_MAX_CELLS` score cells) take the
    diagonal path and everything else the packed CSA path.
    """
    if method == "packed":
        return packed_scores(instructions, ref_codes)
    if method == "diagonal":
        return diagonal_scores(instructions, ref_codes)
    if method is not None:
        raise ValueError(f"unknown bitscore method {method!r}")
    instructions = np.asarray(instructions, dtype=np.uint8)
    ref_codes = np.asarray(ref_codes, dtype=np.uint8)
    num_positions = ref_codes.size - instructions.size + 1
    if num_positions <= 0:
        return np.zeros(0, dtype=np.int32)
    if num_positions * max(instructions.size, 1) <= DIAGONAL_MAX_CELLS:
        return diagonal_scores(instructions, ref_codes)
    return packed_scores(instructions, ref_codes)
