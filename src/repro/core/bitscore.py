"""Bit-parallel SWAR scoring engine — the Pop36 datapath, in software.

The FPGA scores 256 nucleotides per beat because each query element owns a
two-LUT comparator producing *one bit*, and a carry-save Pop36 tree counts
the bits (§III-C/D).  The software counterpart of that datapath is SWAR
(SIMD-within-a-register) bit-parallelism over 64-bit words:

1. **Match bitplanes.**  A query of ``L_q`` elements carries at most 64
   *distinct* 6-bit instructions (in practice ~20).  For each distinct
   instruction we evaluate the comparator once over every reference
   position — the match bit depends only on ``(instruction, Ref[p],
   Ref[p-1], Ref[p-2])`` — and pack the resulting 0/1 vector into uint64
   words, LSB-first (bit ``p % 64`` of word ``p // 64`` is position ``p``).
   The Type-III X-bit lanes (:func:`x_bit_rows`) are folded into this pass,
   exactly as the hardware mux LUT feeds the comparison LUT.

2. **Diagonal accumulation with CSA vertical counters.**  The score of
   alignment position ``k`` is ``sum_i match_i[k + i]``, so element ``i``
   contributes its bitplane *shifted right by i bits*.  Rows are summed
   with a carry-save-adder vertical counter: counter plane ``c_l`` holds
   bit ``l`` of every position's running count, and adding a row is
   ``carry = c_l & row; c_l ^= row`` rippled upward — the direct software
   analog of the Pop36 carry-save tree (each 64-bit word is 64 independent
   one-bit adders working in parallel).  Rows are fed pairwise through a
   3:2 compressor step (``ones = a ^ b``, ``twos = a & b``) to halve
   low-plane traffic, mirroring the hardware's 6:3 compression stage.

For short references the fixed cost of packing dominates, so
:func:`diagonal_scores` provides a strided-diagonal uint8 path: the
per-element match matrix is viewed along alignment diagonals with stride
tricks and summed by a single einsum reduction.  :func:`scores` picks the
winner by workload size.

Both paths are bit-identical to :func:`repro.core.aligner.alignment_scores_naive`
(enforced by the property-test suite in ``tests/property``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import comparator as cmp
from repro.core.contracts import MAX_QUERY_ELEMENTS, engine_contract, kernel_summary

#: Bits per SWAR word (the software "beat" width).
WORD_BITS = 64

#: Below this many score cells (positions x elements) the strided-diagonal
#: uint8 path beats the packed path (packing overhead is not amortized).
DIAGONAL_MAX_CELLS = 1 << 21

#: Ceiling on the batched shift-residue table (bytes).  Below it, every
#: (distinct instruction, shift residue) pair is precomputed once and each
#: query element becomes a zero-copy view; above it the batch path shifts
#: rows on the fly from the small packed planes instead of materializing
#: the table.
BATCH_TABLE_MAX_BYTES = 1 << 27

_WORD_DTYPE = np.dtype("<u8")


@kernel_summary(("uint8", 0, 1))
def x_bit_rows(ref_codes: np.ndarray) -> np.ndarray:
    """Per-position X-source bit arrays, indexed by config code.

    Returns an array of shape ``(4, L_r)``: row ``config`` holds the X bit
    at every reference position for that source.  Row 0 (CONFIG_SELF) is a
    placeholder (the caller substitutes the instruction's own b3).  Missing
    look-back positions read as nucleotide ``A`` (code 0), matching the
    hardware stream buffer reset.
    """
    length = ref_codes.size
    prev1 = np.zeros(length, dtype=np.uint8)
    prev2 = np.zeros(length, dtype=np.uint8)
    if length > 1:
        prev1[1:] = ref_codes[:-1]
    if length > 2:
        prev2[2:] = ref_codes[:-2]
    rows = np.zeros((4, length), dtype=np.uint8)
    rows[1] = (prev1 >> 1) & 1  # CONFIG_PREV1_HI
    rows[2] = prev2 & 1  # CONFIG_PREV2_LO
    rows[3] = (prev2 >> 1) & 1  # CONFIG_PREV2_HI
    return rows


@kernel_summary(("uint8", 0, 1), ("intp", 0, 63))
def match_bytes(
    instructions: np.ndarray, ref_codes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Match bit (as uint8 0/1) of every *distinct* instruction at every position.

    Returns ``(rows, element_rows)``: ``rows[j, p]`` is the comparator
    output of distinct instruction ``j`` at reference position ``p``, and
    ``element_rows[i]`` maps query element ``i`` to its row.  Evaluating
    per distinct instruction turns ``L_q`` table gathers into at most 64.
    """
    instructions = np.asarray(instructions, dtype=np.uint8)
    ref_codes = np.asarray(ref_codes, dtype=np.uint8)
    distinct, element_rows = np.unique(instructions, return_inverse=True)
    tables, configs = cmp.instruction_tables(distinct)
    x_rows = x_bit_rows(ref_codes)
    rows = np.empty((distinct.size, ref_codes.size), dtype=np.uint8)
    for j in range(distinct.size):
        config = int(configs[j])
        if config == 0:
            x = (int(distinct[j]) >> 3) & 1
            rows[j] = tables[j, x, ref_codes]
        else:
            rows[j] = tables[j, x_rows[config], ref_codes]
    return rows, np.asarray(element_rows, dtype=np.intp).ravel()


@kernel_summary(("uint64", 0, (1 << 64) - 1))
def pack_row(bits: np.ndarray, pad_words: int = 1) -> np.ndarray:
    """Pack a uint8 0/1 vector into little-endian uint64 words.

    Bit ``p % 64`` of word ``p // 64`` is position ``p``.  ``pad_words``
    zero words are appended so shifted reads never index past the end.
    """
    packed = np.packbits(bits, bitorder="little")
    num_words = (bits.size + WORD_BITS - 1) // WORD_BITS + pad_words
    buffer = np.zeros(num_words * 8, dtype=np.uint8)
    buffer[: packed.size] = packed
    return buffer.view(_WORD_DTYPE)


@kernel_summary(("uint64", 0, (1 << 64) - 1))
def shifted_row(words: np.ndarray, shift: int, num_words: int) -> np.ndarray:
    """``num_words`` words of ``words`` right-shifted by ``shift`` bits.

    Output bit ``k`` equals input bit ``k + shift`` — this aligns element
    ``i``'s match bitplane onto the alignment-position axis.
    """
    offset, remainder = divmod(shift, WORD_BITS)
    low = words[offset : offset + num_words]
    if remainder == 0:
        return low.copy()
    high = words[offset + 1 : offset + 1 + num_words]
    return (low >> np.uint64(remainder)) | (high << np.uint64(WORD_BITS - remainder))


class VerticalCounter:
    """Carry-save vertical counter: per-bit-column counts over packed words.

    Plane ``l`` holds bit ``l`` of each position's running count.  This is
    the software analog of the paper's Pop36 carry-save pop-counter: one
    64-bit AND/XOR pair performs 64 independent single-bit additions.
    """

    def __init__(self, num_words: int) -> None:
        self._num_words = num_words
        self.planes: List[np.ndarray] = []

    def _add_at(self, row: np.ndarray, level: int) -> None:
        """Add ``row * 2**level``; ``row`` is consumed (may be mutated)."""
        carry = row
        while level < len(self.planes):
            plane = self.planes[level]
            carry_out = plane & carry
            np.bitwise_xor(plane, carry, out=plane)
            if not carry_out.any():
                return
            carry = carry_out
            level += 1
        while level > len(self.planes):
            self.planes.append(np.zeros(self._num_words, dtype=_WORD_DTYPE))
        self.planes.append(carry)

    def add(self, row: np.ndarray) -> None:
        """Add one match row (weight 1) to every position's count."""
        self._add_at(row, 0)

    def add_pair(self, first: np.ndarray, second: np.ndarray) -> None:
        """Add two rows via one 3:2 compressor step (``a + b = ones + 2*twos``)."""
        twos = first & second
        ones = first ^ second
        self._add_at(ones, 0)
        if twos.any():
            self._add_at(twos, 1)

    @kernel_summary(("int32", 0, MAX_QUERY_ELEMENTS))
    def decode(self, num_positions: int) -> np.ndarray:
        """Materialize the counts as an int32 array of ``num_positions``."""
        scores = np.zeros(num_positions, dtype=np.int32)
        for level, plane in enumerate(self.planes):
            bits = np.unpackbits(
                plane.view(np.uint8), bitorder="little", count=num_positions
            )
            scores += bits.astype(np.int32) << level
        return scores


@engine_contract("packed")
def packed_scores(instructions: np.ndarray, ref_codes: np.ndarray) -> np.ndarray:
    """All alignment-position scores via packed bitplanes + CSA popcount."""
    instructions = np.asarray(instructions, dtype=np.uint8)
    ref_codes = np.asarray(ref_codes, dtype=np.uint8)
    num_elements = instructions.size
    num_positions = ref_codes.size - num_elements + 1
    if num_positions <= 0:
        return np.zeros(0, dtype=np.int32)
    if num_elements == 0:
        return np.zeros(num_positions, dtype=np.int32)
    rows, element_rows = match_bytes(instructions, ref_codes)
    # One extra pad word lets shifted_row read its high half at any offset.
    pad = 1 + (num_elements - 1) // WORD_BITS
    planes = [pack_row(rows[j], pad_words=pad) for j in range(rows.shape[0])]
    num_words = (num_positions + WORD_BITS - 1) // WORD_BITS
    counter = VerticalCounter(num_words)
    for i in range(0, num_elements - 1, 2):
        counter.add_pair(
            shifted_row(planes[element_rows[i]], i, num_words),
            shifted_row(planes[element_rows[i + 1]], i + 1, num_words),
        )
    if num_elements % 2:
        i = num_elements - 1
        counter.add(shifted_row(planes[element_rows[i]], i, num_words))
    return counter.decode(num_positions)


@engine_contract("diagonal")
def diagonal_scores(instructions: np.ndarray, ref_codes: np.ndarray) -> np.ndarray:
    """All alignment-position scores via a strided-diagonal uint8 reduction.

    Builds the per-element match matrix ``M[i, p]`` and sums its alignment
    diagonals ``score[k] = sum_i M[i, k + i]`` through a zero-copy stride
    view — element ``[k, i]`` lives at byte offset ``k*s_p + i*(s_e + s_p)``
    — reduced by one einsum.  Wins when ``positions * elements`` is small.
    """
    instructions = np.asarray(instructions, dtype=np.uint8)
    ref_codes = np.asarray(ref_codes, dtype=np.uint8)
    num_elements = instructions.size
    num_positions = ref_codes.size - num_elements + 1
    if num_positions <= 0:
        return np.zeros(0, dtype=np.int32)
    if num_elements == 0:
        return np.zeros(num_positions, dtype=np.int32)
    rows, element_rows = match_bytes(instructions, ref_codes)
    matrix = np.ascontiguousarray(rows[element_rows])
    stride_e, stride_p = matrix.strides
    diagonals = np.lib.stride_tricks.as_strided(
        matrix,
        shape=(num_positions, num_elements),
        strides=(stride_p, stride_e + stride_p),
    )
    return np.einsum("ki->k", diagonals, dtype=np.int32, casting="unsafe")


@engine_contract("bitscore")
def scores(
    instructions: np.ndarray,
    ref_codes: np.ndarray,
    *,
    method: Optional[str] = None,
) -> np.ndarray:
    """Bit-parallel scores with automatic path selection.

    ``method`` forces ``"packed"`` or ``"diagonal"``; by default short
    workloads (fewer than :data:`DIAGONAL_MAX_CELLS` score cells) take the
    diagonal path and everything else the packed CSA path.
    """
    if method == "packed":
        return packed_scores(instructions, ref_codes)
    if method == "diagonal":
        return diagonal_scores(instructions, ref_codes)
    if method is not None:
        raise ValueError(f"unknown bitscore method {method!r}")
    instructions = np.asarray(instructions, dtype=np.uint8)
    ref_codes = np.asarray(ref_codes, dtype=np.uint8)
    num_positions = ref_codes.size - instructions.size + 1
    if num_positions <= 0:
        return np.zeros(0, dtype=np.int32)
    if num_positions * max(instructions.size, 1) <= DIAGONAL_MAX_CELLS:
        return diagonal_scores(instructions, ref_codes)
    return packed_scores(instructions, ref_codes)


# --------------------------------------------------------------------------
# Batched multi-query kernel: one reference sweep scores k queries.
#
# The FPGA's throughput trick is k comparator arrays sharing a single
# streaming pass over the reference (one DRAM sweep, k scores).  The
# software analogue: evaluate the comparator once per *distinct*
# instruction across the whole batch, pack those match rows once, and
# reuse them for every query.  Per query the packed rows are folded with
# an iterative Harley-Seal carry-save tree (8 rows -> 4 counter planes per
# block via seven CSAs) using preallocated scratch, then decoded in one
# unpackbits/einsum pass.
# --------------------------------------------------------------------------


def _csa_into(
    c: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    t: np.ndarray,
    v: np.ndarray,
    carry_out: np.ndarray,
) -> None:
    """Full-adder compress: ``c + a + b -> sum in c, carry in carry_out``.

    All five ufuncs write into preallocated buffers — the batch hot loop
    never allocates.  ``t``/``v`` are scratch; ``a``/``b`` are read-only.
    """
    np.bitwise_xor(a, b, out=t)
    np.bitwise_and(c, t, out=v)
    np.bitwise_xor(c, t, out=c)
    np.bitwise_and(a, b, out=t)
    np.bitwise_or(t, v, out=carry_out)


def _shift_table(planes: np.ndarray) -> np.ndarray:
    """Every (row, shift-residue) combination, precomputed in bulk.

    ``table[j, r, w]`` holds word ``w`` of plane ``j`` right-shifted by
    ``r`` bits, so element ``i`` of any query reads the contiguous view
    ``table[row, i % 64, i // 64 : i // 64 + num_words]`` — exactly
    :func:`shifted_row` with the funnel shift hoisted out of the per-query
    loop and shared by the whole batch.
    """
    count, plane_len = planes.shape
    table = np.empty((count, WORD_BITS, plane_len - 1), dtype=_WORD_DTYPE)
    shifts = np.arange(WORD_BITS, dtype=np.uint64)
    high_shifts = (np.uint64(WORD_BITS) - shifts)[1:, None]
    tmp = np.empty((WORD_BITS - 1, plane_len - 1), dtype=_WORD_DTYPE)
    for j in range(count):
        plane = planes[j]
        table[j, 0] = plane[:-1]
        np.right_shift(plane[None, :-1], shifts[1:, None], out=table[j, 1:])
        np.left_shift(plane[None, 1:], high_shifts, out=tmp)
        np.bitwise_or(table[j, 1:], tmp, out=table[j, 1:])
    return table


def _table_rows(
    table: np.ndarray, element_rows: np.ndarray, num_words: int
) -> Iterator[np.ndarray]:
    """Per-element shifted rows as zero-copy views into the shift table."""
    for i in range(element_rows.size):
        offset, remainder = divmod(i, WORD_BITS)
        yield table[element_rows[i], remainder, offset : offset + num_words]


def _streamed_rows(
    planes: np.ndarray,
    element_rows: np.ndarray,
    num_words: int,
    ring: Sequence[np.ndarray],
    tmp: np.ndarray,
) -> Iterator[np.ndarray]:
    """Per-element shifted rows, funnel-shifted on the fly.

    The fallback when the shift table would exceed
    :data:`BATCH_TABLE_MAX_BYTES`: each row is shifted into one of eight
    rotating buffers (a Harley-Seal block consumes eight rows at once, so
    ``i % 8`` slots never collide within a block).
    """
    for i in range(element_rows.size):
        offset, remainder = divmod(i, WORD_BITS)
        plane = planes[element_rows[i]]
        low = plane[offset : offset + num_words]
        if remainder == 0:
            yield low
            continue
        out = ring[i % 8]
        np.right_shift(low, np.uint64(remainder), out=out)
        np.left_shift(
            plane[offset + 1 : offset + 1 + num_words],
            np.uint64(WORD_BITS - remainder),
            out=tmp,
        )
        np.bitwise_or(out, tmp, out=out)
        yield out


def _fold_level(
    rows: Iterable[np.ndarray],
    counter: VerticalCounter,
    num_words: int,
    scratch: Tuple[np.ndarray, ...],
    *,
    base: int,
    owned: bool,
) -> List[np.ndarray]:
    """One Harley-Seal level: compress 8-row blocks into 4 counter planes.

    Seven CSAs turn eight weight-``2**base`` rows into ``ones``/``twos``/
    ``fours`` accumulators plus one weight-``2**(base+3)`` carry row; the
    carries become the next level's input.  ``owned=False`` marks rows that
    are borrowed views (shift-table slices, ring buffers) — tail rows fed
    straight to the counter are copied first, because
    :meth:`VerticalCounter._add_at` consumes its argument.
    """
    t, v, ta, tb, fa, fb = scratch
    ones = np.zeros(num_words, dtype=_WORD_DTYPE)
    twos = np.zeros(num_words, dtype=_WORD_DTYPE)
    fours = np.zeros(num_words, dtype=_WORD_DTYPE)
    carries: List[np.ndarray] = []
    block: List[np.ndarray] = []
    for row in rows:
        block.append(row)
        if len(block) < 8:
            continue
        _csa_into(ones, block[0], block[1], t, v, ta)
        _csa_into(ones, block[2], block[3], t, v, tb)
        _csa_into(twos, ta, tb, t, v, fa)
        _csa_into(ones, block[4], block[5], t, v, ta)
        _csa_into(ones, block[6], block[7], t, v, tb)
        _csa_into(twos, ta, tb, t, v, fb)
        carry = np.empty(num_words, dtype=_WORD_DTYPE)
        _csa_into(fours, fa, fb, t, v, carry)
        carries.append(carry)
        block.clear()
    counter._add_at(ones, base)
    counter._add_at(twos, base + 1)
    counter._add_at(fours, base + 2)
    for row in block:
        counter._add_at(row if owned else np.array(row), base)
    return carries


def _fold_rows(
    rows: Iterable[np.ndarray],
    counter: VerticalCounter,
    num_words: int,
    scratch: Tuple[np.ndarray, ...],
) -> None:
    """Fold a stream of weight-1 rows into ``counter`` level by level."""
    carries = _fold_level(rows, counter, num_words, scratch, base=0, owned=False)
    base = 3
    while carries:
        carries = _fold_level(
            iter(carries), counter, num_words, scratch, base=base, owned=True
        )
        base += 3


def _decode_planes(planes: List[np.ndarray], num_positions: int) -> np.ndarray:
    """Counter planes -> int32 scores in one unpackbits/einsum pass."""
    if not planes:
        return np.zeros(num_positions, dtype=np.int32)
    stacked = np.stack(planes)
    bits = np.unpackbits(
        stacked.view(np.uint8), axis=1, bitorder="little", count=num_positions
    )
    if len(planes) <= 14:
        # Counts are bounded by MAX_QUERY_ELEMENTS, so the weighted sum
        # fits int16 — half the reduction bandwidth of an int32 einsum.
        weights16 = (1 << np.arange(len(planes))).astype(np.int16)
        return np.einsum(
            "l,lp->p", weights16, bits, dtype=np.int16, casting="unsafe"
        ).astype(np.int32)
    weights = (1 << np.arange(len(planes))).astype(np.int64)
    return np.einsum(
        "l,lp->p", weights, bits, dtype=np.int64, casting="unsafe"
    ).astype(np.int32)


@kernel_summary(("int32", 0, MAX_QUERY_ELEMENTS))
def scores_batch(
    instruction_batch: Sequence[np.ndarray], ref_codes: np.ndarray
) -> List[np.ndarray]:
    """Score ``k`` queries against one reference in a single sweep.

    The software analogue of ``k`` comparator arrays on one reference
    stream (§III-C): the comparator tables, match bitplanes and packed
    rows are computed **once** for the union of the batch's distinct
    instructions, then every query folds zero-copy views of the shared
    rows.  Each result is bit-identical to
    :func:`packed_scores(instruction_batch[q], ref_codes)`; queries may
    have ragged lengths.
    """
    ref_codes = np.asarray(ref_codes, dtype=np.uint8)
    arrays = [
        np.asarray(instructions, dtype=np.uint8).ravel()
        for instructions in instruction_batch
    ]
    results: List[Optional[np.ndarray]] = [None] * len(arrays)
    active: List[int] = []
    for q, instructions in enumerate(arrays):
        num_positions = ref_codes.size - instructions.size + 1
        if num_positions <= 0:
            results[q] = np.zeros(0, dtype=np.int32)
        elif instructions.size == 0:
            results[q] = np.zeros(num_positions, dtype=np.int32)
        else:
            active.append(q)
    if not active:
        return [result for result in results if result is not None]
    # Shared precompute: one comparator evaluation over the reference for
    # the union of distinct instructions across the whole batch.
    rows, concat_rows = match_bytes(
        np.concatenate([arrays[q] for q in active]), ref_codes
    )
    element_rows: dict = {}
    offset = 0
    for q in active:
        size = arrays[q].size
        element_rows[q] = concat_rows[offset : offset + size]
        offset += size
    max_elements = max(arrays[q].size for q in active)
    pad = 1 + (max_elements - 1) // WORD_BITS
    planes = np.stack(
        [pack_row(rows[j], pad_words=pad) for j in range(rows.shape[0])]
    )
    table_bytes = planes.shape[0] * WORD_BITS * (planes.shape[1] - 1) * 8
    table = _shift_table(planes) if table_bytes <= BATCH_TABLE_MAX_BYTES else None
    max_words = (ref_codes.size - min(
        arrays[q].size for q in active
    ) + 1 + WORD_BITS - 1) // WORD_BITS
    scratch = tuple(np.empty(max_words, dtype=_WORD_DTYPE) for _ in range(6))
    ring = (
        tuple(np.empty(max_words, dtype=_WORD_DTYPE) for _ in range(8))
        if table is None
        else ()
    )
    shift_tmp = np.empty(max_words if table is None else 0, dtype=_WORD_DTYPE)
    for q in active:
        num_positions = ref_codes.size - arrays[q].size + 1
        num_words = (num_positions + WORD_BITS - 1) // WORD_BITS
        counter = VerticalCounter(num_words)
        if table is not None:
            row_stream = _table_rows(table, element_rows[q], num_words)
        else:
            row_stream = _streamed_rows(
                planes,
                element_rows[q],
                num_words,
                tuple(buffer[:num_words] for buffer in ring),
                shift_tmp[:num_words],
            )
        _fold_rows(
            row_stream,
            counter,
            num_words,
            tuple(buffer[:num_words] for buffer in scratch),
        )
        results[q] = _decode_planes(counter.planes, num_positions)
    return [result for result in results if result is not None]


@engine_contract("bitscore_batch")
def bitscore_batch_scores(
    instructions: np.ndarray, ref_codes: np.ndarray
) -> np.ndarray:
    """Single-query entry point of the batched kernel.

    The ``bitscore_batch`` engine: a batch of one through
    :func:`scores_batch`, so the engine-equivalence property tests pin the
    batched datapath to every other engine bit for bit.
    """
    return scores_batch([instructions], ref_codes)[0]
