"""The standard codon table and derived degeneracy structure.

This is Figure 2 of the paper in code form.  Everything FabP does — the
Type I/II/III classification, the Type II condition set, the Type III
dependency functions — is a consequence of the *shape* of this table, so the
back-translation module derives its patterns from here rather than hard-
coding them, and a test asserts the derivation matches the paper's examples.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, Tuple

from repro.seq import alphabet

#: The standard (NCBI transl_table=1) codon table, RNA letters.
CODON_TABLE: Dict[str, str] = {}


def _fill(prefix: str, thirds: str, amino: str) -> None:
    for third in thirds:
        CODON_TABLE[prefix + third] = amino


_fill("UU", "UC", "F")
_fill("UU", "AG", "L")
_fill("CU", "ACGU", "L")
_fill("AU", "UCA", "I")
_fill("AU", "G", "M")
_fill("GU", "ACGU", "V")
_fill("UC", "ACGU", "S")
_fill("CC", "ACGU", "P")
_fill("AC", "ACGU", "T")
_fill("GC", "ACGU", "A")
_fill("UA", "UC", "Y")
_fill("UA", "AG", "*")
_fill("CA", "UC", "H")
_fill("CA", "AG", "Q")
_fill("AA", "UC", "N")
_fill("AA", "AG", "K")
_fill("GA", "UC", "D")
_fill("GA", "AG", "E")
_fill("UG", "UC", "C")
_fill("UG", "A", "*")
_fill("UG", "G", "W")
_fill("CG", "ACGU", "R")
_fill("AG", "UC", "S")
_fill("AG", "AG", "R")
_fill("GG", "ACGU", "G")

assert len(CODON_TABLE) == 64, "codon table must cover all 64 codons"

#: The three stop codons.
STOP_CODONS: FrozenSet[str] = frozenset(
    codon for codon, amino in CODON_TABLE.items() if amino == alphabet.STOP_SYMBOL
)

#: Codons per amino acid (and stop), sorted for determinism.
CODONS_FOR: Dict[str, Tuple[str, ...]] = {}
for _codon in sorted(CODON_TABLE):
    CODONS_FOR.setdefault(CODON_TABLE[_codon], tuple())
CODONS_FOR = {
    amino: tuple(sorted(c for c, a in CODON_TABLE.items() if a == amino))
    for amino in CODONS_FOR
}

#: Degeneracy (codon count) per amino acid / stop.
DEGENERACY: Dict[str, int] = {amino: len(codons) for amino, codons in CODONS_FOR.items()}


def codons_for(amino: str) -> Tuple[str, ...]:
    """All codons encoding ``amino`` (one-letter code; ``*`` for stop)."""
    try:
        return CODONS_FOR[amino]
    except KeyError:
        raise KeyError(f"unknown amino acid {amino!r}") from None


def paper_codons_for(amino: str) -> Tuple[str, ...]:
    """The codon set *as the paper uses it*.

    The paper's Fig. 2 discussion treats Serine as the four-codon ``UCN`` box
    only, silently dropping ``AGU``/``AGC`` (its three special Type III
    functions cover exactly Stop, Leu and Arg, and a six-codon Ser spanning
    two first-position letters cannot be expressed without a fourth
    function).  This helper returns that reduced set so the default encoder
    is bit-faithful to the paper; :func:`codons_for` keeps the biologically
    complete table for the extended mode and the baselines.
    """
    if amino == "S":
        return tuple(c for c in CODONS_FOR["S"] if c.startswith("UC"))
    return codons_for(amino)


def position_letters(codons: Tuple[str, ...], position: int) -> FrozenSet[str]:
    """The set of letters that appear at ``position`` across ``codons``."""
    if position not in (0, 1, 2):
        raise ValueError("codon position must be 0, 1 or 2")
    return frozenset(codon[position] for codon in codons)


def all_codons() -> Tuple[str, ...]:
    """All 64 codons in lexicographic order."""
    return tuple("".join(p) for p in product("ACGU", repeat=3))
