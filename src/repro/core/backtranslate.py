"""Back-translation of amino acids into degenerate codon patterns.

This implements §III-A of the paper.  Each amino acid (and the stop symbol)
is expanded into a three-position pattern whose elements are one of:

* **Type I** (:class:`ExactElement`) — the position is the same nucleotide in
  every codon of the amino acid;
* **Type II** (:class:`ConditionalElement`) — the admissible nucleotide set
  does not depend on the other positions (conditions ``U/C``, ``A/G``,
  ``not-G``, ``A/C`` as observed in the codon table);
* **Type III** (:class:`DependentElement`) — the admissible set depends on an
  *earlier* nucleotide of the same codon **in the reference**.  The standard
  table needs exactly three dependency functions (Stop, Leu, Arg); the
  always-match condition ``D`` is folded in as a fourth function, exactly as
  the paper does "for the sake of hardware simplicity".

The patterns are not hard-coded: :func:`derive_pattern` computes them from a
codon set, and module-level tables apply it to the whole codon table.  A key
hardware constraint is enforced during derivation — a Type III element's
dependency must be decidable from a **single bit** of a single earlier
nucleotide, because the FPGA comparator has exactly one spare LUT input (the
``S`` bit produced by the mux LUT).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, FrozenSet, Optional, Tuple, Union

from repro.core import codons as codon_mod
from repro.seq import alphabet
from repro.seq.sequence import ProteinSequence, as_protein

#: Every nucleotide — the ``D`` condition of the paper.
ALL_NUCLEOTIDES: FrozenSet[str] = frozenset(alphabet.RNA_NUCLEOTIDES)


class PatternError(ValueError):
    """Raised when a codon set cannot be expressed as a FabP pattern."""


@dataclass(frozen=True)
class DependentFunction:
    """A Type III dependency function (paper §III-B, functions F:00..F:11).

    ``source_offset`` counts reference elements backwards from the dependent
    position (1 = previous nucleotide, 2 = two back); ``source_bit`` selects
    the high or low bit of that nucleotide's 2-bit code.  The selected bit is
    the hardware ``S`` input: the admissible set is ``when0`` if it is 0 and
    ``when1`` if it is 1.  For the always-match function (``D``) the source is
    irrelevant and both sets cover all nucleotides.
    """

    name: str
    code: int  # the 2-bit F field value
    source_offset: int  # 1 or 2; 0 means "unused" (the D function)
    source_bit: str  # "hi" or "lo"; ignored when source_offset == 0
    when0: FrozenSet[str]
    when1: FrozenSet[str]

    def select_bit(self, prev1: str, prev2: str) -> int:
        """Compute the S bit from the two preceding reference nucleotides."""
        if self.source_offset == 0:
            return 0
        source = prev1 if self.source_offset == 1 else prev2
        hi, lo = alphabet.nucleotide_bits(source)
        return hi if self.source_bit == "hi" else lo

    def admissible(self, prev1: str, prev2: str) -> FrozenSet[str]:
        """The admissible nucleotide set given the preceding reference bases."""
        return self.when1 if self.select_bit(prev1, prev2) else self.when0


#: F:00 — third position of Stop (UAA/UAG vs UGA; keyed on hi bit of prev base).
FUNCTION_STOP = DependentFunction(
    name="STOP",
    code=0b00,
    source_offset=1,
    source_bit="hi",
    when0=frozenset({"A", "G"}),  # second base A -> third in {A, G}
    when1=frozenset({"A"}),  # second base G -> third must be A
)

#: F:01 — third position of Leu (UUR vs CUN; keyed on hi bit of first base).
FUNCTION_LEU = DependentFunction(
    name="LEU",
    code=0b01,
    source_offset=2,
    source_bit="hi",
    when0=ALL_NUCLEOTIDES,  # first base C -> any third
    when1=frozenset({"A", "G"}),  # first base U -> third in {A, G}
)

#: F:10 — third position of Arg (CGN vs AGR; keyed on lo bit of first base).
FUNCTION_ARG = DependentFunction(
    name="ARG",
    code=0b10,
    source_offset=2,
    source_bit="lo",
    when0=frozenset({"A", "G"}),  # first base A -> third in {A, G}
    when1=ALL_NUCLEOTIDES,  # first base C -> any third
)

#: F:11 — the D condition (any nucleotide), folded into Type III by the paper.
FUNCTION_ANY = DependentFunction(
    name="ANY",
    code=0b11,
    source_offset=0,
    source_bit="hi",
    when0=ALL_NUCLEOTIDES,
    when1=ALL_NUCLEOTIDES,
)

#: All four functions, indexed by their 2-bit F code.
FUNCTIONS_BY_CODE: Tuple[DependentFunction, ...] = (
    FUNCTION_STOP,
    FUNCTION_LEU,
    FUNCTION_ARG,
    FUNCTION_ANY,
)

#: The Type II conditions the paper supports, with their 2-bit encoding
#: (Fig. 5 caption: U/C=00, A/G=01, G-bar=10, A/C=11).
CONDITION_CODES: Dict[FrozenSet[str], int] = {
    frozenset({"U", "C"}): 0b00,
    frozenset({"A", "G"}): 0b01,
    frozenset({"A", "C", "U"}): 0b10,  # "not G", written G-bar in the paper
    frozenset({"A", "C"}): 0b11,
}

CONDITIONS_BY_CODE: Dict[int, FrozenSet[str]] = {
    code: letters for letters, code in CONDITION_CODES.items()
}


@dataclass(frozen=True)
class ExactElement:
    """Type I: the reference nucleotide must equal ``nucleotide``."""

    nucleotide: str

    def matches(self, ref: str, prev1: str = "A", prev2: str = "A") -> bool:
        return ref == self.nucleotide

    def admissible(self, prev1: str = "A", prev2: str = "A") -> FrozenSet[str]:
        return frozenset({self.nucleotide})

    def __str__(self) -> str:
        return self.nucleotide


@dataclass(frozen=True)
class ConditionalElement:
    """Type II: the reference nucleotide must be in ``letters``."""

    letters: FrozenSet[str]

    def __post_init__(self) -> None:
        if self.letters not in CONDITION_CODES:
            raise PatternError(
                f"condition {sorted(self.letters)} is not one of the paper's "
                "supported Type II conditions"
            )

    def matches(self, ref: str, prev1: str = "A", prev2: str = "A") -> bool:
        return ref in self.letters

    def admissible(self, prev1: str = "A", prev2: str = "A") -> FrozenSet[str]:
        return self.letters

    def __str__(self) -> str:
        if self.letters == frozenset({"A", "C", "U"}):
            return "~G"
        return "/".join(sorted(self.letters))


@dataclass(frozen=True)
class DependentElement:
    """Type III: admissible set depends on earlier reference nucleotides."""

    function: DependentFunction

    def matches(self, ref: str, prev1: str = "A", prev2: str = "A") -> bool:
        return ref in self.function.admissible(prev1, prev2)

    def admissible(self, prev1: str = "A", prev2: str = "A") -> FrozenSet[str]:
        return self.function.admissible(prev1, prev2)

    def __str__(self) -> str:
        if self.function is FUNCTION_ANY:
            return "D"
        return f"F:{self.function.code:02b}"


PatternElement = Union[ExactElement, ConditionalElement, DependentElement]


@dataclass(frozen=True)
class CodonPattern:
    """A three-element degenerate codon pattern for one amino acid."""

    amino: str
    elements: Tuple[PatternElement, PatternElement, PatternElement]

    def matches_codon(self, codon: str) -> bool:
        """True if ``codon`` is admitted by this pattern.

        Within-codon context: the dependent third position sees the codon's
        own second base as ``prev1`` and first base as ``prev2``.
        """
        if len(codon) != 3:
            raise ValueError("a codon has exactly three nucleotides")
        first = self.elements[0].matches(codon[0])
        second = self.elements[1].matches(codon[1], prev1=codon[0])
        third = self.elements[2].matches(codon[2], prev1=codon[1], prev2=codon[0])
        return first and second and third

    def matched_codons(self) -> FrozenSet[str]:
        """Every codon (of all 64) this pattern admits."""
        return frozenset(c for c in codon_mod.all_codons() if self.matches_codon(c))

    def __str__(self) -> str:
        return "".join(
            str(e) if isinstance(e, ExactElement) else f"({e})" for e in self.elements
        )


def _independent_element(letters: FrozenSet[str]) -> PatternElement:
    """Build the element for a position whose letter set is context-free."""
    if len(letters) == 1:
        return ExactElement(next(iter(letters)))
    if letters == ALL_NUCLEOTIDES:
        # The paper folds D into Type III (function F:11) to keep only four
        # Type II condition codes.
        return DependentElement(FUNCTION_ANY)
    if letters in CONDITION_CODES:
        return ConditionalElement(letters)
    raise PatternError(
        f"letter set {sorted(letters)} is not representable as a Type II condition"
    )


def _find_dependency(
    codons: Tuple[str, ...],
) -> Tuple[PatternElement, PatternElement, DependentFunction]:
    """Resolve a non-product codon set into two leading elements + a function.

    The third position's admissible set must be a function of a *single bit*
    of either the first or the second base — the hardware has exactly one
    spare LUT input for the dependency.  Raises :class:`PatternError` when no
    such single-bit discriminator exists.
    """
    first_letters = codon_mod.position_letters(codons, 0)
    second_letters = codon_mod.position_letters(codons, 1)
    prefixes = {codon[:2] for codon in codons}
    expected_prefixes = {a + b for a, b in product(sorted(first_letters), sorted(second_letters))}
    if prefixes != expected_prefixes:
        raise PatternError(
            "first two positions are not independent; FabP patterns cannot "
            f"express codon set {codons}"
        )
    thirds_by_prefix: Dict[str, FrozenSet[str]] = {
        prefix: frozenset(c[2] for c in codons if c[:2] == prefix) for prefix in prefixes
    }

    for source_offset, position in ((2, 0), (1, 1)):
        # Does the third-position set depend only on this source position?
        by_source: Dict[str, FrozenSet[str]] = {}
        consistent = True
        for prefix, thirds in thirds_by_prefix.items():
            key = prefix[position]
            if key in by_source and by_source[key] != thirds:
                consistent = False
                break
            by_source[key] = thirds
        if not consistent:
            continue
        for source_bit in ("hi", "lo"):
            groups: Dict[int, FrozenSet[str]] = {}
            ok = True
            for letter, thirds in by_source.items():
                hi, lo = alphabet.nucleotide_bits(letter)
                bit = hi if source_bit == "hi" else lo
                if bit in groups and groups[bit] != thirds:
                    ok = False
                    break
                groups[bit] = thirds
            if not ok:
                continue
            when0 = groups.get(0, ALL_NUCLEOTIDES)
            when1 = groups.get(1, ALL_NUCLEOTIDES)
            function = _match_known_function(source_offset, source_bit, when0, when1)
            if function is None:
                continue
            return (
                _independent_element(first_letters),
                _independent_element(second_letters),
                function,
            )
    raise PatternError(
        f"no single-bit dependency discriminates codon set {codons}; "
        "the paper's three Type III functions cannot express it"
    )


def _match_known_function(
    source_offset: int, source_bit: str, when0: FrozenSet[str], when1: FrozenSet[str]
) -> Optional[DependentFunction]:
    """Map a derived dependency onto one of the paper's fixed functions."""
    for function in (FUNCTION_STOP, FUNCTION_LEU, FUNCTION_ARG):
        if (
            function.source_offset == source_offset
            and function.source_bit == source_bit
            and function.when0 == when0
            and function.when1 == when1
        ):
            return function
    return None


def derive_pattern(amino: str, codons: Tuple[str, ...]) -> CodonPattern:
    """Derive the FabP pattern for an amino acid from its codon set."""
    if not codons:
        raise PatternError(f"amino acid {amino!r} has no codons")
    letter_sets = [codon_mod.position_letters(codons, p) for p in range(3)]
    expected = len(letter_sets[0]) * len(letter_sets[1]) * len(letter_sets[2])
    if len(set(codons)) == expected:
        elements = tuple(_independent_element(s) for s in letter_sets)
    else:
        first, second, function = _find_dependency(codons)
        elements = (first, second, DependentElement(function))
    pattern = CodonPattern(amino, elements)  # type: ignore[arg-type]
    admitted = pattern.matched_codons()
    if admitted != frozenset(codons):
        raise PatternError(
            f"derived pattern {pattern} for {amino!r} admits {sorted(admitted)} "
            f"but the codon set is {sorted(codons)}"
        )
    return pattern


def _build_tables() -> Tuple[Dict[str, CodonPattern], Dict[str, Tuple[CodonPattern, ...]]]:
    paper: Dict[str, CodonPattern] = {}
    extended: Dict[str, Tuple[CodonPattern, ...]] = {}
    for amino in alphabet.AMINO_ACIDS_WITH_STOP:
        paper[amino] = derive_pattern(amino, codon_mod.paper_codons_for(amino))
        full = codon_mod.codons_for(amino)
        if frozenset(full) == paper[amino].matched_codons():
            extended[amino] = (paper[amino],)
        else:
            # Split the remainder into its own pattern (Ser: the AGU/AGC box).
            remainder = tuple(sorted(set(full) - paper[amino].matched_codons()))
            extended[amino] = (paper[amino], derive_pattern(amino, remainder))
    return paper, extended


#: Paper-faithful pattern per amino acid (Ser drops AGU/AGC, see codons.py).
BACK_TRANSLATION_TABLE: Dict[str, CodonPattern]

#: Extended mode: tuple of patterns whose union covers *all* codons.
EXTENDED_TABLE: Dict[str, Tuple[CodonPattern, ...]]

BACK_TRANSLATION_TABLE, EXTENDED_TABLE = _build_tables()


def back_translate(protein: Union[ProteinSequence, str], *, table: Optional[Dict[str, CodonPattern]] = None) -> Tuple[CodonPattern, ...]:
    """Back-translate a protein into a tuple of codon patterns (paper mode).

    This is the symbolic stage of the pipeline — the encoder in
    :mod:`repro.core.encoding` turns the result into 6-bit instructions.
    """
    sequence = as_protein(protein)
    table = table if table is not None else BACK_TRANSLATION_TABLE
    try:
        return tuple(table[aa] for aa in sequence.letters)
    except KeyError as exc:
        raise KeyError(f"no back-translation pattern for residue {exc}") from None


def back_translate_extended(protein: Union[ProteinSequence, str]) -> Tuple[Tuple[CodonPattern, ...], ...]:
    """Extended back-translation: per residue, *all* patterns (union = all codons)."""
    sequence = as_protein(protein)
    return tuple(EXTENDED_TABLE[aa] for aa in sequence.letters)


def pattern_string(protein: Union[ProteinSequence, str]) -> str:
    """Human-readable degenerate pattern, paper notation (e.g. ``UU(U/C)``)."""
    return "-".join(str(p) for p in back_translate(protein))
