"""Golden (normative) semantics of the FabP custom comparator.

The hardware comparator is two LUT6s per query element (§III-D):

* a **mux LUT** that produces the spare input ``X`` — either the
  instruction's own bit ``b3`` (Types I/II and the D function) or a single
  bit of an earlier reference nucleotide (Type III), selected by the two
  configuration bits;
* a **comparison LUT** over ``(b0, b1, b2, X, ref_hi, ref_lo)`` programmed
  with the matching function (Fig. 5b).

This module defines those two functions in pure Python.  They are the single
source of truth: the RTL model derives its LUT INIT vectors by enumerating
them, the vectorized aligner derives its lookup tables from them, and tests
cross-check all three representations against the codon table.

Boundary convention: when a dependent element looks back past the start of
the reference, the missing nucleotide reads as ``A`` (code 0) — matching the
hardware, whose stream buffer resets to zero.  Back-translated queries never
hit this case for *meaningful* bits (dependent elements sit at codon position
2, so their sources are inside the aligned window), but raw instruction
streams may.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.core import backtranslate as bt
from repro.core import encoding as enc
from repro.core.contracts import kernel_summary
from repro.seq import alphabet


def mux_output(instruction: int, prev1_code: int, prev2_code: int) -> int:
    """The mux LUT: compute the X bit for one instruction.

    ``prev1_code``/``prev2_code`` are the 2-bit codes of the reference
    nucleotides one and two positions before the one under comparison.
    """
    b3 = (instruction >> 3) & 1
    config = ((instruction >> 4) & 1) | (((instruction >> 5) & 1) << 1)
    if config == enc.CONFIG_SELF:
        return b3
    if config == enc.CONFIG_PREV1_HI:
        return (prev1_code >> 1) & 1
    if config == enc.CONFIG_PREV2_LO:
        return prev2_code & 1
    return (prev2_code >> 1) & 1  # CONFIG_PREV2_HI


def comparison_lut_output(
    b0: int, b1: int, b2: int, x: int, ref_hi: int, ref_lo: int
) -> int:
    """The comparison LUT: one output bit from its six inputs (Fig. 5b).

    This is a *pure* function of six bits; the RTL LUT INIT is its
    enumeration.  ``(b0, b1, b2)`` are the instruction's first three bits,
    ``x`` is the mux output, ``(ref_hi, ref_lo)`` the reference nucleotide.
    """
    ref_letter = alphabet.RNA_NUCLEOTIDES[(ref_hi << 1) | ref_lo]
    if b0 == 0:
        code = (b2 << 1) | x
        if b1 == 0:
            # Type I: exact match against the nucleotide (b2=hi, x carries b3=lo).
            return int(code == ((ref_hi << 1) | ref_lo))
        # Type II: conditional match.
        return int(ref_letter in bt.CONDITIONS_BY_CODE[code])
    # Type III: dependent match; F code is (b1, b2), S is x.
    function = bt.FUNCTIONS_BY_CODE[(b1 << 1) | b2]
    admissible = function.when1 if x else function.when0
    return int(ref_letter in admissible)


def instruction_matches(
    instruction: int, ref_code: int, prev1_code: int = 0, prev2_code: int = 0
) -> bool:
    """Full comparator: does the reference nucleotide satisfy the instruction?

    Composes the mux LUT and the comparison LUT exactly like the hardware.
    """
    if not 0 <= instruction < 64:
        raise enc.EncodingError(f"instruction {instruction!r} is not a 6-bit value")
    if not 0 <= ref_code < 4:
        raise ValueError(f"reference code {ref_code!r} is not a 2-bit value")
    x = mux_output(instruction, prev1_code, prev2_code)
    b0 = instruction & 1
    b1 = (instruction >> 1) & 1
    b2 = (instruction >> 2) & 1
    return bool(
        comparison_lut_output(b0, b1, b2, x, (ref_code >> 1) & 1, ref_code & 1)
    )


def comparison_lut_init() -> int:
    """The 64-bit INIT vector of the comparison LUT.

    Input-to-address mapping (the RTL model uses the same): address bit 0 is
    ``b0``, then ``b1``, ``b2``, ``x``, ``ref_hi``; address bit 5 is
    ``ref_lo``.  Returned as an integer whose bit ``a`` is the output for
    address ``a`` — the Xilinx ``LUT6 #(.INIT(...))`` convention.
    """
    init = 0
    for address in range(64):
        b0 = address & 1
        b1 = (address >> 1) & 1
        b2 = (address >> 2) & 1
        x = (address >> 3) & 1
        ref_hi = (address >> 4) & 1
        ref_lo = (address >> 5) & 1
        if comparison_lut_output(b0, b1, b2, x, ref_hi, ref_lo):
            init |= 1 << address
    return init


def mux_lut_init() -> int:
    """The 64-bit INIT vector of the mux LUT.

    Inputs: address bit 0 is ``b3``, bit 1 ``prev1_hi``, bit 2 ``prev2_lo``,
    bit 3 ``prev2_hi``, bits 4-5 the config code (b4, b5).
    """
    init = 0
    for address in range(64):
        b3 = address & 1
        prev1_hi = (address >> 1) & 1
        prev2_lo = (address >> 2) & 1
        prev2_hi = (address >> 3) & 1
        config = (address >> 4) & 3
        if config == enc.CONFIG_SELF:
            x = b3
        elif config == enc.CONFIG_PREV1_HI:
            x = prev1_hi
        elif config == enc.CONFIG_PREV2_LO:
            x = prev2_lo
        else:
            x = prev2_hi
        if x:
            init |= 1 << address
    return init


@kernel_summary(("uint8", 0, 1), ("uint8", 0, 3))
def instruction_tables(instructions: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-instruction lookup tables for the vectorized aligner.

    Returns ``(tables, configs)`` where ``tables[i, x, ref]`` is the match
    bit for instruction ``i`` given mux output ``x`` and reference code
    ``ref``, and ``configs[i]`` is the instruction's 2-bit config field
    (which X source to use).
    """
    instructions = np.asarray(instructions, dtype=np.uint8)
    tables = np.zeros((len(instructions), 2, 4), dtype=np.uint8)
    configs = np.zeros(len(instructions), dtype=np.uint8)
    for i, instr in enumerate(instructions):
        instr = int(instr)
        b0, b1, b2 = instr & 1, (instr >> 1) & 1, (instr >> 2) & 1
        configs[i] = ((instr >> 4) & 1) | (((instr >> 5) & 1) << 1)
        for x in (0, 1):
            for ref in range(4):
                tables[i, x, ref] = comparison_lut_output(
                    b0, b1, b2, x, (ref >> 1) & 1, ref & 1
                )
    return tables, configs


def truth_table_rows() -> Iterator[Tuple[str, str, int]]:
    """Enumerate the comparison LUT as human-readable rows (Fig. 5b).

    Yields ``(column_label, ref_letter, output)`` for every populated column
    of the paper's figure: the four Type I nucleotides, four Type II
    conditions, and the four Type III (function, S) combinations.
    """
    for code, letter in enumerate(alphabet.RNA_NUCLEOTIDES):
        for ref in range(4):
            hi, lo = (code >> 1) & 1, code & 1
            out = comparison_lut_output(0, 0, hi, lo, (ref >> 1) & 1, ref & 1)
            yield f"00-{letter}", alphabet.RNA_NUCLEOTIDES[ref], out
    for code in range(4):
        letters = bt.CONDITIONS_BY_CODE[code]
        label = "~G" if letters == frozenset({"A", "C", "U"}) else "/".join(sorted(letters))
        for ref in range(4):
            hi, lo = (code >> 1) & 1, code & 1
            out = comparison_lut_output(0, 1, hi, lo, (ref >> 1) & 1, ref & 1)
            yield f"01-{label}", alphabet.RNA_NUCLEOTIDES[ref], out
    for function in bt.FUNCTIONS_BY_CODE:
        hi, lo = (function.code >> 1) & 1, function.code & 1
        for s in (0, 1):
            for ref in range(4):
                out = comparison_lut_output(1, hi, lo, s, (ref >> 1) & 1, ref & 1)
                yield f"1-{function.code:02b}-{s}", alphabet.RNA_NUCLEOTIDES[ref], out
