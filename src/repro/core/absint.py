"""Cross-layer abstract interpretation of the 6-bit instruction stream.

The encoder (:mod:`repro.core.encoding`), the golden comparator semantics
(:mod:`repro.core.comparator`) and the generated netlist
(:mod:`repro.rtl.comparator`) are three representations of the same §III-B
matching machine.  PR 1's lint rules check each layer *structurally*; this
module checks that they **agree semantically**, element by element, with no
simulation vectors:

* :func:`interpret_stream` executes an instruction stream over the abstract
  nucleotide domain (sets of the four codes, encoded as 4-bit masks) and
  derives per-element facts: which reference nucleotides *may* match (under
  some dependency context) and which *must* match (under every context).
* :func:`score_bounds` folds the facts into a query-specific score interval
  — a tighter, semantic companion to the structural 10-bit range proof in
  :mod:`repro.rtl.ranges`.
* :func:`codon_facts` reassembles per-codon accept sets (dependent elements
  resolve against their own codon's earlier positions) and cross-checks them
  against the codon table: back-translation round-trips through the
  instruction encoding.
* :func:`check_comparator_netlist` / :func:`verify_encoded_query` compare,
  per query element, the generated comparator netlist's exact symbolic
  function (via :mod:`repro.rtl.symbolic`) with the golden semantics over
  the full 2^11 (instruction, reference, context) space — any encoder/
  netlist divergence surfaces at build time with a minimized counterexample.

``fabp-repro prove`` drives these checks over every amino acid's generated
comparator; lint rule SA001 runs the netlist agreement check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import codons as codon_mod
from repro.core import comparator as golden
from repro.core import encoding as enc
from repro.rtl.comparator import build_instance_comparator
from repro.rtl.netlist import Netlist
from repro.rtl.symbolic import (
    DEFAULT_MAX_SUPPORT,
    Space,
    SymbolicEvaluator,
    SymbolicFunction,
)
from repro.seq import alphabet

#: The abstract nucleotide domain: bit ``c`` set means code ``c`` is possible.
TOP = 0b1111

#: Canonical variable roles of one element comparator cone, LSB first.  The
#: golden mask and every netlist cone are evaluated in this order, so
#: equality is a single integer comparison of 2^11-bit truth tables.
ELEMENT_ROLES: Tuple[str, ...] = (
    "b0",
    "b1",
    "b2",
    "b3",
    "b4",
    "b5",
    "ref_lo",
    "ref_hi",
    "prev1_hi",
    "prev2_lo",
    "prev2_hi",
)

_GOLDEN_MASK: Optional[int] = None


def golden_element_mask() -> int:
    """The golden comparator as one truth table over :data:`ELEMENT_ROLES`.

    Bit ``a`` is :func:`repro.core.comparator.instruction_matches` evaluated
    at the assignment minterm ``a`` decodes to — the reference semantics of
    *every* instruction at once, in netlist-comparable form.
    """
    global _GOLDEN_MASK
    if _GOLDEN_MASK is None:
        mask = 0
        for address in range(1 << len(ELEMENT_ROLES)):
            bits = [(address >> i) & 1 for i in range(len(ELEMENT_ROLES))]
            instruction = sum(bits[i] << i for i in range(6))
            ref_code = bits[6] | (bits[7] << 1)
            prev1_code = bits[8] << 1
            prev2_code = bits[9] | (bits[10] << 1)
            if golden.instruction_matches(instruction, ref_code, prev1_code, prev2_code):
                mask |= 1 << address
        _GOLDEN_MASK = mask
    return _GOLDEN_MASK


@dataclass(frozen=True)
class ElementFact:
    """Abstract facts about one instruction of the stream."""

    index: int
    instruction: int
    kind: str  # "exact" | "conditional" | "dependent" | "invalid"
    valid: bool  # decodes to a pattern element under the normative layout
    may_match: int  # nucleotide mask: matches under SOME (prev1, prev2)
    must_match: int  # nucleotide mask: matches under EVERY (prev1, prev2)
    uses_prev1: bool
    uses_prev2: bool
    error: Optional[str] = None

    @property
    def always_matches(self) -> bool:
        """True when every reference window satisfies this element."""
        return self.must_match == TOP

    @property
    def never_matches(self) -> bool:
        return self.may_match == 0

    def to_dict(self) -> Dict[str, object]:
        def letters(mask: int) -> str:
            return "".join(
                alphabet.RNA_NUCLEOTIDES[c] for c in range(4) if (mask >> c) & 1
            )

        return {
            "index": self.index,
            "instruction": enc.instruction_bit_string(self.instruction),
            "kind": self.kind,
            "valid": self.valid,
            "may_match": letters(self.may_match),
            "must_match": letters(self.must_match),
            "uses_prev1": self.uses_prev1,
            "uses_prev2": self.uses_prev2,
            "error": self.error,
        }


def _element_kind(instruction: int) -> str:
    if instruction & 1:
        return "dependent"
    return "conditional" if (instruction >> 1) & 1 else "exact"


def interpret_element(index: int, instruction: int) -> ElementFact:
    """Abstractly execute one instruction over the nucleotide domain."""
    valid = True
    error: Optional[str] = None
    try:
        enc.decode_element(instruction)
    except enc.EncodingError as exc:
        valid = False
        error = str(exc)
    may = 0
    must = TOP
    uses_prev1 = False
    uses_prev2 = False
    for ref_code in range(4):
        outcomes = set()
        for prev1 in range(4):
            for prev2 in range(4):
                outcomes.add(
                    golden.instruction_matches(instruction, ref_code, prev1, prev2)
                )
        if True in outcomes:
            may |= 1 << ref_code
        if False in outcomes:
            must &= ~(1 << ref_code)
    # Context sensitivity: does the outcome depend on either look-back?
    for ref_code in range(4):
        for prev1 in range(4):
            for prev2 in range(4):
                base = golden.instruction_matches(instruction, ref_code, prev1, prev2)
                if not uses_prev1 and any(
                    golden.instruction_matches(instruction, ref_code, p, prev2) != base
                    for p in range(4)
                ):
                    uses_prev1 = True
                if not uses_prev2 and any(
                    golden.instruction_matches(instruction, ref_code, prev1, p) != base
                    for p in range(4)
                ):
                    uses_prev2 = True
    return ElementFact(
        index=index,
        instruction=instruction,
        kind=_element_kind(instruction),
        valid=valid,
        may_match=may,
        must_match=must,
        uses_prev1=uses_prev1,
        uses_prev2=uses_prev2,
        error=error,
    )


def interpret_stream(instructions: Sequence[int]) -> List[ElementFact]:
    """Abstract execution of a whole instruction stream."""
    return [
        interpret_element(index, int(instruction))
        for index, instruction in enumerate(instructions)
    ]


def score_bounds(facts: Sequence[ElementFact]) -> Tuple[int, int]:
    """Provable score interval for any reference window.

    An element scores +1 on every window iff it matches under all contexts
    and nucleotides; it can score at all iff some (nucleotide, context)
    matches.  The interval is exact per element but ignores cross-element
    correlation, so it is a sound over-approximation of the reachable set.
    """
    lo = sum(1 for fact in facts if fact.always_matches)
    hi = sum(1 for fact in facts if not fact.never_matches)
    return lo, hi


@dataclass(frozen=True)
class CodonFact:
    """Accepted codons for one instruction triple (one query residue)."""

    residue_index: int
    accepted: Tuple[str, ...]  # RNA codon strings, sorted
    exact: bool  # False when a position-0/1 element needed its context


def codon_facts(facts: Sequence[ElementFact]) -> List[CodonFact]:
    """Per-codon accept sets, resolving in-codon dependencies exactly.

    Elements at codon positions 0 and 1 may not look outside the codon
    window (back-translated streams never do); if one does, its look-back is
    treated as unconstrained and the set is flagged inexact (still sound:
    an over-approximation).
    """
    if len(facts) % 3:
        raise ValueError(f"stream length {len(facts)} is not a multiple of 3")
    results: List[CodonFact] = []
    for residue in range(len(facts) // 3):
        e0, e1, e2 = facts[3 * residue : 3 * residue + 3]
        exact = not (e0.uses_prev1 or e0.uses_prev2 or e1.uses_prev2)
        accepted: List[str] = []
        for codon_value in range(64):
            n0 = (codon_value >> 4) & 3
            n1 = (codon_value >> 2) & 3
            n2 = codon_value & 3
            # Position 0's look-backs leave the codon; quantify over them.
            ok0 = any(
                golden.instruction_matches(e0.instruction, n0, p1, p2)
                for p1 in range(4)
                for p2 in range(4)
            )
            ok1 = any(
                golden.instruction_matches(e1.instruction, n1, n0, p2)
                for p2 in range(4)
            )
            ok2 = golden.instruction_matches(e2.instruction, n2, n1, n0)
            if ok0 and ok1 and ok2:
                accepted.append(
                    alphabet.RNA_NUCLEOTIDES[n0]
                    + alphabet.RNA_NUCLEOTIDES[n1]
                    + alphabet.RNA_NUCLEOTIDES[n2]
                )
        results.append(
            CodonFact(residue_index=residue, accepted=tuple(sorted(accepted)), exact=exact)
        )
    return results


@dataclass(frozen=True)
class Divergence:
    """A proven mismatch between netlist and reference semantics."""

    element: int
    assignment: Dict[str, int]  # minimized: only roles the diff depends on
    expected: int  # golden output at the counterexample
    actual: int  # netlist output at the counterexample

    def describe(self) -> str:
        bits = ", ".join(f"{k}={v}" for k, v in sorted(self.assignment.items()))
        return (
            f"element {self.element}: netlist={self.actual} but "
            f"reference={self.expected} at {bits}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "element": self.element,
            "assignment": dict(self.assignment),
            "expected": self.expected,
            "actual": self.actual,
        }


def _element_space(element: int) -> Tuple[Space, Dict[str, str]]:
    """The canonical symbolic space of one instance-comparator element.

    Variables are the element's actual net names, ordered by
    :data:`ELEMENT_ROLES`; the returned map translates net name -> role.
    """
    names = [f"q{element}[{bit}]" for bit in range(6)]
    names += [
        f"ref{element + 2}[0]",  # ref_lo
        f"ref{element + 2}[1]",  # ref_hi
        f"ref{element + 1}[1]",  # prev1_hi
        f"ref{element}[0]",  # prev2_lo
        f"ref{element}[1]",  # prev2_hi
    ]
    roles = dict(zip(names, ELEMENT_ROLES))
    return Space(names), roles


def _divergence_from_diff(
    element: int, space: Space, roles: Dict[str, str], diff: int, golden_mask: int
) -> Divergence:
    """Build a minimized counterexample from a non-zero XOR truth table."""
    diff_function = SymbolicFunction(space, diff)
    relevant = set(diff_function.support())
    minterm = diff_function.satisfying_minterm()
    assert minterm is not None
    assignment = space.assignment_of(minterm)
    minimized = {
        roles[name]: value for name, value in assignment.items() if name in relevant
    }
    expected = (golden_mask >> minterm) & 1
    return Divergence(
        element=element,
        assignment=minimized,
        expected=expected,
        actual=expected ^ 1,
    )


def check_comparator_netlist(
    netlist: Netlist,
    num_elements: int,
    *,
    max_support: int = DEFAULT_MAX_SUPPORT,
) -> List[Divergence]:
    """Prove or refute, per element, netlist == reference semantics.

    ``netlist`` must follow :func:`repro.rtl.comparator.build_instance_comparator`'s
    port naming.  Each element's ``match[i]`` cone is evaluated symbolically
    in the canonical role order and integer-compared against
    :func:`golden_element_mask` — exact over all 2^11 (instruction,
    reference, context) combinations, no vectors enumerated.
    """
    evaluator = SymbolicEvaluator(netlist, max_support=max_support)
    golden_mask = golden_element_mask()
    divergences: List[Divergence] = []
    for element in range(num_elements):
        space, roles = _element_space(element)
        net = netlist.outputs[f"match[{element}]"]
        function = evaluator.functions([net], space)[0]
        diff = function.mask ^ golden_mask
        if diff:
            divergences.append(
                _divergence_from_diff(element, space, roles, diff, golden_mask)
            )
    return divergences


@dataclass
class AbsintReport:
    """Everything the abstract interpreter proved about one encoded query."""

    query: str
    num_elements: int
    facts: List[ElementFact]
    score_lo: int
    score_hi: int
    codons: List[CodonFact]
    codon_mismatches: List[str] = field(default_factory=list)
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            not self.divergences
            and not self.codon_mismatches
            and all(fact.valid for fact in self.facts)
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "query": self.query,
            "num_elements": self.num_elements,
            "score_range": [self.score_lo, self.score_hi],
            "invalid_elements": [
                fact.to_dict() for fact in self.facts if not fact.valid
            ],
            "codon_mismatches": list(self.codon_mismatches),
            "divergences": [divergence.to_dict() for divergence in self.divergences],
            "ok": self.ok,
        }


def verify_encoded_query(
    encoded: enc.EncodedQuery,
    *,
    netlist: Optional[Netlist] = None,
    max_support: int = DEFAULT_MAX_SUPPORT,
) -> AbsintReport:
    """The full cross-layer check for one back-translated query.

    1. Abstract execution of the instruction stream (validity + match facts).
    2. Codon accept sets vs the codon table: every residue's reassembled
       set must equal the codons that translate to it.
    3. Symbolic netlist agreement, per element, against the golden mask.
       ``netlist`` defaults to a freshly generated instance comparator; pass
       one explicitly to verify a hand-modified or deserialized design.
    """
    instructions = list(encoded.instructions)
    facts = interpret_stream(instructions)
    lo, hi = score_bounds(facts)
    codons = codon_facts(facts)
    mismatches: List[str] = []
    for residue_index, fact in enumerate(codons):
        residue = str(encoded.protein)[residue_index]
        # The default encoder is paper-faithful: Ser covers the UCN box only
        # (see codons.paper_codons_for), so that is the normative target.
        expected = tuple(sorted(codon_mod.paper_codons_for(residue)))
        if fact.accepted != expected:
            mismatches.append(
                f"residue {residue_index} ({residue}): instruction triple accepts "
                f"{'/'.join(fact.accepted) or 'nothing'}, codon table says "
                f"{'/'.join(expected)}"
            )
    if netlist is None:
        netlist = build_instance_comparator(len(instructions))
    divergences = check_comparator_netlist(
        netlist, len(instructions), max_support=max_support
    )
    return AbsintReport(
        query=str(encoded.protein),
        num_elements=len(instructions),
        facts=facts,
        score_lo=lo,
        score_hi=hi,
        codons=codons,
        codon_mismatches=mismatches,
        divergences=divergences,
    )


def verify_amino_acid(
    amino: str, *, max_support: int = DEFAULT_MAX_SUPPORT
) -> AbsintReport:
    """Cross-layer verification of one amino acid's generated comparator."""
    return verify_encoded_query(enc.encode_query(amino), max_support=max_support)


def verify_all_amino_acids(
    *, max_support: int = DEFAULT_MAX_SUPPORT
) -> Dict[str, AbsintReport]:
    """Run :func:`verify_amino_acid` for the full alphabet (the `prove` CLI)."""
    return {
        amino: verify_amino_acid(amino, max_support=max_support)
        for amino in alphabet.AMINO_ACIDS
    }


def instruction_stream_findings(
    instructions: Sequence[int],
) -> List[Tuple[int, str]]:
    """Semantic findings over a raw stream, for the IS lint family.

    Returns ``(index, message)`` pairs:

    * invalid encodings (also IS002's structural domain);
    * elements that can never match (dead columns silently zeroing every
      alignment score) — vacuous under the current ISA, kept as a
      soundness net should the encoding grow;
    * look-back misplacement: an element at codon position 0 (or 1) whose
      outcome depends on ``prev1``/``prev2`` (or ``prev2``) reads across
      the codon boundary.  The back-translation encoder never emits such
      streams, so this flags hand-assembled or corrupted programs whose
      matches silently couple adjacent residues.

    Valid always-match elements are normal (the paper's padding), so they
    are not reported.
    """
    findings: List[Tuple[int, str]] = []
    for fact in interpret_stream(instructions):
        if not fact.valid:
            findings.append(
                (fact.index, f"invalid encoding: {fact.error or 'undecodable'}")
            )
            continue
        if fact.never_matches:
            findings.append(
                (
                    fact.index,
                    "element can never match any reference nucleotide "
                    "(dead column: every window loses one score point)",
                )
            )
            continue
        position = fact.index % 3
        crossing = []
        if position == 0 and fact.uses_prev1:
            crossing.append("prev1")
        if position in (0, 1) and fact.uses_prev2:
            crossing.append("prev2")
        if crossing:
            findings.append(
                (
                    fact.index,
                    f"{fact.kind} element at codon position {position} "
                    f"depends on {' and '.join(crossing)} outside its codon "
                    "window — back-translated streams never look across the "
                    "codon boundary",
                )
            )
    return findings


__all__ = [
    "TOP",
    "ELEMENT_ROLES",
    "AbsintReport",
    "CodonFact",
    "Divergence",
    "ElementFact",
    "check_comparator_netlist",
    "codon_facts",
    "golden_element_mask",
    "instruction_stream_findings",
    "interpret_element",
    "interpret_stream",
    "score_bounds",
    "verify_all_amino_acids",
    "verify_amino_acid",
    "verify_encoded_query",
]
