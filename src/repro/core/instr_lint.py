"""Static lint passes over FabP 6-bit instruction streams (§III-B).

The encoder in :mod:`repro.core.encoding` can only *produce* well-formed
streams, but instruction memories also come from files, DMA payloads and
tests — these passes validate any raw stream against the invariants the
hardware silently assumes:

======  ========================  ========  =====================================
Rule    Name                      Severity  Guards
======  ========================  ========  =====================================
IS001   instruction-range         error     every word is a 6-bit value
IS002   undecodable               error     every word is a legal encoding
                                            (opcode validity, config/b3 rules)
IS003   cross-codon-dependency    error     Type III config bits reference only
                                            *earlier nucleotides of the same
                                            codon* (§III-B / Fig. 5a)
IS004   interior-pad              warning   all-match pad codons appear only as
                                            a suffix (§IV-A padding contract)
IS005   roundtrip-mismatch        error     encode(decode(w)) == w — the encoder
                                            and decoder cannot drift apart
IS006   ragged-stream             error     stream length is a multiple of 3
                                            (three instructions per residue)
IS007   semantic-element          warning   abstract interpretation over the
                                            nucleotide domain: no dead
                                            columns (an element that can
                                            never match costs every window
                                            one score point) and no look-back
                                            across a codon boundary
======  ========================  ========  =====================================

Entry points: :func:`lint_instructions` for raw streams and
:func:`lint_query` for :class:`repro.core.encoding.EncodedQuery` objects.
See ``docs/lint_rules.md`` for the catalogue and suppression guidance.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core import backtranslate as bt
from repro.core import encoding as enc
from repro.lint import Finding, LintReport, Rule, RuleRegistry, Severity

#: The instruction-domain rule registry.
INSTRUCTION_RULES = RuleRegistry("instruction-stream")


def _location(index: int) -> str:
    return f"instr[{index}] (codon {index // 3}, pos {index % 3})"


def _in_range(value: object) -> bool:
    return isinstance(value, int) and 0 <= value < 64


def _decode(value: int) -> Optional[bt.PatternElement]:
    try:
        return enc.decode_element(value)
    except enc.EncodingError:
        return None


@INSTRUCTION_RULES.register(
    "IS001",
    "instruction-range",
    Severity.ERROR,
    "every instruction word fits the 6-bit memory layout "
    "(INSTRUCTION_BITS); wider words would be silently truncated by the "
    "hardware's distributed memory",
)
def _check_range(*, rule: Rule, instructions: Sequence[int]) -> Iterator[Finding]:
    for index, value in enumerate(instructions):
        if not _in_range(value):
            yield rule.finding(
                _location(index),
                f"value {value!r} is not a 6-bit instruction",
                suggested_fix="mask or re-encode the stream",
            )


@INSTRUCTION_RULES.register(
    "IS002",
    "undecodable",
    Severity.ERROR,
    "every word is a legal §III-B encoding: valid opcode, config bits 00 "
    "for Types I/II, b3 = 0 and function-consistent config for Type III — "
    "the hardware would silently mis-compare on illegal words",
)
def _check_undecodable(*, rule: Rule, instructions: Sequence[int]) -> Iterator[Finding]:
    for index, value in enumerate(instructions):
        if not _in_range(value):
            continue  # IS001's finding
        try:
            enc.decode_element(value)
        except enc.EncodingError as error:
            yield rule.finding(
                _location(index),
                str(error),
                suggested_fix="regenerate the word with encode_element()",
            )


@INSTRUCTION_RULES.register(
    "IS003",
    "cross-codon-dependency",
    Severity.ERROR,
    "Type III config bits may only reference earlier nucleotides of the "
    "same codon (§III-B): a dependency reaching past the codon boundary "
    "reads another residue's nucleotides",
)
def _check_cross_codon(*, rule: Rule, instructions: Sequence[int]) -> Iterator[Finding]:
    for index, value in enumerate(instructions):
        if not _in_range(value):
            continue
        element = _decode(value)
        if not isinstance(element, bt.DependentElement):
            continue
        offset = element.function.source_offset
        codon_position = index % 3
        if offset > codon_position:
            yield rule.finding(
                _location(index),
                f"function {element.function.name} reads {offset} "
                f"position(s) back, crossing the codon boundary at "
                f"position {codon_position}",
                suggested_fix="dependent elements belong at codon position "
                ">= their source offset (the back-translator only emits "
                "them at position 2)",
            )


@INSTRUCTION_RULES.register(
    "IS004",
    "interior-pad",
    Severity.WARNING,
    "all-match pad codons (three D instructions) are only meaningful as a "
    "suffix: §IV-A's threshold-offset correction assumes a contiguous pad "
    "tail, so an interior pad codon skews every downstream score",
)
def _check_interior_pad(*, rule: Rule, instructions: Sequence[int]) -> Iterator[Finding]:
    pad = enc.pad_instruction()
    codons: List[Tuple[int, ...]] = [
        tuple(instructions[start : start + 3])
        for start in range(0, len(instructions) - len(instructions) % 3, 3)
    ]
    is_pad = [codon == (pad, pad, pad) for codon in codons]
    last_real = -1
    for codon_index, pad_codon in enumerate(is_pad):
        if not pad_codon:
            last_real = codon_index
    for codon_index, pad_codon in enumerate(is_pad):
        if pad_codon and codon_index < last_real:
            yield rule.finding(
                f"codon {codon_index}",
                "pad codon (D D D) appears before non-pad codon "
                f"{last_real}",
                suggested_fix="move padding to the stream tail and adjust "
                "the threshold offset",
            )


@INSTRUCTION_RULES.register(
    "IS005",
    "roundtrip-mismatch",
    Severity.ERROR,
    "encode_element(decode_element(w)) == w for every legal word — the "
    "software encoder and the decoder (and therefore the hardware tables "
    "derived from them) cannot drift apart",
)
def _check_roundtrip(*, rule: Rule, instructions: Sequence[int]) -> Iterator[Finding]:
    for index, value in enumerate(instructions):
        if not _in_range(value):
            continue
        element = _decode(value)
        if element is None:
            continue  # IS002's finding
        recoded = enc.encode_element(element)
        if recoded != value:
            yield rule.finding(
                _location(index),
                f"decodes to {element} but re-encodes to {recoded:#04x} "
                f"instead of {value:#04x}",
                suggested_fix="encoder/decoder tables have drifted; "
                "re-derive both from the same layout",
            )


@INSTRUCTION_RULES.register(
    "IS006",
    "ragged-stream",
    Severity.ERROR,
    "a stream encodes whole residues: three instructions per codon "
    "(a ragged tail means the query memory is misaligned)",
)
def _check_ragged(*, rule: Rule, instructions: Sequence[int]) -> Iterator[Finding]:
    remainder = len(instructions) % 3
    if remainder:
        yield rule.finding(
            f"stream of {len(instructions)} instructions",
            f"length is not a multiple of 3 ({remainder} trailing "
            "instruction(s) do not form a codon)",
            suggested_fix="pad with pad_instruction() to a codon boundary",
        )


@INSTRUCTION_RULES.register(
    "IS007",
    "semantic-element",
    Severity.WARNING,
    "semantic pass via the abstract interpreter: every element can match "
    "at least one reference nucleotide in some context (a dead column "
    "silently subtracts one point from every window's score), and no "
    "element's outcome depends on a look-back outside its codon window — "
    "neither has any structural symptom the other IS rules would catch",
)
def _check_semantic_element(*, rule: Rule, instructions: Sequence[int]) -> Iterator[Finding]:
    if any(not _in_range(value) for value in instructions):
        return  # IS001's domain: the stream is not even well-formed
    # Imported lazily: absint pulls in the symbolic engine, which the
    # purely structural IS rules do not need.
    from repro.core import absint

    for index, message in absint.instruction_stream_findings(instructions):
        if message.startswith("invalid encoding"):
            continue  # IS002's finding
        yield rule.finding(
            _location(index),
            message,
            suggested_fix="re-encode the element (use pad_instruction() for "
            "intentional all-match padding)",
        )


def lint_instructions(
    instructions: Sequence[int],
    *,
    subject: str = "instruction-stream",
    ignore: Sequence[str] = (),
    rules: Optional[Sequence[str]] = None,
) -> LintReport:
    """Run the instruction rule set over a raw stream of 6-bit words."""
    return INSTRUCTION_RULES.run(
        subject,
        ignore=ignore,
        rules=rules,
        instructions=tuple(instructions),
    )


def lint_query(
    query: enc.EncodedQuery,
    *,
    ignore: Sequence[str] = (),
    rules: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint an :class:`~repro.core.encoding.EncodedQuery`'s stream."""
    name = query.protein.name or "query"
    return lint_instructions(
        query.instructions,
        subject=f"encoded:{name}",
        ignore=ignore,
        rules=rules,
    )
