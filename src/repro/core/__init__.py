"""FabP core: back-translation, instruction encoding, comparator, aligner.

This package is the paper's primary contribution in software form:

* :mod:`repro.core.codons` — the standard codon table (Fig. 2);
* :mod:`repro.core.backtranslate` — Type I/II/III degenerate patterns;
* :mod:`repro.core.encoding` — the 6-bit instruction set;
* :mod:`repro.core.comparator` — normative comparator semantics and LUT
  INIT derivation (Fig. 5);
* :mod:`repro.core.aligner` — the golden substitution-only aligner;
* :mod:`repro.core.bitscore` — the bit-parallel SWAR scoring engine;
* :mod:`repro.core.instr_lint` — static lint over instruction streams.
"""

from repro.core.aligner import (
    DEFAULT_ENGINE,
    ENGINES,
    AlignmentResult,
    Hit,
    align,
    alignment_scores,
    alignment_scores_extended,
    search_database,
)
from repro.core.backtranslate import (
    BACK_TRANSLATION_TABLE,
    CodonPattern,
    back_translate,
    pattern_string,
)
from repro.core.contracts import (
    ENGINE_CONTRACTS,
    MAX_QUERY_ELEMENTS,
    EngineContract,
    engine_contract,
)
from repro.core.encoding import EncodedQuery, encode_query
from repro.core.instr_lint import INSTRUCTION_RULES, lint_instructions, lint_query

__all__ = [
    "DEFAULT_ENGINE",
    "ENGINE_CONTRACTS",
    "ENGINES",
    "INSTRUCTION_RULES",
    "MAX_QUERY_ELEMENTS",
    "AlignmentResult",
    "BACK_TRANSLATION_TABLE",
    "CodonPattern",
    "EncodedQuery",
    "EngineContract",
    "Hit",
    "align",
    "alignment_scores",
    "alignment_scores_extended",
    "back_translate",
    "encode_query",
    "engine_contract",
    "lint_instructions",
    "lint_query",
    "pattern_string",
    "search_database",
]
