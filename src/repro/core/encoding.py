"""FabP 6-bit instruction encoding (§III-B of the paper).

Every back-translated query element becomes one 6-bit instruction with three
fields: a variable-length opcode, a matching condition, and two configuration
bits that steer the dependency multiplexer.  We write an instruction as the
bit string ``b0 b1 b2 b3 b4 b5`` in *transmission order* (``b0`` is the
paper's "first bit"); in the integer representation bit ``i`` of the int is
``b_i``, so ``instr & 1`` is the first opcode bit.

Layout (normative for this reproduction):

======  ==========================  =============================  ==========
Type    b0 b1                       b2 b3                          b4 b5
======  ==========================  =============================  ==========
I       ``0 0``                     nucleotide code (hi, lo)       ``0 0``
II      ``0 1``                     condition code (hi, lo)        ``0 0``
III     ``1`` + b1 = F-code hi      b2 = F-code lo, b3 = ``0``     mux select
======  ==========================  =============================  ==========

The two configuration bits select the comparison LUT's fourth input ``X``:

====== =========================================================
config  X source
====== =========================================================
``00``  the instruction's own bit ``b3`` (Types I/II and the D function)
``01``  hi bit of the previous reference nucleotide (Stop, F:00)
``10``  lo bit of the reference nucleotide two back (Arg, F:10)
``11``  hi bit of the reference nucleotide two back (Leu, F:01)
====== =========================================================

The paper fixes the opcodes, the condition codes, the F-codes and the fact
that the config bits drive a mux over earlier reference bits (Fig. 5a), but
its worked example is internally inconsistent about the exact mux ordering
(see DESIGN.md), so the ordering above is this library's normative choice;
every consumer derives from this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple, Union

import numpy as np

from repro.core import backtranslate as bt
from repro.seq import alphabet
from repro.seq.sequence import ProteinSequence, as_protein

#: Number of bits per encoded query element.
INSTRUCTION_BITS = 6

#: Config values (b4 + 2*b5) for each X source.
CONFIG_SELF = 0b00  # X = instruction bit b3
CONFIG_PREV1_HI = 0b01  # X = hi bit of Ref[i-1]
CONFIG_PREV2_LO = 0b10  # X = lo bit of Ref[i-2]
CONFIG_PREV2_HI = 0b11  # X = hi bit of Ref[i-2]

_CONFIG_FOR_FUNCTION = {
    ("STOP"): CONFIG_PREV1_HI,
    ("LEU"): CONFIG_PREV2_HI,
    ("ARG"): CONFIG_PREV2_LO,
    ("ANY"): CONFIG_SELF,
}


class EncodingError(ValueError):
    """Raised on malformed instructions or unencodable elements."""


def _bits_to_int(bits: Sequence[int]) -> int:
    value = 0
    for index, bit in enumerate(bits):
        if bit not in (0, 1):
            raise EncodingError(f"bit values must be 0/1, got {bit!r}")
        value |= bit << index
    return value


def encode_element(element: bt.PatternElement) -> int:
    """Encode one pattern element into its 6-bit instruction."""
    if isinstance(element, bt.ExactElement):
        hi, lo = alphabet.nucleotide_bits(element.nucleotide)
        return _bits_to_int((0, 0, hi, lo, 0, 0))
    if isinstance(element, bt.ConditionalElement):
        code = bt.CONDITION_CODES[element.letters]
        return _bits_to_int((0, 1, (code >> 1) & 1, code & 1, 0, 0))
    if isinstance(element, bt.DependentElement):
        function = element.function
        config = _CONFIG_FOR_FUNCTION[function.name]
        return _bits_to_int(
            (
                1,
                (function.code >> 1) & 1,
                function.code & 1,
                0,
                config & 1,
                (config >> 1) & 1,
            )
        )
    raise EncodingError(f"unknown element type {type(element).__name__}")


def decode_element(instruction: int) -> bt.PatternElement:
    """Decode a 6-bit instruction back into a pattern element.

    Raises :class:`EncodingError` for encodings that no valid element
    produces (e.g. a Type I instruction with nonzero config bits); the
    hardware would silently misbehave on those, so the software model
    rejects them loudly.
    """
    if not 0 <= instruction < 64:
        raise EncodingError(f"instruction {instruction!r} is not a 6-bit value")
    b = [(instruction >> i) & 1 for i in range(6)]
    config = b[4] | (b[5] << 1)
    if b[0] == 0:
        if config != CONFIG_SELF:
            raise EncodingError(
                f"Type {'II' if b[1] else 'I'} instruction {instruction:#04x} "
                "must have config bits 00"
            )
        code = (b[2] << 1) | b[3]
        if b[1] == 0:
            return bt.ExactElement(alphabet.RNA_NUCLEOTIDES[code])
        return bt.ConditionalElement(bt.CONDITIONS_BY_CODE[code])
    f_code = (b[1] << 1) | b[2]
    function = bt.FUNCTIONS_BY_CODE[f_code]
    if b[3] != 0:
        raise EncodingError(
            f"Type III instruction {instruction:#04x} must have bit b3 = 0"
        )
    expected_config = _CONFIG_FOR_FUNCTION[function.name]
    if config != expected_config:
        raise EncodingError(
            f"function {function.name} requires config {expected_config:02b}, "
            f"instruction {instruction:#04x} carries {config:02b}"
        )
    return bt.DependentElement(function)


@dataclass(frozen=True)
class EncodedQuery:
    """A back-translated, encoded protein query ready for alignment.

    ``instructions`` holds one 6-bit value per back-translated nucleotide
    position (three per residue), in query order.  This is exactly the bit
    stream the paper stores in the FPGA's distributed memory.
    """

    protein: ProteinSequence
    instructions: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.instructions) != 3 * len(self.protein):
            raise EncodingError(
                f"query of {len(self.protein)} residues must encode to "
                f"{3 * len(self.protein)} instructions, got {len(self.instructions)}"
            )

    def __len__(self) -> int:
        """Number of encoded elements (nucleotide positions), ``3 * residues``."""
        return len(self.instructions)

    @property
    def num_residues(self) -> int:
        return len(self.protein)

    def as_array(self) -> np.ndarray:
        """Instructions as a uint8 numpy array (for the vectorized aligner)."""
        return np.asarray(self.instructions, dtype=np.uint8)

    def storage_bits(self) -> int:
        """Bits of FPGA distributed memory the encoded query occupies."""
        return INSTRUCTION_BITS * len(self.instructions)

    def decode(self) -> Tuple[bt.PatternElement, ...]:
        """Decode back to pattern elements (round-trip check helper)."""
        return tuple(decode_element(i) for i in self.instructions)


def encode_pattern(pattern: bt.CodonPattern) -> Tuple[int, int, int]:
    """Encode a single codon pattern into its three instructions."""
    first, second, third = pattern.elements
    return (encode_element(first), encode_element(second), encode_element(third))


def encode_query(protein: Union[ProteinSequence, str]) -> EncodedQuery:
    """Back-translate and encode a protein query (paper mode).

    This is the host-side preprocessing step of the paper's pipeline: the
    result is what gets DMA-ed into the FPGA's flip-flop-based query memory.
    """
    sequence = as_protein(protein)
    instructions: List[int] = []
    for pattern in bt.back_translate(sequence):
        instructions.extend(encode_pattern(pattern))
    return EncodedQuery(sequence, tuple(instructions))


def encode_patterns(patterns: Iterable[bt.CodonPattern]) -> Tuple[int, ...]:
    """Encode an arbitrary pattern stream (used by tests and the RTL model)."""
    out: List[int] = []
    for pattern in patterns:
        out.extend(encode_pattern(pattern))
    return tuple(out)


def pad_instruction() -> int:
    """The padding instruction for under-length queries.

    §IV-A: "the length refers to the maximum sequence length, and FabP can
    work with any sequence smaller than that".  A shorter query fills the
    remaining hardware columns with always-match (``D``) instructions: each
    pad element adds exactly +1 to every position's score, so the kernel
    offsets the threshold by the pad count and subtracts it from reported
    scores — bit-identical results to a right-sized array.
    """
    from repro.core import backtranslate as bt

    return encode_element(bt.DependentElement(bt.FUNCTION_ANY))


def instruction_bit_string(instruction: int) -> str:
    """Render an instruction as its transmission-order bit string."""
    if not 0 <= instruction < 64:
        raise EncodingError(f"instruction {instruction!r} is not a 6-bit value")
    return "".join(str((instruction >> i) & 1) for i in range(6))
