"""Synthetic NCBI-style workloads with planted ground truth.

The paper evaluates on queries sampled from NCBI nr and 1 GB of NCBI nt.
Neither database ships with a reproduction, so these builders construct the
synthetic equivalent: background references with *planted homologs* —
coding regions derived from known protein queries through a controlled
mutation channel (synonymous codon choice, substitutions, indels).  Every
planting is recorded, so accuracy studies have exact ground truth instead
of BLAST-derived pseudo-truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.codons import CODONS_FOR, paper_codons_for
from repro.seq.generate import random_protein, random_rna
from repro.seq.mutate import MutationResult, mutate_rna
from repro.seq.sequence import ProteinSequence, RnaSequence, as_protein


@dataclass(frozen=True)
class PlantedHomolog:
    """Ground-truth record of one planted coding region."""

    query: ProteinSequence
    reference_index: int
    position: int  # nucleotide offset of the region in the reference
    region: str  # the planted (mutated) RNA as inserted
    substitutions: int
    indels: int

    @property
    def has_indel(self) -> bool:
        return self.indels > 0


@dataclass(frozen=True)
class SyntheticDatabase:
    """A set of references plus the full planting ledger."""

    references: Tuple[RnaSequence, ...]
    planted: Tuple[PlantedHomolog, ...]

    @property
    def total_nucleotides(self) -> int:
        return sum(len(r) for r in self.references)

    def planted_in(self, reference_index: int) -> List[PlantedHomolog]:
        return [p for p in self.planted if p.reference_index == reference_index]


def encode_protein_as_rna(
    protein,
    *,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    codon_usage: str = "uniform",
) -> RnaSequence:
    """Generate a coding RNA for a protein by sampling synonymous codons.

    ``codon_usage='uniform'`` samples uniformly among each residue's codons
    (exercises the full back-translation degeneracy); ``'first'`` always
    takes the lexicographically first codon (deterministic, useful in
    tests); ``'paper'`` samples only from the paper's reduced codon sets
    (Ser without AGU/AGC), producing regions FabP matches perfectly; an
    organism name (``'human'``, ``'ecoli'``) samples with that organism's
    codon-usage bias (:mod:`repro.seq.codon_usage`).
    """
    sequence = as_protein(protein)
    rng = rng if rng is not None else np.random.default_rng(seed)
    biased = None
    if codon_usage not in ("uniform", "first", "paper"):
        from repro.seq.codon_usage import sampler

        biased = sampler(codon_usage)
    chosen: List[str] = []
    for residue in sequence.letters:
        if codon_usage == "first":
            chosen.append(CODONS_FOR[residue][0])
            continue
        if biased is not None:
            chosen.append(biased.sample(residue, rng))
            continue
        pool = (
            paper_codons_for(residue) if codon_usage == "paper" else CODONS_FOR[residue]
        )
        chosen.append(pool[int(rng.integers(len(pool)))])
    return RnaSequence("".join(chosen), name=f"cds:{sequence.name}" if sequence.name else "")


def plant_homolog(
    background: str,
    region: str,
    position: int,
) -> str:
    """Overwrite ``background`` with ``region`` at ``position`` (no resize)."""
    if position < 0 or position + len(region) > len(background):
        raise ValueError(
            f"region of {len(region)} nt does not fit at {position} in a "
            f"{len(background)} nt background"
        )
    return background[:position] + region + background[position + len(region) :]


def build_database(
    queries: Sequence,
    *,
    num_references: int = 4,
    reference_length: int = 20_000,
    substitution_rate: float = 0.0,
    indel_events: int = 0,
    gc_content: Optional[float] = None,
    codon_usage: str = "uniform",
    plants_per_query: int = 1,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> SyntheticDatabase:
    """Build references with each query planted ``plants_per_query`` times.

    Plantings are spread round-robin over references at random non-edge
    positions.  Mutations are applied to the planted RNA *after* codon
    sampling, so ``substitutions`` / ``indels`` in the ledger are exact.
    """
    rng = rng if rng is not None else np.random.default_rng(seed)
    backgrounds = [
        random_rna(reference_length, rng=rng, gc_content=gc_content).letters
        for _ in range(num_references)
    ]
    planted: List[PlantedHomolog] = []
    ref_cursor = 0
    for query in queries:
        sequence = as_protein(query)
        for _ in range(plants_per_query):
            region_rna = encode_protein_as_rna(sequence, rng=rng, codon_usage=codon_usage)
            mutated: MutationResult = mutate_rna(
                region_rna,
                substitution_rate=substitution_rate,
                indel_events=indel_events,
                rng=rng,
            )
            region = mutated.letters
            ref_index = ref_cursor % num_references
            ref_cursor += 1
            margin = 10
            high = reference_length - len(region) - margin
            if high <= margin:
                raise ValueError("reference too short for the planted region")
            position = int(rng.integers(margin, high))
            backgrounds[ref_index] = plant_homolog(
                backgrounds[ref_index], region, position
            )
            planted.append(
                PlantedHomolog(
                    query=sequence,
                    reference_index=ref_index,
                    position=position,
                    region=region,
                    substitutions=mutated.num_substitutions,
                    indels=mutated.num_indels,
                )
            )
    references = tuple(
        RnaSequence(text, name=f"synthetic_ref_{i}") for i, text in enumerate(backgrounds)
    )
    return SyntheticDatabase(references=references, planted=tuple(planted))


def sample_queries(
    count: int,
    *,
    length: int = 50,
    length_jitter: int = 0,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> List[ProteinSequence]:
    """Sample protein queries with realistic residue composition."""
    rng = rng if rng is not None else np.random.default_rng(seed)
    queries = []
    for index in range(count):
        jitter = int(rng.integers(-length_jitter, length_jitter + 1)) if length_jitter else 0
        queries.append(
            random_protein(max(4, length + jitter), rng=rng, name=f"query_{index}")
        )
    return queries
