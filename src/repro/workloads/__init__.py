"""Synthetic workload builders (the NCBI-database substitute)."""

from repro.workloads.builder import (
    PlantedHomolog,
    SyntheticDatabase,
    build_database,
    encode_protein_as_rna,
    plant_homolog,
    sample_queries,
)

__all__ = [
    "PlantedHomolog",
    "SyntheticDatabase",
    "build_database",
    "encode_protein_as_rna",
    "plant_homolog",
    "sample_queries",
]
