"""Gene-rich synthetic references: a more NCBI-like background.

Random uniform nucleotides (the default background) understate the false-
positive pressure a real search faces: genomes are full of *other genes*
whose codon structure partially matches any query's degenerate patterns.
This builder assembles references the way annotation views a genome —
alternating intergenic spans and coding genes (start codon, organism-
biased codon usage, stop codon, both strands) — with a ledger of every
gene placed, so benches can measure FabP's background behaviour on
realistic sequence instead of white noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.seq.codon_usage import sampler
from repro.seq.generate import random_protein, random_rna
from repro.seq.sequence import RnaSequence
from repro.workloads.builder import encode_protein_as_rna


@dataclass(frozen=True)
class GeneAnnotation:
    """One placed gene: coordinates and strand on the forward sequence."""

    start: int
    end: int  # exclusive, includes the stop codon
    strand: str  # "+" or "-"
    protein_length: int


@dataclass(frozen=True)
class GenomicReference:
    """A gene-rich synthetic reference plus its annotation."""

    sequence: RnaSequence
    genes: Tuple[GeneAnnotation, ...]

    @property
    def coding_fraction(self) -> float:
        coding = sum(g.end - g.start for g in self.genes)
        return coding / max(1, len(self.sequence))


def build_genomic_reference(
    length: int,
    *,
    coding_fraction: float = 0.5,
    mean_gene_residues: int = 120,
    organism: str = "human",
    gc_content: Optional[float] = None,
    antisense_fraction: float = 0.4,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    name: str = "",
) -> GenomicReference:
    """Assemble a reference of alternating intergenic and gene spans.

    ``coding_fraction`` is a target, met approximately (genes are whole).
    Genes are real coding sequence: AUG + organism-codon-usage body + stop;
    ``antisense_fraction`` of them are placed on the reverse strand.
    """
    if length < 100:
        raise ValueError("genomic references shorter than 100 nt are pointless")
    if not 0.0 <= coding_fraction < 1.0:
        raise ValueError("coding_fraction must be in [0, 1)")
    if not 0.0 <= antisense_fraction <= 1.0:
        raise ValueError("antisense_fraction must be in [0, 1]")
    rng = rng if rng is not None else np.random.default_rng(seed)
    codon_sampler = sampler(organism)

    pieces: List[str] = []
    genes: List[GeneAnnotation] = []
    position = 0
    while position < length:
        remaining = length - position
        if rng.random() < coding_fraction and remaining > 3 * 12 + 6:
            residues = max(8, int(rng.normal(mean_gene_residues, mean_gene_residues / 3)))
            residues = min(residues, (remaining - 6) // 3)
            protein = random_protein(residues, rng=rng)
            body = "".join(codon_sampler.sample(aa, rng) for aa in protein.letters)
            stop = ("UAA", "UAG", "UGA")[int(rng.integers(3))]
            gene = "AUG" + body + stop
            strand = "-" if rng.random() < antisense_fraction else "+"
            if strand == "-":
                gene = RnaSequence(gene).reverse_complement().letters
            pieces.append(gene)
            genes.append(
                GeneAnnotation(
                    start=position,
                    end=position + len(gene),
                    strand=strand,
                    protein_length=residues,
                )
            )
            position += len(gene)
        else:
            span = min(remaining, max(20, int(rng.exponential(200))))
            pieces.append(random_rna(span, rng=rng, gc_content=gc_content).letters)
            position += span
    text = "".join(pieces)[:length]
    return GenomicReference(
        sequence=RnaSequence(text, name=name or "genomic_ref"),
        genes=tuple(g for g in genes if g.end <= length),
    )


def plant_query_gene(
    reference: GenomicReference,
    query,
    *,
    organism: str = "human",
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> Tuple[GenomicReference, int]:
    """Overwrite an intergenic-ish position with the query's coding sequence.

    Returns the new reference and the planting position.  The planted
    region replaces whatever was there (like the plain builder), placed
    away from the edges.
    """
    rng = rng if rng is not None else np.random.default_rng(seed)
    region = encode_protein_as_rna(query, rng=rng, codon_usage=organism).letters
    text = reference.sequence.letters
    if len(region) + 20 > len(text):
        raise ValueError("reference too short for the query gene")
    position = int(rng.integers(10, len(text) - len(region) - 10))
    new_text = text[:position] + region + text[position + len(region) :]
    return (
        GenomicReference(
            sequence=RnaSequence(new_text, name=reference.sequence.name),
            genes=reference.genes,
        ),
        position,
    )
