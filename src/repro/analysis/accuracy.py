"""§IV-A accuracy study: what does substitution-only scoring cost?

The paper claims FabP's lack of indel support causes "a negligible drop in
the alignment accuracy".  This module quantifies that on planted-homolog
workloads with exact ground truth:

* **recall** — fraction of planted homologs each method recovers (a hit
  within a small positional tolerance of the planting site);
* methods compared: FabP (paper mode), FabP extended mode (full Ser codon
  set), and the indel-tolerant TBLASTN baseline (gapped SW rescoring).

Sweeping the substitution rate and indel count separates the two effects
the paper's argument conflates: FabP tolerates substitutions by
construction (they just lower the score), while a single indel shifts the
downstream frame and caps the achievable score at the larger ungapped
fragment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.baselines.tblastn import Tblastn, TblastnParams
from repro.core.aligner import align, alignment_scores_extended
from repro.core.encoding import encode_query
from repro.workloads.builder import SyntheticDatabase, build_database, sample_queries

#: A method "recovers" a planting if it reports a hit within this many
#: nucleotides of the true position (indels shift downstream coordinates).
POSITION_TOLERANCE = 6


@dataclass(frozen=True)
class AccuracyRow:
    """One design point of the accuracy sweep."""

    substitution_rate: float
    indel_events: int
    cases: int
    fabp_recall: float
    fabp_extended_recall: float
    tblastn_recall: float

    @property
    def fabp_drop_vs_tblastn(self) -> float:
        """The paper's "accuracy drop": recall lost relative to the
        indel-tolerant baseline (positive = FabP worse)."""
        return self.tblastn_recall - self.fabp_recall


def _fabp_found(query, database: SyntheticDatabase, planting, min_identity: float) -> bool:
    reference = database.references[planting.reference_index]
    result = align(query, reference, min_identity=min_identity)
    return any(
        abs(hit.position - planting.position) <= POSITION_TOLERANCE
        for hit in result.hits
    )


def _fabp_extended_found(
    query, database: SyntheticDatabase, planting, min_identity: float
) -> bool:
    reference = database.references[planting.reference_index]
    scores = alignment_scores_extended(query, reference.letters)
    if scores.size == 0:
        return False
    threshold = int(np.ceil(min_identity * 3 * len(query)))
    positions = np.nonzero(scores >= threshold)[0]
    return any(abs(int(p) - planting.position) <= POSITION_TOLERANCE for p in positions)


def _tblastn_found(searcher: Tblastn, database: SyntheticDatabase, planting) -> bool:
    reference = database.references[planting.reference_index]
    result = searcher.search(reference)
    return any(
        abs(h.nucleotide_start - planting.position) <= POSITION_TOLERANCE
        for h in result.hsps
    )


def run_accuracy_study(
    *,
    substitution_rates: Sequence[float] = (0.0, 0.02, 0.05, 0.10),
    indel_event_counts: Sequence[int] = (0, 1),
    cases_per_point: int = 8,
    query_length: int = 40,
    reference_length: int = 6_000,
    min_identity: float = 0.8,
    seed: int = 2021,
) -> List[AccuracyRow]:
    """Sweep mutation pressure; return one row per design point."""
    rows: List[AccuracyRow] = []
    rng = np.random.default_rng(seed)
    for indels in indel_event_counts:
        for rate in substitution_rates:
            queries = sample_queries(cases_per_point, length=query_length, rng=rng)
            database = build_database(
                queries,
                num_references=cases_per_point,
                reference_length=reference_length,
                substitution_rate=rate,
                indel_events=indels,
                codon_usage="paper",
                rng=rng,
            )
            fabp = extended = tbl = 0
            for query, planting in zip(queries, database.planted):
                encoded = encode_query(query)
                if _fabp_found(encoded, database, planting, min_identity):
                    fabp += 1
                if _fabp_extended_found(query, database, planting, min_identity):
                    extended += 1
                searcher = Tblastn(query, TblastnParams(two_hit=True))
                if _tblastn_found(searcher, database, planting):
                    tbl += 1
            n = len(database.planted)
            rows.append(
                AccuracyRow(
                    substitution_rate=rate,
                    indel_events=indels,
                    cases=n,
                    fabp_recall=fabp / n,
                    fabp_extended_recall=extended / n,
                    tblastn_recall=tbl / n,
                )
            )
    return rows


def format_accuracy_table(rows: Sequence[AccuracyRow]) -> str:
    """Render the sweep as an aligned text table."""
    header = (
        f"{'sub rate':>8}  {'indels':>6}  {'cases':>5}  "
        f"{'FabP':>6}  {'FabP-ext':>8}  {'TBLASTN':>7}  {'drop':>6}"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row.substitution_rate:>8.2f}  {row.indel_events:>6}  {row.cases:>5}  "
            f"{row.fabp_recall:>6.2f}  {row.fabp_extended_recall:>8.2f}  "
            f"{row.tblastn_recall:>7.2f}  {row.fabp_drop_vs_tblastn:>6.2f}"
        )
    return "\n".join(lines)
