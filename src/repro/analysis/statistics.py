"""Score statistics for FabP alignments: null model and threshold choice.

The paper leaves the alignment threshold "user-defined".  This module
gives users a principled way to set it: the exact null distribution of a
query's score at a random reference position.

Each encoded element matches a uniform random reference nucleotide with a
probability computable from its lookup table (4/4 for D, 2/4 for a
two-letter condition, 1/4 for Type I, context-averaged for Type III), so
the null score is a sum of independent-ish Bernoullis — a Poisson-binomial
distribution whose exact PMF we build by convolution.  (Adjacent dependent
elements share context bits, a second-order effect the Monte-Carlo
validation test bounds.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import comparator as cmp
from repro.core.encoding import EncodedQuery, encode_query


def element_match_probabilities(query) -> np.ndarray:
    """Per-element match probability against uniform random reference.

    Type III elements are averaged over a uniform random dependency context
    (exact for a uniform i.i.d. reference, since the source bit of a
    uniform nucleotide is a fair coin).
    """
    encoded = query if isinstance(query, EncodedQuery) else encode_query(query)
    tables, configs = cmp.instruction_tables(encoded.as_array())
    probabilities = np.zeros(len(encoded))
    for i in range(len(encoded)):
        if configs[i] == 0:
            x = (int(encoded.instructions[i]) >> 3) & 1
            probabilities[i] = tables[i, x].mean()
        else:
            probabilities[i] = tables[i].mean()  # average over the S coin
    return probabilities


@dataclass(frozen=True)
class NullScoreModel:
    """Exact Poisson-binomial null distribution of a query's score."""

    query: EncodedQuery
    probabilities: np.ndarray
    pmf: np.ndarray  # pmf[s] = P(score == s), length = elements + 1

    @property
    def mean(self) -> float:
        return float(self.probabilities.sum())

    @property
    def variance(self) -> float:
        return float((self.probabilities * (1 - self.probabilities)).sum())

    def survival(self, threshold: int) -> float:
        """P(score >= threshold) at one random position."""
        if threshold <= 0:
            return 1.0
        if threshold >= self.pmf.size:
            return 0.0
        return float(self.pmf[threshold:].sum())

    def expected_hits(self, threshold: int, reference_length: int) -> float:
        """Expected random hits in a reference of the given length — the
        FabP analogue of a BLAST E-value."""
        positions = max(0, reference_length - len(self.query) + 1)
        return positions * self.survival(threshold)

    def threshold_for_fpr(self, false_positives: float, reference_length: int) -> int:
        """Smallest threshold with at most ``false_positives`` expected
        random hits over the whole reference."""
        if false_positives <= 0:
            raise ValueError("expected false-positive target must be positive")
        positions = max(1, reference_length - len(self.query) + 1)
        target = false_positives / positions
        tail = 1.0
        for threshold in range(self.pmf.size + 1):
            if tail <= target:
                return threshold
            if threshold < self.pmf.size:
                tail -= float(self.pmf[threshold])
        return self.pmf.size

    def zscore(self, score: int) -> float:
        """Normal-approximation z-score of an observed score."""
        sd = math.sqrt(self.variance)
        if sd == 0:
            return math.inf if score > self.mean else 0.0
        return (score - self.mean) / sd


def null_score_model(query) -> NullScoreModel:
    """Build the exact null model for a query (O(elements^2) convolution)."""
    encoded = query if isinstance(query, EncodedQuery) else encode_query(query)
    probabilities = element_match_probabilities(encoded)
    pmf = np.zeros(len(encoded) + 1)
    pmf[0] = 1.0
    for p in probabilities:
        pmf[1:] = pmf[1:] * (1 - p) + pmf[:-1] * p
        pmf[0] *= 1 - p
    return NullScoreModel(query=encoded, probabilities=probabilities, pmf=pmf)


def empirical_null(
    query,
    *,
    samples: int = 20_000,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Monte-Carlo null scores (validation for :func:`null_score_model`).

    Scores the query against one long uniform random reference; returns the
    observed score array.
    """
    from repro.core.aligner import alignment_scores
    from repro.seq.generate import random_rna

    encoded = query if isinstance(query, EncodedQuery) else encode_query(query)
    rng = rng if rng is not None else np.random.default_rng(seed)
    reference = random_rna(samples + len(encoded), rng=rng)
    return alignment_scores(encoded, reference)
