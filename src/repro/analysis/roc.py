"""ROC analysis: sensitivity/specificity of FabP thresholds.

The paper's threshold is "user-defined"; this module characterizes the
trade-off empirically.  On a planted-homolog database with known mutation
pressure, sweep the threshold and measure:

* **TPR** (sensitivity/recall) — planted homologs recovered;
* **FP density** — spurious hits per megabase of background.

Combined with :mod:`repro.analysis.statistics` (the analytic null model),
a user can pick an operating point before committing FPGA time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.aligner import alignment_scores
from repro.workloads.builder import build_database, sample_queries

#: Tolerance (nt) for matching a hit to its planting site.
POSITION_TOLERANCE = 6


@dataclass(frozen=True)
class RocPoint:
    """One threshold's operating characteristics."""

    threshold: int
    identity: float
    true_positive_rate: float
    false_positives_per_mb: float


@dataclass(frozen=True)
class RocCurve:
    """A full threshold sweep for one workload."""

    points: Tuple[RocPoint, ...]
    cases: int
    background_nucleotides: int

    def best_threshold(self, max_fp_per_mb: float = 1.0) -> Optional[RocPoint]:
        """Most sensitive point whose FP density is acceptable."""
        viable = [p for p in self.points if p.false_positives_per_mb <= max_fp_per_mb]
        return max(viable, key=lambda p: p.true_positive_rate, default=None)

    def auc_like(self) -> float:
        """Mean TPR over the sweep (a scalar summary for comparisons)."""
        if not self.points:
            return 0.0
        return float(np.mean([p.true_positive_rate for p in self.points]))


def roc_curve(
    *,
    cases: int = 10,
    query_length: int = 40,
    reference_length: int = 8_000,
    substitution_rate: float = 0.05,
    indel_events: int = 0,
    thresholds: Optional[Sequence[int]] = None,
    rng: Optional[np.random.Generator] = None,
    seed: int = 2021,
) -> RocCurve:
    """Sweep thresholds on a planted workload; returns the ROC curve.

    Scores are computed once per (query, reference) pair and re-thresholded,
    so wide sweeps cost the same as narrow ones.
    """
    rng = rng if rng is not None else np.random.default_rng(seed)
    queries = sample_queries(cases, length=query_length, rng=rng)
    database = build_database(
        queries,
        num_references=cases,
        reference_length=reference_length,
        substitution_rate=substitution_rate,
        indel_events=indel_events,
        codon_usage="paper",
        rng=rng,
    )
    elements = 3 * query_length
    if thresholds is None:
        thresholds = [int(f * elements) for f in np.arange(0.5, 1.01, 0.05)]
    all_scores: List[Tuple[np.ndarray, int]] = []
    for query, planting in zip(queries, database.planted):
        reference = database.references[planting.reference_index]
        scores = alignment_scores(query, reference)
        all_scores.append((scores, planting.position))

    background_nt = cases * reference_length
    points: List[RocPoint] = []
    for threshold in sorted(set(thresholds)):
        recovered = 0
        false_positives = 0
        for scores, position in all_scores:
            hit_positions = np.nonzero(scores >= threshold)[0]
            near = np.abs(hit_positions - position) <= POSITION_TOLERANCE
            if near.any():
                recovered += 1
            false_positives += int((~near).sum())
        points.append(
            RocPoint(
                threshold=threshold,
                identity=threshold / elements,
                true_positive_rate=recovered / cases,
                false_positives_per_mb=false_positives / (background_nt / 1e6),
            )
        )
    return RocCurve(
        points=tuple(points), cases=cases, background_nucleotides=background_nt
    )


def format_roc(curve: RocCurve) -> str:
    """Aligned text rendering of a ROC sweep."""
    from repro.analysis.report import text_table

    rows = [
        [
            p.threshold,
            f"{p.identity:.0%}",
            f"{p.true_positive_rate:.2f}",
            f"{p.false_positives_per_mb:.2f}",
        ]
        for p in curve.points
    ]
    return text_table(
        ["threshold", "identity", "TPR", "FP/Mb"],
        rows,
        title=f"ROC sweep ({curve.cases} planted cases)",
    )
