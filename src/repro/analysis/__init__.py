"""Analysis studies: §IV-A reproductions, statistics, ROC, composition."""

from repro.analysis.accuracy import (
    AccuracyRow,
    format_accuracy_table,
    run_accuracy_study,
)
from repro.analysis.composition import (
    all_residue_profiles,
    background_match_probability,
    format_composition_table,
    query_composition,
    residue_profile,
)
from repro.analysis.indels import IndelStudyResult, run_indel_study
from repro.analysis.report import markdown_table, paper_vs_measured, text_table
from repro.analysis.roc import RocCurve, RocPoint, format_roc, roc_curve
from repro.analysis.sensitivity import (
    DetectionModel,
    detection_model,
    operating_curve,
)
from repro.analysis.statistics import (
    NullScoreModel,
    empirical_null,
    null_score_model,
)

__all__ = [
    "AccuracyRow",
    "DetectionModel",
    "IndelStudyResult",
    "NullScoreModel",
    "RocCurve",
    "RocPoint",
    "all_residue_profiles",
    "background_match_probability",
    "detection_model",
    "empirical_null",
    "format_accuracy_table",
    "format_composition_table",
    "format_roc",
    "markdown_table",
    "null_score_model",
    "operating_curve",
    "paper_vs_measured",
    "query_composition",
    "residue_profile",
    "roc_curve",
    "run_accuracy_study",
    "run_indel_study",
    "text_table",
]
