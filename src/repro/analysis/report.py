"""Table/report formatting shared by examples and benchmarks.

Everything the benches print goes through these helpers so paper-vs-measured
comparisons look the same everywhere (and EXPERIMENTS.md can paste them).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence


def text_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as a GitHub-flavored markdown table."""
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(v) for v in row) + " |")
    return "\n".join(lines)


def paper_vs_measured(
    rows: Mapping[str, Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Standard two-column comparison: ``{metric: (paper, measured)}``."""
    table_rows = [
        (metric, paper, measured) for metric, (paper, measured) in rows.items()
    ]
    return text_table(["metric", "paper", "measured"], table_rows, title=title)


def ratio_summary(name: str, paper: float, measured: float) -> str:
    """One-line paper-vs-measured ratio with relative deviation."""
    deviation = (measured - paper) / paper if paper else float("nan")
    return f"{name}: paper={paper:g} measured={measured:.3g} ({deviation:+.1%})"
