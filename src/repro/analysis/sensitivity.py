"""Analytic detection model: threshold vs mutation tolerance.

The ROC module measures sensitivity empirically; this module predicts it.
For a homolog diverged from the query by per-nucleotide substitution rate
``p``, each query element independently still matches with probability

    q_i = (1 - p) + p * r_i

where ``r_i`` is that element's probability of matching a random *wrong*
nucleotide (degenerate elements often absorb substitutions: a D position
matches anything, a U/C position survives half the substitutions away from
its set... all computed exactly from the instruction tables).  The hit
score is then Poisson-binomial and detection probability at a threshold is
its upper tail — compared against the planted-workload measurements by the
test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core import comparator as cmp
from repro.core.encoding import EncodedQuery, encode_query


def element_survival_probabilities(query, substitution_rate: float) -> np.ndarray:
    """Per-element match probability against a homolog at rate ``p``.

    Model: the homolog region was generated from a codon that matches the
    pattern perfectly, then each nucleotide independently substituted with
    probability ``p`` to a uniformly chosen *different* nucleotide.  An
    element survives if unsubstituted, or if the substituted nucleotide
    still falls in its admissible set.  Dependency context (Type III) is
    averaged over the S coin, as in the null model — exact for independent
    positions, a tight approximation for the three dependent ones.
    """
    if not 0.0 <= substitution_rate <= 1.0:
        raise ValueError("substitution rate must be within [0, 1]")
    encoded = query if isinstance(query, EncodedQuery) else encode_query(query)
    tables, configs = cmp.instruction_tables(encoded.as_array())
    p = substitution_rate
    out = np.zeros(len(encoded))
    for i in range(len(encoded)):
        if configs[i] == 0:
            x = (int(encoded.instructions[i]) >> 3) & 1
            row = tables[i, x].astype(float)
        else:
            row = tables[i].mean(axis=0)
        # Admissible-set size m (possibly fractional after S-averaging):
        # the original nucleotide matches; a substitution lands on one of
        # the 3 other nucleotides uniformly, of which (m - 1) still match
        # on average (the original was one of the m admissible).
        m = float(row.sum())
        survive_if_substituted = max(0.0, (m - 1.0)) / 3.0
        out[i] = (1 - p) + p * survive_if_substituted
    return out


@dataclass(frozen=True)
class DetectionModel:
    """Analytic detection probability for one query at one divergence."""

    query: EncodedQuery
    substitution_rate: float
    probabilities: np.ndarray
    pmf: np.ndarray

    @property
    def expected_score(self) -> float:
        return float(self.probabilities.sum())

    def detection_probability(self, threshold: int) -> float:
        """P(homolog score >= threshold)."""
        if threshold <= 0:
            return 1.0
        if threshold >= self.pmf.size:
            return 0.0
        return float(self.pmf[threshold:].sum())

    def max_threshold_for_recall(self, recall: float) -> int:
        """Largest threshold whose detection probability is >= ``recall``."""
        if not 0.0 < recall <= 1.0:
            raise ValueError("recall must be in (0, 1]")
        best = 0
        for threshold in range(self.pmf.size + 1):
            if self.detection_probability(threshold) >= recall:
                best = threshold
        return best


def detection_model(query, substitution_rate: float) -> DetectionModel:
    """Build the exact Poisson-binomial detection model."""
    encoded = query if isinstance(query, EncodedQuery) else encode_query(query)
    probabilities = element_survival_probabilities(encoded, substitution_rate)
    pmf = np.zeros(len(encoded) + 1)
    pmf[0] = 1.0
    for p in probabilities:
        pmf[1:] = pmf[1:] * (1 - p) + pmf[:-1] * p
        pmf[0] *= 1 - p
    return DetectionModel(
        query=encoded,
        substitution_rate=substitution_rate,
        probabilities=probabilities,
        pmf=pmf,
    )


@dataclass(frozen=True)
class OperatingPoint:
    """A threshold with its two analytic error rates."""

    threshold: int
    detection_probability: float
    expected_false_hits: float


def operating_curve(
    query,
    *,
    substitution_rate: float,
    reference_length: int,
    thresholds: Optional[Sequence[int]] = None,
) -> List[OperatingPoint]:
    """Analytic ROC: detection probability vs expected random hits.

    Combines the detection model (signal side) with the null model of
    :mod:`repro.analysis.statistics` (noise side) — the closed-form
    counterpart of :func:`repro.analysis.roc.roc_curve`.
    """
    from repro.analysis.statistics import null_score_model

    encoded = query if isinstance(query, EncodedQuery) else encode_query(query)
    signal = detection_model(encoded, substitution_rate)
    noise = null_score_model(encoded)
    elements = len(encoded)
    if thresholds is None:
        thresholds = list(range(elements // 2, elements + 1, max(1, elements // 20)))
    return [
        OperatingPoint(
            threshold=threshold,
            detection_probability=signal.detection_probability(threshold),
            expected_false_hits=noise.expected_hits(threshold, reference_length),
        )
        for threshold in thresholds
    ]
