"""§IV-A indel-frequency study.

The paper's statistical justification for substitution-only scoring cites
Neininger et al. (2019): indel frequency in protein-coding regions has
median 0, mean 0.09/kb, sd 0.36/kb, and reports that "among 10,000 queries,
only two of them involved indels (~0.02 %)".

Two statistics matter and this module computes both:

* :func:`fraction_with_indels` — the fraction of query-sized coding regions
  containing at least one indel event under the cited distribution.  (Note:
  for 250-residue queries this is mathematically a few percent, not 0.02 %
  — see EXPERIMENTS.md; the paper's 0.02 % can only refer to the stricter
  statistic below.)
* :func:`fraction_alignment_affected` — the fraction of queries whose
  *top-hit outcome changes* because of an indel: the region contains an
  indel **and** FabP's best achievable (frame-shifted) score falls below
  the search threshold while an indel-tolerant aligner still reports it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.seq.mutate import sample_indel_events


@dataclass(frozen=True)
class IndelStudyResult:
    """Outcome of one indel-frequency simulation."""

    num_queries: int
    query_length_nt: int
    queries_with_indels: int
    queries_alignment_affected: int
    mean_events_per_kb: float

    @property
    def fraction_with_indels(self) -> float:
        return self.queries_with_indels / self.num_queries

    @property
    def fraction_alignment_affected(self) -> float:
        return self.queries_alignment_affected / self.num_queries

    def __str__(self) -> str:
        return (
            f"IndelStudy(n={self.num_queries}, with_indels="
            f"{self.fraction_with_indels:.2%}, affected="
            f"{self.fraction_alignment_affected:.4%})"
        )


def run_indel_study(
    *,
    num_queries: int = 10_000,
    query_residues: int = 150,
    min_identity: float = 0.8,
    mean_per_kb: float = 0.09,
    sd_per_kb: float = 0.36,
    rng: Optional[np.random.Generator] = None,
    seed: int = 2021,
) -> IndelStudyResult:
    """Monte-Carlo reproduction of the 10,000-query statistic.

    For each query-sized coding region, draw an indel event count from the
    cited zero-inflated empirical distribution.  A query's *alignment* is
    affected when an indel lands such that the larger unshifted fragment
    falls below the identity threshold: a single indel at relative position
    ``p`` leaves fragments of relative size ``p`` and ``1 - p`` matching in
    frame, so FabP's best score fraction is ``max(p, 1 - p)`` (substitutions
    aside).  With more events the fragments shrink accordingly.
    """
    rng = rng if rng is not None else np.random.default_rng(seed)
    length_nt = 3 * query_residues
    with_indels = 0
    affected = 0
    total_events = 0
    for _ in range(num_queries):
        events = sample_indel_events(
            length_nt, mean_per_kb=mean_per_kb, sd_per_kb=sd_per_kb, rng=rng
        )
        total_events += events
        if events == 0:
            continue
        with_indels += 1
        # Break positions partition the region; the best in-frame fragment
        # bounds FabP's achievable identity.
        breaks = np.sort(rng.random(events))
        fragments = np.diff(np.concatenate([[0.0], breaks, [1.0]]))
        if fragments.max() < min_identity:
            affected += 1
    mean_rate = total_events / (num_queries * length_nt / 1000.0)
    return IndelStudyResult(
        num_queries=num_queries,
        query_length_nt=length_nt,
        queries_with_indels=with_indels,
        queries_alignment_affected=affected,
        mean_events_per_kb=mean_rate,
    )
