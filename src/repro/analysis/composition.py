"""Pattern composition analytics: degeneracy and information content.

Back-translation degeneracy is not uniform across amino acids — Met/Trp
patterns pin all three nucleotides while four-codon boxes leave their third
position completely free.  These analytics quantify that structure:

* per-residue **random-match probability** (the chance a random codon
  satisfies the full pattern) and **information content** in bits;
* per-query aggregates, which explain why two queries of equal length can
  have very different null-score distributions (see
  :mod:`repro.analysis.statistics`) and therefore need different
  thresholds;
* the composition-weighted average over a background distribution — a
  single number summarizing how discriminative FabP's encoding is on
  realistic sequence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.statistics import element_match_probabilities
from repro.core import backtranslate as bt
from repro.seq import alphabet
from repro.seq.generate import UNIPROT_AA_FREQUENCIES
from repro.seq.sequence import as_protein


@dataclass(frozen=True)
class ResidueProfile:
    """Pattern statistics for one amino acid (or stop)."""

    amino: str
    pattern: str
    codons_admitted: int
    element_probabilities: tuple
    match_probability: float  # P(random codon fully matches)
    information_bits: float  # -log2(match_probability)


def residue_profile(amino: str) -> ResidueProfile:
    """Build the profile of one residue's paper-mode pattern."""
    pattern = bt.BACK_TRANSLATION_TABLE[amino]
    probabilities = tuple(float(p) for p in element_match_probabilities(amino))
    admitted = len(pattern.matched_codons())
    match_probability = admitted / 64.0
    return ResidueProfile(
        amino=amino,
        pattern=str(pattern),
        codons_admitted=admitted,
        element_probabilities=probabilities,
        match_probability=match_probability,
        information_bits=-math.log2(match_probability),
    )


def all_residue_profiles() -> Dict[str, ResidueProfile]:
    """Profiles for all twenty amino acids plus stop."""
    return {aa: residue_profile(aa) for aa in alphabet.AMINO_ACIDS_WITH_STOP}


@dataclass(frozen=True)
class QueryComposition:
    """Aggregate pattern statistics for one query."""

    residues: int
    mean_match_probability: float
    total_information_bits: float
    expected_null_score: float
    max_score: int

    @property
    def discrimination_margin(self) -> float:
        """Perfect score minus expected random score, in elements —
        the 'headroom' available for threshold placement."""
        return self.max_score - self.expected_null_score


def query_composition(query) -> QueryComposition:
    """Aggregate the per-residue profiles over one query."""
    sequence = as_protein(query)
    if not len(sequence):
        raise ValueError("query must contain at least one residue")
    profiles = [residue_profile(aa) for aa in sequence.letters]
    element_p = element_match_probabilities(sequence)
    return QueryComposition(
        residues=len(sequence),
        mean_match_probability=float(
            np.mean([p.match_probability for p in profiles])
        ),
        total_information_bits=float(sum(p.information_bits for p in profiles)),
        expected_null_score=float(element_p.sum()),
        max_score=3 * len(sequence),
    )


def background_match_probability(
    frequencies: Optional[Dict[str, float]] = None,
) -> float:
    """Composition-weighted mean codon-level match probability.

    With the Swiss-Prot background this summarizes how often a random
    codon satisfies a random residue's pattern — the paper's encoding keeps
    this low (~0.1) despite the degeneracy it must preserve.
    """
    frequencies = frequencies if frequencies is not None else UNIPROT_AA_FREQUENCIES
    total_weight = sum(frequencies.values())
    return (
        sum(
            weight * residue_profile(aa).match_probability
            for aa, weight in frequencies.items()
        )
        / total_weight
    )


def format_composition_table() -> str:
    """The full residue table, for documentation and the examples."""
    from repro.analysis.report import text_table

    rows = []
    for amino in alphabet.AMINO_ACIDS_WITH_STOP:
        profile = residue_profile(amino)
        rows.append(
            [
                f"{alphabet.THREE_LETTER[amino]} ({amino})",
                profile.pattern,
                profile.codons_admitted,
                f"{profile.match_probability:.3f}",
                f"{profile.information_bits:.2f}",
            ]
        )
    return text_table(
        ["residue", "pattern", "codons", "P(match)", "bits"],
        rows,
        title="Back-translation pattern composition (paper mode)",
    )
