"""Deployment planner: sizing a FabP installation for a workload.

The adoption question a paper reader actually has: *given my database and
query stream, what does a FabP deployment buy me over my CPU cluster or a
GPU box?*  This module composes the reproduction's models into one
calculator: per-platform batch time, energy, and throughput for a workload
(database size x query batch x length mix), with FPGA options (device,
boards, multi-query sharing) applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


from repro.accel.device import FpgaDevice, KINTEX7
from repro.accel.multi_query import queries_per_pass
from repro.perf import cpu as cpu_model
from repro.perf import fpga as fpga_model
from repro.perf import gpu as gpu_model
from repro.perf.platforms import GTX_1080TI, I7_8700K
from repro.perf.workload import Workload


@dataclass(frozen=True)
class WorkloadMix:
    """A query stream against one database."""

    database_nucleotides: int
    #: ``{query_residues: count}`` — the batch's length histogram.
    query_counts: Dict[int, int]

    @property
    def total_queries(self) -> int:
        return sum(self.query_counts.values())

    def workloads(self) -> List[Tuple[Workload, int]]:
        return [
            (Workload(residues, self.database_nucleotides), count)
            for residues, count in sorted(self.query_counts.items())
        ]


@dataclass(frozen=True)
class PlatformPlan:
    """One platform's cost for the whole mix."""

    platform: str
    batch_seconds: float
    batch_joules: float
    total_queries: int

    @property
    def queries_per_hour(self) -> float:
        if self.batch_seconds == 0:
            return float("inf")
        return 3600.0 * self.total_queries / self.batch_seconds

    @property
    def joules_per_query(self) -> float:
        if self.total_queries == 0:
            return 0.0
        return self.batch_joules / self.total_queries


def plan_fabp(
    mix: WorkloadMix,
    *,
    device: FpgaDevice = KINTEX7,
    boards: int = 1,
    share_fabric: bool = True,
) -> PlatformPlan:
    """FabP deployment: optional multi-board sharding + fabric sharing.

    Sharding divides the database ``boards`` ways (idealized balance);
    fabric sharing batches same-length queries ``queries_per_pass`` deep so
    they amortize one reference pass.
    """
    if boards < 1:
        raise ValueError("need at least one board")
    shard_nt = -(-mix.database_nucleotides // boards)
    seconds = 0.0
    for residues, count in sorted(mix.query_counts.items()):
        workload = Workload(residues, shard_nt)
        per_pass = queries_per_pass(3 * residues, device) if share_fabric else 1
        passes = -(-count // per_pass)
        seconds += passes * fpga_model.fabp_seconds(workload, device)
    joules = seconds * device.power_watts * boards
    return PlatformPlan(
        platform=f"FabP x{boards} ({device.name})",
        batch_seconds=seconds,
        batch_joules=joules,
        total_queries=mix.total_queries,
    )


def plan_gpu(mix: WorkloadMix, gpu=GTX_1080TI) -> PlatformPlan:
    seconds = sum(
        count * gpu_model.gpu_seconds(workload, gpu)
        for workload, count in mix.workloads()
    )
    return PlatformPlan(
        platform=gpu.name,
        batch_seconds=seconds,
        batch_joules=seconds * gpu.power_watts,
        total_queries=mix.total_queries,
    )


def plan_cpu(mix: WorkloadMix, cpu=I7_8700K, *, threads: int = 12) -> PlatformPlan:
    seconds = sum(
        count * cpu_model.cpu_seconds(workload, cpu, threads=threads)
        for workload, count in mix.workloads()
    )
    watts = cpu.power_all_watts if threads > 1 else cpu.power_1t_watts
    return PlatformPlan(
        platform=f"{cpu.name} (TBLASTN-{threads})",
        batch_seconds=seconds,
        batch_joules=seconds * watts,
        total_queries=mix.total_queries,
    )


def compare_deployments(
    mix: WorkloadMix,
    *,
    device: FpgaDevice = KINTEX7,
    boards: int = 1,
    share_fabric: bool = True,
) -> List[PlatformPlan]:
    """All platforms on one mix, FabP first."""
    return [
        plan_fabp(mix, device=device, boards=boards, share_fabric=share_fabric),
        plan_gpu(mix),
        plan_cpu(mix, threads=12),
        plan_cpu(mix, threads=1),
    ]


def format_deployment_table(plans: Sequence[PlatformPlan]) -> str:
    """Aligned comparison table."""
    from repro.analysis.report import text_table

    rows = [
        [
            plan.platform,
            f"{plan.batch_seconds:.1f} s",
            f"{plan.queries_per_hour:,.0f}",
            f"{plan.batch_joules / 1e3:.2f} kJ",
            f"{plan.joules_per_query:.1f} J",
        ]
        for plan in plans
    ]
    return text_table(
        ["platform", "batch time", "queries/hour", "energy", "J/query"],
        rows,
        title=f"Deployment comparison ({plans[0].total_queries} queries)",
    )
