"""repro — reproduction of FabP (DATE 2021).

FabP is an FPGA accelerator for aligning back-translated protein queries
against DNA/RNA reference databases.  This library reproduces the full
system in Python as a functional simulation:

* :mod:`repro.core` — back-translation, 6-bit instruction encoding, the
  custom-comparator semantics and the golden substitution-only aligner;
* :mod:`repro.seq` — sequence substrate (alphabets, FASTA, packing,
  generation, mutation, translation);
* :mod:`repro.rtl` — LUT-level functional RTL simulation (LUT6/FF
  primitives, comparator and pop-counter netlists, cycle simulator);
* :mod:`repro.accel` — the full accelerator model (AXI streaming, stream
  buffer, scheduler, Kintex-7 device/resource model);
* :mod:`repro.perf` — calibrated performance and energy models for FPGA,
  CPU (TBLASTN) and GPU platforms;
* :mod:`repro.baselines` — Smith-Waterman and a TBLASTN-like pipeline;
* :mod:`repro.workloads` / :mod:`repro.analysis` — synthetic NCBI-style
  workloads and the paper's accuracy / indel studies.

Quickstart::

    from repro import align
    result = align("MFSR*", "AUGUUUUCGCGAUGA", min_identity=0.9)
    print(result.best_hit)
"""

from repro.core import (
    AlignmentResult,
    EncodedQuery,
    Hit,
    align,
    alignment_scores,
    back_translate,
    encode_query,
    pattern_string,
    search_database,
)
from repro.seq import DnaSequence, ProteinSequence, RnaSequence

__version__ = "1.0.0"

__all__ = [
    "AlignmentResult",
    "DnaSequence",
    "EncodedQuery",
    "Hit",
    "ProteinSequence",
    "RnaSequence",
    "__version__",
    "align",
    "alignment_scores",
    "back_translate",
    "encode_query",
    "pattern_string",
    "search_database",
]
