"""Functional cycle-level model of the FabP accelerator (Fig. 3).

Replays the paper's end-to-end flow on a reference stream:

1. the encoded query is loaded into the (modeled) FF-based query memory;
2. the packed reference streams in 512-bit AXI beats with realistic stalls;
3. the *Reference Stream* buffer keeps the last ``L_q`` elements of the
   previous beat and concatenates the incoming 256 elements, so alignment
   positions that straddle beats are covered (§III-C);
4. every alignment position is scored with the comparator/pop-counter
   semantics (numerically identical to the RTL netlists — tests verify)
   and thresholded; hits go to the write-back buffer;
5. cycles are accounted: ``segments`` cycles per valid beat, one per stall,
   plus query load, pipeline drain and write-back flush.

The hits this kernel produces are **identical** to
:func:`repro.core.aligner.align`; what it adds is the cycle/bandwidth
accounting that the performance model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.accel.axi import AxiReferenceStream, DEFAULT_EFFICIENCY
from repro.accel.device import FpgaDevice, KINTEX7
from repro.accel.scheduler import SchedulePlan, plan_schedule
from repro.core import comparator as cmp
from repro.core.aligner import Hit, resolve_threshold
from repro.core.encoding import EncodedQuery, encode_query
from repro.obs import profile as _obs_profile
from repro.seq import packing
from repro.seq.sequence import as_rna

#: Write-back record width (32-bit position + 10-bit score), §III-C WB buffer.
WRITEBACK_RECORD_BITS = 42


@dataclass(frozen=True)
class KernelRun:
    """Outcome of one kernel invocation on one reference."""

    query: EncodedQuery
    plan: SchedulePlan
    threshold: int
    hits: Tuple[Hit, ...]
    reference_length: int
    beats: int
    stall_cycles: int
    compute_cycles: int
    load_cycles: int
    writeback_cycles: int
    drain_cycles: int

    @property
    def total_cycles(self) -> int:
        return (
            self.load_cycles
            + self.compute_cycles
            + self.stall_cycles
            + self.writeback_cycles
            + self.drain_cycles
        )

    @property
    def elapsed_seconds(self) -> float:
        return self.total_cycles / self.plan.device.clock_hz

    @property
    def effective_bandwidth(self) -> float:
        """Achieved reference-read bandwidth in bytes/s."""
        if self.total_cycles == 0:
            return 0.0
        bytes_read = self.beats * self.plan.device.bytes_per_beat
        return bytes_read / self.elapsed_seconds

    def __str__(self) -> str:
        return (
            f"KernelRun(len={self.reference_length}, hits={len(self.hits)}, "
            f"cycles={self.total_cycles}, bw={self.effective_bandwidth / 1e9:.2f} GB/s)"
        )


class FabPKernel:
    """The streaming accelerator model for one encoded query."""

    def __init__(
        self,
        query,
        *,
        device: FpgaDevice = KINTEX7,
        threshold: Optional[int] = None,
        min_identity: Optional[float] = None,
        axi_efficiency: float = DEFAULT_EFFICIENCY,
        stall_probability: Optional[float] = None,
        seed: Optional[int] = None,
        max_residues: Optional[int] = None,
    ):
        self.query = query if isinstance(query, EncodedQuery) else encode_query(query)
        self.device = device
        self.threshold = resolve_threshold(self.query, threshold, min_identity)
        # Hardware sizing: a bitstream built for `max_residues` runs any
        # shorter query by filling the spare columns with always-match (D)
        # pad instructions (§IV-A); each pad adds +1 to every score, so the
        # internal threshold is offset and reported scores corrected.
        if max_residues is not None and 3 * max_residues < len(self.query):
            raise ValueError(
                f"query has {self.query.num_residues} residues but the "
                f"hardware supports at most {max_residues}"
            )
        hw_elements = 3 * max_residues if max_residues is not None else len(self.query)
        self.pad_elements = hw_elements - len(self.query)
        self.plan = plan_schedule(hw_elements, device)
        self.axi_efficiency = axi_efficiency
        self.stall_probability = stall_probability
        self.seed = seed
        # Per-instruction lookup tables, computed once per query.
        from repro.core.encoding import pad_instruction

        instructions = np.concatenate(
            [
                self.query.as_array(),
                np.full(self.pad_elements, pad_instruction(), dtype=np.uint8),
            ]
        )
        self._hw_instructions = instructions
        self._tables, self._configs = cmp.instruction_tables(instructions)

    def run(self, reference) -> KernelRun:
        """Stream one reference through the accelerator."""
        codes = self._codes(reference)
        hw_elements = len(self._hw_instructions)
        true_elements = len(self.query)
        # Pad instructions extend alignment windows past the true query; the
        # stream appends zero trailer beats so end-of-reference positions
        # still drain (the D pads match anything, including the zeros).
        base_delivered = packing.packed_size_bytes(codes.size) * 4
        deficit = codes.size + self.pad_elements - base_delivered
        per_beat = self.device.nucleotides_per_beat
        trailer = -(-max(0, deficit) // per_beat)
        stream = AxiReferenceStream(
            codes,
            nucleotides_per_beat=per_beat,
            efficiency=self.axi_efficiency,
            stall_probability=self.stall_probability,
            seed=self.seed,
            trailer_beats=trailer,
        )
        # The stream buffer: retain the last L_q + 1 codes so positions that
        # straddle beats keep their full look-back context (the +1 covers the
        # two-back dependency source of the earliest retained position).
        tail = np.zeros(0, dtype=np.uint8)
        consumed = 0
        hits: List[Hit] = []
        compute_cycles = 0
        stall_cycles = 0
        beats = 0
        for beat in stream.beats():
            if not beat.valid:
                stall_cycles += 1
                continue
            beats += 1
            compute_cycles += self.plan.segments
            chunk = beat.codes
            window = np.concatenate([tail, chunk])
            window_start = consumed - tail.size
            consumed_before = consumed
            consumed += chunk.size
            self._emit_hits(
                window,
                window_start,
                consumed_before,
                consumed,
                hw_elements,
                codes.size - true_elements,  # last valid alignment position
                hits,
            )
            keep = min(hw_elements + 1, window.size)
            tail = window[window.size - keep :]
        load_cycles = -(-6 * hw_elements // self.device.axi_width_bits)
        records_per_beat = self.device.axi_width_bits // WRITEBACK_RECORD_BITS
        writeback_cycles = -(-len(hits) // records_per_beat) if hits else 0
        run = KernelRun(
            query=self.query,
            plan=self.plan,
            threshold=self.threshold,
            hits=tuple(sorted(hits, key=lambda h: h.position)),
            reference_length=int(codes.size),
            beats=beats,
            stall_cycles=stall_cycles,
            compute_cycles=compute_cycles,
            load_cycles=load_cycles,
            writeback_cycles=writeback_cycles,
            drain_cycles=self.plan.pipeline_latency,
        )
        _obs_profile.record_kernel_run(run)
        return run

    def run_stream(self, chunks) -> KernelRun:
        """Stream a reference supplied as an iterable of pieces.

        Constant-memory variant of :meth:`run` for references too large to
        hold as one array (the paper's workload is 4 Gnt): ``chunks`` yields
        RNA/DNA strings or code arrays of arbitrary sizes.  Produces
        identical hits to :meth:`run` on the concatenation; cycle accounting
        is computed from the total beat count (the deterministic stall model
        is position-independent).
        """
        hw_elements = len(self._hw_instructions)
        true_elements = len(self.query)
        tail = np.zeros(0, dtype=np.uint8)
        consumed = 0
        hits: List[Hit] = []
        for chunk in chunks:
            codes = self._codes(chunk)
            if codes.size == 0:
                continue
            window = np.concatenate([tail, codes])
            window_start = consumed - tail.size
            consumed_before = consumed
            consumed += codes.size
            # No clamp needed mid-stream: every completed position k
            # satisfies k <= consumed - hw <= total - true (hw >= true).
            self._emit_hits(
                window,
                window_start,
                consumed_before,
                consumed,
                hw_elements,
                consumed,  # effectively unclamped
                hits,
            )
            keep = min(hw_elements + 1, window.size)
            tail = window[window.size - keep :]
        total = consumed
        if self.pad_elements and total:
            # Flush: padded windows at the reference end drain against zero
            # trailer data (the D pads match anything).
            trailer = np.zeros(self.pad_elements, dtype=np.uint8)
            window = np.concatenate([tail, trailer])
            window_start = consumed - tail.size
            self._emit_hits(
                window,
                window_start,
                consumed,
                consumed + trailer.size,
                hw_elements,
                total - true_elements,
                hits,
            )
        per_beat = self.device.nucleotides_per_beat
        deficit = total + self.pad_elements - packing.packed_size_bytes(total) * 4
        beats = packing.beats_required(total) + -(-max(0, deficit) // per_beat)
        stall_cycles = max(0, int(np.ceil(beats / self.axi_efficiency)) - beats)
        records_per_beat = self.device.axi_width_bits // WRITEBACK_RECORD_BITS
        run = KernelRun(
            query=self.query,
            plan=self.plan,
            threshold=self.threshold,
            hits=tuple(sorted(hits, key=lambda h: h.position)),
            reference_length=int(total),
            beats=beats,
            stall_cycles=stall_cycles,
            compute_cycles=beats * self.plan.segments,
            load_cycles=-(-6 * hw_elements // self.device.axi_width_bits),
            writeback_cycles=-(-len(hits) // records_per_beat) if hits else 0,
            drain_cycles=self.plan.pipeline_latency,
        )
        _obs_profile.record_kernel_run(run)
        return run

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _codes(reference) -> np.ndarray:
        if isinstance(reference, np.ndarray):
            return np.asarray(reference, dtype=np.uint8)
        return packing.codes_from_text(as_rna(reference).letters)

    def _emit_hits(
        self,
        window: np.ndarray,
        window_start: int,
        consumed_before: int,
        consumed: int,
        hw_elements: int,
        last_position: int,
        hits: List[Hit],
    ) -> None:
        """Score and threshold the positions newly completed by this beat.

        Position ``k`` completes in this beat iff its last *hardware* element
        index ``k + E_hw - 1`` arrived with this chunk, i.e. lies in
        ``[consumed_before, consumed)``.  Those positions are fully inside
        ``window`` with genuine look-back context (the retained tail is
        ``E_hw + 1`` long); at the very start of the stream the missing
        context reads as code 0, matching both the hardware reset state and
        the golden model's convention.  ``last_position`` clamps alignments
        so the *true* query never extends past the reference.
        """
        num_local = window.size - hw_elements + 1
        if num_local <= 0:
            return
        k_lo = max(0, consumed_before - hw_elements + 1)
        k_hi = min(consumed - hw_elements, last_position)  # inclusive
        lo_local = max(k_lo - window_start, 0)
        hi_local = min(k_hi - window_start, num_local - 1)
        if hi_local < lo_local:
            return
        scores = self._scores_in_window(window, num_local)
        segment = scores[lo_local : hi_local + 1]
        # Pad instructions always match: raw = true + pad_elements.
        internal_threshold = self.threshold + self.pad_elements
        for index in np.nonzero(segment >= internal_threshold)[0]:
            position = window_start + lo_local + int(index)
            hits.append(Hit(position, int(segment[index]) - self.pad_elements))

    def _scores_in_window(self, window: np.ndarray, num_positions: int) -> np.ndarray:
        """Vectorized scoring of window-local alignment offsets."""
        num_elements = len(self._hw_instructions)
        instructions = self._hw_instructions
        length = window.size
        prev1 = np.zeros(length, dtype=np.uint8)
        prev2 = np.zeros(length, dtype=np.uint8)
        if length > 1:
            prev1[1:] = window[:-1]
        if length > 2:
            prev2[2:] = window[:-2]
        x_rows = np.zeros((4, length), dtype=np.uint8)
        x_rows[1] = (prev1 >> 1) & 1
        x_rows[2] = prev2 & 1
        x_rows[3] = (prev2 >> 1) & 1
        scores = np.zeros(num_positions, dtype=np.int32)
        for i in range(num_elements):
            segment = window[i : i + num_positions]
            config = int(self._configs[i])
            if config == 0:
                x = (int(instructions[i]) >> 3) & 1
                scores += self._tables[i, x, segment]
            else:
                bits = x_rows[config, i : i + num_positions]
                scores += self._tables[i, bits, segment]
        return scores
