"""Segmentation scheduler: fit the comparator array into the fabric.

§III-C: "Due to FPGA resource limitation, for long query sizes, there are
not enough resources to perform all the operations in one cycle.  FabP uses
a set of multiplexers to divide Query Seq. and Reference Stream into
multiple segments and process each segment in a cycle."

This module decides, for a query of ``E = 3 * L_q`` encoded elements on a
given device, how many **segments** (cycles per beat) the datapath needs,
and what one iteration's hardware costs.  The cost model is structural —
comparator and pop-counter LUT counts come from elaborating the actual
netlists in :mod:`repro.rtl` — plus three documented calibration constants
for what we cannot elaborate (routing/pipelining overhead, control logic).

Calibration targets (Table I): FabP-50 fits un-segmented at ~58 % LUTs;
FabP-250 needs multiple iterations (effective bandwidth 12.2 -> 3.4 GB/s)
at near-full LUT utilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.accel.device import FpgaDevice, KINTEX7
from repro.obs import profile as _obs_profile
from repro.rtl.comparator import LUTS_PER_ELEMENT

#: Routing / retiming overhead multiplier on datapath LUTs.  Real placement
#: duplicates logic and spends LUTs as route-throughs at high utilization;
#: 1.2 calibrates FabP-50's un-segmented footprint near Table I's 58 %.
ROUTING_FACTOR = 1.2

#: LUTs of control logic outside the datapath array: AXI masters, write-back
#: engine, host command FSM.  Calibrated with ROUTING_FACTOR (above).
FIXED_CONTROL_LUTS = 30_000

#: FFs of the same control logic.
FIXED_CONTROL_FFS = 15_000

#: Segment-select multiplexing cost per query element per instance, LUTs
#: (only paid when the design is segmented).
SEG_MUX_LUTS_PER_ELEMENT = 1

#: Score-accumulator register cost per instance when segmented (the 10-bit
#: partial alignment score must persist across segment cycles).
ACCUMULATOR_FFS = 10
ACCUMULATOR_LUTS = 10

#: Fraction of device LUTs the placer can actually fill.
MAX_LUT_UTILIZATION = 0.985

#: Pipeline registers: the comparator match vector is registered before the
#: pop-counter (one FF per element) plus a small threshold/write-back stage.
THRESHOLD_PIPELINE_FFS = 12


@lru_cache(maxsize=None)
def _popcounter_resources(width: int, style: str = "fabp"):
    from repro.rtl.popcount import build_popcounter

    block = build_popcounter(width, style=style, pipelined=True)
    return block.lut_count, block.ff_count, block.latency


@dataclass(frozen=True)
class SchedulePlan:
    """How one query maps onto the device."""

    device: FpgaDevice
    query_elements: int
    #: Alignment instances instantiated (r - q + 1 over the stream buffer,
    #: i.e. nucleotides-per-beat + 1).
    instances: int
    #: Cycles per AXI beat — 1 when the whole query fits, else > 1.
    segments: int
    #: Query elements processed per segment cycle.
    segment_elements: int
    #: One iteration's datapath LUTs (all instances, control included).
    luts_used: int
    ffs_used: int
    #: Pop-counter pipeline latency in cycles (drain time).
    pipeline_latency: int

    @property
    def lut_utilization(self) -> float:
        return self.luts_used / self.device.luts

    @property
    def ff_utilization(self) -> float:
        return self.ffs_used / self.device.ffs

    @property
    def bandwidth_bound(self) -> bool:
        """True when memory bandwidth, not fabric, limits throughput (§IV-B)."""
        return self.segments == 1

    @property
    def cycles_per_beat(self) -> int:
        return self.segments


def _iteration_cost(instances: int, segment_elements: int, segmented: bool):
    """LUT/FF cost of one full iteration's datapath + control."""
    cmp_luts = LUTS_PER_ELEMENT * segment_elements
    pc_luts, pc_ffs, pc_latency = _popcounter_resources(segment_elements)
    extra_luts = 0
    extra_ffs = 0
    if segmented:
        extra_luts = SEG_MUX_LUTS_PER_ELEMENT * segment_elements + ACCUMULATOR_LUTS
        extra_ffs = ACCUMULATOR_FFS
    per_instance_luts = int(round(ROUTING_FACTOR * (cmp_luts + pc_luts + extra_luts)))
    per_instance_ffs = (
        segment_elements  # registered match vector
        + pc_ffs
        + THRESHOLD_PIPELINE_FFS
        + extra_ffs
    )
    luts = instances * per_instance_luts + FIXED_CONTROL_LUTS
    ffs = instances * per_instance_ffs + FIXED_CONTROL_FFS
    return luts, ffs, pc_latency


def plan_schedule(query_elements: int, device: FpgaDevice = KINTEX7) -> SchedulePlan:
    """Choose the smallest segment count that fits the device.

    Raises ``ValueError`` if even fully segmented (one element per cycle)
    the design cannot fit — which does not happen for any device we model,
    but keeps the search total.
    """
    if query_elements < 1:
        raise ValueError("query must have at least one encoded element")
    instances = device.nucleotides_per_beat + 1
    budget = int(device.luts * MAX_LUT_UTILIZATION)
    for segments in range(1, query_elements + 1):
        segment_elements = -(-query_elements // segments)
        luts, ffs, pc_latency = _iteration_cost(
            instances, segment_elements, segmented=segments > 1
        )
        if luts <= budget and ffs <= device.ffs:
            # Stream-buffer and query storage FFs are global, not per segment.
            query_ffs = 6 * query_elements
            buffer_ffs = 2 * (query_elements + device.nucleotides_per_beat)
            _obs_profile.record_schedule_plan(segments)
            return SchedulePlan(
                device=device,
                query_elements=query_elements,
                instances=instances,
                segments=segments,
                segment_elements=segment_elements,
                luts_used=luts,
                ffs_used=ffs + query_ffs + buffer_ffs,
                pipeline_latency=pc_latency + 2,  # +compare and threshold stages
            )
    raise ValueError(
        f"query of {query_elements} elements cannot be scheduled on {device.name}"
    )


def max_unsegmented_elements(device: FpgaDevice = KINTEX7) -> int:
    """Largest query (in encoded elements) that runs at one cycle per beat.

    §IV-B observes the bandwidth/resource crossover near 70 amino acids
    (~210 elements) on the Kintex-7; this function computes where the model
    puts it.
    """
    low, high = 1, 6000
    while low < high:
        mid = (low + high + 1) // 2
        if plan_schedule(mid, device).segments == 1:
            low = mid
        else:
            high = mid - 1
    return low
