"""FPGA device models.

Capacities for the paper's platform (a mid-range Kintex-7) come straight
from Table I: 326 k LUTs, 407 k FFs, 16 Mb BRAM, 840 DSPs, and one DRAM
channel delivering 12.8 GB/s over a 512-bit AXI interface.  12.8 GB/s at
64 B/beat pins the kernel clock at 200 MHz, which is also a typical
achievable frequency for this fabric.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FpgaDevice:
    """Static capacities and interface parameters of an FPGA platform."""

    name: str
    luts: int
    ffs: int
    bram_bits: int
    dsps: int
    memory_channels: int = 1
    axi_width_bits: int = 512
    clock_mhz: float = 200.0
    #: Measured sustainable sequential-read bandwidth per channel, bytes/s.
    channel_bandwidth: float = 12.8e9
    #: Board power at high utilization, watts (mid-range Kintex-7 boards
    #: draw ~10 W under load; calibrated against the paper's energy ratios).
    power_watts: float = 10.0

    @property
    def clock_hz(self) -> float:
        return self.clock_mhz * 1e6

    @property
    def bytes_per_beat(self) -> int:
        return self.axi_width_bits // 8

    @property
    def nucleotides_per_beat(self) -> int:
        """2-bit packed nucleotides per AXI beat per channel."""
        return self.axi_width_bits // 2

    @property
    def nominal_bandwidth(self) -> float:
        """Nominal per-channel bandwidth = beat width x clock (paper §III-C)."""
        return self.bytes_per_beat * self.clock_hz

    @property
    def total_bandwidth(self) -> float:
        return self.channel_bandwidth * self.memory_channels


#: The paper's evaluation platform (Table I "Available" row).
KINTEX7 = FpgaDevice(
    name="Kintex-7 (mid-range)",
    luts=326_000,
    ffs=407_000,
    bram_bits=16_000_000,
    dsps=840,
    memory_channels=1,
    axi_width_bits=512,
    clock_mhz=200.0,
    channel_bandwidth=12.8e9,
    power_watts=10.0,
)

#: A larger device for the paper's "an FPGA with more LUTs can outperform
#: the GPU" observation (§IV-B) — roughly a VU9P-class datacenter part.
LARGE_FPGA = FpgaDevice(
    name="Large datacenter FPGA",
    luts=1_182_000,
    ffs=2_364_000,
    bram_bits=75_900_000,
    dsps=6_840,
    memory_channels=4,
    axi_width_bits=512,
    clock_mhz=250.0,
    channel_bandwidth=16.0e9,
    power_watts=35.0,
)
