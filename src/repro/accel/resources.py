"""Whole-accelerator resource model — the Table I reproduction.

Combines the structural scheduler plan (LUT/FF, netlist-derived) with the
remaining resource classes:

* **DSP** — the paper uses DSP slices for the threshold comparison "to save
  the LUTs for the custom comparators and pop-counters": one DSP per
  alignment instance, plus one more per instance for the partial-score
  accumulate when the design is segmented.
* **BRAM** — FabP deliberately keeps query and stream buffers in FFs; BRAM
  holds the AXI input FIFOs and the write-back buffer.  The write-back
  buffer is sized to the peak hit rate (positions per cycle), which *drops*
  with segmentation — reproducing Table I's counter-intuitive BRAM decrease
  from FabP-50 to FabP-250.
* **DRAM bandwidth** — nominal channel bandwidth divided by cycles/beat,
  scaled by the sequential-access efficiency implied by Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.accel.axi import DEFAULT_EFFICIENCY
from repro.accel.device import FpgaDevice, KINTEX7
from repro.accel.scheduler import SchedulePlan, plan_schedule

#: BRAM bits of AXI input FIFOs + host command queue (fixed).
FIXED_BRAM_BITS = 1_600_000

#: Write-back record width: 32-bit position + 10-bit score, padded to the
#: AXI-friendly 42 bits used throughout the write-back path.
WRITEBACK_RECORD_BITS = 42

#: Write-back FIFO depth per concurrent hit lane.
WRITEBACK_FIFO_DEPTH = 128

#: DSPs per alignment instance (threshold compare), plus accumulation DSP
#: when segmented.
DSP_PER_INSTANCE = 1


@dataclass(frozen=True)
class ResourceReport:
    """Utilization of every Table I resource class for one design point."""

    device: FpgaDevice
    plan: SchedulePlan
    luts: int
    ffs: int
    bram_bits: int
    dsps: int
    effective_bandwidth: float  # bytes/s

    @property
    def utilization(self) -> Dict[str, float]:
        return {
            "LUT": self.luts / self.device.luts,
            "FF": self.ffs / self.device.ffs,
            "BRAM": self.bram_bits / self.device.bram_bits,
            "DSP": self.dsps / self.device.dsps,
        }

    def row(self) -> Dict[str, str]:
        """Render as a Table I row (percentages + GB/s)."""
        util = self.utilization
        return {
            "LUT": f"{util['LUT']:.0%}",
            "FF": f"{util['FF']:.0%}",
            "BRAM": f"{util['BRAM']:.0%}",
            "DSP": f"{util['DSP']:.0%}",
            "DRAM BW": f"{self.effective_bandwidth / 1e9:.1f} GB/s",
        }


def resource_report(
    query_residues: int, device: FpgaDevice = KINTEX7
) -> ResourceReport:
    """Model the full accelerator for a protein query of ``query_residues``.

    The paper reports query length in amino acids (50..250); encoded
    elements are three per residue.
    """
    if query_residues < 1:
        raise ValueError("query must have at least one residue")
    plan = plan_schedule(3 * query_residues, device)
    dsps = plan.instances * DSP_PER_INSTANCE
    if plan.segments > 1:
        dsps += plan.instances  # partial-score accumulators
    dsps = min(dsps, device.dsps)
    hit_lanes = max(1, device.nucleotides_per_beat // plan.segments)
    bram_bits = FIXED_BRAM_BITS + hit_lanes * WRITEBACK_RECORD_BITS * WRITEBACK_FIFO_DEPTH
    effective_bw = (
        device.channel_bandwidth * DEFAULT_EFFICIENCY / plan.segments
    ) * device.memory_channels
    return ResourceReport(
        device=device,
        plan=plan,
        luts=plan.luts_used,
        ffs=plan.ffs_used,
        bram_bits=bram_bits,
        dsps=dsps,
        effective_bandwidth=effective_bw,
    )


def table1(device: FpgaDevice = KINTEX7, lengths=(50, 250)) -> Dict[int, ResourceReport]:
    """The two Table I design points (FabP-50 and FabP-250) by default."""
    return {length: resource_report(length, device) for length in lengths}
