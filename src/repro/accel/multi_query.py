"""Multi-query fabric sharing: amortize one reference pass over k queries.

Table I shows FabP-50 using only ~58 % of the Kintex-7's LUTs while being
completely bandwidth-bound — nearly half the fabric idles.  The natural
architecture extension (in the spirit of the paper's "FabP is able to
utilize multiple channels as long as the FPGA has enough resources") is to
instantiate *several queries' comparator arrays side by side* and score
them all against the same AXI stream: k queries per pass means the
database is read once instead of k times.

This module plans how many query arrays fit (reusing the structural cost
model of :mod:`repro.accel.scheduler`) and executes shared passes
functionally (hits identical to per-query runs, cycle cost of a single
pass).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


from repro.accel.device import FpgaDevice, KINTEX7
from repro.accel.kernel import FabPKernel, KernelRun
from repro.accel.scheduler import (
    FIXED_CONTROL_LUTS,
    MAX_LUT_UTILIZATION,
    _iteration_cost,
    plan_schedule,
)
from repro.core.encoding import EncodedQuery, encode_query


def queries_per_pass(query_elements: int, device: FpgaDevice = KINTEX7) -> int:
    """How many arrays for ``query_elements``-element queries fit at once.

    Only un-segmented arrays share usefully (a segmented array already
    saturates the fabric), so the answer is 1 whenever a single query needs
    segmentation.
    """
    plan = plan_schedule(query_elements, device)
    if plan.segments > 1:
        return 1
    budget = int(device.luts * MAX_LUT_UTILIZATION)
    instances = device.nucleotides_per_beat + 1
    per_array_luts, _, _ = _iteration_cost(instances, query_elements, segmented=False)
    per_array_luts -= FIXED_CONTROL_LUTS  # control is shared, count it once
    if per_array_luts <= 0:
        return 1
    return max(1, (budget - FIXED_CONTROL_LUTS) // per_array_luts)


@dataclass(frozen=True)
class SharedPassResult:
    """Outcome of one shared pass: per-query kernel runs, one stream cost."""

    runs: Tuple[KernelRun, ...]
    queries_in_pass: int

    @property
    def pass_cycles(self) -> int:
        """Cycles of the single shared stream pass (not the per-query sum).

        The shared arrays consume the same beats; load/drain/write-back of
        all co-resident queries are included.
        """
        if not self.runs:
            return 0
        stream = max(r.compute_cycles + r.stall_cycles for r in self.runs)
        overheads = sum(
            r.load_cycles + r.writeback_cycles + r.drain_cycles for r in self.runs
        )
        return stream + overheads

    @property
    def serial_cycles(self) -> int:
        """What the same searches would cost as separate passes."""
        return sum(r.total_cycles for r in self.runs)

    @property
    def speedup(self) -> float:
        if self.pass_cycles == 0:
            return 1.0
        return self.serial_cycles / self.pass_cycles


class MultiQueryScheduler:
    """Group queries into shared passes and execute them."""

    def __init__(self, device: FpgaDevice = KINTEX7):
        self.device = device

    def plan_groups(self, queries: Sequence) -> List[List[EncodedQuery]]:
        """Pack queries into passes.

        Queries are padded to the longest member of their group (pad
        instructions, §IV-A), so grouping by similar length wastes the
        least fabric: sort by length descending, then first-fit by the
        capacity of the group's longest query.
        """
        encoded = [
            q if isinstance(q, EncodedQuery) else encode_query(q) for q in queries
        ]
        ordered = sorted(encoded, key=lambda q: -len(q))
        groups: List[List[EncodedQuery]] = []
        for query in ordered:
            placed = False
            for group in groups:
                capacity = queries_per_pass(len(group[0]), self.device)
                if len(group) < capacity:
                    group.append(query)
                    placed = True
                    break
            if not placed:
                groups.append([query])
        return groups

    def run_pass(
        self,
        group: Sequence[EncodedQuery],
        reference,
        *,
        threshold: Optional[int] = None,
        min_identity: Optional[float] = None,
    ) -> SharedPassResult:
        """Execute one shared pass: all queries against one stream.

        Functionally each query is scored independently (the hardware
        arrays are independent); co-residents shorter than the group's
        longest are pad-filled to its length so every array sees the same
        beat cadence.
        """
        if not group:
            raise ValueError("a pass needs at least one query")
        group = [
            q if isinstance(q, EncodedQuery) else encode_query(q) for q in group
        ]
        max_residues = max(q.num_residues for q in group)
        runs = []
        for query in group:
            kernel = FabPKernel(
                query,
                device=self.device,
                threshold=threshold,
                min_identity=min_identity,
                max_residues=max_residues,
            )
            runs.append(kernel.run(reference))
        return SharedPassResult(runs=tuple(runs), queries_in_pass=len(group))

    def search_all(
        self,
        queries: Sequence,
        reference,
        *,
        threshold: Optional[int] = None,
        min_identity: Optional[float] = None,
    ) -> Tuple[List[SharedPassResult], Dict[str, float]]:
        """Run every query, shared where possible; returns passes + summary."""
        groups = self.plan_groups(queries)
        passes = [
            self.run_pass(
                group, reference, threshold=threshold, min_identity=min_identity
            )
            for group in groups
        ]
        shared = sum(p.pass_cycles for p in passes)
        serial = sum(p.serial_cycles for p in passes)
        summary = {
            "passes": float(len(passes)),
            "queries": float(len(queries)),
            "shared_cycles": float(shared),
            "serial_cycles": float(serial),
            "speedup": serial / shared if shared else 1.0,
        }
        return passes, summary
