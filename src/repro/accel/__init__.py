"""Accelerator model: device, AXI streaming, scheduling, kernel, resources.

* :mod:`repro.accel.device` — FPGA capacity models (Kintex-7 per Table I);
* :mod:`repro.accel.axi` — beat/stall-accurate reference streaming;
* :mod:`repro.accel.scheduler` — segmentation of long queries onto the
  fabric (the source of the bandwidth/resource crossover);
* :mod:`repro.accel.kernel` — the cycle-level functional kernel;
* :mod:`repro.accel.rtl_kernel` — a small-scale LUT-level kernel for
  cross-validation;
* :mod:`repro.accel.resources` — the Table I resource/utilization model.
"""

from repro.accel.device import KINTEX7, LARGE_FPGA, FpgaDevice
from repro.accel.kernel import FabPKernel, KernelRun
from repro.accel.multi_query import MultiQueryScheduler, queries_per_pass
from repro.accel.resources import ResourceReport, resource_report, table1
from repro.accel.scheduler import SchedulePlan, max_unsegmented_elements, plan_schedule

__all__ = [
    "FabPKernel",
    "FpgaDevice",
    "KINTEX7",
    "KernelRun",
    "LARGE_FPGA",
    "MultiQueryScheduler",
    "ResourceReport",
    "SchedulePlan",
    "max_unsegmented_elements",
    "plan_schedule",
    "queries_per_pass",
    "resource_report",
    "table1",
]
