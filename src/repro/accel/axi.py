"""AXI stream model: beat-by-beat delivery of the packed reference.

The paper's performance story is bandwidth-centric: the reference streams
sequentially at up to one 512-bit beat per cycle, and "in clock cycles that
the AXI port does not have valid data ... all the stages of FabP will be
stalled".  This module models that valid/stall behaviour so the kernel can
count cycles the way the hardware would.

Two stall models:

* ``efficiency`` — deterministic: one stall cycle is inserted whenever the
  running valid-ratio would exceed the target efficiency (DRAM refresh,
  controller overhead).  Table I's measured 12.2 of 12.8 GB/s corresponds
  to ~95 % efficiency, the default.
* ``stall_probability`` — seeded Bernoulli stalls, for stress-testing the
  kernel's stall handling in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.seq import packing

#: Sequential-read efficiency implied by Table I (12.2 / 12.8 GB/s).
DEFAULT_EFFICIENCY = 12.2 / 12.8


@dataclass(frozen=True)
class Beat:
    """One AXI transfer: up to 256 nucleotide codes, or a stall marker."""

    valid: bool
    codes: Optional[np.ndarray] = None  # uint8 codes, length <= 256
    last: bool = False


class AxiReferenceStream:
    """Streams a packed reference as per-cycle beats with stalls.

    ``codes`` is the unpacked 2-bit code array of the whole reference (the
    packed DRAM image is reconstructed internally to keep the memory layout
    honest — what is streamed is exactly what :mod:`repro.seq.packing`
    stores).
    """

    def __init__(
        self,
        codes: np.ndarray,
        *,
        nucleotides_per_beat: int = packing.NUCLEOTIDES_PER_BEAT,
        efficiency: float = DEFAULT_EFFICIENCY,
        stall_probability: Optional[float] = None,
        seed: Optional[int] = None,
        trailer_beats: int = 0,
    ):
        if not 0.0 < efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        if stall_probability is not None and not 0.0 <= stall_probability < 1.0:
            raise ValueError("stall_probability must be in [0, 1)")
        if trailer_beats < 0:
            raise ValueError("trailer_beats cannot be negative")
        self.codes = np.asarray(codes, dtype=np.uint8)
        self.nucleotides_per_beat = nucleotides_per_beat
        self.efficiency = efficiency
        self.stall_probability = stall_probability
        self.trailer_beats = trailer_beats
        self._rng = np.random.default_rng(seed)
        # Round-trip through the packed DRAM image: the stream reads what
        # the host actually wrote, padding included.  Trailer beats extend
        # the stream with zero data so padded (under-length) queries can
        # drain alignment positions near the reference end.
        packed = packing.pack(self.codes)
        self.dram_image = packed
        padded = packing.unpack(packed, packed.size * 4)
        if trailer_beats:
            padded = np.concatenate(
                [padded, np.zeros(trailer_beats * nucleotides_per_beat, dtype=np.uint8)]
            )
        self._padded = padded

    @property
    def num_beats(self) -> int:
        """Valid beats needed to deliver the whole reference (+ trailer)."""
        return packing.beats_required(self.codes.size) + self.trailer_beats

    def beats(self) -> Iterator[Beat]:
        """Yield one :class:`Beat` per clock cycle, stalls included."""
        delivered = 0
        valid_count = 0
        cycle = 0
        total = self.num_beats
        per_beat = self.nucleotides_per_beat
        while delivered < total:
            cycle += 1
            if self._stall(valid_count, cycle):
                yield Beat(valid=False)
                continue
            start = delivered * per_beat
            chunk = self._padded[start : start + per_beat]
            delivered += 1
            valid_count += 1
            yield Beat(valid=True, codes=chunk, last=delivered == total)

    def _stall(self, valid_count: int, cycle: int) -> bool:
        if self.stall_probability is not None:
            return bool(self._rng.random() < self.stall_probability)
        # Deterministic pacing: keep valid/cycle ratio at the target.
        return (valid_count + 1) > self.efficiency * cycle

    def total_cycles(self) -> int:
        """Cycles to deliver all beats under the deterministic stall model."""
        if self.stall_probability is not None:
            raise ValueError("cycle count is only deterministic in efficiency mode")
        # valid_count <= efficiency * cycles, minimal cycles achieving num_beats.
        return int(np.ceil(self.num_beats / self.efficiency))
