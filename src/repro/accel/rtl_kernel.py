"""LUT-level alignment array: the datapath of Fig. 3 as a real netlist.

The full-scale FabP array (257 instances x 750 elements) would be ~0.5 M
LUTs — too big to simulate interactively in Python — so this module builds a
*parameterized* array that is structurally identical (shift-register stream
buffer, two-LUT comparators, registered match vectors, Pop36 pop-counters,
threshold comparators, registered score outputs) at small sizes, and the
test suite proves it cycle-accurate against the golden aligner.  The
resource model scales the measured per-module costs analytically.

Serialization note: the hardware ingests 256 nucleotides per beat; this
model ingests one nucleotide per cycle, which exercises the same comparator
/ pop-counter / threshold logic while keeping netlists small.  Beat-level
throughput is the scheduler/kernel model's job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.aligner import Hit
from repro.core.encoding import EncodedQuery, encode_query
from repro.rtl.comparator import add_element_comparator
from repro.rtl.netlist import GND, VCC, Netlist
from repro.rtl.popcount import add_pop36, add_ripple_adder, lut_init
from repro.rtl.simulator import Simulator
from repro.seq import packing
from repro.seq.sequence import as_rna

#: hold-mux function: D when clock-enabled, else keep Q.
_CE_MUX_INIT = lut_init(lambda d, q, ce: d if ce else q, 3)


def _add_ce_ff(netlist: Netlist, data: int, enable: int, name: str) -> int:
    """A clock-enabled FF: hold-mux LUT + FF (CE path of the real FDRE)."""
    d_net = netlist.new_net()
    q_net = netlist.add_ff(d_net, name=name)
    netlist.add_lut_driving(d_net, (data, q_net, enable), _CE_MUX_INIT, name + ".ce")
    return q_net


def _add_threshold(
    netlist: Netlist, score_bits: List[int], threshold: int, name: str
) -> int:
    """``score >= threshold`` as an LSB-first running comparator (1 LUT/bit).

    The real design places this compare in a DSP slice "to save the LUTs";
    the functional behaviour is identical.
    """
    if threshold <= 0:
        return VCC
    if threshold >= (1 << len(score_bits)):
        return GND
    ge = VCC  # "equal so far" seed: score >= threshold holds on a tie
    for i, bit in enumerate(score_bits):
        t_bit = (threshold >> i) & 1
        init = lut_init(lambda s, g, t=t_bit: int(s > t or (s == t and g)), 2)
        ge = netlist.add_lut((bit, ge), init, name=f"{name}.b{i}")
    return ge


@dataclass(frozen=True)
class RtlArray:
    """A built alignment array and its simulation metadata."""

    netlist: Netlist
    query: EncodedQuery
    instances: int
    threshold: int
    #: Valid-cycle latency from a position's last nucleotide entering the
    #: stream buffer to its registered score being observable.
    score_latency: int


def build_alignment_array(
    query, instances: int, threshold: int, *, loadable: bool = False
) -> RtlArray:
    """Build the array netlist for ``instances`` concurrent alignment positions.

    Primary inputs: ``nt[0..1]`` (one 2-bit nucleotide code per cycle) and
    ``valid[0]`` — an invalid cycle freezes every pipeline stage, exactly
    like the paper's AXI stall behaviour.  Outputs per instance ``j``:
    ``score{j}[*]`` and ``hit{j}[0]``.  Instance ``j`` scores positions
    offset by ``j`` cycles relative to instance 0.

    ``loadable=False`` folds the query into LUT constants (smallest netlist
    for simulation).  ``loadable=True`` builds the paper's actual query
    memory — a 6-bit-wide FF shift register ("FabP uses distributed memory
    resources (FFs) for the query sequence"), loaded through ``qin[0..5]``
    while ``qload[0]`` is high, *last* instruction first; the same netlist
    then serves any query of this length.
    """
    encoded = query if isinstance(query, EncodedQuery) else encode_query(query)
    num_elements = len(encoded)
    if instances < 1:
        raise ValueError("need at least one alignment instance")
    suffix = "L" if loadable else ""
    netlist = Netlist(name=f"fabp_array_{num_elements}x{instances}{suffix}")
    nt = netlist.add_input_bus("nt", 2)  # bit0 = lo, bit1 = hi
    valid = netlist.add_input("valid")

    if loadable:
        qin = netlist.add_input_bus("qin", 6)
        qload = netlist.add_input("qload")
        # Word-wide shift register: stage 0 receives qin; after E load
        # cycles (last instruction first) stage i holds instruction i.
        q_bits = []
        previous = qin
        for stage in range(num_elements):
            word = [
                _add_ce_ff(netlist, previous[b], qload, f"qmem{stage}.b{b}")
                for b in range(6)
            ]
            q_bits.append(word)
            previous = word
    else:
        # Query memory folded to constants (same functional object, smaller
        # simulated netlist).
        q_bits = [
            [(GND, VCC)[(instruction >> b) & 1] for b in range(6)]
            for instruction in encoded.instructions
        ]

    # Stream buffer: clock-enabled shift register of 2-bit codes; stage 0 is
    # the newest nucleotide.  Two-pass construction because each hold-mux
    # reads the Q of the FF it feeds.
    depth = num_elements + instances + 1
    d_nets: List[Tuple[int, int]] = []
    q_nets: List[Tuple[int, int]] = []
    for stage in range(depth):
        d_hi, d_lo = netlist.new_net(), netlist.new_net()
        q_hi = netlist.add_ff(d_hi, name=f"sb{stage}.hi")
        q_lo = netlist.add_ff(d_lo, name=f"sb{stage}.lo")
        d_nets.append((d_hi, d_lo))
        q_nets.append((q_hi, q_lo))
    for stage in range(depth):
        prev = (nt[1], nt[0]) if stage == 0 else q_nets[stage - 1]
        own = q_nets[stage]
        netlist.add_lut_driving(
            d_nets[stage][0], (prev[0], own[0], valid), _CE_MUX_INIT, f"sb{stage}.hice"
        )
        netlist.add_lut_driving(
            d_nets[stage][1], (prev[1], own[1], valid), _CE_MUX_INIT, f"sb{stage}.loce"
        )

    # Per instance: comparators -> registered match vector -> Pop36 tree ->
    # registered score -> threshold.  With the newest code at stage 0 and a
    # position's last element just arrived, element i sits at stage
    # j + (E-1-i); its dependency sources are one and two stages deeper.
    for j in range(instances):
        matches: List[int] = []
        for i in range(num_elements):
            stage = j + (num_elements - 1 - i)
            hi, lo = q_nets[stage]
            prev1 = q_nets[stage + 1]
            prev2 = q_nets[stage + 2] if stage + 2 < depth else (GND, GND)
            matches.append(
                add_element_comparator(
                    netlist,
                    q_bits[i],
                    (hi, lo),
                    prev1_hi=prev1[0],
                    prev2_lo=prev2[1],
                    prev2_hi=prev2[0],
                    name=f"i{j}.e{i}",
                )
            )
        matches = [
            _add_ce_ff(netlist, m, valid, f"i{j}.m{n}") for n, m in enumerate(matches)
        ]
        counts: List[List[int]] = [
            add_pop36(netlist, matches[start : start + 36], name=f"i{j}.p36_{c}")
            for c, start in enumerate(range(0, num_elements, 36))
        ]
        level = 0
        while len(counts) > 1:
            merged = [
                add_ripple_adder(
                    netlist, counts[a], counts[a + 1], name=f"i{j}.l{level}a{a}"
                )
                for a in range(0, len(counts) - 1, 2)
            ]
            if len(counts) % 2:
                merged.append(counts[-1])
            counts = merged
            level += 1
        score_bits = counts[0][: max(1, num_elements.bit_length())]
        score_bits = [
            _add_ce_ff(netlist, s, valid, f"i{j}.s{n}") for n, s in enumerate(score_bits)
        ]
        netlist.set_output_bus(f"score{j}", score_bits)
        netlist.set_output_bus(
            f"hit{j}", [_add_threshold(netlist, score_bits, threshold, f"i{j}.thr")]
        )

    # Latency derivation: after n valid edges, stage 0 holds codes[n-1]; the
    # match registers lag the buffer by one edge and the score registers by
    # two, so position k (last element codes[k+E-1]) is observable on the
    # score output after edge k + E + 2.
    return RtlArray(
        netlist=netlist,
        query=encoded,
        instances=instances,
        threshold=threshold,
        score_latency=2,
    )


class RtlKernel:
    """Drive the RTL array over a reference and collect scores + hits.

    Small-scale but end-to-end: every score and hit comes out of LUT/FF
    simulation, not from the golden model.  With ``loadable=True`` the
    array carries the paper's FF-based query memory: the query is shifted
    in through the ``qin`` port before streaming, and :meth:`reload` swaps
    in a different query of the same length without rebuilding hardware.
    """

    def __init__(self, query, *, instances: int = 2, threshold: int, loadable: bool = False):
        self.encoded = query if isinstance(query, EncodedQuery) else encode_query(query)
        self.array = build_alignment_array(
            self.encoded, instances, threshold, loadable=loadable
        )
        self.threshold = threshold
        self.instances = instances
        self.loadable = loadable

    def reload(self, query) -> None:
        """Swap the query (loadable arrays only; length must match)."""
        if not self.loadable:
            raise ValueError("array was built with a constant query memory")
        encoded = query if isinstance(query, EncodedQuery) else encode_query(query)
        if len(encoded) != len(self.encoded):
            raise ValueError(
                f"replacement query has {len(encoded)} elements, hardware "
                f"was built for {len(self.encoded)}"
            )
        self.encoded = encoded

    def _load_phase(self, sim: Simulator) -> None:
        """Shift the query into the FF memory (last instruction first)."""
        for instruction in reversed(self.encoded.instructions):
            inputs = {"nt[0]": 0, "nt[1]": 0, "valid": 0, "qload": 1}
            for bit in range(6):
                inputs[f"qin[{bit}]"] = (int(instruction) >> bit) & 1
            sim.step(inputs)

    def run(self, reference, *, stall_every: Optional[int] = None):
        """Stream a reference; returns ``(scores, hits)`` from instance 0.

        ``stall_every`` inserts an invalid cycle every N cycles to exercise
        the stall/clock-enable path.
        """
        if isinstance(reference, np.ndarray):
            codes = np.asarray(reference, dtype=np.uint8)
        else:
            codes = packing.codes_from_text(as_rna(reference).letters)
        num_elements = len(self.encoded)
        sim = Simulator(self.array.netlist)
        if self.loadable:
            self._load_phase(sim)
        num_positions = codes.size - num_elements + 1
        scores = np.full(max(num_positions, 0), -1, dtype=np.int64)
        hits: List[Hit] = []
        latency = self.array.score_latency
        target_edges = codes.size + latency
        fed = 0
        valid_count = 0
        cycle = 0
        hold_query = {"qload": 0} if self.loadable else {}
        while valid_count < target_edges:
            cycle += 1
            stall = stall_every is not None and cycle % stall_every == 0
            if stall:
                sim.step({"nt[0]": 0, "nt[1]": 0, "valid": 0, **hold_query})
                continue
            if fed < codes.size:
                code = int(codes[fed])
                fed += 1
            else:
                code = 0  # drain with don't-care input
            sim.step(
                {"nt[0]": code & 1, "nt[1]": (code >> 1) & 1, "valid": 1, **hold_query}
            )
            valid_count += 1
            # Post-edge, instance 0 exposes the score of position
            # k = valid_count - E - latency.
            k = valid_count - num_elements - latency
            if 0 <= k < num_positions:
                # Propagate the new register state through combinational
                # logic (the threshold comparator) before sampling.
                sim.settle()
                score = int(sim.output_bus("score0")[0])
                scores[k] = score
                if int(sim.output_bus("hit0")[0]):
                    hits.append(Hit(k, score))
        return scores, hits
