"""The statics rule registry and analysis drivers.

Reuses the :mod:`repro.lint` machinery wholesale — :class:`~repro.lint.Rule`
/ :class:`~repro.lint.Finding` / :class:`~repro.lint.LintReport` and the
text/JSON reporters — so ``fabp-repro check`` reads exactly like
``fabp-repro lint``: one report per subject (here: one per source module),
stable rule ids, ``--ignore`` / ``--strict``, exit code 0/1/2.

What this layer adds over the shared machinery is **pragma suppression**:
after a rule family runs, findings covered by a justified
``# statics: ignore[RCxxx] reason`` pragma on (or directly above) the
flagged line are dropped; a pragma *without* a justification does not
suppress — the finding survives with a note, so accepted false positives
are always accompanied by a written-down why.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.lint import Finding, LintReport, _normalize_ignore, rule_pattern_matches
from repro.statics import concurrency as _concurrency  # noqa: F401  (registration)
from repro.statics import kernels as _kernels  # noqa: F401  (registration)
from repro.statics import observability as _observability  # noqa: F401  (registration)
from repro.statics.discovery import (
    SourceModule,
    attach_parents,
    discover_modules,
    module_from_source,
)
from repro.statics.registry import STATIC_RULES


def _apply_pragmas(module: SourceModule, findings: Iterable[Finding]) -> List[Finding]:
    """Drop findings silenced by a justified pragma; annotate unjustified ones."""
    kept: List[Finding] = []
    for finding in findings:
        line = _finding_line(finding)
        pragma = None if line is None else module.pragma_for(line, finding.rule_id)
        if pragma is None:
            kept.append(finding)
            continue
        if pragma.justified:
            continue
        kept.append(
            Finding(
                rule_id=finding.rule_id,
                severity=finding.severity,
                location=finding.location,
                message=finding.message + " (suppression pragma lacks a justification)",
                suggested_fix="add a reason after the ] in the pragma comment",
                data=finding.data,
            )
        )
    return kept


def _finding_line(finding: Finding) -> Optional[int]:
    """The trailing ``:N`` line number of a finding location, if present."""
    _, _, tail = finding.location.rpartition(":")
    return int(tail) if tail.isdigit() else None


def analyze_module(
    module: SourceModule,
    *,
    ignore: Iterable[str] = (),
    rules: Optional[Sequence[str]] = None,
) -> LintReport:
    """Run every (selected, non-ignored) rule over one module."""
    # Rules navigate upward (enclosing function, enclosing try); annotate once.
    attach_parents(module.tree)
    ignored = _normalize_ignore(ignore)
    selected = (
        [STATIC_RULES.get(rule_id) for rule_id in rules]
        if rules is not None
        else list(STATIC_RULES)
    )
    findings: List[Finding] = []
    for rule in selected:
        if any(rule_pattern_matches(p, rule.rule_id) for p in ignored):
            continue
        findings.extend(_apply_pragmas(module, rule.check(rule=rule, module=module)))
    return LintReport(subject=module.name, findings=tuple(findings))


def analyze_source(
    source: str,
    *,
    name: str = "<memory>",
    ignore: Iterable[str] = (),
    rules: Optional[Sequence[str]] = None,
) -> LintReport:
    """Analyze a source string (the unit-test entry point)."""
    return analyze_module(
        module_from_source(source, name=name), ignore=ignore, rules=rules
    )


def default_root() -> Path:
    """The installed ``repro`` package directory (the self-hosting target)."""
    import repro

    return Path(repro.__file__).resolve().parent


def run_statics(
    root: Optional[Union[str, Path]] = None,
    *,
    ignore: Iterable[str] = (),
    rules: Optional[Sequence[str]] = None,
) -> List[LintReport]:
    """Analyze every module under ``root`` (default: the repro package)."""
    target = Path(root) if root is not None else default_root()
    return [
        analyze_module(module, ignore=ignore, rules=rules)
        for module in discover_modules(target)
    ]


def rule_catalogue() -> List[Dict[str, str]]:
    """Machine-readable rule metadata (embedded in the JSON artifact)."""
    return [
        {
            "rule": rule.rule_id,
            "name": rule.name,
            "severity": str(rule.severity),
            "guards": rule.guards,
        }
        for rule in STATIC_RULES
    ]
