"""shmsan — a runtime shared-memory sanitizer for the host runtime.

The RC rules catch lifecycle mistakes *statically*; shmsan catches them at
runtime, the way ASan backs a compiler's warnings.  Once installed it
instruments :class:`multiprocessing.shared_memory.SharedMemory` (``__init__``,
``close``, ``unlink`` and the ``buf`` property) and detects:

* **double-close** — ``close()`` on an already-closed handle;
* **double-unlink** — ``unlink()`` on an already-unlinked segment;
* **use-after-close** — reading ``.buf`` after ``close()`` (CPython hands
  back a dead buffer silently, which is exactly why this needs a sanitizer);
* **leaked-segment** — a segment created in a scope and never unlinked
  (the bug class that strands files in ``/dev/shm``);
* **leaked-handle** — a handle opened in a scope and never closed (keeps
  the mapping alive for the process lifetime).

Violations are recorded, never raised, so the sanitizer observes the code
under test without changing its control flow.  They land in the innermost
active :func:`scope` — tests that *intentionally* misuse a segment wrap the
misuse in their own scope and assert on it, while the session-wide scope the
pytest fixture owns (``tests/conftest.py``, enabled via ``FABP_SHMSAN``)
stays clean.

For cross-process verification (the kill-mid-chunk integration test), set
``FABP_SHMSAN_LOG`` to a file path: every create/close/unlink appends one
JSON line (flushed immediately, append-mode per event, so concurrent forked
writers interleave whole lines) that a supervising test can audit after the
subprocess dies.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import shared_memory as _shared_memory
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "ShmViolation",
    "ShmScope",
    "install",
    "uninstall",
    "is_installed",
    "scope",
    "current_scope",
    "format_violations",
    "read_event_log",
]

_LOG_ENV = "FABP_SHMSAN_LOG"


@dataclass(frozen=True)
class ShmViolation:
    """One detected misuse of a shared-memory segment."""

    kind: str  # double-close | double-unlink | use-after-close | leaked-*
    name: str  # the segment's /dev/shm name
    detail: str
    stack: str = ""


@dataclass
class _Handle:
    """Sanitizer-side state of one SharedMemory instance."""

    name: str
    created: bool
    closed: bool = False
    unlinked: bool = False


@dataclass
class ShmScope:
    """A detection scope: violations and handles attributed to it."""

    label: str
    violations: List[ShmViolation] = field(default_factory=list)
    handles: List[_Handle] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations


_LOCK = threading.RLock()
_SCOPES: List[ShmScope] = []
_SAVED: Dict[str, Any] = {}


def is_installed() -> bool:
    return bool(_SAVED)


def current_scope() -> Optional[ShmScope]:
    with _LOCK:
        return _SCOPES[-1] if _SCOPES else None


def _record_violation(kind: str, name: str, detail: str) -> None:
    stack = "".join(traceback.format_stack(limit=8)[:-2])
    with _LOCK:
        if _SCOPES:
            _SCOPES[-1].violations.append(
                ShmViolation(kind=kind, name=name, detail=detail, stack=stack)
            )


def _log_event(event: str, name: str) -> None:
    path = os.environ.get(_LOG_ENV)
    if not path:
        return
    line = json.dumps({"event": event, "name": name, "pid": os.getpid()})
    try:
        # Append-per-event keeps this fork-safe: each writer opens, writes
        # one flushed line, and closes, so no file offset is shared.
        with open(path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
    except OSError:  # the log is best-effort; never fail the workload
        return


def _handle_of(shm: Any) -> Optional[_Handle]:
    return getattr(shm, "_shmsan", None)


def _patched_init(self: Any, *args: Any, **kwargs: Any) -> None:
    _SAVED["__init__"](self, *args, **kwargs)
    created = bool(kwargs.get("create", False)) or (
        len(args) >= 2 and bool(args[1])
    )
    record = _Handle(name=self.name, created=created)
    object.__setattr__(self, "_shmsan", record)
    with _LOCK:
        if _SCOPES:
            _SCOPES[-1].handles.append(record)
    _log_event("create" if created else "attach", self.name)


def _called_from_del() -> bool:
    """True when the close came from ``SharedMemory.__del__``.

    CPython's destructor unconditionally calls ``close()`` as a safety
    net; re-closing an explicitly-closed handle there is the interpreter's
    idiom, not programmer misuse.
    """
    try:
        return sys._getframe(2).f_code.co_name == "__del__"
    except ValueError:
        return False


def _patched_close(self: Any) -> None:
    record = _handle_of(self)
    if record is not None:
        if record.closed:
            if not _called_from_del():
                _record_violation(
                    "double-close",
                    record.name,
                    "close() on an already-closed handle",
                )
        else:
            record.closed = True
            _log_event("close", record.name)
    _SAVED["close"](self)


def _patched_unlink(self: Any) -> None:
    record = _handle_of(self)
    if record is not None and record.unlinked:
        _record_violation(
            "double-unlink",
            record.name,
            "unlink() on an already-unlinked segment",
        )
    _SAVED["unlink"](self)
    if record is not None:
        record.unlinked = True
        _log_event("unlink", record.name)


def _patched_buf(self: Any) -> Any:
    record = _handle_of(self)
    if record is not None and record.closed:
        _record_violation(
            "use-after-close",
            record.name,
            ".buf read after close(); the buffer is no longer backed",
        )
    return _SAVED["buf"].fget(self)


def install(label: str = "session") -> ShmScope:
    """Patch SharedMemory and open the root detection scope."""
    with _LOCK:
        if _SAVED:
            raise RuntimeError("shmsan is already installed")
        cls = _shared_memory.SharedMemory
        _SAVED["__init__"] = cls.__init__
        _SAVED["close"] = cls.close
        _SAVED["unlink"] = cls.unlink
        _SAVED["buf"] = cls.buf
        cls.__init__ = _patched_init  # type: ignore[method-assign]
        cls.close = _patched_close  # type: ignore[method-assign]
        cls.unlink = _patched_unlink  # type: ignore[method-assign]
        cls.buf = property(_patched_buf)  # type: ignore[assignment]
        root = ShmScope(label=label)
        _SCOPES.append(root)
        return root


def uninstall() -> ShmScope:
    """Unpatch, finalize the root scope, and return it as the report."""
    with _LOCK:
        if not _SAVED:
            raise RuntimeError("shmsan is not installed")
        cls = _shared_memory.SharedMemory
        cls.__init__ = _SAVED.pop("__init__")  # type: ignore[method-assign]
        cls.close = _SAVED.pop("close")  # type: ignore[method-assign]
        cls.unlink = _SAVED.pop("unlink")  # type: ignore[method-assign]
        cls.buf = _SAVED.pop("buf")  # type: ignore[assignment]
        root = _SCOPES.pop(0)
        del _SCOPES[:]  # any stray nested scopes die with the session
    _finalize(root)
    return root


@contextmanager
def scope(label: str = "scope") -> Iterator[ShmScope]:
    """Open a nested detection scope; violations inside land here only.

    On exit the scope is finalized: handles opened inside it that were
    never closed become ``leaked-handle`` violations, created segments
    never unlinked become ``leaked-segment`` violations.
    """
    inner = ShmScope(label=label)
    with _LOCK:
        _SCOPES.append(inner)
    try:
        yield inner
    finally:
        with _LOCK:
            if inner in _SCOPES:
                _SCOPES.remove(inner)
        _finalize(inner)


def _finalize(shm_scope: ShmScope) -> None:
    """Turn the scope's unreleased handles into leak violations."""
    for record in shm_scope.handles:
        if record.created and not record.unlinked:
            shm_scope.violations.append(
                ShmViolation(
                    kind="leaked-segment",
                    name=record.name,
                    detail="created in this scope and never unlinked",
                )
            )
        if not record.closed:
            shm_scope.violations.append(
                ShmViolation(
                    kind="leaked-handle",
                    name=record.name,
                    detail="opened in this scope and never closed",
                )
            )


def format_violations(violations: List[ShmViolation]) -> str:
    """Human-readable multi-line report (pytest assertion message)."""
    lines = [f"shmsan: {len(violations)} shared-memory violation(s)"]
    for violation in violations:
        lines.append(f"  [{violation.kind}] {violation.name}: {violation.detail}")
        if violation.stack:
            lines.extend(
                "    " + stack_line
                for stack_line in violation.stack.rstrip().splitlines()
            )
    return "\n".join(lines)


def read_event_log(path: str) -> List[Dict[str, Any]]:
    """Parse a ``FABP_SHMSAN_LOG`` file (one JSON object per line)."""
    events: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
