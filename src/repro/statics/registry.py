"""The shared statics rule registry (its own module to stay cycle-free).

Rule families (:mod:`repro.statics.concurrency`,
:mod:`repro.statics.observability`) import :data:`STATIC_RULES` and
register into it; the engine imports the families for their registration
side effect and then drives the registry.  Keeping the registry out of the
engine module means a family never has to import the engine.
"""

from __future__ import annotations

from repro.lint import RuleRegistry

#: Every RC/OB rule registers here; ids stay unique across families.
STATIC_RULES = RuleRegistry("statics")
