"""Observability-hygiene rules OB001-OB004.

The observability layer (PR 5) rests on three conventions that keep an
*off* hook nearly free and the metric namespace reviewable:

* every ``record_*`` hook early-returns on one boolean —
  ``state.enabled()`` — before touching the registry (OB001);
* every metric and stage name is a literal drawn from the declared
  catalogues in :mod:`repro.obs.profile` (OB002), and labels are never
  built with f-strings or concatenation on the hot path (OB003);
* nothing outside :mod:`repro.obs` touches ``REGISTRY`` / ``RECORDER``
  directly — hot paths go through the hook functions (OB004).

These were prose conventions in ``docs/observability.md``; here they become
structure that ``fabp-repro check`` enforces on every future hook.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.lint import Finding, Rule, Severity
from repro.obs.profile import HOOK_CATALOGUE, STAGE_NAMES
from repro.statics.discovery import (
    SourceModule,
    call_name,
    dotted_name,
    iter_functions,
)
from repro.statics.registry import STATIC_RULES

#: Rule ids registered by this family (exported for docs/tests).
OBSERVABILITY_RULES: Tuple[str, ...] = ("OB001", "OB002", "OB003", "OB004")

_HOOK_MODULE = "obs.profile"
_REGISTRY_METHODS = ("counter", "gauge", "histogram")


def _location(module: SourceModule, node: ast.AST) -> str:
    return f"{module.path.name}:{getattr(node, 'lineno', 0)}"


def _is_hook_module(module: SourceModule) -> bool:
    return module.name.endswith(_HOOK_MODULE)


def _is_obs_module(module: SourceModule) -> bool:
    name = module.name
    return name.startswith("obs") or ".obs." in f".{name}." or name.endswith(".obs")


def _first_real_statement(func: ast.AST) -> Optional[ast.stmt]:
    """The first statement of a function body, skipping the docstring."""
    body = getattr(func, "body", [])
    for stmt in body:
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        ):
            continue
        return stmt
    return None


def _is_enabled_guard(stmt: Optional[ast.stmt]) -> bool:
    """``if not state.enabled(): return`` (exactly)."""
    if not isinstance(stmt, ast.If):
        return False
    test = stmt.test
    if not (isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not)):
        return False
    call = test.operand
    if not isinstance(call, ast.Call):
        return False
    name = call_name(call) or ""
    if name.split(".")[-1] != "enabled":
        return False
    return len(stmt.body) == 1 and isinstance(stmt.body[0], ast.Return)


@STATIC_RULES.register(
    "OB001",
    "unguarded-hook",
    Severity.ERROR,
    "Every record_* hook begins with `if not state.enabled(): return` — the "
    "whole layer's off-cost contract is one branch per hook, so a hook that "
    "touches the registry before the guard breaks the budget for every "
    "caller.",
)
def check_hook_guards(rule: Rule, module: SourceModule) -> Iterator[Finding]:
    """record_* hooks in obs.profile must open with the enabled guard."""
    if not _is_hook_module(module):
        return
    for func in iter_functions(module.tree):
        if not func.name.startswith("record_"):
            continue
        if _is_enabled_guard(_first_real_statement(func)):
            continue
        yield rule.finding(
            f"{module.path.name}:{func.lineno}",
            f"{func.name}() does not start with the `if not state.enabled(): "
            "return` guard",
            suggested_fix="make the guard the first statement after the "
            "docstring",
        )


def _registry_metric_calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node) or ""
        parts = name.split(".")
        if len(parts) >= 2 and parts[-1] in _REGISTRY_METHODS and parts[-2] == "REGISTRY":
            yield node


def _stage_calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node) or ""
        if name.split(".")[-1] == "stage" and node.args:
            yield node


@STATIC_RULES.register(
    "OB002",
    "undeclared-hook-name",
    Severity.ERROR,
    "Metric and stage names are literals drawn from HOOK_CATALOGUE / "
    "STAGE_NAMES in repro.obs.profile — a name invented at a call site "
    "silently forks the metric namespace the docs and dashboards declare.",
)
def check_declared_names(rule: Rule, module: SourceModule) -> Iterator[Finding]:
    """REGISTRY.counter/gauge/histogram and stage() names must be declared."""
    if _is_hook_module(module):
        for call in _registry_metric_calls(module.tree):
            kind = call.func.attr  # type: ignore[union-attr]
            if not call.args:
                continue
            first = call.args[0]
            if not (
                isinstance(first, ast.Constant) and isinstance(first.value, str)
            ):
                yield rule.finding(
                    _location(module, call),
                    f"REGISTRY.{kind}() called with a non-literal metric name",
                    suggested_fix="pass a string literal listed in "
                    "HOOK_CATALOGUE",
                )
            elif first.value not in HOOK_CATALOGUE:
                yield rule.finding(
                    _location(module, call),
                    f"metric name {first.value!r} is not declared in "
                    "HOOK_CATALOGUE",
                    suggested_fix="add it to HOOK_CATALOGUE and the module "
                    "docstring table (and docs/observability.md)",
                )
    for call in _stage_calls(module.tree):
        first = call.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            yield rule.finding(
                _location(module, call),
                "stage() called with a non-literal stage name",
                suggested_fix="pass a string literal listed in STAGE_NAMES",
            )
        elif first.value not in STAGE_NAMES:
            yield rule.finding(
                _location(module, call),
                f"stage name {first.value!r} is not declared in STAGE_NAMES",
                suggested_fix="add it to STAGE_NAMES in repro.obs.profile",
            )


@STATIC_RULES.register(
    "OB003",
    "dynamic-label",
    Severity.ERROR,
    "Label values on the hot path are plain names or str() casts — an "
    "f-string or concatenation in .labels() allocates on every sample and "
    "risks unbounded label cardinality.",
)
def check_label_hygiene(rule: Rule, module: SourceModule) -> Iterator[Finding]:
    """.labels(...) arguments must not be f-strings or concatenations."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        if not (
            isinstance(node.func, ast.Attribute) and node.func.attr == "labels"
        ):
            continue
        values = list(node.args) + [kw.value for kw in node.keywords]
        for value in values:
            if isinstance(value, (ast.JoinedStr, ast.BinOp)):
                yield rule.finding(
                    _location(module, node),
                    "label value built dynamically (f-string/concatenation) "
                    "in .labels()",
                    suggested_fix="pass the raw value (or str(value)) and keep "
                    "the label set fixed",
                )


@STATIC_RULES.register(
    "OB004",
    "direct-registry-access",
    Severity.ERROR,
    "Only repro.obs touches REGISTRY / RECORDER — every other module goes "
    "through the repro.obs.profile hooks so the enabled() guard and the "
    "declared catalogue stay the single choke point.",
)
def check_registry_encapsulation(
    rule: Rule, module: SourceModule
) -> Iterator[Finding]:
    """Non-obs modules must not import or reference REGISTRY/RECORDER."""
    if _is_obs_module(module):
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name in ("REGISTRY", "RECORDER"):
                    yield rule.finding(
                        _location(module, node),
                        f"imports {alias.name} outside repro.obs",
                        suggested_fix="call a repro.obs.profile hook instead",
                    )
        elif isinstance(node, ast.Attribute):
            name = dotted_name(node) or ""
            if name.split(".")[-1] in ("REGISTRY", "RECORDER") and "." in name:
                yield rule.finding(
                    _location(module, node),
                    f"references {name} outside repro.obs",
                    suggested_fix="call a repro.obs.profile hook instead",
                )
        elif isinstance(node, ast.Name) and node.id in ("REGISTRY", "RECORDER"):
            yield rule.finding(
                _location(module, node),
                f"references {node.id} outside repro.obs",
                suggested_fix="call a repro.obs.profile hook instead",
            )
