"""Dtype-flow abstract interpretation for numpy scoring kernels.

The scoring engines are numpy programs whose correctness rests on *numeric*
invariants the type system never sees: score accumulators are ``int32`` and
must hold ``[0, MAX_QUERY_ELEMENTS]``, funnel shifts run on ``uint64`` words
where wraparound is the *point*, and NEP-50 promotion can silently turn a
``uint64 ⊕ int64`` expression into ``float64``.  This module evaluates an
engine function over an abstract domain that tracks, per value:

* the numpy **dtype** (or unknown), with NEP-50 weak-scalar promotion —
  a python literal adapts to the array operand's dtype instead of forcing
  ``int64``;
* a **value interval** ``[lo, hi]`` (either endpoint may be unknown);
* whether the value is a **weak scalar** (python int/float, not an array).

Accumulation in loops is widened against the engine contract's element
budget: ``scores += row`` inside a loop over query elements grows the
interval by ``max_elements`` times the addend's bound — exactly the
paper's Pop36 argument ("750 ones fit 10 bits") replayed over the AST.

Soundness stance: **events fire only on facts**.  An overflow is reported
only when both dtype and interval are fully known and the interval
provably escapes the dtype; anything the interpreter cannot model becomes
*unknown* and stays silent.  Bitwise and shift operators on unsigned
dtypes are modular by design (the SWAR idiom) and are never flagged.

Helper calls are resolved through the declared
:data:`repro.core.contracts.HELPER_SUMMARIES` envelopes, so the analysis
stays function-local.  Event kinds:

``overflow``
    a known interval escapes a known integer dtype under ``+ - *`` or an
    augmented accumulation (wraparound would corrupt scores);
``narrowing``
    an ``astype``/``asarray`` cast to a dtype the known interval does not
    fit (silent truncation);
``promotion``
    an integer⊕integer expression whose NEP-50 result dtype is a float
    (the ``uint64 ⊕ int64 → float64`` trap);
``return-dtype``
    a return value whose dtype differs from the engine contract's
    declared accumulator.

Rules KC004/KC005 (:mod:`repro.statics.kernels`) turn these events into
findings; ``tests/property`` cross-checks :func:`abstract_eval` against
numpy's actual promotion on random expression trees.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.contracts import HELPER_SUMMARIES

#: Return-envelope triple: (dtype name, lo, hi).
Summary = Tuple[str, int, int]


@dataclass(frozen=True)
class AbstractValue:
    """One value in the abstract domain: dtype x interval x weakness."""

    dtype: Optional[str]  # canonical numpy dtype name; None = unknown
    lo: Optional[int] = None
    hi: Optional[int] = None
    weak: bool = False  # python scalar (NEP-50 weak promotion)

    @property
    def known(self) -> bool:
        return self.lo is not None and self.hi is not None

    def __str__(self) -> str:
        dtype = self.dtype or "?"
        lo = "?" if self.lo is None else str(self.lo)
        hi = "?" if self.hi is None else str(self.hi)
        return f"{dtype}[{lo}, {hi}]" + ("w" if self.weak else "")


#: The bottom of the lattice: nothing known.
UNKNOWN = AbstractValue(None)


@dataclass(frozen=True)
class DtypeEvent:
    """One defect (or suspicious fact) the interpreter established."""

    kind: str  # overflow | narrowing | promotion | return-dtype
    line: int
    message: str


def _canonical(name: str) -> str:
    return np.dtype(name).name


def _bounds(dtype: str) -> Optional[Tuple[int, int]]:
    kind = np.dtype(dtype).kind
    if kind not in "iu":
        return None
    info = np.iinfo(np.dtype(dtype))
    return int(info.min), int(info.max)


def promote(a: AbstractValue, b: AbstractValue) -> Optional[str]:
    """NEP-50 result dtype of ``a ⊕ b`` (None when either side is unknown).

    Weak (python) scalars adapt to the array operand: ``uint8_array + 1``
    stays ``uint8``; a weak *float* against an integer array still forces
    ``float64``.  Two weak scalars promote by their own default dtypes.
    """
    if a.dtype is None or b.dtype is None:
        return None
    if a.weak and b.weak:
        return _canonical(str(np.result_type(a.dtype, b.dtype)))
    if a.weak or b.weak:
        weak, strong = (a, b) if a.weak else (b, a)
        if np.dtype(weak.dtype).kind == "f" and np.dtype(strong.dtype).kind in "iu":
            return _canonical(str(np.result_type(strong.dtype, 0.5)))
        return _canonical(strong.dtype)
    return _canonical(str(np.result_type(a.dtype, b.dtype)))


def _join(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Least upper bound of two branch values."""
    dtype = a.dtype if a.dtype == b.dtype else None
    lo = None if a.lo is None or b.lo is None else min(a.lo, b.lo)
    hi = None if a.hi is None or b.hi is None else max(a.hi, b.hi)
    return AbstractValue(dtype, lo, hi, weak=a.weak and b.weak)


def _interval_binop(
    op: ast.operator,
    a: AbstractValue,
    b: AbstractValue,
) -> Tuple[Optional[int], Optional[int]]:
    """Best-effort interval of ``a <op> b`` (None endpoints when unknown)."""
    if not (a.known and b.known):
        return None, None
    alo, ahi, blo, bhi = a.lo, a.hi, b.lo, b.hi
    assert alo is not None and ahi is not None  # a.known
    assert blo is not None and bhi is not None  # b.known
    if isinstance(op, ast.Add):
        return alo + blo, ahi + bhi
    if isinstance(op, ast.Sub):
        return alo - bhi, ahi - blo
    if isinstance(op, ast.Mult):
        corners = (alo * blo, alo * bhi, ahi * blo, ahi * bhi)
        return min(corners), max(corners)
    if isinstance(op, ast.FloorDiv) and blo > 0:
        return alo // bhi if alo >= 0 else alo // blo, ahi // blo
    if isinstance(op, ast.Mod) and blo > 0:
        return 0, bhi - 1
    if isinstance(op, ast.LShift) and alo >= 0 and blo >= 0 and bhi <= 512:
        return alo << blo, ahi << bhi
    if isinstance(op, ast.RShift) and alo >= 0 and blo >= 0:
        return alo >> bhi, ahi >> blo
    if isinstance(op, ast.BitAnd) and alo >= 0 and blo >= 0:
        return 0, min(ahi, bhi)
    if isinstance(op, (ast.BitOr, ast.BitXor)) and alo >= 0 and blo >= 0:
        bits = max(ahi.bit_length(), bhi.bit_length())
        return 0, (1 << bits) - 1
    return None, None


_MODULAR_OPS = (ast.LShift, ast.RShift, ast.BitAnd, ast.BitOr, ast.BitXor)
_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult)

#: numpy array constructors the interpreter models directly.
_ZERO_FILLED = {"zeros", "zeros_like", "empty", "empty_like"}

#: numpy calls returning their first argument's value (possibly recast).
_PASS_THROUGH = {"asarray", "ascontiguousarray", "array", "copy", "ravel"}


class DtypeFlow:
    """Abstract interpreter over one function body (or expression).

    ``loop_bound`` is the widening multiplier for augmented accumulation
    inside loops — the engine contract's ``max_elements``.  ``summaries``
    maps bare callee names to declared return envelopes; it defaults to
    the repo-wide :data:`HELPER_SUMMARIES` and callers may layer extra
    entries (e.g. sibling engine contracts) on top.
    """

    def __init__(
        self,
        *,
        loop_bound: int = 1,
        summaries: Optional[Mapping[str, Tuple[Summary, ...]]] = None,
    ) -> None:
        self.loop_bound = loop_bound
        merged: Dict[str, Tuple[Summary, ...]] = dict(HELPER_SUMMARIES)
        if summaries:
            merged.update(summaries)
        self.summaries = merged
        self.events: List[DtypeEvent] = []
        self.returns: List[Tuple[AbstractValue, int]] = []
        self._loop_depth = 0

    # -- events ------------------------------------------------------------

    def _event(self, kind: str, node: ast.AST, message: str) -> None:
        self.events.append(
            DtypeEvent(kind=kind, line=getattr(node, "lineno", 0), message=message)
        )

    def _check_fits(
        self,
        value: AbstractValue,
        node: ast.AST,
        *,
        kind: str,
        context: str,
    ) -> AbstractValue:
        """Flag a known interval escaping a known integer dtype; clamp after."""
        if value.dtype is None or not value.known:
            return value
        bounds = _bounds(value.dtype)
        if bounds is None:
            return value
        lo, hi = bounds
        assert value.lo is not None and value.hi is not None
        if value.lo < lo or value.hi > hi:
            self._event(
                kind,
                node,
                f"{context}: value range [{value.lo}, {value.hi}] escapes "
                f"{value.dtype} [{lo}, {hi}]",
            )
            return replace(value, lo=max(value.lo, lo), hi=min(value.hi, hi))
        return value

    # -- expressions -------------------------------------------------------

    def eval(self, node: ast.expr, env: Dict[str, AbstractValue]) -> AbstractValue:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return AbstractValue("int64", int(node.value), int(node.value), weak=True)
            if isinstance(node.value, int):
                return AbstractValue("int64", node.value, node.value, weak=True)
            if isinstance(node.value, float):
                return AbstractValue("float64", None, None, weak=True)
            return UNKNOWN
        if isinstance(node, ast.Name):
            return env.get(node.id, UNKNOWN)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env)
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(node.operand, env)
            if isinstance(node.op, ast.USub) and operand.known:
                assert operand.lo is not None and operand.hi is not None
                return replace(operand, lo=-operand.hi, hi=-operand.lo)
            if isinstance(node.op, ast.Not):
                return AbstractValue("bool", 0, 1)
            return replace(operand, lo=None, hi=None)
        if isinstance(node, ast.Call):
            values = self._eval_call(node, env)
            return values[0] if len(values) == 1 else UNKNOWN
        if isinstance(node, ast.Subscript):
            # An element (or slice) of an array shares its dtype and bounds.
            return replace(self.eval(node.value, env), weak=False)
        if isinstance(node, ast.Attribute):
            if node.attr in ("size", "ndim", "itemsize", "nbytes"):
                return AbstractValue("int64", 0, None, weak=True)
            if node.attr == "T":
                return self.eval(node.value, env)
            return UNKNOWN
        if isinstance(node, ast.IfExp):
            return _join(self.eval(node.body, env), self.eval(node.orelse, env))
        if isinstance(node, (ast.Compare, ast.BoolOp)):
            return AbstractValue("bool", 0, 1)
        return UNKNOWN

    def _eval_binop(
        self, node: ast.BinOp, env: Dict[str, AbstractValue]
    ) -> AbstractValue:
        left = self.eval(node.left, env)
        right = self.eval(node.right, env)
        dtype = promote(left, right)
        lo, hi = _interval_binop(node.op, left, right)
        result = AbstractValue(dtype, lo, hi, weak=left.weak and right.weak)
        if dtype is None:
            return result
        np_dtype = np.dtype(dtype)
        if (
            np_dtype.kind == "f"
            and not left.weak
            and not right.weak
            and left.dtype is not None
            and right.dtype is not None
            and np.dtype(left.dtype).kind in "iu"
            and np.dtype(right.dtype).kind in "iu"
        ):
            self._event(
                "promotion",
                node,
                f"{left.dtype} ⊕ {right.dtype} silently promotes to {dtype} "
                "(NEP 50: mixed-signedness 64-bit integers leave the integers)",
            )
            return result
        if isinstance(node.op, _MODULAR_OPS):
            # SWAR bit-twiddling is modular by design — clip, never flag.
            bounds = _bounds(dtype)
            if bounds is not None and result.known:
                assert result.lo is not None and result.hi is not None
                if result.lo < bounds[0] or result.hi > bounds[1]:
                    result = replace(result, lo=bounds[0], hi=bounds[1])
            return result
        if isinstance(node.op, _ARITH_OPS) and not result.weak:
            result = self._check_fits(
                result, node, kind="overflow", context="arithmetic result"
            )
        return result

    def _dtype_from_node(self, node: Optional[ast.expr]) -> Optional[str]:
        """A dtype spelled in source: ``np.int32``, ``"uint8"``, ``np.dtype(...)``."""
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                return _canonical(node.value)
            except TypeError:
                return None
        if isinstance(node, ast.Attribute):
            try:
                return _canonical(node.attr)
            except TypeError:
                return None
        if isinstance(node, ast.Call):
            name = _call_tail(node)
            if name == "dtype" and node.args:
                return self._dtype_from_node(node.args[0])
        return None

    def _eval_call(
        self, node: ast.Call, env: Dict[str, AbstractValue]
    ) -> Tuple[AbstractValue, ...]:
        """Evaluate a call; tuple-returning helpers yield several values."""
        tail = _call_tail(node)
        if tail is None:
            return (UNKNOWN,)
        dtype_kw = None
        for keyword in node.keywords:
            if keyword.arg == "dtype":
                dtype_kw = self._dtype_from_node(keyword.value)
        if tail in self.summaries:
            return tuple(
                AbstractValue(_canonical(name), lo, hi)
                for name, lo, hi in self.summaries[tail]
            )
        if tail in _ZERO_FILLED:
            dtype = dtype_kw or "float64"
            value = (0, 0) if "zeros" in tail else (None, None)
            return (AbstractValue(dtype, value[0], value[1]),)
        if tail in ("ones", "ones_like"):
            return (AbstractValue(dtype_kw or "float64", 1, 1),)
        if tail == "full":
            fill = (
                self.eval(node.args[1], env) if len(node.args) > 1 else UNKNOWN
            )
            return (AbstractValue(dtype_kw or fill.dtype, fill.lo, fill.hi),)
        if tail in _PASS_THROUGH:
            base = self.eval(node.args[0], env) if node.args else UNKNOWN
            if dtype_kw is None:
                return (replace(base, weak=False),)
            recast = AbstractValue(dtype_kw, base.lo, base.hi)
            return (
                self._check_fits(
                    recast, node, kind="narrowing", context=f"{tail} cast"
                ),
            )
        if tail == "astype":
            func = node.func
            assert isinstance(func, ast.Attribute)
            base = self.eval(func.value, env)
            dtype = self._dtype_from_node(node.args[0]) if node.args else dtype_kw
            if dtype is None:
                return (UNKNOWN,)
            recast = AbstractValue(dtype, base.lo, base.hi)
            return (
                self._check_fits(
                    recast, node, kind="narrowing", context="astype cast"
                ),
            )
        if tail == "view":
            dtype = (
                self._dtype_from_node(node.args[0]) if node.args else dtype_kw
            )
            return (AbstractValue(dtype),)
        if tail == "unpackbits":
            return (AbstractValue("uint8", 0, 1),)
        if tail == "packbits":
            return (AbstractValue("uint8", 0, 255),)
        if tail == "einsum":
            return (AbstractValue(dtype_kw),)
        if tail in ("maximum", "minimum"):
            if len(node.args) >= 2:
                a = self.eval(node.args[0], env)
                b = self.eval(node.args[1], env)
                dtype = promote(a, b)
                if tail == "maximum":
                    lo = None if a.lo is None or b.lo is None else max(a.lo, b.lo)
                    hi = None if a.hi is None or b.hi is None else max(a.hi, b.hi)
                else:
                    lo = None if a.lo is None or b.lo is None else min(a.lo, b.lo)
                    hi = None if a.hi is None or b.hi is None else min(a.hi, b.hi)
                return (AbstractValue(dtype, lo, hi),)
            return (UNKNOWN,)
        if tail == "int":
            base = self.eval(node.args[0], env) if node.args else UNKNOWN
            return (AbstractValue("int64", base.lo, base.hi, weak=True),)
        if tail in ("len", "range"):
            return (AbstractValue("int64", 0, None, weak=True),)
        if tail in ("min", "max", "abs", "sum"):
            return (UNKNOWN,)
        return (UNKNOWN,)

    # -- statements --------------------------------------------------------

    def run(self, body: Sequence[ast.stmt], env: Dict[str, AbstractValue]) -> None:
        for stmt in body:
            self._exec(stmt, env)

    def _exec(self, stmt: ast.stmt, env: Dict[str, AbstractValue]) -> None:
        if isinstance(stmt, ast.Assign):
            self._exec_assign(stmt, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None and isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = self.eval(stmt.value, env)
        elif isinstance(stmt, ast.AugAssign):
            self._exec_augassign(stmt, env)
        elif isinstance(stmt, ast.For):
            self._bind_loop_target(stmt.target, env)
            self._loop_depth += 1
            try:
                self.run(stmt.body, env)
            finally:
                self._loop_depth -= 1
            self.run(stmt.orelse, env)
        elif isinstance(stmt, ast.While):
            self._loop_depth += 1
            try:
                self.run(stmt.body, env)
            finally:
                self._loop_depth -= 1
            self.run(stmt.orelse, env)
        elif isinstance(stmt, ast.If):
            then_env = dict(env)
            else_env = dict(env)
            self.run(stmt.body, then_env)
            self.run(stmt.orelse, else_env)
            for name in set(then_env) | set(else_env):
                env[name] = _join(
                    then_env.get(name, UNKNOWN), else_env.get(name, UNKNOWN)
                )
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns.append((self.eval(stmt.value, env), stmt.lineno))
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, ast.Try):
            self.run(stmt.body, env)
            for handler in stmt.handlers:
                self.run(handler.body, env)
            self.run(stmt.orelse, env)
            self.run(stmt.finalbody, env)
        elif isinstance(stmt, ast.With):
            self.run(stmt.body, env)
        # raise/pass/import/def/class: no dataflow to track.

    def _bind_loop_target(
        self, target: ast.expr, env: Dict[str, AbstractValue]
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = AbstractValue("int64", 0, None, weak=True)
        elif isinstance(target, ast.Tuple):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    env[element.id] = UNKNOWN

    def _exec_assign(self, stmt: ast.Assign, env: Dict[str, AbstractValue]) -> None:
        if (
            len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Tuple)
            and isinstance(stmt.value, ast.Call)
        ):
            # Tuple-unpacking a summarized helper: distribute the envelopes.
            targets = stmt.targets[0].elts
            values = self._eval_call(stmt.value, env)
            if len(values) == len(targets):
                for target, value in zip(targets, values):
                    if isinstance(target, ast.Name):
                        env[target.id] = value
                return
            for target in targets:
                if isinstance(target, ast.Name):
                    env[target.id] = UNKNOWN
            return
        value = self.eval(stmt.value, env)
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                env[target.id] = value
            elif isinstance(target, ast.Subscript):
                self._store_into(target, value, env, stmt)

    def _store_into(
        self,
        target: ast.Subscript,
        value: AbstractValue,
        env: Dict[str, AbstractValue],
        stmt: ast.stmt,
    ) -> None:
        """``array[k] = value``: the element must fit the array's dtype."""
        base = self.eval(target.value, env)
        if base.dtype is None or not value.known:
            return
        probe = AbstractValue(base.dtype, value.lo, value.hi)
        self._check_fits(probe, stmt, kind="overflow", context="element store")
        if isinstance(target.value, ast.Name):
            # The array now also holds the stored values.
            env[target.value.id] = _join(base, probe)

    def _exec_augassign(
        self, stmt: ast.AugAssign, env: Dict[str, AbstractValue]
    ) -> None:
        if isinstance(stmt.target, ast.Name):
            current = env.get(stmt.target.id, UNKNOWN)
        elif isinstance(stmt.target, ast.Subscript):
            current = self.eval(stmt.target.value, env)
        else:
            return
        rhs = self.eval(stmt.value, env)
        dtype = current.dtype if not current.weak else promote(current, rhs)
        lo, hi = _interval_binop(stmt.op, current, rhs)
        if (
            self._loop_depth > 0
            and isinstance(stmt.op, (ast.Add, ast.Sub))
            and current.known
            and rhs.known
        ):
            # Widening: the statement may execute up to loop_bound times.
            assert current.lo is not None and current.hi is not None
            assert rhs.lo is not None and rhs.hi is not None
            step_lo, step_hi = (
                (rhs.lo, rhs.hi)
                if isinstance(stmt.op, ast.Add)
                else (-rhs.hi, -rhs.lo)
            )
            lo = current.lo + self.loop_bound * min(step_lo, 0)
            hi = current.hi + self.loop_bound * max(step_hi, 0)
        elif self._loop_depth > 0 and not isinstance(stmt.op, _MODULAR_OPS):
            lo, hi = None, None  # non-additive loop accumulation: give up
        result = AbstractValue(dtype, lo, hi, weak=current.weak and rhs.weak)
        if isinstance(stmt.op, _MODULAR_OPS):
            bounds = None if dtype is None else _bounds(dtype)
            if bounds is not None and result.known:
                assert result.lo is not None and result.hi is not None
                result = replace(
                    result,
                    lo=max(result.lo, bounds[0]),
                    hi=min(result.hi, bounds[1]),
                )
        elif not result.weak:
            result = self._check_fits(
                result, stmt, kind="overflow", context="accumulation"
            )
        if isinstance(stmt.target, ast.Name):
            env[stmt.target.id] = result
        elif isinstance(stmt.target, ast.Subscript) and isinstance(
            stmt.target.value, ast.Name
        ):
            env[stmt.target.value.id] = result


def _call_tail(node: ast.Call) -> Optional[str]:
    """Last component of the callee's dotted name (``np.zeros`` → ``zeros``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def abstract_eval(
    source: str,
    env: Optional[Mapping[str, AbstractValue]] = None,
    *,
    loop_bound: int = 1,
) -> AbstractValue:
    """Evaluate one expression string in the abstract domain.

    The property-test entry point: parse ``source`` as an expression,
    seed the environment with ``env``, and return the abstract result.
    """
    tree = ast.parse(source, mode="eval")
    flow = DtypeFlow(loop_bound=loop_bound)
    return flow.eval(tree.body, dict(env or {}))


@dataclass
class FunctionAnalysis:
    """Events plus return facts of one analyzed engine function."""

    function: str
    events: List[DtypeEvent] = field(default_factory=list)
    returns: List[Tuple[AbstractValue, int]] = field(default_factory=list)


def analyze_engine_function(
    func: ast.AST,
    *,
    inputs: Mapping[str, Summary],
    accumulator: str,
    max_elements: int,
    extra_summaries: Optional[Mapping[str, Tuple[Summary, ...]]] = None,
) -> FunctionAnalysis:
    """Run the dtype flow over one engine function against its contract.

    ``inputs`` seeds the parameter environment with the contract's declared
    envelopes; ``max_elements`` is the loop-widening bound; every return
    whose dtype is *known* and differs from ``accumulator`` yields a
    ``return-dtype`` event.
    """
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    env: Dict[str, AbstractValue] = {}
    for name, (dtype, lo, hi) in inputs.items():
        env[name] = AbstractValue(_canonical(dtype), lo, hi)
    flow = DtypeFlow(loop_bound=max_elements, summaries=extra_summaries)
    flow.run(func.body, env)
    analysis = FunctionAnalysis(function=func.name)
    analysis.events.extend(flow.events)
    analysis.returns.extend(flow.returns)
    declared = _canonical(accumulator)
    for value, line in flow.returns:
        if value.dtype is not None and value.dtype != declared:
            analysis.events.append(
                DtypeEvent(
                    kind="return-dtype",
                    line=line,
                    message=(
                        f"returns {value.dtype} but the engine contract "
                        f"declares accumulator {declared}"
                    ),
                )
            )
    return analysis
