"""Kernel-contract rules KC001-KC008 and the ``prove kernel`` backend.

The next performance leap — a compiled or GPU port of the bitplane scan —
is only mergeable because every engine in
:data:`repro.core.aligner.ENGINES` must stay bit-identical to
``bitscore``.  Until now that guarantee rested on runtime property tests;
this family turns the engine contract itself into machine-checked
structure, replaying the paper's own proof obligations over the AST:

* **dispatch integrity** — every declared engine is reachable through the
  dispatch table and vice versa (KC001), carries an
  :func:`repro.core.contracts.engine_contract` declaration (KC002), and
  keeps the canonical ``(instructions, ref_codes)`` signature so engines
  stay interchangeable (KC003);
* **numeric safety** — the dtype-flow abstract interpreter
  (:mod:`repro.statics.dtypeflow`) proves score accumulation cannot
  silently wrap or truncate (KC004) and that no expression leaves the
  declared dtype envelope via NEP-50 promotion or a drifting return
  dtype (KC005);
* **purity** — no hidden module-global state (KC006) and no
  nondeterministic operations (KC007) inside a contracted engine, so a
  scan is a pure function of its inputs and results are replayable;
* **lane budgets** — every carry-save counter class is checked against
  the word-level prover (:func:`repro.rtl.ranges.lane_budget`): the
  declared count envelope of its ``decode`` must hold the *proven*
  maximum popcount — the software analogue of the paper's Pop36 claim
  that 750 query elements fit a 10-bit count (KC008).

``fabp-repro prove kernel`` calls :func:`prove_kernels` for the positive
artifact: the lane-budget proof, every engine contract, and a clean
dtype-flow report — plus a seeded-mutation self-test showing the
machinery *refutes* an injected overflow and an undersized budget.
"""

from __future__ import annotations

import ast
import importlib
import textwrap
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

# Importing the engine modules populates ENGINE_CONTRACTS/HELPER_SUMMARIES,
# the runtime side of the claims these rules check statically — the same
# pattern the OB family uses for the hook catalogue.
import repro.core.aligner as _aligner  # noqa: F401  (contract registration)
import repro.core.bitscore as _bitscore  # noqa: F401  (contract registration)
from repro.core.contracts import (
    DEFAULT_INPUTS,
    ENGINE_CONTRACTS,
    MAX_QUERY_ELEMENTS,
    EngineContract,
)
from repro.lint import Finding, Rule, Severity
from repro.statics.discovery import (
    SourceModule,
    attach_parents,
    call_name,
    dotted_name,
    iter_functions,
    module_from_source,
)
from repro.statics.dtypeflow import (
    FunctionAnalysis,
    Summary,
    analyze_engine_function,
)
from repro.statics.registry import STATIC_RULES

#: Rule ids registered by this family (exported for docs/tests).
KERNEL_RULES: Tuple[str, ...] = (
    "KC001",
    "KC002",
    "KC003",
    "KC004",
    "KC005",
    "KC006",
    "KC007",
    "KC008",
)

#: Largest width KC008 will hand to the word-level prover: the proof is
#: quadratic-ish in width, and no shipped counter exceeds the paper's 750.
_MAX_PROVABLE_WIDTH = 4096


def _location(module: SourceModule, node: ast.AST) -> str:
    return f"{module.path.name}:{getattr(node, 'lineno', 0)}"


def _line_location(module: SourceModule, line: int) -> str:
    return f"{module.path.name}:{line}"


def _engines_assignment(
    module: SourceModule,
) -> Optional[Tuple[ast.Assign, Tuple[str, ...]]]:
    """The module-level ``ENGINES = ("a", "b", ...)`` assignment, if any."""
    for stmt in module.tree.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not (isinstance(target, ast.Name) and target.id == "ENGINES"):
            continue
        value = stmt.value
        if isinstance(value, ast.Tuple) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in value.elts
        ):
            return stmt, tuple(e.value for e in value.elts)  # type: ignore[misc]
    return None


def _resolve_int(node: ast.expr) -> Optional[int]:
    """An int literal, or the one module constant the contract layer exports."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return int(node.value)
    name = dotted_name(node)
    if name is not None and name.split(".")[-1] == "MAX_QUERY_ELEMENTS":
        return MAX_QUERY_ELEMENTS
    return None


def _contract_from_decorator(func: ast.AST) -> Optional[Dict[str, object]]:
    """The engine contract a function *declares in source*, resolved.

    Resolution order per field: explicit AST keyword first (keeps fixture
    tests hermetic), then the runtime :data:`ENGINE_CONTRACTS` entry for
    the declared engine name, then the contract-layer defaults.
    """
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    for decorator in func.decorator_list:
        call = decorator if isinstance(decorator, ast.Call) else None
        callee = call.func if call is not None else decorator
        name = dotted_name(callee) or ""
        if name.split(".")[-1] != "engine_contract":
            continue
        engine: Optional[str] = None
        if (
            call is not None
            and call.args
            and isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, str)
        ):
            engine = call.args[0].value
        accumulator: Optional[str] = None
        max_elements: Optional[int] = None
        deterministic: Optional[bool] = None
        if call is not None:
            for keyword in call.keywords:
                if keyword.arg == "accumulator" and isinstance(
                    keyword.value, ast.Constant
                ):
                    accumulator = str(keyword.value.value)
                elif keyword.arg == "max_elements":
                    max_elements = _resolve_int(keyword.value)
                elif keyword.arg == "deterministic" and isinstance(
                    keyword.value, ast.Constant
                ):
                    deterministic = bool(keyword.value.value)
        runtime = ENGINE_CONTRACTS.get(engine) if engine else None
        inputs_source = runtime.inputs if runtime is not None else DEFAULT_INPUTS
        return {
            "engine": engine,
            "accumulator": accumulator
            or (runtime.accumulator if runtime else "int32"),
            "max_elements": max_elements
            if max_elements is not None
            else (runtime.max_elements if runtime else MAX_QUERY_ELEMENTS),
            "deterministic": deterministic
            if deterministic is not None
            else (runtime.deterministic if runtime else True),
            "inputs": {
                arg: (spec.dtype, spec.lo, spec.hi)
                for arg, spec in inputs_source.items()
            },
        }
    return None


def _contracted_functions(
    module: SourceModule,
) -> Iterator[Tuple[ast.FunctionDef, Dict[str, object]]]:
    for func in iter_functions(module.tree):
        info = _contract_from_decorator(func)
        if info is not None:
            assert isinstance(func, ast.FunctionDef)
            yield func, info


def _sibling_summaries() -> Dict[str, Tuple[Summary, ...]]:
    """Every contracted engine, as a callable summary for the dtype flow.

    Lets ``scores`` (the auto-selecting engine) resolve its calls to
    ``packed_scores``/``diagonal_scores`` to the sibling's declared
    envelope instead of giving up.
    """
    return {
        contract.function.split(".")[-1]: (
            (contract.accumulator, 0, contract.max_elements),
        )
        for contract in ENGINE_CONTRACTS.values()
    }


def _analyze(func: ast.FunctionDef, info: Dict[str, object]) -> FunctionAnalysis:
    inputs = info["inputs"]
    assert isinstance(inputs, dict)
    return analyze_engine_function(
        func,
        inputs=inputs,
        accumulator=str(info["accumulator"]),
        max_elements=int(info["max_elements"]),  # type: ignore[arg-type]
        extra_summaries=_sibling_summaries(),
    )


@STATIC_RULES.register(
    "KC001",
    "dispatch-table-complete",
    Severity.ERROR,
    guards=(
        "Every engine declared in ENGINES is reachable through the dispatch "
        "table and every dispatch arm names a declared engine — a silently "
        "undispatchable engine is dead weight, an undeclared arm is an "
        "untested backdoor past the equivalence property tests."
    ),
)
def check_dispatch_complete(
    rule: Rule, module: SourceModule
) -> Iterator[Finding]:
    found = _engines_assignment(module)
    if found is None:
        return
    stmt, engines = found
    dispatched: Set[str] = set()
    saw_dispatcher = False
    for func in iter_functions(module.tree):
        args = getattr(func, "args")
        names = [
            a.arg
            for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ]
        if "engine" not in names:
            continue
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Compare)
                and isinstance(node.left, ast.Name)
                and node.left.id == "engine"
            ):
                saw_dispatcher = True
                for comparator in node.comparators:
                    if isinstance(comparator, ast.Constant) and isinstance(
                        comparator.value, str
                    ):
                        dispatched.add(comparator.value)
    if not saw_dispatcher:
        return
    missing = [e for e in engines if e not in dispatched]
    extra = sorted(e for e in dispatched if e not in engines)
    if missing:
        yield rule.finding(
            _location(module, stmt),
            "ENGINES members never dispatched: " + ", ".join(missing),
            suggested_fix="add a dispatch arm or drop the engine from ENGINES",
        )
    if extra:
        yield rule.finding(
            _location(module, stmt),
            "dispatch arms for engines missing from ENGINES: " + ", ".join(extra),
            suggested_fix="declare the engine in ENGINES (and contract it)",
        )


@STATIC_RULES.register(
    "KC002",
    "engine-contract-missing",
    Severity.ERROR,
    guards=(
        "Every member of ENGINES carries an @engine_contract declaration "
        "with parseable dtypes — the contract is what the prover, the "
        "dtype flow and the equivalence tests all check against; an "
        "uncontracted engine has no machine-checked envelope at all."
    ),
)
def check_contract_declared(
    rule: Rule, module: SourceModule
) -> Iterator[Finding]:
    found = _engines_assignment(module)
    if found is None:
        return
    stmt, engines = found
    for engine in engines:
        contract = ENGINE_CONTRACTS.get(engine)
        if contract is None:
            yield rule.finding(
                _location(module, stmt),
                f"engine {engine!r} has no @engine_contract declaration",
                suggested_fix="decorate the implementation with "
                f"@engine_contract({engine!r})",
            )
            continue
        bad = _unparseable_dtypes(contract)
        if bad:
            yield rule.finding(
                _location(module, stmt),
                f"engine {engine!r} contract declares unparseable dtype(s): "
                + ", ".join(bad),
                suggested_fix="use canonical numpy dtype names",
            )


def _unparseable_dtypes(contract: EngineContract) -> List[str]:
    names = [contract.accumulator] + [s.dtype for s in contract.inputs.values()]
    bad: List[str] = []
    for name in names:
        try:
            np.dtype(name)
        except TypeError:
            bad.append(name)
    return bad


@STATIC_RULES.register(
    "KC003",
    "engine-signature-drift",
    Severity.ERROR,
    guards=(
        "Every contracted engine keeps the canonical positional signature "
        "(instructions, ref_codes); extras must be keyword-only with "
        "defaults — engines are dispatched interchangeably, so a drifting "
        "signature breaks substitution at exactly the call sites the "
        "equivalence tests do not cover."
    ),
)
def check_signature(rule: Rule, module: SourceModule) -> Iterator[Finding]:
    for func, _info in _contracted_functions(module):
        args = func.args
        positional = [a.arg for a in list(args.posonlyargs) + list(args.args)]
        if positional != ["instructions", "ref_codes"]:
            yield rule.finding(
                _location(module, func),
                f"engine {func.name!r} positional signature is "
                f"({', '.join(positional)}), expected (instructions, ref_codes)",
                suggested_fix="rename/reorder to the canonical signature; "
                "move extras behind *",
            )
        if args.vararg is not None or args.kwarg is not None:
            yield rule.finding(
                _location(module, func),
                f"engine {func.name!r} takes *{args.vararg.arg}"
                if args.vararg is not None
                else f"engine {func.name!r} takes **{args.kwarg.arg}",  # type: ignore[union-attr]
                suggested_fix="engines must have a closed signature",
            )
        for keyword, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is None:
                yield rule.finding(
                    _location(module, func),
                    f"engine {func.name!r} keyword-only arg {keyword.arg!r} "
                    "has no default",
                    suggested_fix="give every engine extension a default so "
                    "the canonical call shape always works",
                )


@STATIC_RULES.register(
    "KC004",
    "accumulator-overflow",
    Severity.ERROR,
    guards=(
        "Score accumulation provably fits the contract's accumulator dtype "
        "for every supported query length — the software analogue of the "
        "Pop36 lane-budget proof (Table I: 750 elements fit 10 bits); a "
        "wrapped accumulator corrupts scores silently."
    ),
)
def check_overflow(rule: Rule, module: SourceModule) -> Iterator[Finding]:
    for func, info in _contracted_functions(module):
        analysis = _analyze(func, info)
        for event in analysis.events:
            if event.kind not in ("overflow", "narrowing"):
                continue
            yield rule.finding(
                _line_location(module, event.line),
                f"engine {func.name!r}: {event.message}",
                suggested_fix="widen the accumulator dtype or tighten the "
                "contract's max_elements",
                data={"kind": event.kind},
            )


@STATIC_RULES.register(
    "KC005",
    "dtype-envelope-violation",
    Severity.ERROR,
    guards=(
        "No expression inside a contracted engine leaves the declared dtype "
        "envelope: NEP-50 can promote uint64⊕int64 to float64 (silently "
        "destroying exact 64-bit lanes), and a return dtype that drifts "
        "from the declared accumulator breaks every caller that "
        "concatenates scores across engines."
    ),
)
def check_envelope(rule: Rule, module: SourceModule) -> Iterator[Finding]:
    for func, info in _contracted_functions(module):
        analysis = _analyze(func, info)
        for event in analysis.events:
            if event.kind not in ("promotion", "return-dtype"):
                continue
            yield rule.finding(
                _line_location(module, event.line),
                f"engine {func.name!r}: {event.message}",
                suggested_fix="cast explicitly to the declared dtype at the "
                "boundary",
                data={"kind": event.kind},
            )


def _local_names(func: ast.FunctionDef) -> Set[str]:
    names: Set[str] = set()
    args = func.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        names.add(arg.arg)
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for child in ast.walk(target):
                    if isinstance(child, ast.Name):
                        names.add(child.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            for child in ast.walk(target):
                if isinstance(child, ast.Name):
                    names.add(child.id)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            for child in ast.walk(node.optional_vars):
                if isinstance(child, ast.Name):
                    names.add(child.id)
    return names


_MUTABLE_FACTORIES = {"dict", "list", "set", "defaultdict", "Counter", "OrderedDict"}


def _module_mutables(module: SourceModule) -> Set[str]:
    """Module-level names bound to mutable containers."""
    mutables: Set[str] = set()
    for stmt in module.tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        value = stmt.value
        is_mutable = isinstance(
            value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp)
        ) or (
            isinstance(value, ast.Call)
            and (call_name(value) or "").split(".")[-1] in _MUTABLE_FACTORIES
        )
        if not is_mutable:
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                mutables.add(target.id)
    return mutables


@STATIC_RULES.register(
    "KC006",
    "hidden-global-state",
    Severity.ERROR,
    guards=(
        "A contracted engine is a pure function of (instructions, "
        "ref_codes): no global/nonlocal statements and no reads of "
        "module-level mutable containers — hidden state makes results "
        "depend on call order, which the multi-process scanner cannot "
        "reproduce."
    ),
)
def check_global_state(rule: Rule, module: SourceModule) -> Iterator[Finding]:
    mutables = _module_mutables(module)
    for func, _info in _contracted_functions(module):
        locals_ = _local_names(func)
        for node in ast.walk(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                keyword = "global" if isinstance(node, ast.Global) else "nonlocal"
                yield rule.finding(
                    _location(module, node),
                    f"engine {func.name!r} uses {keyword} "
                    f"({', '.join(node.names)})",
                    suggested_fix="thread the state through parameters or "
                    "return values",
                )
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in mutables
                and node.id not in locals_
            ):
                yield rule.finding(
                    _location(module, node),
                    f"engine {func.name!r} reads module-level mutable "
                    f"{node.id!r}",
                    suggested_fix="pass the table in, or make it an "
                    "immutable module constant",
                )


#: Callee name tails that make an engine nondeterministic or time-dependent.
_NONDETERMINISTIC_TAILS = frozenset(
    {
        "random",
        "rand",
        "randint",
        "randn",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "default_rng",
        "time",
        "time_ns",
        "perf_counter",
        "monotonic",
        "urandom",
        "uuid1",
        "uuid4",
        "token_bytes",
        "token_hex",
        "getrandbits",
    }
)


@STATIC_RULES.register(
    "KC007",
    "nondeterministic-op",
    Severity.ERROR,
    guards=(
        "A contract with deterministic=True (the default) means the engine "
        "calls nothing random or clock-derived — scores must be replayable "
        "bit-for-bit across reruns, workers and checkpoints."
    ),
)
def check_deterministic(rule: Rule, module: SourceModule) -> Iterator[Finding]:
    for func, info in _contracted_functions(module):
        if not info["deterministic"]:
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node) or ""
            if name.split(".")[-1] in _NONDETERMINISTIC_TAILS:
                yield rule.finding(
                    _location(module, node),
                    f"engine {func.name!r} calls nondeterministic {name!r}",
                    suggested_fix="drop the call, or declare the contract "
                    "deterministic=False",
                )


def _decode_summary(
    func: ast.FunctionDef,
) -> Optional[Tuple[Optional[str], Optional[int], Optional[int]]]:
    """The first ``(dtype, lo, hi)`` triple of a ``@kernel_summary`` decorator."""
    for decorator in func.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        name = dotted_name(decorator.func) or ""
        if name.split(".")[-1] != "kernel_summary":
            continue
        if not decorator.args or not isinstance(decorator.args[0], ast.Tuple):
            return (None, None, None)
        elts = decorator.args[0].elts
        if len(elts) != 3:
            return (None, None, None)
        dtype = (
            elts[0].value
            if isinstance(elts[0], ast.Constant) and isinstance(elts[0].value, str)
            else None
        )
        return (dtype, _resolve_int(elts[1]), _resolve_int(elts[2]))
    return None


@STATIC_RULES.register(
    "KC008",
    "lane-budget-unproven",
    Severity.ERROR,
    guards=(
        "Every carry-save counter's decoded count envelope is backed by "
        "the word-level prover: the declared (dtype, 0, max) on decode "
        "must hold the *proven* maximum popcount of a max-width counter — "
        "the paper's Pop36 bit-budget argument, machine-checked instead "
        "of commented."
    ),
)
def check_lane_budget(rule: Rule, module: SourceModule) -> Iterator[Finding]:
    from repro.rtl.ranges import lane_budget

    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = {
            member.name: member
            for member in node.body
            if isinstance(member, ast.FunctionDef)
        }
        if "add" not in methods or "decode" not in methods:
            continue
        summary = _decode_summary(methods["decode"])
        if summary is None or summary[0] is None or summary[2] is None:
            yield rule.finding(
                _location(module, node),
                f"carry-save counter {node.name!r}: decode lacks a "
                "@kernel_summary((dtype, 0, max)) count envelope",
                suggested_fix="declare the decoded count's dtype and bound "
                "so the prover has a claim to check",
            )
            continue
        dtype, _lo, hi = summary
        if hi <= 0 or hi > _MAX_PROVABLE_WIDTH:
            yield rule.finding(
                _location(module, node),
                f"carry-save counter {node.name!r}: declared bound {hi} is "
                f"outside the provable range (0, {_MAX_PROVABLE_WIDTH}]",
                suggested_fix="declare a finite bound the word-level prover "
                "can enumerate",
            )
            continue
        try:
            value_bits = int(np.iinfo(np.dtype(dtype)).max).bit_length()
        except TypeError:
            yield rule.finding(
                _location(module, node),
                f"carry-save counter {node.name!r}: decode dtype {dtype!r} "
                "is not a numpy integer dtype",
                suggested_fix="use an integer dtype for decoded counts",
            )
            continue
        budget = lane_budget(hi)
        if not (budget.proven and budget.exact):
            yield rule.finding(
                _location(module, node),
                f"carry-save counter {node.name!r}: word-level prover could "
                f"not establish the popcount identity at width {hi} "
                f"({budget.proof.reason})",
                data=budget.to_dict(),
            )
        elif budget.needed_bits > value_bits:
            yield rule.finding(
                _location(module, node),
                f"carry-save counter {node.name!r}: proven budget needs "
                f"{budget.needed_bits} bits but decode dtype {dtype} holds "
                f"only {value_bits} value bits",
                suggested_fix="widen the decode dtype",
                data=budget.to_dict(),
            )


# ---------------------------------------------------------------------------
# fabp-repro prove kernel
# ---------------------------------------------------------------------------

#: A contracted engine with an int8 accumulator: 750 accumulated ones
#: provably escape [−128, 127], so KC004 must refute it — the seeded
#: mutation behind ``prove kernel --self-test``.
_INJECTED_OVERFLOW = textwrap.dedent(
    """
    import numpy as np

    from repro.core.contracts import engine_contract


    @engine_contract("selftest-overflow", accumulator="int8")
    def overflow_scores(instructions, ref_codes):
        scores = np.zeros(ref_codes.size, dtype=np.int8)
        for i in range(instructions.size):
            scores += 1
        return scores
    """
)


def _module_source_for(contract: EngineContract) -> Optional[SourceModule]:
    """Parse the source file a contract's implementation lives in."""
    try:
        imported = importlib.import_module(contract.module)
        path = Path(getattr(imported, "__file__"))
        source = path.read_text()
    except (ImportError, OSError, TypeError):
        return None
    return module_from_source(source, name=contract.module, path=path)


def _dtypeflow_report(contract: EngineContract) -> Dict[str, object]:
    """Re-derive the dtype-flow verdict for one engine from its source."""
    module = _module_source_for(contract)
    function_tail = contract.function.split(".")[-1]
    if module is None:
        return {
            "engine": contract.engine,
            "function": contract.function,
            "analyzed": False,
            "events": [],
        }
    attach_parents(module.tree)
    for func, info in _contracted_functions(module):
        if func.name != function_tail:
            continue
        analysis = _analyze(func, info)
        return {
            "engine": contract.engine,
            "function": contract.function,
            "module": contract.module,
            "analyzed": True,
            "events": [
                {"kind": e.kind, "line": e.line, "message": e.message}
                for e in analysis.events
            ],
            "returns": [str(value) for value, _line in analysis.returns],
            "clean": not analysis.events,
        }
    return {
        "engine": contract.engine,
        "function": contract.function,
        "analyzed": False,
        "events": [],
    }


def _self_test() -> Dict[str, object]:
    """Seeded mutations the machinery must refute (à la ``prove --self-test``)."""
    from repro.rtl.ranges import lane_budget

    undersized = lane_budget(MAX_QUERY_ELEMENTS, out_bits=9)
    module = module_from_source(_INJECTED_OVERFLOW, name="<kernel-self-test>")
    attach_parents(module.tree)
    rule = STATIC_RULES.get("KC004")
    findings = list(rule.check(rule=rule, module=module))
    overflow_refuted = any(f.rule_id == "KC004" for f in findings)
    return {
        "ok": (not undersized.fits) and overflow_refuted,
        "lane_budget_refutation": {
            "description": "750-wide count against a 9-bit budget must not fit",
            "refuted": not undersized.fits,
            "budget": undersized.to_dict(),
        },
        "injected_overflow": {
            "description": "int8 accumulator over 750 elements must trip KC004",
            "refuted": overflow_refuted,
            "findings": [f.to_dict() for f in findings],
        },
    }


def prove_kernels(*, self_test: bool = False) -> Dict[str, object]:
    """The ``fabp-repro prove kernel`` payload: contracts, budget, dtype flow.

    Proves, for every registered engine contract, that (a) the carry-save
    lane budget at :data:`MAX_QUERY_ELEMENTS` is exact and fits every
    declared accumulator, and (b) the dtype-flow interpreter finds no
    overflow/promotion events in the engine's source.  With ``self_test``
    the payload additionally records two seeded refutations.
    """
    from repro.rtl.ranges import lane_budget

    budget = lane_budget(MAX_QUERY_ELEMENTS)
    contracts = dict(sorted(ENGINE_CONTRACTS.items()))
    accumulator_bits = {
        name: contract.accumulator_value_bits
        for name, contract in contracts.items()
    }
    budget_fits_all = bool(contracts) and all(
        budget.proven and budget.exact and budget.needed_bits <= bits
        for bits in accumulator_bits.values()
    )
    flow_reports = {
        name: _dtypeflow_report(contract) for name, contract in contracts.items()
    }
    flow_clean = all(
        report.get("clean", False)
        for report in flow_reports.values()
        if report["analyzed"]
    ) and any(report["analyzed"] for report in flow_reports.values())
    ok = budget_fits_all and flow_clean
    payload: Dict[str, object] = {
        "schema": "fabp-kernel-proof/v1",
        "max_query_elements": MAX_QUERY_ELEMENTS,
        "lane_budget": budget.to_dict(),
        "engines": {
            name: contract.to_dict() for name, contract in contracts.items()
        },
        "accumulator_value_bits": accumulator_bits,
        "budget_fits_all_accumulators": budget_fits_all,
        "dtype_flow": flow_reports,
        "dtype_flow_clean": flow_clean,
        "ok": ok,
    }
    if self_test:
        verdict = _self_test()
        payload["self_test"] = verdict
        payload["ok"] = ok and bool(verdict["ok"])
    return payload
