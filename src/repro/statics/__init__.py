"""Concurrency & resource static analysis over the repo's own source.

PRs 1-2 gave the *hardware* layers a machine-checked rule stack (netlist
NL/SA rules, instruction-stream IS rules, symbolic proofs); this package
gives the *host runtime* the same treatment.  The fork pools, shared-memory
segments, duplex-pipe worker protocols, atomic checkpoint writes and
one-boolean observability guards that :mod:`repro.host` and
:mod:`repro.obs` grew are exactly the substrate the resident scan service
and the distributed sharded runtime will be built on — so their structural
invariants are enforced by ``fabp-repro check`` the way the paper's RTL
invariants are enforced by ``fabp-repro lint``:

* :mod:`repro.statics.discovery` — module discovery under ``src/repro``,
  AST parsing, and the ``# statics: ignore[RCxxx] reason`` pragma reader;
* :mod:`repro.statics.engine` — the rule registry (reusing the
  :class:`repro.lint.Finding` model) plus :func:`analyze_module` /
  :func:`run_statics`;
* :mod:`repro.statics.concurrency` — rules RC001-RC008: shared-memory
  lifecycle, fork discipline, atomic durable writes, non-blocking pipe
  protocols, honest exception handling;
* :mod:`repro.statics.observability` — rules OB001-OB004: enabled-boolean
  guards, the declared hook catalogue, hot-path label hygiene;
* :mod:`repro.statics.kernels` — rules KC001-KC008: engine-contract
  enforcement over the scoring kernels (dispatch completeness, signature
  and dtype envelopes, purity, word-level lane-budget proofs), plus the
  ``fabp-repro prove kernel`` backend;
* :mod:`repro.statics.dtypeflow` — the numpy dtype/interval abstract
  interpreter the KC rules run over engine bodies;
* :mod:`repro.statics.shmsan` — the *runtime* shared-memory sanitizer that
  backs the static rules with leak / double-close / use-after-close
  detection across the whole test suite.

See ``docs/static_analysis.md`` for the rule catalogue and rationale.
"""

from repro.statics.concurrency import CONCURRENCY_RULES
from repro.statics.discovery import (
    SourceModule,
    discover_modules,
    module_from_source,
    parse_pragmas,
)
from repro.statics.dtypeflow import AbstractValue, DtypeFlow, abstract_eval
from repro.statics.engine import (
    STATIC_RULES,
    analyze_module,
    analyze_source,
    default_root,
    rule_catalogue,
    run_statics,
)
from repro.statics.kernels import KERNEL_RULES, prove_kernels
from repro.statics.observability import OBSERVABILITY_RULES

__all__ = [
    "CONCURRENCY_RULES",
    "KERNEL_RULES",
    "OBSERVABILITY_RULES",
    "STATIC_RULES",
    "AbstractValue",
    "DtypeFlow",
    "SourceModule",
    "abstract_eval",
    "analyze_module",
    "analyze_source",
    "default_root",
    "discover_modules",
    "module_from_source",
    "parse_pragmas",
    "prove_kernels",
    "rule_catalogue",
    "run_statics",
]
