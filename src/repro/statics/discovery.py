"""Source discovery and pragma parsing for the statics engine.

The engine analyzes the repository's own Python source, so its input model
is deliberately small: a :class:`SourceModule` is one parsed file (dotted
module name, path, AST, source lines) plus its suppression pragmas.

Suppression pragmas are line-anchored comments::

    segment = make_segment()  # statics: ignore[RC001] owned by the caller

    # statics: ignore[RC005, RC006] injected fault; supervised by the parent
    time.sleep(hang_seconds)

A pragma suppresses the listed rule ids on its own line and on the line
immediately below it (so long statements can carry the pragma on a
dedicated comment line above).  A pragma **must** carry a justification —
a reasonless pragma suppresses nothing; the finding survives with a note,
so CI review always sees either a fix or a written-down why.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.lint import rule_pattern_matches

#: One pragma selector: an exact id (``RC001``), a same-family range
#: (``RC001-RC004``) or a glob (``KC00*``) — the same grammar the CLI's
#: ``--ignore`` flag accepts (:func:`repro.lint.rule_pattern_matches`).
_PRAGMA_ITEM = r"[A-Z]{2}\d{3}(?:\s*-\s*[A-Z]{2}\d{3})?|[A-Z]{2}\d{0,3}\*"

#: ``# statics: ignore[RC001]`` or ``# statics: ignore[RC001, OB00*] why``.
PRAGMA_RE = re.compile(
    r"#\s*statics:\s*ignore\[\s*((?:{item})(?:\s*,\s*(?:{item}))*)\s*\]\s*(.*)$".format(
        item=_PRAGMA_ITEM
    )
)


@dataclass(frozen=True)
class Pragma:
    """One suppression comment: which rules it silences and why."""

    line: int
    rule_ids: Tuple[str, ...]
    reason: str

    @property
    def justified(self) -> bool:
        return bool(self.reason.strip())

    def covers(self, rule_id: str) -> bool:
        """True when any listed selector (id, range, glob) matches."""
        return any(rule_pattern_matches(item, rule_id) for item in self.rule_ids)


def parse_pragmas(source: str) -> Dict[int, Pragma]:
    """Map line number (1-based) -> pragma for every pragma comment."""
    pragmas: Dict[int, Pragma] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = PRAGMA_RE.search(text)
        if match is None:
            continue
        ids = tuple(part.strip() for part in match.group(1).split(","))
        pragmas[number] = Pragma(line=number, rule_ids=ids, reason=match.group(2).strip())
    return pragmas


@dataclass(frozen=True)
class SourceModule:
    """One analyzed source file."""

    name: str
    path: Path
    tree: ast.Module = field(compare=False)
    source: str = field(compare=False, default="")
    pragmas: Dict[int, Pragma] = field(compare=False, default_factory=dict)

    def pragma_for(self, line: int, rule_id: str) -> Optional[Pragma]:
        """The pragma covering ``rule_id`` at ``line``, if any.

        A pragma anchors to its own line and to the line directly below it.
        """
        for candidate in (self.pragmas.get(line), self.pragmas.get(line - 1)):
            if candidate is not None and candidate.covers(rule_id):
                return candidate
        return None


def module_from_source(
    source: str, *, name: str = "<memory>", path: Union[str, Path] = "<memory>"
) -> SourceModule:
    """Build a :class:`SourceModule` from a source string (tests, tools)."""
    return SourceModule(
        name=name,
        path=Path(path),
        tree=ast.parse(source),
        source=source,
        pragmas=parse_pragmas(source),
    )


def _module_name(root: Path, path: Path) -> str:
    """Dotted name of ``path`` relative to the package root's parent."""
    relative = path.relative_to(root).with_suffix("")
    parts = [root.name] + list(relative.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def discover_modules(root: Union[str, Path]) -> Iterator[SourceModule]:
    """Parse every ``*.py`` under ``root`` (a package directory) in order.

    Files that fail to parse are yielded as empty modules with a
    ``SyntaxError`` recorded nowhere — the engine turns them into findings
    via :func:`repro.statics.engine.analyze_module`; here they are simply
    skipped so one broken file cannot abort a whole run.
    """
    root = Path(root).resolve()
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        source = path.read_text()
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue
        yield SourceModule(
            name=_module_name(root, path),
            path=path,
            tree=tree,
            source=source,
            pragmas=parse_pragmas(source),
        )


def attach_parents(tree: ast.AST) -> None:
    """Annotate every node with ``.statics_parent`` (None at the root)."""
    setattr(tree, "statics_parent", None)
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            setattr(child, "statics_parent", parent)


def enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    """Nearest enclosing function/async-function def (requires parents)."""
    current = getattr(node, "statics_parent", None)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = getattr(current, "statics_parent", None)
    return None


def iter_functions(tree: ast.Module) -> Iterator[ast.AST]:
    """Every function/async-function definition in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call's callee (``shared_memory.SharedMemory``)."""
    return dotted_name(node.func)


def keyword_value(node: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def is_constant(node: Optional[ast.expr], value: object) -> bool:
    """``node`` is a literal equal to ``value`` (bool/None matched exactly)."""
    if not isinstance(node, ast.Constant):
        return False
    if value is None or isinstance(value, bool):
        return node.value is value
    return type(node.value) is type(value) and node.value == value
