"""Concurrency & resource rules RC001-RC008.

These rules encode the lifecycle discipline the host runtime established in
PRs 3-4 as *machine-checked structure*, so every future scan-runtime change
is held to it automatically:

* shared-memory segments are created only where cleanup is provably
  reachable (RC001), attached handles are released or registered (RC007),
  and numpy views are dropped before ``close()`` (RC002);
* process management goes through sanctioned ``get_context("fork")`` sites
  with a restricted-platform fallback (RC003) and context-bound pools
  (RC008);
* durable files are written temp-then-``os.replace`` only (RC004);
* pipe-protocol code never blocks without a timeout (RC005) and host
  exception handlers never silently swallow broad exceptions (RC006).

Every check is a lexical/AST approximation, tuned to be *precise on this
codebase* and documented in ``docs/static_analysis.md``; accepted false
positives are suppressed in place with a justified
``# statics: ignore[RCxxx] reason`` pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint import Finding, Rule, Severity
from repro.statics.discovery import (
    SourceModule,
    call_name,
    dotted_name,
    enclosing_function,
    is_constant,
    iter_functions,
    keyword_value,
)
from repro.statics.registry import STATIC_RULES

#: Rule ids registered by this family (exported for docs/tests).
CONCURRENCY_RULES: Tuple[str, ...] = (
    "RC001",
    "RC002",
    "RC003",
    "RC004",
    "RC005",
    "RC006",
    "RC007",
    "RC008",
)


def _location(module: SourceModule, node: ast.AST) -> str:
    return f"{module.path.name}:{getattr(node, 'lineno', 0)}"


def _calls_in(node: ast.AST) -> Iterator[ast.Call]:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def _is_sharedmemory_call(call: ast.Call) -> bool:
    name = call_name(call)
    return name is not None and name.split(".")[-1] == "SharedMemory"


def _has_finally_release(func: ast.AST) -> bool:
    """A try/finally in ``func`` that retires, unlinks, or closes a segment."""
    for node in ast.walk(func):
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        for final_stmt in node.finalbody:
            for call in _calls_in(final_stmt):
                name = call_name(call) or ""
                tail = name.split(".")[-1]
                if tail in ("retire_segment", "unlink", "close"):
                    return True
    return False


def _stores_into_module_registry(func: ast.AST) -> bool:
    """``REGISTRY[key] = value`` on a module-global name inside ``func``."""
    local_names = _assigned_names(func)
    for node in ast.walk(func):
        if not isinstance(node, (ast.Assign, ast.AugAssign)):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
                if target.value.id not in local_names:
                    return True
    return False


def _assigned_names(func: ast.AST) -> Set[str]:
    """Names bound locally in ``func`` (assignment targets and arguments)."""
    names: Set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            names.add(arg.arg)
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _module_registers_atexit(module: SourceModule) -> bool:
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            name = call_name(stmt.value) or ""
            if name in ("atexit.register", "register") and name.startswith("atexit"):
                return True
            if name == "atexit.register":
                return True
    return False


@STATIC_RULES.register(
    "RC001",
    "shm-create-unmanaged",
    Severity.ERROR,
    "Every SharedMemory(create=True) must be reachable by retire_segment/"
    "finally cleanup or registered with the module's atexit sweep — a crashed "
    "scan must never leak /dev/shm segments.",
)
def check_shm_create_managed(
    rule: Rule, module: SourceModule
) -> Iterator[Finding]:
    """Flag segment creations with no reachable cleanup path."""
    has_atexit = _module_registers_atexit(module)
    for call in _calls_in(module.tree):
        if not _is_sharedmemory_call(call):
            continue
        if not is_constant(keyword_value(call, "create"), True):
            continue
        func = enclosing_function(call)
        if func is None:
            yield rule.finding(
                _location(module, call),
                "SharedMemory(create=True) at module level cannot be cleaned up",
                suggested_fix="create segments inside a managed function",
            )
            continue
        if _has_finally_release(func):
            continue
        if has_atexit and _stores_into_module_registry(func):
            continue
        yield rule.finding(
            _location(module, call),
            f"{func.name}() creates a shared-memory segment with no reachable "
            "cleanup (no try/finally retire/unlink and no atexit-swept registry)",
            suggested_fix="use publish_segment()/retire_segment() or wrap in "
            "try/finally",
        )


def _frombuffer_views(func: ast.AST) -> List[Tuple[str, int]]:
    """``name = np.frombuffer(seg.buf, ...)`` assignments: (name, line)."""
    views: List[Tuple[str, int]] = []
    for node in ast.walk(func):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        name = call_name(value) or ""
        if name.split(".")[-1] != "frombuffer":
            continue
        if not value.args:
            continue
        first = value.args[0]
        if not (isinstance(first, ast.Attribute) and first.attr == "buf"):
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                views.append((target.id, node.lineno))
    return views


def _dropped_before(func: ast.AST, view: str, line: int) -> bool:
    """``view = None`` or ``del view`` lexically before ``line``."""
    for node in ast.walk(func):
        if node is None or getattr(node, "lineno", line) >= line:
            continue
        if isinstance(node, ast.Assign):
            if (
                isinstance(node.value, ast.Constant)
                and node.value.value is None
                and any(
                    isinstance(t, ast.Name) and t.id == view for t in node.targets
                )
            ):
                return True
        if isinstance(node, ast.Delete):
            if any(isinstance(t, ast.Name) and t.id == view for t in node.targets):
                return True
    return False


@STATIC_RULES.register(
    "RC002",
    "shm-view-outlives-close",
    Severity.ERROR,
    "Worker code must drop numpy views of a segment's buffer before "
    "shm.close() — closing with an exported buffer pointer raises "
    "BufferError at interpreter shutdown.",
)
def check_view_dropped_before_close(
    rule: Rule, module: SourceModule
) -> Iterator[Finding]:
    """In any function that closes a segment, views must be dropped first."""
    for func in iter_functions(module.tree):
        views = _frombuffer_views(func)
        if not views:
            continue
        close_lines = [
            call.lineno
            for call in _calls_in(func)
            if isinstance(call.func, ast.Attribute) and call.func.attr == "close"
        ]
        if not close_lines:
            continue
        close_line = max(close_lines)
        for view, view_line in views:
            if view_line > close_line:
                continue
            if _dropped_before(func, view, close_line):
                continue
            yield rule.finding(
                f"{module.path.name}:{close_line}",
                f"{func.name}() closes a shared-memory segment while the "
                f"numpy view {view!r} may still hold its buffer",
                suggested_fix=f"set {view} = None (or del {view}) before close()",
            )


def _inside_valueerror_try(node: ast.AST) -> bool:
    current = getattr(node, "statics_parent", None)
    while current is not None:
        if isinstance(current, ast.Try):
            for handler in current.handlers:
                if _handler_catches(handler, "ValueError"):
                    return True
        current = getattr(current, "statics_parent", None)
    return False


def _handler_catches(handler: ast.ExceptHandler, exc_name: str) -> bool:
    kind = handler.type
    if kind is None:
        return True
    names = []
    if isinstance(kind, ast.Tuple):
        names = [dotted_name(el) for el in kind.elts]
    else:
        names = [dotted_name(kind)]
    return any(name is not None and name.split(".")[-1] == exc_name for name in names)


@STATIC_RULES.register(
    "RC003",
    "unsanctioned-fork",
    Severity.ERROR,
    "Process creation goes through get_context('fork') wrapped in a "
    "try/except ValueError fallback — bare os.fork / set_start_method break "
    "the restricted-platform degradation path.",
)
def check_fork_discipline(rule: Rule, module: SourceModule) -> Iterator[Finding]:
    """Flag bare fork primitives and unguarded get_context('fork') sites."""
    for call in _calls_in(module.tree):
        name = call_name(call) or ""
        tail = name.split(".")[-1]
        if name == "os.fork":
            yield rule.finding(
                _location(module, call),
                "bare os.fork() bypasses the sanctioned multiprocessing context",
                suggested_fix="use multiprocessing.get_context('fork')",
            )
        elif tail == "set_start_method":
            yield rule.finding(
                _location(module, call),
                "set_start_method() mutates global multiprocessing state for "
                "every caller in the process",
                suggested_fix="pass an explicit context object instead",
            )
        elif tail == "get_context" and call.args:
            if is_constant(call.args[0], "fork") and not _inside_valueerror_try(call):
                yield rule.finding(
                    _location(module, call),
                    "get_context('fork') without a try/except ValueError "
                    "fallback raises on platforms without fork",
                    suggested_fix="wrap in try/except ValueError and fall back "
                    "to get_context()",
                )


def _is_durable_write(call: ast.Call) -> bool:
    name = call_name(call) or ""
    tail = name.split(".")[-1]
    if tail in ("write_text", "write_bytes"):
        return True
    if tail == "open" and len(call.args) >= 2:
        mode = call.args[1]
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return "w" in mode.value or "x" in mode.value
    return False


@STATIC_RULES.register(
    "RC004",
    "non-atomic-durable-write",
    Severity.ERROR,
    "Checkpoint files are written temp-then-os.replace only — a kill "
    "mid-write must never leave a half-file that resumes wrong.",
)
def check_atomic_checkpoint_writes(
    rule: Rule, module: SourceModule
) -> Iterator[Finding]:
    """In checkpoint modules, every durable write must pair with os.replace."""
    if "checkpoint" not in module.name and "checkpoint" not in module.path.name:
        return
    for func in iter_functions(module.tree):
        has_replace = any(
            (call_name(call) or "").split(".")[-1] == "replace"
            for call in _calls_in(func)
        )
        if has_replace:
            continue
        for call in _calls_in(func):
            if _is_durable_write(call):
                yield rule.finding(
                    _location(module, call),
                    f"{func.name}() writes a checkpoint file without "
                    "temp-then-os.replace; a kill mid-write leaves a torn file",
                    suggested_fix="write to a .tmp sibling and os.replace() it",
                )


def _is_protocol_function(func: ast.AST) -> bool:
    """Functions that speak the duplex-pipe worker protocol (send/recv)."""
    for call in _calls_in(func):
        if isinstance(call.func, ast.Attribute) and call.func.attr in (
            "send",
            "recv",
        ):
            return True
    return False


def _has_timeout_argument(call: ast.Call) -> bool:
    if keyword_value(call, "timeout") is not None:
        return True
    # positional timeout: join(1.0), wait(handles, 0.5)
    if isinstance(call.func, ast.Attribute) and call.func.attr == "join":
        return len(call.args) >= 1
    return len(call.args) >= 2


@STATIC_RULES.register(
    "RC005",
    "blocking-call-in-protocol",
    Severity.ERROR,
    "Pipe-protocol handlers never block without a timeout: a sleep or an "
    "unbounded wait/join in protocol code turns one sick worker into a hung "
    "supervisor.",
)
def check_protocol_blocking(rule: Rule, module: SourceModule) -> Iterator[Finding]:
    """time.sleep / unbounded wait()/join() inside send/recv protocol code."""
    for func in iter_functions(module.tree):
        if not _is_protocol_function(func):
            continue
        for call in _calls_in(func):
            name = call_name(call) or ""
            tail = name.split(".")[-1]
            if name == "time.sleep" or (name == "sleep" and tail == "sleep"):
                yield rule.finding(
                    _location(module, call),
                    f"{func.name}() sleeps inside pipe-protocol code; the "
                    "peer is blocked for the whole duration",
                    suggested_fix="use a deadline the supervisor can interrupt",
                )
            elif tail in ("wait", "join") and not _has_timeout_argument(call):
                yield rule.finding(
                    _location(module, call),
                    f"{func.name}() calls {tail}() without a timeout inside "
                    "pipe-protocol code",
                    suggested_fix=f"pass timeout= to {tail}()",
                )


@STATIC_RULES.register(
    "RC006",
    "swallowed-exception",
    Severity.ERROR,
    "Host-runtime exception handlers re-raise, narrow, or record into the "
    "ScanReport — a broad except-pass hides the exact faults the supervised "
    "runtime exists to surface.",
)
def check_swallowed_exceptions(
    rule: Rule, module: SourceModule
) -> Iterator[Finding]:
    """Bare/broad except with a pass-only body in host modules."""
    if not (module.name.startswith("host") or ".host." in f".{module.name}."):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not all(isinstance(stmt, ast.Pass) for stmt in node.body):
            continue
        kind = node.type
        broad = kind is None or (
            dotted_name(kind) in ("Exception", "BaseException")
        )
        if broad:
            yield rule.finding(
                _location(module, node),
                "broad exception handler silently swallows everything",
                suggested_fix="narrow to the expected exception types, "
                "re-raise, or record into the ScanReport",
            )


@STATIC_RULES.register(
    "RC007",
    "shm-attach-unreleased",
    Severity.WARNING,
    "Attached (create=False) segments are closed in the attaching function "
    "or parked in a module-level registry a teardown path owns — dangling "
    "attachments keep /dev/shm mappings alive for the process lifetime.",
)
def check_attach_released(rule: Rule, module: SourceModule) -> Iterator[Finding]:
    """Attach sites must close or register the handle."""
    for call in _calls_in(module.tree):
        if not _is_sharedmemory_call(call):
            continue
        if is_constant(keyword_value(call, "create"), True):
            continue  # creations are RC001's business
        func = enclosing_function(call)
        if func is None:
            yield rule.finding(
                _location(module, call),
                "module-level SharedMemory attach can never be released",
                suggested_fix="attach inside a function with a close() path",
            )
            continue
        closes = any(
            isinstance(c.func, ast.Attribute) and c.func.attr == "close"
            for c in _calls_in(func)
        )
        if closes or _stores_into_module_registry(func):
            continue
        yield rule.finding(
            _location(module, call),
            f"{func.name}() attaches a segment but neither closes it nor "
            "registers it for teardown",
            suggested_fix="close() in a finally, or store the handle in a "
            "module-level registry",
        )


@STATIC_RULES.register(
    "RC008",
    "pool-outside-context",
    Severity.ERROR,
    "Pools and processes are built from an explicit context object — "
    "module-level multiprocessing.Pool/Process silently binds whatever "
    "global start method another import chose.",
)
def check_context_bound_pools(rule: Rule, module: SourceModule) -> Iterator[Finding]:
    """multiprocessing.Pool/Process called on the module, not a context."""
    bare_imports: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "multiprocessing":
            for alias in node.names:
                if alias.name in ("Pool", "Process"):
                    bare_imports.add(alias.asname or alias.name)
                    yield rule.finding(
                        _location(module, node),
                        f"importing {alias.name} straight from multiprocessing "
                        "bypasses the sanctioned context",
                        suggested_fix="use get_context('fork' with fallback) "
                        f"and context.{alias.name}",
                    )
    for call in _calls_in(module.tree):
        name = call_name(call) or ""
        if name in ("multiprocessing.Pool", "multiprocessing.Process"):
            yield rule.finding(
                _location(module, call),
                f"{name}() binds the global start method; build it from an "
                "explicit context object",
                suggested_fix="context = get_context(...); context."
                + name.split(".")[-1] + "(...)",
            )
        elif name in bare_imports and isinstance(call.func, ast.Name):
            yield rule.finding(
                _location(module, call),
                f"{name}() was imported bare from multiprocessing; build it "
                "from an explicit context object",
                suggested_fix="context = get_context(...); context."
                + name + "(...)",
            )
