"""Sequence substrate: alphabets, sequence types, I/O, generation, mutation.

This package stands in for the bioinformatics plumbing the paper takes for
granted (NCBI FASTA databases, codon-level bookkeeping).  Public surface:

* :mod:`repro.seq.alphabet` — nucleotide / amino-acid alphabets and the
  normative FabP 2-bit nucleotide encoding.
* :class:`repro.seq.DnaSequence` / :class:`repro.seq.RnaSequence` /
  :class:`repro.seq.ProteinSequence` — validated immutable sequence types.
* :mod:`repro.seq.fasta` — FASTA parsing and formatting.
* :mod:`repro.seq.packing` — 2-bit DRAM packing and AXI beat accounting.
* :mod:`repro.seq.generate` — seeded random sequences.
* :mod:`repro.seq.mutate` — substitution / indel mutation models.
* :mod:`repro.seq.translate` — forward translation incl. six-frame.
"""

from repro.seq.sequence import (
    DnaSequence,
    ProteinSequence,
    RnaSequence,
    SequenceError,
    as_protein,
    as_rna,
)

__all__ = [
    "DnaSequence",
    "ProteinSequence",
    "RnaSequence",
    "SequenceError",
    "as_protein",
    "as_rna",
]
