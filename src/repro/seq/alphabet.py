"""Alphabets for nucleotide and amino-acid sequences.

FabP (the paper this library reproduces) fixes a 2-bit encoding for the four
RNA nucleotides::

    A = 00, C = 01, G = 10, U = 11

This module is the single source of truth for that encoding and for the
amino-acid alphabet.  Everything else in the library (packing, instruction
encoding, LUT truth tables) derives its bit values from here so the encoding
can never drift between modules.
"""

from __future__ import annotations

from typing import Iterable, Tuple

#: RNA nucleotide letters in FabP bit order (index == 2-bit code).
RNA_NUCLEOTIDES: Tuple[str, ...] = ("A", "C", "G", "U")

#: DNA nucleotide letters in the same bit order (T replaces U).
DNA_NUCLEOTIDES: Tuple[str, ...] = ("A", "C", "G", "T")

#: Mapping from RNA letter to its 2-bit FabP code.
RNA_CODE = {letter: code for code, letter in enumerate(RNA_NUCLEOTIDES)}

#: Mapping from DNA letter to its 2-bit FabP code.
DNA_CODE = {letter: code for code, letter in enumerate(DNA_NUCLEOTIDES)}

#: The twenty standard amino acids, one-letter codes, alphabetical.
AMINO_ACIDS: Tuple[str, ...] = tuple("ACDEFGHIKLMNPQRSTVWY")

#: The translation-stop symbol used throughout the library.
STOP_SYMBOL = "*"

#: Amino-acid alphabet including the stop symbol (FabP aligns stops too).
AMINO_ACIDS_WITH_STOP: Tuple[str, ...] = AMINO_ACIDS + (STOP_SYMBOL,)

#: Three-letter names, for pretty-printing (matches the paper's notation).
THREE_LETTER = {
    "A": "Ala", "C": "Cys", "D": "Asp", "E": "Glu", "F": "Phe",
    "G": "Gly", "H": "His", "I": "Ile", "K": "Lys", "L": "Leu",
    "M": "Met", "N": "Asn", "P": "Pro", "Q": "Gln", "R": "Arg",
    "S": "Ser", "T": "Thr", "V": "Val", "W": "Trp", "Y": "Tyr",
    STOP_SYMBOL: "Stop",
}

ONE_LETTER = {three: one for one, three in THREE_LETTER.items()}

_RNA_SET = frozenset(RNA_NUCLEOTIDES)
_DNA_SET = frozenset(DNA_NUCLEOTIDES)
_AA_SET = frozenset(AMINO_ACIDS_WITH_STOP)


def is_rna(text: str) -> bool:
    """Return True if every character of ``text`` is an RNA nucleotide."""
    return all(ch in _RNA_SET for ch in text)


def is_dna(text: str) -> bool:
    """Return True if every character of ``text`` is a DNA nucleotide."""
    return all(ch in _DNA_SET for ch in text)


def is_protein(text: str) -> bool:
    """Return True if every character is an amino acid or the stop symbol."""
    return all(ch in _AA_SET for ch in text)


def dna_to_rna(text: str) -> str:
    """Transcribe DNA letters to RNA letters (T -> U)."""
    return text.replace("T", "U")


def rna_to_dna(text: str) -> str:
    """Reverse-transcribe RNA letters to DNA letters (U -> T)."""
    return text.replace("U", "T")


def complement_dna(text: str) -> str:
    """Return the complement of a DNA string (not reversed)."""
    return text.translate(_DNA_COMPLEMENT)


def reverse_complement_dna(text: str) -> str:
    """Return the reverse complement of a DNA string."""
    return complement_dna(text)[::-1]


def complement_rna(text: str) -> str:
    """Return the complement of an RNA string (not reversed)."""
    return text.translate(_RNA_COMPLEMENT)


def reverse_complement_rna(text: str) -> str:
    """Return the reverse complement of an RNA string."""
    return complement_rna(text)[::-1]


_DNA_COMPLEMENT = str.maketrans("ACGT", "TGCA")
_RNA_COMPLEMENT = str.maketrans("ACGU", "UGCA")


def encode_rna(text: str) -> Iterable[int]:
    """Yield the 2-bit FabP code of each RNA nucleotide in ``text``.

    Raises ``KeyError`` on a non-RNA character, which is deliberate: silent
    coercion of bad reference data would corrupt alignment scores downstream.
    """
    return (RNA_CODE[ch] for ch in text)


def decode_rna(codes: Iterable[int]) -> str:
    """Inverse of :func:`encode_rna`."""
    return "".join(RNA_NUCLEOTIDES[c] for c in codes)


def nucleotide_bits(letter: str) -> Tuple[int, int]:
    """Return ``(hi, lo)`` bits of an RNA nucleotide's 2-bit code.

    The paper's Type III dependency functions select single bits of earlier
    reference nucleotides; this helper names them unambiguously:
    ``hi`` is bit 1 (A,C -> 0; G,U -> 1), ``lo`` is bit 0 (A,G -> 0; C,U -> 1).
    """
    code = RNA_CODE[letter]
    return (code >> 1) & 1, code & 1
