"""2-bit packing of nucleotide sequences, matching the FabP memory layout.

The FPGA stores the reference database in DRAM as a dense 2-bit-per-nucleotide
array and streams it over a 512-bit AXI interface, i.e. **256 nucleotides per
beat per channel**.  This module implements the same layout in numpy so that
the accelerator model and the performance model agree byte-for-byte on how
much memory a reference occupies and how many beats it takes to stream.

Layout: nucleotide ``i`` occupies bits ``[2*i, 2*i+1]`` of the packed bit
stream, least-significant-bit first within each byte.  Four nucleotides per
byte; codes are the FabP codes from :mod:`repro.seq.alphabet` (A=0, C=1, G=2,
U/T=3).
"""

from __future__ import annotations

import numpy as np

from repro.seq import alphabet
from repro.seq.sequence import RnaSequence

#: Nucleotides carried by one 512-bit AXI beat (one memory channel).
NUCLEOTIDES_PER_BEAT = 256

#: Bytes per AXI beat (512 bits).
BYTES_PER_BEAT = 64

_RNA_LOOKUP = np.full(128, 255, dtype=np.uint8)
for _letter, _code in alphabet.RNA_CODE.items():
    _RNA_LOOKUP[ord(_letter)] = _code
for _letter, _code in alphabet.DNA_CODE.items():
    _RNA_LOOKUP[ord(_letter)] = _code

_RNA_LETTERS = np.frombuffer("".join(alphabet.RNA_NUCLEOTIDES).encode(), dtype=np.uint8)


def codes_from_text(text: str) -> np.ndarray:
    """Vectorized conversion of an RNA/DNA string to a uint8 code array."""
    raw = np.frombuffer(text.encode("ascii"), dtype=np.uint8)
    codes = _RNA_LOOKUP[raw]
    if codes.max(initial=0) == 255:
        bad = sorted({chr(c) for c in raw[codes == 255]})
        raise ValueError(f"non-nucleotide characters in sequence: {bad!r}")
    return codes


def text_from_codes(codes: np.ndarray) -> str:
    """Inverse of :func:`codes_from_text` (always renders RNA letters)."""
    return _RNA_LETTERS[np.asarray(codes, dtype=np.uint8)].tobytes().decode("ascii")


def pack(codes: np.ndarray) -> np.ndarray:
    """Pack a uint8 code array (values 0..3) into a 2-bit-per-element byte array.

    The result is padded with ``A`` (code 0) to a whole number of bytes.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and codes.max() > 3:
        raise ValueError("codes must be in 0..3")
    padded_len = -(-codes.size // 4) * 4
    padded = np.zeros(padded_len, dtype=np.uint8)
    padded[: codes.size] = codes
    quads = padded.reshape(-1, 4)
    return (
        quads[:, 0]
        | (quads[:, 1] << 2)
        | (quads[:, 2] << 4)
        | (quads[:, 3] << 6)
    ).astype(np.uint8)


def unpack(packed: np.ndarray, count: int) -> np.ndarray:
    """Unpack ``count`` 2-bit codes from a packed byte array."""
    packed = np.asarray(packed, dtype=np.uint8)
    if count > packed.size * 4:
        raise ValueError(
            f"requested {count} codes but packed buffer holds only {packed.size * 4}"
        )
    quads = np.empty((packed.size, 4), dtype=np.uint8)
    quads[:, 0] = packed & 0x03
    quads[:, 1] = (packed >> 2) & 0x03
    quads[:, 2] = (packed >> 4) & 0x03
    quads[:, 3] = (packed >> 6) & 0x03
    return quads.reshape(-1)[:count]


def pack_sequence(sequence) -> np.ndarray:
    """Pack an :class:`RnaSequence` / DNA / string into the DRAM byte layout."""
    if isinstance(sequence, str):
        codes = codes_from_text(sequence)
    elif isinstance(sequence, RnaSequence):
        codes = codes_from_text(sequence.letters)
    else:  # DnaSequence or anything with .letters
        codes = codes_from_text(sequence.letters)
    return pack(codes)


def beats_required(num_nucleotides: int) -> int:
    """Number of 512-bit AXI beats needed to stream a reference of this length."""
    if num_nucleotides < 0:
        raise ValueError("sequence length cannot be negative")
    return -(-num_nucleotides // NUCLEOTIDES_PER_BEAT)


def packed_size_bytes(num_nucleotides: int) -> int:
    """DRAM footprint in bytes of a packed reference of this length."""
    if num_nucleotides < 0:
        raise ValueError("sequence length cannot be negative")
    return -(-num_nucleotides // 4)
