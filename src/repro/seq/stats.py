"""Sequence composition statistics.

Small utilities the workload builders and analyses lean on: nucleotide /
GC composition, codon counts over reading frames, k-mer spectra, and a
chi-square-style uniformity score used to sanity-check synthetic
generators against their target compositions.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional

import numpy as np

from repro.seq import alphabet
from repro.seq.sequence import as_rna


def nucleotide_composition(sequence) -> Dict[str, float]:
    """Fractional composition over ``A, C, G, U`` (RNA view of the input)."""
    rna = as_rna(sequence)
    if not len(rna):
        return {letter: 0.0 for letter in alphabet.RNA_NUCLEOTIDES}
    counts = Counter(rna.letters)
    total = len(rna)
    return {letter: counts.get(letter, 0) / total for letter in alphabet.RNA_NUCLEOTIDES}


def gc_content(sequence) -> float:
    """G+C fraction."""
    composition = nucleotide_composition(sequence)
    return composition["G"] + composition["C"]


def codon_counts(sequence, frame: int = 0) -> Dict[str, int]:
    """Codon occurrence counts in one reading frame."""
    if frame not in (0, 1, 2):
        raise ValueError("frame must be 0, 1 or 2")
    rna = as_rna(sequence)
    text = rna.letters
    counts: Counter = Counter()
    for start in range(frame, len(text) - 2, 3):
        counts[text[start : start + 3]] += 1
    return dict(counts)


def kmer_spectrum(sequence, k: int = 3) -> Dict[str, int]:
    """Overlapping k-mer counts (nucleotide space)."""
    if k < 1:
        raise ValueError("k must be positive")
    rna = as_rna(sequence)
    text = rna.letters
    counts: Counter = Counter()
    for start in range(len(text) - k + 1):
        counts[text[start : start + k]] += 1
    return dict(counts)


def composition_chi2(sequence, expected: Optional[Dict[str, float]] = None) -> float:
    """Chi-square statistic of the nucleotide composition vs a target.

    Default target is uniform (0.25 each).  Near 0 means the sequence
    matches the target composition; the synthetic-generator tests bound it.
    """
    rna = as_rna(sequence)
    n = len(rna)
    if n == 0:
        return 0.0
    if expected is None:
        expected = {letter: 0.25 for letter in alphabet.RNA_NUCLEOTIDES}
    counts = Counter(rna.letters)
    statistic = 0.0
    for letter in alphabet.RNA_NUCLEOTIDES:
        want = expected.get(letter, 0.0) * n
        if want <= 0:
            continue
        got = counts.get(letter, 0)
        statistic += (got - want) ** 2 / want
    return statistic


def shannon_entropy(sequence) -> float:
    """Per-nucleotide Shannon entropy in bits (max 2.0 for uniform RNA)."""
    composition = nucleotide_composition(sequence)
    entropy = 0.0
    for fraction in composition.values():
        if fraction > 0:
            entropy -= fraction * np.log2(fraction)
    return float(entropy)
