"""Organism codon-usage tables and biased codon sampling.

Real coding sequence does not pick synonymous codons uniformly; codon usage
bias is organism-specific and affects how often FabP's degenerate patterns
see each codon variant.  This module ships two reference tables (human and
E. coli, per-thousand frequencies from the Kazusa codon usage database,
rounded) and a sampler the workload builders use for realistic databases.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.codons import CODON_TABLE, CODONS_FOR

#: Human codon usage, occurrences per thousand codons (Kazusa, rounded).
HUMAN_USAGE_PER_THOUSAND: Dict[str, float] = {
    "UUU": 17.6, "UUC": 20.3, "UUA": 7.7, "UUG": 12.9,
    "CUU": 13.2, "CUC": 19.6, "CUA": 7.2, "CUG": 39.6,
    "AUU": 16.0, "AUC": 20.8, "AUA": 7.5, "AUG": 22.0,
    "GUU": 11.0, "GUC": 14.5, "GUA": 7.1, "GUG": 28.1,
    "UCU": 15.2, "UCC": 17.7, "UCA": 12.2, "UCG": 4.4,
    "CCU": 17.5, "CCC": 19.8, "CCA": 16.9, "CCG": 6.9,
    "ACU": 13.1, "ACC": 18.9, "ACA": 15.1, "ACG": 6.1,
    "GCU": 18.4, "GCC": 27.7, "GCA": 15.8, "GCG": 7.4,
    "UAU": 12.2, "UAC": 15.3, "UAA": 1.0, "UAG": 0.8,
    "CAU": 10.9, "CAC": 15.1, "CAA": 12.3, "CAG": 34.2,
    "AAU": 17.0, "AAC": 19.1, "AAA": 24.4, "AAG": 31.9,
    "GAU": 21.8, "GAC": 25.1, "GAA": 29.0, "GAG": 39.6,
    "UGU": 10.6, "UGC": 12.6, "UGA": 1.6, "UGG": 13.2,
    "CGU": 4.5, "CGC": 10.4, "CGA": 6.2, "CGG": 11.4,
    "AGU": 12.1, "AGC": 19.5, "AGA": 12.2, "AGG": 12.0,
    "GGU": 10.8, "GGC": 22.2, "GGA": 16.5, "GGG": 16.5,
}

#: E. coli K-12 codon usage, per thousand (Kazusa, rounded).
ECOLI_USAGE_PER_THOUSAND: Dict[str, float] = {
    "UUU": 22.2, "UUC": 16.6, "UUA": 13.9, "UUG": 13.7,
    "CUU": 11.0, "CUC": 11.0, "CUA": 3.9, "CUG": 52.6,
    "AUU": 30.3, "AUC": 25.1, "AUA": 4.4, "AUG": 27.9,
    "GUU": 18.3, "GUC": 15.3, "GUA": 10.9, "GUG": 26.4,
    "UCU": 8.5, "UCC": 8.6, "UCA": 7.2, "UCG": 8.9,
    "CCU": 7.0, "CCC": 5.5, "CCA": 8.4, "CCG": 23.2,
    "ACU": 9.0, "ACC": 23.4, "ACA": 7.1, "ACG": 14.4,
    "GCU": 15.3, "GCC": 25.5, "GCA": 20.1, "GCG": 33.6,
    "UAU": 16.2, "UAC": 12.2, "UAA": 2.0, "UAG": 0.2,
    "CAU": 12.9, "CAC": 9.7, "CAA": 15.3, "CAG": 28.8,
    "AAU": 17.7, "AAC": 21.7, "AAA": 33.6, "AAG": 10.3,
    "GAU": 32.1, "GAC": 19.1, "GAA": 39.4, "GAG": 17.8,
    "UGU": 5.2, "UGC": 6.4, "UGA": 0.9, "UGG": 15.2,
    "CGU": 20.9, "CGC": 22.0, "CGA": 3.6, "CGG": 5.4,
    "AGU": 8.8, "AGC": 16.1, "AGA": 2.1, "AGG": 1.2,
    "GGU": 24.7, "GGC": 29.6, "GGA": 8.0, "GGG": 11.1,
}

USAGE_TABLES: Dict[str, Dict[str, float]] = {
    "human": HUMAN_USAGE_PER_THOUSAND,
    "ecoli": ECOLI_USAGE_PER_THOUSAND,
}


class CodonSampler:
    """Sample synonymous codons for amino acids under a usage table."""

    def __init__(self, usage: Dict[str, float]):
        missing = set(CODON_TABLE) - set(usage)
        if missing:
            raise ValueError(f"usage table missing codons: {sorted(missing)[:4]}...")
        self.usage = dict(usage)
        self._choices: Dict[str, tuple] = {}
        for amino, codons in CODONS_FOR.items():
            weights = np.array([max(usage[c], 1e-9) for c in codons], dtype=float)
            self._choices[amino] = (codons, weights / weights.sum())

    def sample(self, amino: str, rng: np.random.Generator) -> str:
        """Draw one codon for ``amino`` according to the usage bias."""
        codons, probabilities = self._choices[amino]
        return codons[int(rng.choice(len(codons), p=probabilities))]

    def relative_usage(self, amino: str) -> Dict[str, float]:
        """Normalized synonymous-codon frequencies for one amino acid."""
        codons, probabilities = self._choices[amino]
        return dict(zip(codons, probabilities.tolist()))


def sampler(organism: str) -> CodonSampler:
    """A :class:`CodonSampler` for a named organism table."""
    try:
        return CodonSampler(USAGE_TABLES[organism])
    except KeyError:
        raise KeyError(
            f"unknown organism {organism!r}; available: {sorted(USAGE_TABLES)}"
        ) from None


def serine_agy_fraction(organism: str) -> float:
    """Fraction of Ser codons in the AGU/AGC box for an organism.

    Quantifies the real-world exposure of the paper's Ser reduction: the
    higher this is, the more sensitivity paper-mode FabP loses on that
    organism's transcripts.
    """
    usage = USAGE_TABLES[organism]
    ser = CODONS_FOR["S"]
    total = sum(usage[c] for c in ser)
    agy = usage["AGU"] + usage["AGC"]
    return agy / total
