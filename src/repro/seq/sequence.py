"""Immutable sequence value types: DNA, RNA, and protein.

These are thin, validated wrappers around strings.  They exist so that the
rest of the library can state in signatures *which kind* of sequence a
function consumes — the FabP pipeline moves between all three kinds (protein
query -> back-translated RNA pattern -> 2-bit packed reference), and passing
the wrong one is the classic source of silent bioinformatics bugs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.seq import alphabet


class SequenceError(ValueError):
    """Raised when sequence content does not match its declared alphabet."""


@dataclass(frozen=True)
class _BaseSequence:
    """Common behaviour for the three sequence kinds."""

    letters: str
    name: str = field(default="", compare=False)

    #: Overridden by subclasses with the alphabet validator.
    _validator = staticmethod(lambda text: True)
    _kind = "sequence"

    def __post_init__(self) -> None:
        if not self._validator(self.letters):
            bad = sorted({ch for ch in self.letters if not self._validator(ch)})
            raise SequenceError(
                f"invalid {self._kind} letters {bad!r} in sequence "
                f"{self.name or '<unnamed>'}"
            )

    def __len__(self) -> int:
        return len(self.letters)

    def __iter__(self) -> Iterator[str]:
        return iter(self.letters)

    def __getitem__(self, index):
        piece = self.letters[index]
        if isinstance(index, slice):
            return type(self)(piece, name=self.name)
        return piece

    def __str__(self) -> str:
        return self.letters

    def __repr__(self) -> str:
        shown = self.letters if len(self.letters) <= 40 else self.letters[:37] + "..."
        label = f" name={self.name!r}" if self.name else ""
        return f"{type(self).__name__}({shown!r}{label}, len={len(self.letters)})"


@dataclass(frozen=True, repr=False)
class DnaSequence(_BaseSequence):
    """A DNA sequence over ``A, C, G, T``."""

    _validator = staticmethod(alphabet.is_dna)
    _kind = "DNA"

    def to_rna(self) -> "RnaSequence":
        """Transcribe to RNA (T -> U)."""
        return RnaSequence(alphabet.dna_to_rna(self.letters), name=self.name)

    def reverse_complement(self) -> "DnaSequence":
        """Return the reverse-complement strand."""
        return DnaSequence(
            alphabet.reverse_complement_dna(self.letters), name=self.name
        )


@dataclass(frozen=True, repr=False)
class RnaSequence(_BaseSequence):
    """An RNA sequence over ``A, C, G, U`` — FabP's reference alphabet."""

    _validator = staticmethod(alphabet.is_rna)
    _kind = "RNA"

    def to_dna(self) -> DnaSequence:
        """Reverse-transcribe to DNA (U -> T)."""
        return DnaSequence(alphabet.rna_to_dna(self.letters), name=self.name)

    def reverse_complement(self) -> "RnaSequence":
        """Return the reverse-complement strand."""
        return RnaSequence(
            alphabet.reverse_complement_rna(self.letters), name=self.name
        )

    def codes(self):
        """Return the FabP 2-bit code of every nucleotide as a list."""
        return list(alphabet.encode_rna(self.letters))


@dataclass(frozen=True, repr=False)
class ProteinSequence(_BaseSequence):
    """A protein sequence over the 20 amino acids plus ``*`` (stop)."""

    _validator = staticmethod(alphabet.is_protein)
    _kind = "protein"

    def three_letter(self) -> str:
        """Render with three-letter residue names, paper style."""
        return "-".join(alphabet.THREE_LETTER[aa] for aa in self.letters)


def as_rna(sequence) -> RnaSequence:
    """Coerce a DNA/RNA sequence or plain string into :class:`RnaSequence`.

    DNA input is transcribed; strings are classified by content, preferring
    RNA when ambiguous (a string without T/U is valid for both).
    """
    if isinstance(sequence, RnaSequence):
        return sequence
    if isinstance(sequence, DnaSequence):
        return sequence.to_rna()
    if isinstance(sequence, str):
        if alphabet.is_rna(sequence):
            return RnaSequence(sequence)
        if alphabet.is_dna(sequence):
            return DnaSequence(sequence).to_rna()
        raise SequenceError(f"string is neither RNA nor DNA: {sequence[:40]!r}")
    raise TypeError(f"cannot interpret {type(sequence).__name__} as RNA")


def as_protein(sequence) -> ProteinSequence:
    """Coerce a protein sequence or plain string into :class:`ProteinSequence`."""
    if isinstance(sequence, ProteinSequence):
        return sequence
    if isinstance(sequence, str):
        return ProteinSequence(sequence)
    raise TypeError(f"cannot interpret {type(sequence).__name__} as protein")
