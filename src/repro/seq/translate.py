"""Forward translation: RNA/DNA -> protein, including 6-frame translation.

TBLASTN (the paper's CPU baseline) translates every reference sequence in all
six reading frames and aligns the protein query against the translations.
FabP avoids that entirely by back-translating the *query* instead — this
module provides the forward direction so the baseline can be implemented
faithfully.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.seq.sequence import ProteinSequence, RnaSequence, as_rna


def translate(rna, *, to_stop: bool = False, unknown: str = "X") -> ProteinSequence:
    """Translate an RNA (or DNA) sequence in frame 0.

    Trailing bases that do not fill a codon are dropped.  Stops render as
    ``*`` unless ``to_stop`` is set, which truncates at the first stop.
    Codons containing non-standard letters render as ``unknown`` — which the
    protein alphabet rejects by default, so callers either pass clean input
    or choose an ``unknown`` letter they will filter out.
    """
    from repro.core.codons import CODON_TABLE  # local import: codons sits in core

    sequence = as_rna(rna)
    letters: List[str] = []
    text = sequence.letters
    for start in range(0, len(text) - 2, 3):
        codon = text[start : start + 3]
        amino = CODON_TABLE.get(codon, unknown)
        if amino == "*" and to_stop:
            break
        letters.append(amino)
    return ProteinSequence("".join(letters), name=sequence.name)


def translate_frames(rna) -> List[Tuple[int, ProteinSequence]]:
    """Translate the three forward frames; returns ``[(frame, protein), ...]``."""
    sequence = as_rna(rna)
    out = []
    for frame in range(3):
        shifted = RnaSequence(sequence.letters[frame:], name=sequence.name)
        out.append((frame, translate(shifted)))
    return out


def translate_six_frames(rna) -> List[Tuple[int, ProteinSequence]]:
    """Translate all six frames.

    Frames 0..2 are forward; frames 3..5 are the reverse complement's frames
    0..2 (TBLASTN's convention, up to sign conventions that differ between
    tools).  Frame index is returned alongside each protein so hit positions
    can be mapped back to nucleotide coordinates.
    """
    sequence = as_rna(rna)
    results = translate_frames(sequence)
    reverse = sequence.reverse_complement()
    for frame, protein in translate_frames(reverse):
        results.append((frame + 3, protein))
    return results


def frame_to_nucleotide(frame: int, protein_pos: int, rna_length: int) -> int:
    """Map a protein-coordinate hit back to a nucleotide start position.

    For forward frames the result is the 0-based nucleotide index of the
    codon's first base on the forward strand; for reverse frames it is the
    forward-strand index of the codon's *last* base's complement, i.e. where
    the aligned region starts when viewed on the forward strand.
    """
    if not 0 <= frame < 6:
        raise ValueError("frame must be in 0..5")
    if frame < 3:
        return frame + 3 * protein_pos
    # Reverse strand: position p in the revcomp's frame f corresponds to
    # forward index L - 1 - (f + 3p) ... - 2 (codon spans three bases).
    rev_index = (frame - 3) + 3 * protein_pos
    return rna_length - rev_index - 3


def open_reading_frames(rna, *, min_codons: int = 10) -> List[Tuple[int, int, ProteinSequence]]:
    """Find ORFs (AUG..stop) on the forward strand; ``(start, end, protein)``.

    ``start``/``end`` are nucleotide coordinates, end exclusive, including the
    stop codon.  Used by workload builders to plant realistic coding regions.
    """
    sequence = as_rna(rna)
    text = sequence.letters
    found: List[Tuple[int, int, ProteinSequence]] = []
    from repro.core.codons import CODON_TABLE, STOP_CODONS

    for frame in range(3):
        start = None
        for pos in range(frame, len(text) - 2, 3):
            codon = text[pos : pos + 3]
            if start is None:
                if codon == "AUG":
                    start = pos
            elif codon in STOP_CODONS:
                codons = (pos + 3 - start) // 3
                if codons >= min_codons:
                    protein = translate(RnaSequence(text[start : pos + 3]))
                    found.append((start, pos + 3, protein))
                start = None
    return sorted(found)
