"""Mutation models: substitutions and indels.

Two clients in this reproduction need controlled mutation:

* the **accuracy study** (§IV-A) plants homologs of a query into a reference
  database at known positions with known substitution/indel rates, then asks
  whether FabP (substitution-only scoring) still finds them;
* the **indel-frequency study** reproduces the paper's statistic that among
  10,000 coding queries only ~0.02 % involve indels, using the empirical
  distribution from Neininger et al. (mean 0.09 indels/kb, sd 0.36/kb,
  median 0) that the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.seq import alphabet
from repro.seq.sequence import ProteinSequence, RnaSequence


@dataclass(frozen=True)
class MutationRecord:
    """One applied mutation, for ground-truth bookkeeping.

    ``kind`` is ``"sub"``, ``"ins"`` or ``"del"``; ``position`` indexes the
    *original* sequence; ``payload`` is the new letter(s) for sub/ins and the
    deleted letters for del.
    """

    kind: str
    position: int
    payload: str


@dataclass(frozen=True)
class MutationResult:
    """A mutated sequence plus the exact edits that produced it."""

    letters: str
    mutations: Tuple[MutationRecord, ...] = field(default=())

    @property
    def num_substitutions(self) -> int:
        return sum(1 for m in self.mutations if m.kind == "sub")

    @property
    def num_indels(self) -> int:
        return sum(1 for m in self.mutations if m.kind in ("ins", "del"))


def _rng(rng: Optional[np.random.Generator], seed: Optional[int]) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng(seed)


def substitute(
    letters: str,
    rate: float,
    letter_pool: Tuple[str, ...],
    *,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> MutationResult:
    """Apply i.i.d. substitutions at the given per-position rate.

    A substituted position always receives a letter *different* from the
    original (a self-substitution is not a mutation).
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be within [0, 1]")
    rng = _rng(rng, seed)
    chars = list(letters)
    records: List[MutationRecord] = []
    hits = np.nonzero(rng.random(len(chars)) < rate)[0]
    for position in hits:
        original = chars[position]
        choices = [c for c in letter_pool if c != original]
        replacement = choices[int(rng.integers(len(choices)))]
        chars[position] = replacement
        records.append(MutationRecord("sub", int(position), replacement))
    return MutationResult("".join(chars), tuple(records))


def apply_indels(
    letters: str,
    events: int,
    letter_pool: Tuple[str, ...],
    *,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    mean_block: float = 1.5,
    frame_preserving: bool = False,
) -> MutationResult:
    """Apply ``events`` indel events, each a contiguous block.

    Block lengths are geometric with the given mean (indels in coding regions
    come in short blocks; we do not force frame preservation by default
    because the paper's study counts raw indel events).  With
    ``frame_preserving=True`` every block length is rounded up to a multiple
    of 3 — the selection-surviving indels seen in functional genes, which
    shift downstream *positions* but not the reading frame.  Insertions and
    deletions are equally likely.
    """
    if events < 0:
        raise ValueError("events cannot be negative")
    rng = _rng(rng, seed)
    chars = list(letters)
    records: List[MutationRecord] = []
    # Geometric with support {1,2,...}: p chosen so mean = mean_block.
    p = min(1.0, 1.0 / max(mean_block, 1.0))
    for _ in range(events):
        block = int(rng.geometric(p))
        if frame_preserving:
            block = -(-block // 3) * 3
        if rng.random() < 0.5 and len(chars) > block:
            # deletion
            position = int(rng.integers(0, len(chars) - block + 1))
            deleted = "".join(chars[position : position + block])
            del chars[position : position + block]
            records.append(MutationRecord("del", position, deleted))
        else:
            # insertion
            position = int(rng.integers(0, len(chars) + 1))
            inserted = "".join(
                letter_pool[int(i)] for i in rng.integers(len(letter_pool), size=block)
            )
            chars[position:position] = list(inserted)
            records.append(MutationRecord("ins", position, inserted))
    return MutationResult("".join(chars), tuple(records))


def mutate_rna(
    sequence: RnaSequence,
    *,
    substitution_rate: float = 0.0,
    indel_events: int = 0,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> MutationResult:
    """Mutate an RNA sequence: substitutions first, then indel events."""
    rng = _rng(rng, seed)
    result = substitute(sequence.letters, substitution_rate, alphabet.RNA_NUCLEOTIDES, rng=rng)
    if indel_events:
        indel = apply_indels(result.letters, indel_events, alphabet.RNA_NUCLEOTIDES, rng=rng)
        result = MutationResult(indel.letters, result.mutations + indel.mutations)
    return result


def mutate_protein(
    sequence: ProteinSequence,
    *,
    substitution_rate: float = 0.0,
    indel_events: int = 0,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> MutationResult:
    """Mutate a protein sequence: substitutions first, then indel events."""
    rng = _rng(rng, seed)
    result = substitute(sequence.letters, substitution_rate, alphabet.AMINO_ACIDS, rng=rng)
    if indel_events:
        indel = apply_indels(result.letters, indel_events, alphabet.AMINO_ACIDS, rng=rng)
        result = MutationResult(indel.letters, result.mutations + indel.mutations)
    return result


def sample_indel_events(
    length_nt: int,
    *,
    mean_per_kb: float = 0.09,
    sd_per_kb: float = 0.36,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> int:
    """Sample an indel event count for a coding region of ``length_nt`` bases.

    Implements the empirical distribution the paper cites (Neininger et al.,
    2019): per-kilobase indel frequency with median 0, mean 0.09 and standard
    deviation 0.36.  A zero-inflated exponential matches those three moments
    closely: with probability ``1 - p_hit`` the region has rate 0; otherwise
    the rate is exponential with mean ``mean_per_kb / p_hit``.  ``p_hit`` is
    chosen from the mean/sd ratio, clamped to keep the median at zero.
    """
    rng = _rng(rng, seed)
    if mean_per_kb <= 0:
        return 0
    # Zero-inflated exponential: mean = p*m, var = p*(2-p)*m^2 with per-hit
    # mean m.  Solve p from the target coefficient of variation.
    target_ratio = (sd_per_kb / mean_per_kb) ** 2  # var/mean^2
    # var/mean^2 = (2-p)/p  =>  p = 2 / (1 + var/mean^2)
    p_hit = 2.0 / (1.0 + target_ratio)
    p_hit = min(max(p_hit, 1e-6), 0.5)  # median must stay 0
    if rng.random() >= p_hit:
        rate_per_kb = 0.0
    else:
        rate_per_kb = rng.exponential(mean_per_kb / p_hit)
    expected_events = rate_per_kb * (length_nt / 1000.0)
    return int(rng.poisson(expected_events))
