"""Seeded random sequence generation.

Substitutes for the paper's NCBI query/reference sampling (nr.gz / nt.gz are
not shippable).  Compositions default to uniform but can be biased — the
accuracy benches use amino-acid frequencies close to the empirical UniProt
background so that back-translation degeneracy statistics are realistic.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.seq import alphabet
from repro.seq.sequence import DnaSequence, ProteinSequence, RnaSequence

#: Approximate background amino-acid frequencies (Swiss-Prot release stats),
#: index-aligned with :data:`repro.seq.alphabet.AMINO_ACIDS`.
UNIPROT_AA_FREQUENCIES = {
    "A": 0.0826, "C": 0.0138, "D": 0.0546, "E": 0.0672, "F": 0.0387,
    "G": 0.0708, "H": 0.0227, "I": 0.0593, "K": 0.0581, "L": 0.0965,
    "M": 0.0241, "N": 0.0406, "P": 0.0473, "Q": 0.0393, "R": 0.0553,
    "S": 0.0660, "T": 0.0535, "V": 0.0686, "W": 0.0110, "Y": 0.0292,
}


def _as_rng(rng: Optional[np.random.Generator], seed: Optional[int]) -> np.random.Generator:
    if rng is not None:
        return rng
    return np.random.default_rng(seed)


def _draw_letters(
    letters: Sequence[str],
    length: int,
    rng: np.random.Generator,
    probabilities: Optional[Sequence[float]] = None,
) -> str:
    if length < 0:
        raise ValueError("length cannot be negative")
    if probabilities is not None:
        probabilities = np.asarray(probabilities, dtype=float)
        probabilities = probabilities / probabilities.sum()
    indices = rng.choice(len(letters), size=length, p=probabilities)
    arr = np.frombuffer("".join(letters).encode(), dtype=np.uint8)
    return arr[indices].tobytes().decode("ascii")


def random_rna(
    length: int,
    *,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    gc_content: Optional[float] = None,
    name: str = "",
) -> RnaSequence:
    """Generate a random RNA sequence.

    ``gc_content`` (0..1) biases G+C jointly; A/U and G/C are split evenly
    within their groups, which matches how nt-database composition is usually
    summarized.
    """
    rng = _as_rng(rng, seed)
    probabilities = None
    if gc_content is not None:
        if not 0.0 <= gc_content <= 1.0:
            raise ValueError("gc_content must be within [0, 1]")
        at = (1.0 - gc_content) / 2.0
        gc = gc_content / 2.0
        probabilities = [at, gc, gc, at]  # A, C, G, U order
    letters = _draw_letters(alphabet.RNA_NUCLEOTIDES, length, rng, probabilities)
    return RnaSequence(letters, name=name)


def random_dna(
    length: int,
    *,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    gc_content: Optional[float] = None,
    name: str = "",
) -> DnaSequence:
    """Generate a random DNA sequence (same model as :func:`random_rna`)."""
    rna = random_rna(length, rng=rng, seed=seed, gc_content=gc_content, name=name)
    return rna.to_dna()


def random_protein(
    length: int,
    *,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    composition: str = "uniprot",
    include_stop: bool = False,
    name: str = "",
) -> ProteinSequence:
    """Generate a random protein sequence.

    ``composition`` is ``"uniprot"`` (empirical background, default) or
    ``"uniform"``.  With ``include_stop=True`` a trailing ``*`` is appended,
    mirroring full coding sequences (the paper's worked example ends in Stop).
    """
    rng = _as_rng(rng, seed)
    if composition == "uniform":
        probabilities = None
    elif composition == "uniprot":
        probabilities = [UNIPROT_AA_FREQUENCIES[aa] for aa in alphabet.AMINO_ACIDS]
    else:
        raise ValueError(f"unknown composition {composition!r}")
    body_len = length - 1 if include_stop else length
    if body_len < 0:
        raise ValueError("length too short for include_stop")
    letters = _draw_letters(alphabet.AMINO_ACIDS, body_len, rng, probabilities)
    if include_stop:
        letters += alphabet.STOP_SYMBOL
    return ProteinSequence(letters, name=name)


def random_coding_rna(
    num_codons: int,
    *,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    name: str = "",
) -> RnaSequence:
    """Generate a random *coding* RNA: AUG start, random sense codons, stop.

    Used by the indel-frequency study, which needs genuinely coding regions
    (the paper's indel statistics are specific to protein-coding sequence).
    The returned sequence has ``3 * num_codons`` nucleotides, of which the
    first codon is ``AUG`` and the last is a random stop codon.
    """
    if num_codons < 2:
        raise ValueError("a coding sequence needs at least start + stop codons")
    from repro.core.codons import CODON_TABLE, STOP_CODONS  # local: avoid cycle

    rng = _as_rng(rng, seed)
    sense_codons = sorted(c for c in CODON_TABLE if c not in STOP_CODONS)
    middle = rng.choice(len(sense_codons), size=num_codons - 2)
    stop = sorted(STOP_CODONS)[int(rng.integers(len(STOP_CODONS)))]
    body = "".join(sense_codons[i] for i in middle)
    return RnaSequence("AUG" + body + stop, name=name)
