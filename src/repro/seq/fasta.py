"""Minimal FASTA reader/writer.

The paper's workloads come from NCBI FASTA dumps (nr.gz / nt.gz).  We cannot
ship those, but the synthetic workload builders in :mod:`repro.workloads`
round-trip through this module so examples and benches exercise the same
ingestion path a real deployment would.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterable, Iterator, List, Tuple, Union

from repro.seq.sequence import DnaSequence, ProteinSequence, RnaSequence

Record = Tuple[str, str]
PathLike = Union[str, Path]


def _open_text(path: PathLike, mode: str):
    """Open plain or gzip-compressed FASTA transparently (NCBI ships .gz)."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def parse_fasta(stream: Union[io.TextIOBase, str]) -> Iterator[Record]:
    """Yield ``(header, sequence)`` records from FASTA text or a text stream.

    Headers are returned without the leading ``>``.  Blank lines are ignored;
    sequence lines are concatenated and upper-cased.  A record with an empty
    sequence is still yielded (some NCBI dumps contain them) so callers can
    decide how to treat it.
    """
    if isinstance(stream, str):
        stream = io.StringIO(stream)
    header = None
    chunks: List[str] = []
    for raw_line in stream:
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith(">"):
            if header is not None:
                yield header, "".join(chunks).upper()
            header = line[1:].strip()
            chunks = []
        else:
            if header is None:
                raise ValueError("FASTA data does not start with a '>' header")
            chunks.append(line)
    if header is not None:
        yield header, "".join(chunks).upper()


def read_fasta(path: PathLike) -> List[Record]:
    """Read every record of a FASTA file into memory."""
    with _open_text(path, "r") as handle:
        return list(parse_fasta(handle))


def write_fasta(path: PathLike, records: Iterable[Record], width: int = 70) -> int:
    """Write ``(header, sequence)`` records to ``path``; return record count.

    ``width`` controls line wrapping of sequence data (<=0 disables wrapping).
    """
    count = 0
    with _open_text(path, "w") as handle:
        for header, sequence in records:
            handle.write(f">{header}\n")
            if width and width > 0:
                for start in range(0, len(sequence), width):
                    handle.write(sequence[start : start + width] + "\n")
            else:
                handle.write(sequence + "\n")
            count += 1
    return count


def format_fasta(records: Iterable[Record], width: int = 70) -> str:
    """Render records as a FASTA string (used by tests and examples)."""
    out = io.StringIO()
    for header, sequence in records:
        out.write(f">{header}\n")
        if width and width > 0:
            for start in range(0, len(sequence), width):
                out.write(sequence[start : start + width] + "\n")
        else:
            out.write(sequence + "\n")
    return out.getvalue()


def read_proteins(path: PathLike) -> List[ProteinSequence]:
    """Read a FASTA file as protein sequences (validated)."""
    return [ProteinSequence(seq, name=header) for header, seq in read_fasta(path)]


def read_rna(path: PathLike) -> List[RnaSequence]:
    """Read a FASTA file as RNA sequences; DNA letters are transcribed."""
    records = read_fasta(path)
    out: List[RnaSequence] = []
    for header, seq in records:
        if "T" in seq and "U" not in seq:
            out.append(DnaSequence(seq, name=header).to_rna())
        else:
            out.append(RnaSequence(seq, name=header))
    return out
