"""Minimal FASTA reader/writer with typed error handling.

The paper's workloads come from NCBI FASTA dumps (nr.gz / nt.gz).  We cannot
ship those, but the synthetic workload builders in :mod:`repro.workloads`
round-trip through this module so examples and benches exercise the same
ingestion path a real deployment would.

Real dumps contain garbage — truncated records, duplicate accessions,
empty sequences, stray bytes — and a multi-hour scan must not die on line
40 million of its input.  Every reader therefore takes ``on_error``:

* ``None`` (default) — historical permissive behaviour: records are
  yielded as-is (including empty ones) and only structurally fatal input
  (sequence data before any ``>`` header) raises.
* ``"raise"`` — malformed, empty, or duplicate-name records raise a typed
  :class:`FastaError` (a ``ValueError`` subclass) identifying the record
  and line, instead of propagating a bare ``ValueError``/``KeyError``
  from deeper layers into the scan.
* ``"skip"`` — bad records are quarantined: parsing continues, and each
  offender is appended to the caller-supplied ``skipped`` list as a
  :class:`SkippedRecord` so the caller can report exactly what was
  dropped.
"""

from __future__ import annotations

import gzip
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.seq.sequence import (
    DnaSequence,
    ProteinSequence,
    RnaSequence,
    SequenceError,
)

Record = Tuple[str, str]
PathLike = Union[str, Path]

_ON_ERROR_MODES = (None, "raise", "skip")


class FastaError(ValueError):
    """A malformed FASTA record, with enough context to find it.

    ``reason`` is a short machine-checkable tag (``"no-header"``,
    ``"empty-header"``, ``"empty-sequence"``, ``"duplicate-name"``,
    ``"bad-letters"``); ``header`` and ``line`` locate the offender.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "malformed",
        header: str = "",
        line: Optional[int] = None,
    ):
        self.reason = reason
        self.header = header
        self.line = line
        super().__init__(message)


@dataclass(frozen=True)
class SkippedRecord:
    """One quarantined record from an ``on_error="skip"`` read."""

    header: str
    reason: str
    line: Optional[int] = None

    def __str__(self) -> str:
        where = f" (line {self.line})" if self.line is not None else ""
        return f"{self.header or '<no header>'}{where}: {self.reason}"


def _check_mode(on_error: Optional[str]) -> None:
    if on_error not in _ON_ERROR_MODES:
        raise ValueError(
            f"on_error must be one of {_ON_ERROR_MODES}, got {on_error!r}"
        )


def _open_text(path: PathLike, mode: str):
    """Open plain or gzip-compressed FASTA transparently (NCBI ships .gz)."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def parse_fasta(
    stream: Union[io.TextIOBase, str],
    *,
    on_error: Optional[str] = None,
    skipped: Optional[List[SkippedRecord]] = None,
) -> Iterator[Record]:
    """Yield ``(header, sequence)`` records from FASTA text or a text stream.

    Headers are returned without the leading ``>``.  Blank lines are
    ignored; sequence lines are concatenated and upper-cased.  With the
    default ``on_error=None`` a record with an empty sequence is still
    yielded (some NCBI dumps contain them) so callers can decide how to
    treat it; ``"raise"``/``"skip"`` apply the full validation described
    in the module docstring.
    """
    _check_mode(on_error)
    if isinstance(stream, str):
        stream = io.StringIO(stream)
    seen: Set[str] = set()

    def problem(reason: str, message: str, header: str, line: int) -> bool:
        """Handle one bad record; returns True when it should be skipped."""
        if on_error == "skip":
            if skipped is not None:
                skipped.append(SkippedRecord(header, reason, line))
            return True
        raise FastaError(message, reason=reason, header=header, line=line)

    def emit(header: str, sequence: str, line: int) -> Iterator[Record]:
        if on_error is not None:
            if not header:
                if problem("empty-header", f"record at line {line} has an empty header",
                           header, line):
                    return
            elif header in seen:
                if problem("duplicate-name",
                           f"duplicate record name {header!r} at line {line}",
                           header, line):
                    return
            elif not sequence:
                if problem("empty-sequence",
                           f"record {header!r} (line {line}) has no sequence data",
                           header, line):
                    return
        seen.add(header)
        yield header, sequence

    header: Optional[str] = None
    header_line = 0
    chunks: List[str] = []
    line_number = 0
    for raw_line in stream:
        line_number += 1
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith(">"):
            if header is not None:
                yield from emit(header, "".join(chunks).upper(), header_line)
            header = line[1:].strip()
            header_line = line_number
            chunks = []
        else:
            if header is None:
                if on_error == "skip":
                    if skipped is not None:
                        skipped.append(
                            SkippedRecord("", "no-header", line_number)
                        )
                    continue
                raise FastaError(
                    "FASTA data does not start with a '>' header",
                    reason="no-header",
                    line=line_number,
                )
            chunks.append(line)
    if header is not None:
        yield from emit(header, "".join(chunks).upper(), header_line)


def read_fasta(
    path: PathLike,
    *,
    on_error: Optional[str] = None,
    skipped: Optional[List[SkippedRecord]] = None,
) -> List[Record]:
    """Read every record of a FASTA file into memory."""
    with _open_text(path, "r") as handle:
        return list(parse_fasta(handle, on_error=on_error, skipped=skipped))


def write_fasta(path: PathLike, records: Iterable[Record], width: int = 70) -> int:
    """Write ``(header, sequence)`` records to ``path``; return record count.

    ``width`` controls line wrapping of sequence data (<=0 disables wrapping).
    """
    count = 0
    with _open_text(path, "w") as handle:
        for header, sequence in records:
            handle.write(f">{header}\n")
            if width and width > 0:
                for start in range(0, len(sequence), width):
                    handle.write(sequence[start : start + width] + "\n")
            else:
                handle.write(sequence + "\n")
            count += 1
    return count


def format_fasta(records: Iterable[Record], width: int = 70) -> str:
    """Render records as a FASTA string (used by tests and examples)."""
    out = io.StringIO()
    for header, sequence in records:
        out.write(f">{header}\n")
        if width and width > 0:
            for start in range(0, len(sequence), width):
                out.write(sequence[start : start + width] + "\n")
        else:
            out.write(sequence + "\n")
    return out.getvalue()


def _coerce(
    records: Iterable[Record],
    build,
    on_error: Optional[str],
    skipped: Optional[List[SkippedRecord]],
) -> list:
    """Build sequence objects, mapping alphabet errors per ``on_error``."""
    out = []
    for header, seq in records:
        try:
            out.append(build(header, seq))
        except SequenceError as exc:
            if on_error == "skip":
                if skipped is not None:
                    skipped.append(SkippedRecord(header, "bad-letters"))
                continue
            if on_error == "raise":
                raise FastaError(
                    f"record {header!r}: {exc}",
                    reason="bad-letters",
                    header=header,
                ) from exc
            raise
    return out


def read_proteins(
    path: PathLike,
    *,
    on_error: Optional[str] = None,
    skipped: Optional[List[SkippedRecord]] = None,
) -> List[ProteinSequence]:
    """Read a FASTA file as protein sequences (validated)."""
    records = read_fasta(path, on_error=on_error, skipped=skipped)
    return _coerce(
        records,
        lambda header, seq: ProteinSequence(seq, name=header),
        on_error,
        skipped,
    )


def read_rna(
    path: PathLike,
    *,
    on_error: Optional[str] = None,
    skipped: Optional[List[SkippedRecord]] = None,
) -> List[RnaSequence]:
    """Read a FASTA file as RNA sequences; DNA letters are transcribed."""
    records = read_fasta(path, on_error=on_error, skipped=skipped)

    def build(header: str, seq: str) -> RnaSequence:
        if "T" in seq and "U" not in seq:
            return DnaSequence(seq, name=header).to_rna()
        return RnaSequence(seq, name=header)

    return _coerce(records, build, on_error, skipped)
