"""Bounded LRU result cache for the front-door scan service.

A scan's answer is fully determined by *(query fingerprint, database
fingerprint, absolute threshold, engine)* — the same determinism the
checkpoint manifests of :mod:`repro.host.checkpoint` rely on — so the
service can replay a previous answer byte-for-byte whenever the tuple
recurs.  Fingerprints are SHA-256 over the exact bytes that decide the
result: the encoded query's instruction words, and the packed database's
names, lengths and 2-bit buffer.  Swapping the database (even to one with
identical names) changes the fingerprint and silently invalidates every
cached entry — there is no TTL to tune and no stale-read window.

The cache is a plain ``OrderedDict`` LRU under a lock: bounded entries,
move-to-end on hit, popitem(last=False) on overflow.  Cached values are
the scan's ``List[AlignmentResult]`` — immutable tuples of hits — shared
by reference, never copied.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.core.aligner import AlignmentResult
from repro.core.encoding import EncodedQuery
from repro.host.scan import PackedDatabase

__all__ = [
    "CacheKey",
    "ResultCache",
    "database_fingerprint",
    "query_fingerprint",
]

#: (query fingerprint, database fingerprint, absolute threshold, engine).
CacheKey = Tuple[str, str, int, str]


def query_fingerprint(query: EncodedQuery) -> str:
    """SHA-256 over the encoded query's instruction stream."""
    digest = hashlib.sha256()
    digest.update(query.as_array().tobytes())
    return digest.hexdigest()


def database_fingerprint(database: PackedDatabase) -> str:
    """SHA-256 over the packed database: names, lengths, 2-bit buffer."""
    digest = hashlib.sha256()
    for name in database.names:
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
    digest.update(database.lengths.tobytes())
    digest.update(database.buffer.tobytes())
    return digest.hexdigest()


class ResultCache:
    """Thread-safe bounded LRU from :data:`CacheKey` to scan results."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        self._max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, List[AlignmentResult]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def max_entries(self) -> int:
        return self._max_entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: CacheKey) -> Optional[List[AlignmentResult]]:
        """The cached results for ``key``, refreshing its recency; or None."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: CacheKey, results: List[AlignmentResult]) -> None:
        """Insert (or refresh) ``key``; evict least-recently-used overflow."""
        if self._max_entries == 0:
            return
        with self._lock:
            self._entries[key] = results
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, float]:
        """Hit/miss/eviction counters plus the derived hit ratio."""
        with self._lock:
            hits, misses = self._hits, self._misses
            return {
                "entries": len(self._entries),
                "max_entries": self._max_entries,
                "hits": hits,
                "misses": misses,
                "evictions": self._evictions,
                "hit_ratio": hits / (hits + misses) if hits + misses else 0.0,
            }
