"""Job lifecycle of the front-door scan service.

A **job** is one admitted protein-query scan: it is created ``queued`` by
``POST /scan``, picked up by the batcher (``running``), and finishes
``done`` (results attached) or ``failed`` (error attached).  Jobs that hit
the result cache are born ``done`` with ``cached=True`` and never touch
the queue.  The :class:`JobStore` keeps a bounded, thread-safe history so
``GET /jobs/<id>`` / ``GET /results/<id>`` stay answerable after
completion without growing without bound.

Result payloads are JSON-rendered with :func:`result_to_dict` — the same
information :class:`repro.core.aligner.AlignmentResult` carries, minus the
optional full score vectors (``keep_scores`` stays a library-level
feature; the HTTP surface returns hits only).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.aligner import AlignmentResult
from repro.core.encoding import EncodedQuery

__all__ = [
    "JOB_STATES",
    "Job",
    "JobStore",
    "pending_jobs",
    "result_to_dict",
]

#: Every state a job can report; terminal states are ``done`` / ``failed``.
JOB_STATES = ("queued", "running", "done", "failed")


def result_to_dict(result: AlignmentResult) -> Dict[str, Any]:
    """Render one per-reference alignment result as a JSON-safe dict."""
    return {
        "reference": result.reference_name,
        "reference_length": result.reference_length,
        "threshold": result.threshold,
        "hits": [[hit.position, hit.score] for hit in result.hits],
        "max_score": result.max_score,
    }


@dataclass
class Job:
    """One admitted scan job and everything its lifecycle accretes."""

    id: str
    query_name: str
    query: EncodedQuery
    threshold: int
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    results: Optional[List[AlignmentResult]] = None
    error: Optional[str] = None
    cached: bool = False
    degraded: bool = False
    dead_shards: int = 0

    def exit_code(self) -> int:
        """The job's CLI-contract exit code: 0 clean, 3 degraded, 4 dead shards."""
        if self.dead_shards:
            return 4
        if self.degraded:
            return 3
        return 0

    def mark_running(self) -> None:
        self.state = "running"
        self.started_at = time.time()

    def mark_done(
        self,
        results: List[AlignmentResult],
        *,
        degraded: bool = False,
        dead_shards: int = 0,
        cached: bool = False,
    ) -> None:
        self.results = results
        self.degraded = degraded
        self.dead_shards = dead_shards
        self.cached = cached
        self.state = "done"
        self.finished_at = time.time()

    def mark_failed(self, error: str) -> None:
        self.error = error
        self.state = "failed"
        self.finished_at = time.time()

    def to_dict(self, *, include_results: bool = False) -> Dict[str, Any]:
        """The job's JSON view; results ride along only when asked for."""
        payload: Dict[str, Any] = {
            "id": self.id,
            "query": self.query_name,
            "query_elements": len(self.query),
            "threshold": self.threshold,
            "state": self.state,
            "cached": self.cached,
            "submitted_at": self.submitted_at,
        }
        if self.started_at is not None:
            payload["started_at"] = self.started_at
        if self.finished_at is not None:
            payload["finished_at"] = self.finished_at
        if self.state in ("done", "failed"):
            payload["exit_code"] = 1 if self.state == "failed" else self.exit_code()
            payload["degraded"] = self.degraded
            payload["dead_shards"] = self.dead_shards
        if self.error is not None:
            payload["error"] = self.error
        if include_results and self.results is not None:
            payload["results"] = [result_to_dict(r) for r in self.results]
            payload["num_hits"] = sum(len(r.hits) for r in self.results)
        return payload


class JobStore:
    """Thread-safe, insertion-ordered job registry with bounded history.

    Once more than ``max_finished`` jobs sit in a terminal state the oldest
    finished ones are evicted (queued/running jobs are never evicted — a
    job the batcher still owns must stay addressable).
    """

    def __init__(self, *, max_finished: int = 1024) -> None:
        if max_finished < 1:
            raise ValueError("max_finished must be >= 1")
        self._max_finished = max_finished
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._serial = 0

    def create(self, query_name: str, query: EncodedQuery, threshold: int) -> Job:
        """Mint a job with a fresh id and register it."""
        with self._lock:
            self._serial += 1
            job = Job(
                id=f"job-{self._serial:06d}",
                query_name=query_name,
                query=query,
                threshold=threshold,
            )
            self._jobs[job.id] = job
            self._evict_locked()
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def counts(self) -> Dict[str, int]:
        """Jobs per state — the ``/healthz`` view."""
        tallies = {state: 0 for state in JOB_STATES}
        with self._lock:
            for job in self._jobs.values():
                tallies[job.state] = tallies.get(job.state, 0) + 1
        return tallies

    def _evict_locked(self) -> None:
        finished = [
            job_id
            for job_id, job in self._jobs.items()
            if job.state in ("done", "failed")
        ]
        excess = len(finished) - self._max_finished
        if excess > 0:
            for job_id in finished[:excess]:
                del self._jobs[job_id]


def pending_jobs(jobs: Sequence[Job]) -> List[Job]:
    """The subset of ``jobs`` still owned by the queue or the batcher."""
    return [job for job in jobs if job.state in ("queued", "running")]
