"""Front-door scan service: the daemon around the warm scan runtime.

The paper's deployment is a resident accelerator behind a host API; this
package is the software analogue's front door.  It stacks three layers,
each usable on its own:

* :mod:`repro.service.jobs` — job lifecycle (``queued`` → ``running`` →
  ``done``/``failed``) and the bounded, thread-safe job store;
* :mod:`repro.service.cache` — content-addressed LRU result cache keyed
  by (query fingerprint, database fingerprint, threshold, engine);
* :mod:`repro.service.daemon` — :class:`ScanService`, the resident core:
  admission queue, single batcher thread coalescing concurrent jobs into
  shared ``bitscore_batch`` passes, graceful drain;
* :mod:`repro.service.server` — :class:`ScanServer`, the stdlib HTTP
  front end (``POST /scan``, ``GET /jobs``/``results``, ``/healthz``,
  Prometheus ``/metrics``) with SIGTERM drain.

``fabp-repro serve`` wires it all together; ``docs/service.md`` is the
user-facing contract.
"""

from repro.service.cache import (
    ResultCache,
    database_fingerprint,
    query_fingerprint,
)
from repro.service.daemon import (
    ScanService,
    ServiceClosedError,
    ServiceSaturatedError,
)
from repro.service.jobs import Job, JobStore, result_to_dict
from repro.service.server import ScanServer, wait_until_listening

__all__ = [
    "Job",
    "JobStore",
    "ResultCache",
    "ScanServer",
    "ScanService",
    "ServiceClosedError",
    "ServiceSaturatedError",
    "database_fingerprint",
    "query_fingerprint",
    "result_to_dict",
    "wait_until_listening",
]
