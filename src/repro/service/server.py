"""HTTP front door of the scan daemon (stdlib ``http.server`` only).

One :class:`ScanServer` wraps one :class:`repro.service.daemon.ScanService`
behind a :class:`http.server.ThreadingHTTPServer` — one thread per
connection for request I/O, while all scoring stays on the daemon's single
batcher thread.  The endpoint surface (documented for users in
``docs/service.md``):

========================  ====================================================
``POST /scan``            admit one query (or a ``queries`` list); 202 + job id
``GET /jobs/<id>``        job lifecycle state (no results)
``GET /results/<id>``     200 results / 202 still pending / 500 failed
``GET /healthz``          supervision snapshot; 503 once draining
``GET /metrics``          the live ``repro.obs`` registry, Prometheus text
========================  ====================================================

Status codes map onto the CLI's exit-code contract: 400 is the HTTP face
of exit 2 (usage), 500 of exit 1 (fatal for that job), 503 is
back-pressure (queue full or draining — retry later), and every finished
job carries its own ``exit_code`` (0 clean / 3 degraded / 4 dead shards)
in the JSON body.

:meth:`ScanServer.install_signal_handlers` wires SIGTERM/SIGINT to a
graceful drain: admission stops (503), queued and in-flight jobs finish,
then the listener and the warm runtime shut down — the second signal
skips the wait and tears down immediately.
"""

from __future__ import annotations

import json
import signal
import socket
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro import obs as _obs
from repro.obs import profile as _obs_profile
from repro.service.daemon import (
    ScanService,
    ServiceClosedError,
    ServiceSaturatedError,
)

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "ScanServer",
]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765

#: Largest accepted request body; a genome does not fit in a query.
MAX_BODY_BYTES = 1 << 20

#: Normalized endpoint labels for the request metrics — a fixed vocabulary
#: so ``fabp_service_requests_total`` label cardinality stays bounded.
_ENDPOINTS = ("scan", "jobs", "results", "healthz", "metrics")


def _endpoint_of(path: str) -> str:
    head = path.lstrip("/").split("/", 1)[0]
    return head if head in _ENDPOINTS else "other"


class _Handler(BaseHTTPRequestHandler):
    """Request handler; ``self.server`` is the owning :class:`ScanServer`."""

    server_version = "fabp-service/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------------

    @property
    def service(self) -> ScanService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            sys.stderr.write(
                "%s - %s\n" % (self.address_string(), format % args)
            )

    def _reply(
        self,
        code: int,
        payload: Dict[str, Any],
        *,
        started: float,
        endpoint: str,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._reply_bytes(
            code, body, "application/json", started=started, endpoint=endpoint
        )

    def _reply_bytes(
        self,
        code: int,
        body: bytes,
        content_type: str,
        *,
        started: float,
        endpoint: str,
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        _obs_profile.record_service_request(
            endpoint, code, time.perf_counter() - started
        )

    def _read_json_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            raise ValueError("empty request body (JSON object expected)")
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body over {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValueError(f"invalid JSON body: {error}") from None
        if not isinstance(payload, dict):
            raise ValueError("JSON body must be an object")
        return payload

    # -- routes ----------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        started = time.perf_counter()
        endpoint = _endpoint_of(self.path)
        if self.path.rstrip("/") != "/scan":
            self._reply(
                404, {"error": f"unknown endpoint {self.path!r}"},
                started=started, endpoint=endpoint,
            )
            return
        try:
            payload = self._read_json_body()
            specs = self._scan_specs(payload)
            jobs = [
                self.service.submit(
                    spec["query"],
                    name=spec.get("name"),
                    threshold=spec.get("threshold"),
                    min_identity=spec.get("min_identity"),
                )
                for spec in specs
            ]
        except (ServiceClosedError, ServiceSaturatedError) as error:
            self._reply(
                503, {"error": str(error), "retriable": True},
                started=started, endpoint=endpoint,
            )
            return
        except ValueError as error:
            self._reply(
                400, {"error": str(error)}, started=started, endpoint=endpoint
            )
            return
        body: Dict[str, Any] = {"jobs": [job.to_dict() for job in jobs]}
        if len(jobs) == 1:
            body["id"] = jobs[0].id
            body["state"] = jobs[0].state
        self._reply(202, body, started=started, endpoint=endpoint)

    @staticmethod
    def _scan_specs(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Normalize a POST /scan body to a list of per-query specs."""
        if "queries" in payload:
            raw = payload["queries"]
            if not isinstance(raw, list) or not raw:
                raise ValueError("'queries' must be a non-empty list")
        elif "query" in payload:
            raw = [payload]
        else:
            raise ValueError("body needs a 'query' string or a 'queries' list")
        specs: List[Dict[str, Any]] = []
        for item in raw:
            if isinstance(item, str):
                item = {"query": item}
            if not isinstance(item, dict) or not isinstance(
                item.get("query"), str
            ):
                raise ValueError("each query needs a 'query' string")
            specs.append(item)
        return specs

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        started = time.perf_counter()
        endpoint = _endpoint_of(self.path)
        parts = [p for p in self.path.split("?", 1)[0].split("/") if p]
        if parts == ["metrics"]:
            self._reply_bytes(
                200,
                _obs.to_prometheus().encode("utf-8"),
                "text/plain; version=0.0.4",
                started=started,
                endpoint=endpoint,
            )
            return
        if parts == ["healthz"]:
            stats = self.service.stats()
            code = 200 if stats["state"] == "serving" else 503
            self._reply(code, stats, started=started, endpoint=endpoint)
            return
        if len(parts) == 2 and parts[0] in ("jobs", "results"):
            self._job_view(
                parts[0], parts[1], started=started, endpoint=endpoint
            )
            return
        self._reply(
            404, {"error": f"unknown endpoint {self.path!r}"},
            started=started, endpoint=endpoint,
        )

    def _job_view(
        self, kind: str, job_id: str, *, started: float, endpoint: str
    ) -> None:
        job = self.service.jobs.get(job_id)
        if job is None:
            self._reply(
                404, {"error": f"unknown job {job_id!r}"},
                started=started, endpoint=endpoint,
            )
            return
        if kind == "jobs":
            self._reply(
                200, job.to_dict(), started=started, endpoint=endpoint
            )
            return
        if job.state == "failed":
            self._reply(
                500, job.to_dict(), started=started, endpoint=endpoint
            )
        elif job.state != "done":
            self._reply(
                202, job.to_dict(), started=started, endpoint=endpoint
            )
        else:
            self._reply(
                200,
                job.to_dict(include_results=True),
                started=started,
                endpoint=endpoint,
            )


class ScanServer:
    """The daemon's HTTP listener; owns drain-on-signal orchestration."""

    def __init__(
        self,
        service: ScanService,
        *,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = service  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._shutdown_started = threading.Event()
        self._drain_thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — port resolved when 0 was requested."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (or a signal handler) stops us."""
        try:
            self._httpd.serve_forever(poll_interval=0.1)
        finally:
            self._httpd.server_close()

    def shutdown(self, *, drain: bool = True) -> None:
        """Stop the listener; with ``drain`` finish queued jobs first."""
        self.service.close(drain=drain)
        self._httpd.shutdown()

    def _drain_and_stop(self) -> None:
        self.service.close(drain=True)
        self._httpd.shutdown()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain; a second signal → immediate stop."""

        def _handle(signum: int, frame: object) -> None:
            if self._shutdown_started.is_set():
                self.service.close(drain=False)
                self._httpd.shutdown()
                return
            self._shutdown_started.set()
            # serve_forever owns this (main) thread; drain elsewhere.
            self._drain_thread = threading.Thread(
                target=self._drain_and_stop, name="fabp-service-drain"
            )
            self._drain_thread.start()

        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)

    # -- conveniences ----------------------------------------------------------

    @classmethod
    def ephemeral(cls, service: ScanService, **kwargs: Any) -> "ScanServer":
        """A server on an OS-assigned port (tests, parallel CI jobs)."""
        return cls(service, port=0, **kwargs)

    def url(self, path: str = "/") -> str:
        host, port = self.address
        if ":" in host:  # IPv6 literal
            host = f"[{host}]"
        return f"http://{host}:{port}{path}"


def wait_until_listening(
    host: str, port: int, timeout: float = 5.0
) -> bool:
    """Poll until a TCP connect succeeds (test/CI helper)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=0.2):
                return True
        except OSError:
            time.sleep(0.02)
    return False
