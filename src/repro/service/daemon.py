"""The resident scan daemon: admission queue, batcher, cache, drain.

:class:`ScanService` is the long-lived core the HTTP front door
(:mod:`repro.service.server`) delegates to.  It owns

* one warm backend — a :class:`repro.host.scan_session.ScanSession`
  (packed image published once, persistent supervised worker pool) or,
  with ``shards >= 1``, a :class:`repro.host.shards.ShardedScanRuntime`;
* a bounded admission queue; :meth:`submit` either answers from the LRU
  result cache immediately, enqueues a job, or refuses
  (:class:`ServiceSaturatedError` on a full queue,
  :class:`ServiceClosedError` once draining) — refusal is back-pressure,
  never silent dropping;
* a single **batcher thread** that drains the queue, lingers briefly so
  concurrent clients coalesce, and dispatches up to ``max_batch`` jobs as
  one ``scan_batch`` call — heterogeneous thresholds ride the same pass
  via the per-query threshold sequence the host runtimes accept.

Concurrency model: many HTTP threads call :meth:`submit` / read job
state; exactly one thread (the batcher) touches the backend runtime.
The session is therefore never shared across threads — the same
discipline its worker-pool protocol requires — and every shared
structure here (queue, job store, cache, counters) is individually
locked.

Graceful drain (:meth:`drain`) stops admission, lets the queue empty and
the in-flight batch finish, and leaves completed results readable; with a
checkpoint directory configured, every batch runs under a durable
fingerprinted checkpoint, so a drain that is interrupted mid-batch leaves
chunks a re-submitted identical batch resumes instead of recomputing.
"""

from __future__ import annotations

import hashlib
import queue
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union, cast

from repro.core.aligner import resolve_threshold
from repro.core.encoding import EncodedQuery, encode_query
from repro.host.scan import PackedDatabase
from repro.host.scan_session import SESSION_ENGINE, ScanSession
from repro.host.shards import ShardedScanRuntime, ShardPolicy
from repro.obs import profile as _obs_profile
from repro.service.cache import (
    CacheKey,
    ResultCache,
    database_fingerprint,
    query_fingerprint,
)
from repro.service.jobs import Job, JobStore

__all__ = [
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_QUEUE",
    "ScanService",
    "ServiceClosedError",
    "ServiceSaturatedError",
]

#: Default admission-queue bound; a full queue refuses with HTTP 503.
DEFAULT_MAX_QUEUE = 64

#: Default jobs per dispatched batch (the session caps queries per *pass*
#: separately — this bounds one ``scan_batch`` call's working set).
DEFAULT_MAX_BATCH = 16


class ServiceSaturatedError(RuntimeError):
    """The admission queue is full; the client should retry later."""


class ServiceClosedError(RuntimeError):
    """The service is draining or closed and admits no new jobs."""


class ScanService:
    """Resident scan daemon over one packed database (see module docs)."""

    def __init__(
        self,
        references: Union[PackedDatabase, Any],
        *,
        engine: Optional[str] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        shard_policy: Optional[ShardPolicy] = None,
        max_queue: int = DEFAULT_MAX_QUEUE,
        max_batch: int = DEFAULT_MAX_BATCH,
        cache_entries: int = 256,
        batch_linger: float = 0.02,
        checkpoint_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._database = (
            references
            if isinstance(references, PackedDatabase)
            else PackedDatabase.from_references(references)
        )
        self._shards = shards
        if shards is not None:
            self._runtime: Union[ScanSession, ShardedScanRuntime] = (
                ShardedScanRuntime(
                    self._database,
                    num_shards=shards,
                    engine=engine,
                    policy=shard_policy,
                )
            )
        else:
            self._runtime = ScanSession(
                self._database,
                engine=engine or SESSION_ENGINE,
                workers=workers,
            )
        self._db_fingerprint = database_fingerprint(self._database)
        self._checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self._max_batch = max_batch
        self._batch_linger = batch_linger
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue(
            maxsize=max_queue
        )
        self._jobs = JobStore()
        self._cache = ResultCache(cache_entries)
        self._lock = threading.Lock()
        self._draining = threading.Event()
        self._closed = threading.Event()
        self._idle = threading.Event()
        self._idle.set()
        self._started_at = time.time()
        self.batches_dispatched = 0
        self.jobs_done = 0
        self.jobs_failed = 0
        self.jobs_cached = 0
        self._worst_exit = 0
        self._batcher = threading.Thread(
            target=self._run_batcher, name="fabp-service-batcher", daemon=True
        )
        self._batcher.start()

    # -- introspection ---------------------------------------------------------

    @property
    def database(self) -> PackedDatabase:
        return self._database

    @property
    def database_fingerprint(self) -> str:
        """SHA-256 of the resident database; half of every cache key."""
        return self._db_fingerprint

    @property
    def engine(self) -> str:
        return self._runtime.engine

    @property
    def jobs(self) -> JobStore:
        return self._jobs

    @property
    def cache(self) -> ResultCache:
        return self._cache

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def exit_code(self) -> int:
        """Worst job outcome seen, in the CLI's scheme: 0 / 3 / 4."""
        with self._lock:
            return self._worst_exit

    def stats(self) -> Dict[str, Any]:
        """The ``/healthz`` snapshot: supervision, queue, cache, backend."""
        if self._closed.is_set():
            state = "closed"
        elif self._draining.is_set():
            state = "draining"
        else:
            state = "serving"
        backend: Dict[str, Any] = {"engine": self.engine}
        if isinstance(self._runtime, ShardedScanRuntime):
            backend["mode"] = "sharded"
            backend["num_shards"] = self._runtime.num_shards
        else:
            backend["mode"] = "session"
            backend["workers"] = self._runtime.num_workers
            backend["resident_bytes"] = self._runtime.resident_bytes
            backend["scans_completed"] = self._runtime.scans_completed
            backend["pool_reuses"] = self._runtime.pool_reuses
            backend["respawns_total"] = self._runtime.respawns_total
        return {
            "state": state,
            "uptime_seconds": time.time() - self._started_at,
            "queue_depth": self._queue.qsize(),
            "jobs": self._jobs.counts(),
            "batches_dispatched": self.batches_dispatched,
            "cache": self._cache.stats(),
            "backend": backend,
            "database": {
                "references": self._database.num_references,
                "nucleotides": self._database.total_nucleotides,
                "fingerprint": self._db_fingerprint[:16],
            },
            "exit_code": self.exit_code(),
        }

    # -- admission -------------------------------------------------------------

    def submit(
        self,
        query: Union[str, EncodedQuery],
        *,
        name: Optional[str] = None,
        threshold: Optional[int] = None,
        min_identity: Optional[float] = None,
    ) -> Job:
        """Admit one scan job; answer from cache when the key recurs.

        Raises :class:`ServiceClosedError` while draining/closed,
        :class:`ServiceSaturatedError` on a full queue, and ``ValueError``
        (or an encoding error) on a malformed request — the HTTP layer
        maps these to 503 / 503 / 400.
        """
        if self._draining.is_set() or self._closed.is_set():
            raise ServiceClosedError("service is draining; no new jobs")
        encoded = query if isinstance(query, EncodedQuery) else encode_query(query)
        resolved = resolve_threshold(encoded, threshold, min_identity)
        job = self._jobs.create(name or "query", encoded, resolved)
        key: CacheKey = (
            query_fingerprint(encoded),
            self._db_fingerprint,
            resolved,
            self.engine,
        )
        cached = self._cache.get(key)
        _obs_profile.record_service_cache(cached is not None)
        if cached is not None:
            job.mark_done(cached, cached=True)
            with self._lock:
                self.jobs_cached += 1
            _obs_profile.record_service_job("cached")
            return job
        self._idle.clear()
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            job.mark_failed("admission queue full")
            _obs_profile.record_service_job("refused")
            raise ServiceSaturatedError(
                f"admission queue full ({self._queue.maxsize} jobs)"
            ) from None
        _obs_profile.record_service_queue_depth(self._queue.qsize())
        return job

    # -- batcher ---------------------------------------------------------------

    def _collect_batch(self, first: Job) -> List[Job]:
        """Greedily coalesce queued jobs behind ``first``, up to the cap."""
        batch = [first]
        deadline = time.monotonic() + self._batch_linger
        while len(batch) < self._max_batch:
            timeout = deadline - time.monotonic()
            try:
                if timeout > 0:
                    item = self._queue.get(timeout=timeout)
                else:
                    item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is None:  # shutdown sentinel: put it back for the loop
                self._queue.put(item)
                break
            batch.append(item)
        return batch

    def _run_batcher(self) -> None:
        while True:
            try:
                job = self._queue.get(timeout=0.1)
            except queue.Empty:
                self._idle.set()
                if self._closed.is_set():
                    return
                continue
            if job is None:
                self._idle.set()
                return
            self._idle.clear()
            batch = self._collect_batch(job)
            self._execute(batch)
            _obs_profile.record_service_queue_depth(self._queue.qsize())
            if self._queue.qsize() == 0:
                self._idle.set()

    def _batch_checkpoint_dir(self, batch: List[Job]) -> Optional[str]:
        """A per-batch checkpoint subdirectory, deterministic in content.

        Keyed by the batch's (query fingerprint, threshold) multiset, so a
        re-submitted identical batch — after a crash or an interrupted
        drain — lands in the same store and resumes its finished chunks.
        """
        if self._checkpoint_dir is None:
            return None
        digest = hashlib.sha256()
        for token in sorted(
            f"{query_fingerprint(job.query)}:{job.threshold}" for job in batch
        ):
            digest.update(token.encode("ascii"))
        return str(self._checkpoint_dir / f"batch_{digest.hexdigest()[:16]}")

    def _execute(self, batch: List[Job]) -> None:
        for job in batch:
            job.mark_running()
        started = time.monotonic()
        try:
            outcome = self._runtime.scan_batch(
                [job.query for job in batch],
                threshold=[job.threshold for job in batch],
                checkpoint_dir=self._batch_checkpoint_dir(batch),
                resume=self._checkpoint_dir is not None,
                with_report=True,
            )
        except Exception as error:  # noqa: BLE001 - one batch must not kill the daemon
            message = f"{type(error).__name__}: {error}"
            with self._lock:
                self.jobs_failed += len(batch)
                self._worst_exit = max(self._worst_exit, 3)
            for job in batch:
                job.mark_failed(message)
                _obs_profile.record_service_job("failed")
            return
        finally:
            with self._lock:
                self.batches_dispatched += 1
            _obs_profile.record_service_batch(
                len(batch), time.monotonic() - started
            )
        batches, report = cast(
            Tuple[List[List[Any]], Any], outcome
        )
        degraded = bool(report.degraded)
        dead = int(report.dead_shards)
        for job, results in zip(batch, batches):
            job.mark_done(results, degraded=degraded, dead_shards=dead)
            key: CacheKey = (
                query_fingerprint(job.query),
                self._db_fingerprint,
                job.threshold,
                self.engine,
            )
            if not degraded and not dead:
                self._cache.put(key, results)
            _obs_profile.record_service_job("done")
        with self._lock:
            self.jobs_done += len(batch)
            self._worst_exit = max(self._worst_exit, report.exit_code())

    # -- lifecycle -------------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting, let queued and in-flight jobs finish.

        Returns ``True`` once the queue is empty and the batcher idle;
        ``False`` if ``timeout`` elapsed first (jobs keep running — a
        second call can keep waiting).  Completed results stay readable
        either way.
        """
        self._draining.set()
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while True:
            if self._queue.qsize() == 0 and self._idle.is_set():
                return True
            if self._closed.is_set():
                return self._queue.qsize() == 0
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.01)

    def close(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Tear the daemon down; with ``drain`` (default) finish work first."""
        if self._closed.is_set():
            return
        if drain:
            self.drain(timeout=timeout)
        self._draining.set()
        self._closed.set()
        self._queue.put(None)  # wake the batcher so it can exit
        self._batcher.join(timeout=10.0)
        runtime = self._runtime
        if isinstance(runtime, ScanSession):
            runtime.close()

    def __enter__(self) -> "ScanService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
