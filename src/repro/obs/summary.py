"""Human-readable stage breakdowns from observability artifacts.

``fabp-repro obs summarize PATH`` routes here.  :func:`load_artifact`
sniffs which of the three artifact kinds ``PATH`` holds and
:func:`summarize` renders the matching per-stage table:

* a **metrics** JSON written by ``--metrics-json`` (schema
  ``fabp-metrics``) — stage wall-time from ``fabp_stage_seconds``, engine
  breakdown from ``fabp_score_seconds``, a per-endpoint service table from
  ``fabp_service_request_seconds`` (daemon artifacts), plus the
  resilience counters;
* a Chrome **trace** JSON written by ``--trace-json`` (``traceEvents``)
  — spans aggregated by name;
* a **scan report** JSON written by ``fabp-repro scan --report-json``
  (schema v1, v2 or v3; see :func:`normalize_report_dict`) — chunk
  attempts aggregated by outcome plus the v2 ``metrics`` section and,
  for sharded scans, the v3 per-shard table.

The table format is the same for all three — stage, calls, total seconds,
mean seconds, share of the total — which is exactly the stage-level
evidence the paper's evaluation tables (§IV) are built from.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

ArtifactKind = str  # "metrics" | "trace" | "scan-report"

#: Current ScanReport schema (mirrors repro.host.resilience.ScanReport).
SCAN_REPORT_VERSION = 3


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Minimal monospace table (keeps this module stdlib-only)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def load_artifact(
    path: Union[str, pathlib.Path]
) -> Tuple[ArtifactKind, Dict[str, Any]]:
    """Read ``path`` and classify it; raises ``ValueError`` on unknown data."""
    payload = json.loads(pathlib.Path(path).read_text())
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: not a JSON object")
    if payload.get("schema") == "fabp-metrics":
        return "metrics", payload
    if "traceEvents" in payload:
        return "trace", payload
    if "queries" in payload or "chunk_attempts" in payload:
        return "scan-report", payload
    raise ValueError(
        f"{path}: unrecognized artifact (expected a fabp-metrics JSON, a "
        "Chrome trace JSON, or a scan report JSON)"
    )


def normalize_report_dict(report: Dict[str, Any]) -> Dict[str, Any]:
    """Upgrade a ScanReport dict to the v3 shape (v1/v2 stay readable).

    Schema v1 (PR 4) had no ``metrics`` section; v2 added it; v3 adds the
    ``shards`` section (empty for single-shard scans).  Anything newer
    than :data:`SCAN_REPORT_VERSION` is refused — forward compatibility
    by silent field-dropping is how wrong dashboards happen.  Consumers —
    this summarizer, tests, downstream tooling — should call this instead
    of branching on ``version`` themselves.
    """
    version = int(report.get("version", 1))
    if version > SCAN_REPORT_VERSION:
        raise ValueError(
            f"scan report schema v{version} is newer than supported "
            f"v{SCAN_REPORT_VERSION}"
        )
    normalized = dict(report)
    normalized.setdefault("metrics", {})
    normalized.setdefault("shards", [])
    normalized["version"] = SCAN_REPORT_VERSION
    return normalized


# -- per-kind row builders -----------------------------------------------------


def _share_rows(
    entries: List[Tuple[str, int, float]]
) -> List[List[object]]:
    """(name, calls, total_s) -> table rows with mean and share columns."""
    grand_total = sum(total for _, _, total in entries)
    rows: List[List[object]] = []
    for name, calls, total in sorted(
        entries, key=lambda item: (-item[2], item[0])
    ):
        mean = total / calls if calls else 0.0
        share = total / grand_total if grand_total > 0 else 0.0
        rows.append(
            [name, calls, f"{total:.4f}", f"{mean:.6f}", f"{share:.1%}"]
        )
    return rows


def _metric_samples(
    payload: Dict[str, Any], name: str
) -> List[Dict[str, Any]]:
    for metric in payload.get("metrics", []):
        if metric.get("name") == name:
            return list(metric.get("samples", []))
    return []


def summarize_metrics(payload: Dict[str, Any]) -> str:
    """Stage + engine breakdown tables from a fabp-metrics artifact."""
    sections: List[str] = []
    stage_entries = [
        (
            str(s["labels"].get("stage", "?")),
            int(s.get("count", 0)),
            float(s.get("sum", 0.0)),
        )
        for s in _metric_samples(payload, "fabp_stage_seconds")
    ]
    if stage_entries:
        sections.append("Stage breakdown (fabp_stage_seconds)")
        sections.append(
            _table(
                ["stage", "calls", "total_s", "mean_s", "share"],
                _share_rows(stage_entries),
            )
        )
    engine_entries = [
        (
            str(s["labels"].get("engine", "?")),
            int(s.get("count", 0)),
            float(s.get("sum", 0.0)),
        )
        for s in _metric_samples(payload, "fabp_score_seconds")
    ]
    if engine_entries:
        sections.append("")
        sections.append("Scoring engines (fabp_score_seconds)")
        sections.append(
            _table(
                ["engine", "calls", "total_s", "mean_s", "share"],
                _share_rows(engine_entries),
            )
        )
    service_entries = [
        (
            str(s["labels"].get("endpoint", "?")),
            int(s.get("count", 0)),
            float(s.get("sum", 0.0)),
        )
        for s in _metric_samples(payload, "fabp_service_request_seconds")
    ]
    if service_entries:
        sections.append("")
        sections.append("Service endpoints (fabp_service_request_seconds)")
        sections.append(
            _table(
                ["endpoint", "requests", "total_s", "mean_s", "share"],
                _share_rows(service_entries),
            )
        )
    counter_rows: List[List[object]] = []
    for metric in payload.get("metrics", []):
        if metric.get("kind") not in ("counter", "gauge"):
            continue
        for sample in metric.get("samples", []):
            labels = sample.get("labels", {})
            suffix = (
                "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            value = sample.get("value", 0)
            shown = int(value) if float(value).is_integer() else f"{value:.4g}"
            counter_rows.append([f"{metric['name']}{suffix}", shown])
    if counter_rows:
        sections.append("")
        sections.append("Counters & gauges")
        sections.append(_table(["metric", "value"], counter_rows))
    if not sections:
        return "(empty metrics artifact: was observability enabled?)"
    return "\n".join(sections)


def summarize_trace(payload: Dict[str, Any]) -> str:
    """Spans aggregated by name from a Chrome trace artifact."""
    totals: Dict[str, Tuple[int, float]] = {}
    for event in payload.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        name = str(event.get("name", "?"))
        calls, total = totals.get(name, (0, 0.0))
        totals[name] = (calls + 1, total + float(event.get("dur", 0.0)) / 1e6)
    if not totals:
        return "(empty trace: was observability enabled?)"
    entries = [(name, calls, total) for name, (calls, total) in totals.items()]
    dropped = payload.get("otherData", {}).get("dropped_spans", 0)
    lines = [
        "Span breakdown (traceEvents)",
        _table(
            ["span", "calls", "total_s", "mean_s", "share"], _share_rows(entries)
        ),
    ]
    if dropped:
        lines.append(f"(+ {dropped} spans dropped by the ring buffer)")
    return "\n".join(lines)


def _one_report_rows(report: Dict[str, Any]) -> List[Tuple[str, int, float]]:
    totals: Dict[str, Tuple[int, float]] = {}
    for attempt in report.get("chunk_attempts", []):
        outcome = str(attempt.get("outcome", "?"))
        calls, total = totals.get(outcome, (0, 0.0))
        totals[outcome] = (calls + 1, total + float(attempt.get("seconds", 0.0)))
    return [(f"attempt:{k}", c, t) for k, (c, t) in totals.items()]


def _shard_rows(report: Dict[str, Any]) -> List[List[object]]:
    rows: List[List[object]] = []
    for shard in report.get("shards", []):
        rows.append(
            [
                shard.get("shard", "?"),
                f"{shard.get('start', '?')}..{shard.get('stop', '?')}",
                shard.get("nucleotides", "?"),
                shard.get("status", "?"),
                shard.get("attempts", 0),
                shard.get("resumed_chunks", 0),
                shard.get("hedges", 0),
                f"{float(shard.get('elapsed_seconds', 0.0)):.3f}",
            ]
        )
    return rows


def summarize_scan_report(payload: Dict[str, Any]) -> str:
    """Outcome/stage tables from a scan report artifact (v1, v2 or v3)."""
    reports: List[Tuple[str, Dict[str, Any]]] = []
    if "queries" in payload:  # the CLI wrapper: one report per query
        for entry in payload.get("queries", []):
            reports.append(
                (
                    str(entry.get("query", "query")),
                    normalize_report_dict(entry.get("report", {})),
                )
            )
    else:  # a bare ScanReport.to_dict()
        reports.append(("scan", normalize_report_dict(payload)))
    sections: List[str] = []
    for name, report in reports:
        entries = _one_report_rows(report)
        stage_seconds = report.get("metrics", {}).get("stage_seconds", {})
        entries.extend(
            (f"stage:{stage}", 1, float(seconds))
            for stage, seconds in stage_seconds.items()
        )
        shards = report.get("shards", [])
        dead = sum(1 for s in shards if s.get("status") == "dead")
        if dead:
            state = "dead-shards"
        elif report.get("degraded"):
            state = "degraded"
        else:
            state = "clean"
        chunks = report.get("chunks", {})
        sections.append(
            f"{name}: {chunks.get('completed', '?')}/{chunks.get('total', '?')} "
            f"chunks [{state}] mode={report.get('mode', '?')} "
            f"elapsed={report.get('elapsed_seconds', 0.0):.3f}s "
            f"(schema v{report.get('version')})"
        )
        if entries:
            sections.append(
                _table(
                    ["stage", "calls", "total_s", "mean_s", "share"],
                    _share_rows(entries),
                )
            )
        if shards:
            sections.append(
                _table(
                    [
                        "shard", "references", "nucleotides", "status",
                        "attempts", "resumed", "hedges", "elapsed_s",
                    ],
                    _shard_rows(report),
                )
            )
        sections.append("")
    return "\n".join(sections).rstrip()


def summarize(
    path: Union[str, pathlib.Path], kind: Optional[ArtifactKind] = None
) -> str:
    """Load ``path``, pick the right renderer, return the breakdown text."""
    detected, payload = load_artifact(path)
    kind = kind or detected
    if kind == "metrics":
        return summarize_metrics(payload)
    if kind == "trace":
        return summarize_trace(payload)
    if kind == "scan-report":
        return summarize_scan_report(payload)
    raise ValueError(f"unknown artifact kind {kind!r}")
