"""The instrumentation hook catalogue: every metric the codebase emits.

Hot paths never talk to the registry directly — they call one of these
helpers, each of which early-returns while observability is disabled
(:mod:`repro.obs.state`), so the cost of an *off* hook is one function call
and one branch.  Centralizing the hooks here keeps the metric namespace in
one reviewable place; the catalogue is documented for users in
``docs/observability.md``.

Metric families (all prefixed ``fabp_``):

======================================  =========  ==========================
name                                    kind       labels
======================================  =========  ==========================
``fabp_score_calls_total``              counter    ``engine``
``fabp_score_seconds``                  histogram  ``engine``
``fabp_score_positions_total``          counter    ``engine``
``fabp_stage_seconds``                  histogram  ``stage``
``fabp_scan_references_total``          counter    —
``fabp_scan_hits_total``                counter    —
``fabp_scan_chunk_attempts_total``      counter    ``outcome``
``fabp_chunk_attempt_seconds``          histogram  ``outcome``
``fabp_scan_retries_total``             counter    —
``fabp_scan_hedges_total``              counter    —
``fabp_scan_respawns_total``            counter    —
``fabp_scan_degraded_total``            counter    —
``fabp_checkpoint_chunks_total``        counter    —
``fabp_checkpoint_bytes_total``         counter    —
``fabp_shm_bytes``                      gauge      — (high-water mark)
``fabp_scan_session_resident_bytes``    gauge      — (high-water mark)
``fabp_scan_session_reuses_total``      counter    —
``fabp_scan_session_batch_size``        histogram  —
``fabp_scan_session_pass_queries``      histogram  —
``fabp_shard_active``                   gauge      — (high-water mark)
``fabp_shard_resumes_total``            counter    —
``fabp_shard_hedges_total``             counter    —
``fabp_shard_merge_seconds``            histogram  —
``fabp_encoding_cache_hits``            gauge      —
``fabp_encoding_cache_misses``          gauge      —
``fabp_encoding_cache_entries``         gauge      —
``fabp_kernel_runs_total``              counter    ``device``
``fabp_kernel_beats_total``             counter    ``device``
``fabp_kernel_cycles_total``            counter    ``device``, ``kind``
``fabp_schedule_plans_total``           counter    ``segments``
``fabp_bench_positions_per_s``          gauge      ``engine``, ``workers``
``fabp_service_requests_total``         counter    ``endpoint``, ``code``
``fabp_service_request_seconds``        histogram  ``endpoint``
``fabp_service_queue_depth``            gauge      —
``fabp_service_jobs_total``             counter    ``outcome``
``fabp_service_cache_hits_total``       counter    —
``fabp_service_cache_misses_total``     counter    —
``fabp_service_batch_jobs``             histogram  —
======================================  =========  ==========================
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from repro.obs import state
from repro.obs.metrics import REGISTRY
from repro.obs.trace import RECORDER

__all__ = [
    "HOOK_CATALOGUE",
    "STAGE_NAMES",
    "StageTimer",
    "stage",
    "record_score_call",
    "record_scan_merge",
    "record_scan_attempt",
    "record_scan_report_counters",
    "record_checkpoint_chunk",
    "record_encoding_cache",
    "record_shm_bytes",
    "record_scan_session_open",
    "record_scan_session_batch",
    "record_scan_session_pass",
    "record_shard_active",
    "record_shard_resume",
    "record_shard_hedge",
    "record_shard_merge",
    "record_kernel_run",
    "record_schedule_plan",
    "record_bench_record",
    "record_service_request",
    "record_service_queue_depth",
    "record_service_job",
    "record_service_cache",
    "record_service_batch",
]


#: Every metric name a hook in this module may register.  The docstring
#: table above is the human-facing view of the same catalogue; rule OB002
#: (``repro.statics.observability``) enforces that the two never drift and
#: that no hook invents a name outside this set.
HOOK_CATALOGUE = frozenset(
    {
        "fabp_score_calls_total",
        "fabp_score_seconds",
        "fabp_score_positions_total",
        "fabp_stage_seconds",
        "fabp_scan_references_total",
        "fabp_scan_hits_total",
        "fabp_scan_chunk_attempts_total",
        "fabp_chunk_attempt_seconds",
        "fabp_scan_retries_total",
        "fabp_scan_hedges_total",
        "fabp_scan_respawns_total",
        "fabp_scan_degraded_total",
        "fabp_checkpoint_chunks_total",
        "fabp_checkpoint_bytes_total",
        "fabp_shm_bytes",
        "fabp_scan_session_resident_bytes",
        "fabp_scan_session_reuses_total",
        "fabp_scan_session_batch_size",
        "fabp_scan_session_pass_queries",
        "fabp_shard_active",
        "fabp_shard_resumes_total",
        "fabp_shard_hedges_total",
        "fabp_shard_merge_seconds",
        "fabp_encoding_cache_hits",
        "fabp_encoding_cache_misses",
        "fabp_encoding_cache_entries",
        "fabp_kernel_runs_total",
        "fabp_kernel_beats_total",
        "fabp_kernel_cycles_total",
        "fabp_schedule_plans_total",
        "fabp_bench_positions_per_s",
        "fabp_service_requests_total",
        "fabp_service_request_seconds",
        "fabp_service_queue_depth",
        "fabp_service_jobs_total",
        "fabp_service_cache_hits_total",
        "fabp_service_cache_misses_total",
        "fabp_service_batch_jobs",
    }
)

#: Every pipeline stage name the host runtime may time via :func:`stage`.
#: Also enforced by rule OB002: stage names are a fixed vocabulary so
#: dashboards and the trace viewer never see ad-hoc spellings.
STAGE_NAMES = frozenset(
    {
        "scan.pack",
        "scan.score",
        "scan.merge",
        "scan.checkpoint_load",
        "scan.execute",
        "scan.degraded",
    }
)


class StageTimer:
    """Mutable elapsed-seconds holder :func:`stage` yields to its caller."""

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.seconds = 0.0


@contextmanager
def stage(
    name: str, category: str = "stage", **args: Any
) -> Iterator[StageTimer]:
    """Time a named pipeline stage; emit a span and a histogram sample.

    Always yields a :class:`StageTimer` whose ``seconds`` is valid after
    exit (callers like the supervised runtime fold it into their own
    reports even with observability off); the metric/span emission itself
    is skipped while disabled.
    """
    timer = StageTimer()
    start = time.perf_counter()
    try:
        yield timer
    finally:
        timer.seconds = time.perf_counter() - start
        if state.enabled():
            REGISTRY.histogram(
                "fabp_stage_seconds",
                "Wall time per pipeline stage.",
                ("stage",),
            ).labels(stage=name).observe(timer.seconds)
            RECORDER.record(
                name=name,
                category=category,
                start=start,
                duration=timer.seconds,
                args=dict(args) if args else None,
            )


def record_score_call(engine: str, seconds: float, positions: int) -> None:
    """One ``scores_from_codes`` dispatch: engine, wall time, positions."""
    if not state.enabled():
        return
    REGISTRY.counter(
        "fabp_score_calls_total", "Scoring-engine dispatches.", ("engine",)
    ).labels(engine=engine).inc()
    REGISTRY.histogram(
        "fabp_score_seconds", "Wall time per scoring call.", ("engine",)
    ).labels(engine=engine).observe(seconds)
    REGISTRY.counter(
        "fabp_score_positions_total",
        "Alignment positions scored.",
        ("engine",),
    ).labels(engine=engine).inc(positions)


def record_scan_merge(references: int, hits: int) -> None:
    """Post-merge totals of one database scan."""
    if not state.enabled():
        return
    REGISTRY.counter(
        "fabp_scan_references_total", "References scanned."
    ).default.inc(references)
    REGISTRY.counter("fabp_scan_hits_total", "Hits above threshold.").default.inc(
        hits
    )


def record_scan_attempt(
    chunk: int,
    attempt: int,
    outcome: str,
    seconds: float,
    worker: Optional[int] = None,
) -> None:
    """One supervised chunk attempt (also emits a timeline span)."""
    if not state.enabled():
        return
    REGISTRY.counter(
        "fabp_scan_chunk_attempts_total",
        "Chunk attempts by outcome.",
        ("outcome",),
    ).labels(outcome=outcome).inc()
    REGISTRY.histogram(
        "fabp_chunk_attempt_seconds",
        "Wall time per chunk attempt.",
        ("outcome",),
    ).labels(outcome=outcome).observe(seconds)
    args: Dict[str, Any] = {"chunk": chunk, "attempt": attempt, "outcome": outcome}
    if worker is not None:
        args["worker"] = worker
    RECORDER.record(
        name=f"chunk {chunk}",
        category="scan.chunk",
        start=time.perf_counter() - seconds,
        duration=seconds,
        args=args,
    )


def record_scan_report_counters(
    retries: int, hedges: int, respawns: int, degraded: bool
) -> None:
    """Fold one finished scan's resilience counters into the registry."""
    if not state.enabled():
        return
    REGISTRY.counter("fabp_scan_retries_total", "Chunk retries.").default.inc(
        retries
    )
    REGISTRY.counter(
        "fabp_scan_hedges_total", "Hedged straggler re-dispatches."
    ).default.inc(hedges)
    REGISTRY.counter(
        "fabp_scan_respawns_total", "Dead workers replaced."
    ).default.inc(respawns)
    if degraded:
        REGISTRY.counter(
            "fabp_scan_degraded_total", "Scans finished degraded."
        ).default.inc()


def record_checkpoint_chunk(num_bytes: int) -> None:
    """One chunk file durably persisted by the checkpoint store."""
    if not state.enabled():
        return
    REGISTRY.counter(
        "fabp_checkpoint_chunks_total", "Checkpoint chunk files written."
    ).default.inc()
    REGISTRY.counter(
        "fabp_checkpoint_bytes_total", "Checkpoint bytes written."
    ).default.inc(num_bytes)


def record_shm_bytes(num_bytes: int) -> None:
    """Ratchet the shared-memory high-water mark gauge."""
    if not state.enabled():
        return
    gauge = REGISTRY.gauge(
        "fabp_shm_bytes", "Largest shared-memory segment published (bytes)."
    ).default
    gauge.track_max(num_bytes)  # type: ignore[union-attr]


def record_scan_session_open(resident_bytes: int) -> None:
    """One warm scan session opened; ratchet its resident-image gauge."""
    if not state.enabled():
        return
    gauge = REGISTRY.gauge(
        "fabp_scan_session_resident_bytes",
        "Largest packed database image held by a warm scan session (bytes).",
    ).default
    gauge.track_max(resident_bytes)  # type: ignore[union-attr]


def record_scan_session_batch(batch_size: int, reused: bool) -> None:
    """One ``scan``/``scan_batch`` call served by a session.

    ``reused`` is true when the session's packed image and worker pool were
    already warm from a previous call — the amortization the session exists
    to provide.
    """
    if not state.enabled():
        return
    REGISTRY.histogram(
        "fabp_scan_session_batch_size",
        "Queries per scan-session batch call.",
    ).default.observe(batch_size)
    if reused:
        REGISTRY.counter(
            "fabp_scan_session_reuses_total",
            "Batch calls served by an already-warm scan session.",
        ).default.inc()


def record_scan_session_pass(pass_queries: int) -> None:
    """One shared database pass: how many queries rode the same sweep."""
    if not state.enabled():
        return
    REGISTRY.histogram(
        "fabp_scan_session_pass_queries",
        "Queries sharing one database pass.",
    ).default.observe(pass_queries)


def record_shard_active(count: int) -> None:
    """Ratchet the concurrent-shard-runner high-water mark gauge."""
    if not state.enabled():
        return
    gauge = REGISTRY.gauge(
        "fabp_shard_active",
        "Most shard runner processes live at once.",
    ).default
    gauge.track_max(count)  # type: ignore[union-attr]


def record_shard_resume(chunks: int) -> None:
    """One shard elastically resumed; count the chunks it did NOT replay."""
    if not state.enabled():
        return
    REGISTRY.counter(
        "fabp_shard_resumes_total",
        "Chunks restored from checkpoint by respawned shard runners.",
    ).default.inc(chunks)


def record_shard_hedge() -> None:
    """One straggler shard speculatively re-dispatched to a spare runner."""
    if not state.enabled():
        return
    REGISTRY.counter(
        "fabp_shard_hedges_total", "Hedged shard re-dispatches."
    ).default.inc()


def record_shard_merge(seconds: float) -> None:
    """Wall time of one seam-exact merge of per-shard hit lists."""
    if not state.enabled():
        return
    REGISTRY.histogram(
        "fabp_shard_merge_seconds",
        "Wall time merging per-shard hit lists.",
    ).default.observe(seconds)


def record_encoding_cache(hits: int, misses: int, entries: int) -> None:
    """Snapshot the extended-mode residue-table cache effectiveness."""
    if not state.enabled():
        return
    REGISTRY.gauge(
        "fabp_encoding_cache_hits", "Residue-table cache hits."
    ).default.set(hits)
    REGISTRY.gauge(
        "fabp_encoding_cache_misses", "Residue-table cache misses."
    ).default.set(misses)
    REGISTRY.gauge(
        "fabp_encoding_cache_entries", "Residue-table cache entries."
    ).default.set(entries)


def record_kernel_run(run: Any) -> None:
    """Beat/cycle accounting of one accelerator-model kernel invocation.

    ``run`` is a :class:`repro.accel.kernel.KernelRun` (duck-typed: the
    observability layer stays import-free of the accelerator stack).
    """
    if not state.enabled():
        return
    device = run.plan.device.name
    REGISTRY.counter(
        "fabp_kernel_runs_total", "Kernel invocations.", ("device",)
    ).labels(device=device).inc()
    REGISTRY.counter(
        "fabp_kernel_beats_total", "Valid AXI beats streamed.", ("device",)
    ).labels(device=device).inc(run.beats)
    cycles = REGISTRY.counter(
        "fabp_kernel_cycles_total",
        "Modeled kernel cycles by kind.",
        ("device", "kind"),
    )
    for kind, value in (
        ("compute", run.compute_cycles),
        ("stall", run.stall_cycles),
        ("load", run.load_cycles),
        ("writeback", run.writeback_cycles),
        ("drain", run.drain_cycles),
    ):
        cycles.labels(device=device, kind=kind).inc(value)
    RECORDER.record(
        name="accel.kernel.run",
        category="accel",
        start=time.perf_counter() - run.elapsed_seconds,
        duration=run.elapsed_seconds,
        args={
            "reference_length": run.reference_length,
            "beats": run.beats,
            "hits": len(run.hits),
            "segments": run.plan.segments,
        },
    )


def record_schedule_plan(segments: int) -> None:
    """One segmentation decision by the scheduler."""
    if not state.enabled():
        return
    REGISTRY.counter(
        "fabp_schedule_plans_total",
        "Schedule plans by segment count.",
        ("segments",),
    ).labels(segments=str(segments)).inc()


def record_service_request(endpoint: str, code: int, seconds: float) -> None:
    """One HTTP request served by the front-door scan service.

    ``endpoint`` is the normalized route name (``scan``, ``jobs``,
    ``results``, ``healthz``, ``metrics``, ``other``), never the raw path —
    label cardinality stays bounded.
    """
    if not state.enabled():
        return
    REGISTRY.counter(
        "fabp_service_requests_total",
        "Service HTTP requests by endpoint and status code.",
        ("endpoint", "code"),
    ).labels(endpoint=endpoint, code=str(code)).inc()
    REGISTRY.histogram(
        "fabp_service_request_seconds",
        "Wall time per service HTTP request.",
        ("endpoint",),
    ).labels(endpoint=endpoint).observe(seconds)


def record_service_queue_depth(depth: int) -> None:
    """Snapshot the admission queue depth after an enqueue/dequeue."""
    if not state.enabled():
        return
    REGISTRY.gauge(
        "fabp_service_queue_depth",
        "Scan jobs waiting in the service admission queue.",
    ).default.set(depth)


def record_service_job(outcome: str) -> None:
    """One scan job reaching a terminal state (``done``/``failed``/``cached``)."""
    if not state.enabled():
        return
    REGISTRY.counter(
        "fabp_service_jobs_total",
        "Scan jobs finished, by outcome.",
        ("outcome",),
    ).labels(outcome=outcome).inc()


def record_service_cache(hit: bool) -> None:
    """One result-cache lookup by the service front door."""
    if not state.enabled():
        return
    if hit:
        REGISTRY.counter(
            "fabp_service_cache_hits_total", "Service result-cache hits."
        ).default.inc()
    else:
        REGISTRY.counter(
            "fabp_service_cache_misses_total", "Service result-cache misses."
        ).default.inc()


def record_service_batch(jobs: int, seconds: float) -> None:
    """One batched pass dispatched by the service: occupancy + span."""
    if not state.enabled():
        return
    REGISTRY.histogram(
        "fabp_service_batch_jobs",
        "Jobs sharing one service scan batch.",
    ).default.observe(jobs)
    RECORDER.record(
        name="service.batch",
        category="service",
        start=time.perf_counter() - seconds,
        duration=seconds,
        args={"jobs": jobs},
    )


def record_bench_record(
    engine: str, workers: int, positions_per_s: float, wall_s: float
) -> None:
    """One benchmark measurement (gauge + span for the bench timeline)."""
    if not state.enabled():
        return
    REGISTRY.gauge(
        "fabp_bench_positions_per_s",
        "Benchmark throughput (alignment positions/s).",
        ("engine", "workers"),
    ).labels(engine=engine, workers=str(workers)).set(positions_per_s)
    RECORDER.record(
        name=f"bench.{engine}",
        category="bench",
        start=time.perf_counter() - wall_s,
        duration=wall_s,
        args={"engine": engine, "workers": workers},
    )
