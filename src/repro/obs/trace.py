"""Hierarchical span tracing with a ring buffer and Chrome trace export.

:func:`trace` opens a *span* — a named, timed interval — usable as a
context manager or a decorator.  Spans nest naturally (a scan span contains
chunk spans contains engine spans); the per-thread span stack records each
span's parent so exports can reconstruct the hierarchy even off-timeline.

Completed spans land in a fixed-capacity **ring buffer**
(:class:`TraceRecorder`): recording is O(1), memory is bounded no matter how
long the scan runs, and the oldest spans are overwritten first (``dropped``
counts them).  :meth:`TraceRecorder.to_chrome` serializes the buffer as
Chrome ``trace_event`` JSON — complete (``"ph": "X"``) events with
microsecond timestamps — so any scan can be opened in ``about:tracing`` or
`Perfetto <https://ui.perfetto.dev>`_ for a flame-graph view of where the
time went.  The format is golden-file tested in ``tests/obs/test_trace.py``.

Everything here is a no-op while :func:`repro.obs.state.enabled` is false:
``trace()`` still returns a working context manager, it just records
nothing, so decorator use sites never need their own guards.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs import state

#: Default ring-buffer capacity (spans); ~100 bytes/span resident.
DEFAULT_CAPACITY = 65_536

#: Identifies a trace artifact (``obs summarize`` sniffs ``traceEvents``).
CHROME_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Span:
    """One completed interval, as stored in the ring buffer."""

    name: str
    category: str
    #: Start time on the recorder's clock (``time.perf_counter`` seconds).
    start: float
    duration: float
    thread_id: int
    parent: Optional[str] = None
    args: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Fixed-capacity ring buffer of completed spans."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY, origin: Optional[float] = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.origin = time.perf_counter() if origin is None else origin
        self.dropped = 0
        self._buffer: List[Optional[Span]] = [None] * capacity
        self._next = 0
        self._count = 0
        self._lock = threading.Lock()

    def record(
        self,
        name: str,
        category: str,
        start: float,
        duration: float,
        parent: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
        thread_id: Optional[int] = None,
    ) -> None:
        """Append one span; overwrites the oldest once the buffer is full."""
        span = Span(
            name=name,
            category=category,
            start=start,
            duration=duration,
            thread_id=threading.get_ident() if thread_id is None else thread_id,
            parent=parent,
            args=args or {},
        )
        with self._lock:
            if self._count == self.capacity:
                self.dropped += 1
            else:
                self._count += 1
            self._buffer[self._next] = span
            self._next = (self._next + 1) % self.capacity

    def spans(self) -> List[Span]:
        """Retained spans, oldest first (ring order, then by start time)."""
        with self._lock:
            if self._count < self.capacity:
                retained = [s for s in self._buffer[: self._count]]
            else:
                retained = self._buffer[self._next :] + self._buffer[: self._next]
        return sorted(
            (s for s in retained if s is not None), key=lambda s: (s.start, s.name)
        )

    def reset(self, origin: Optional[float] = None) -> None:
        """Drop every span and restart the clock."""
        with self._lock:
            self._buffer = [None] * self.capacity
            self._next = 0
            self._count = 0
            self.dropped = 0
            self.origin = time.perf_counter() if origin is None else origin

    def __len__(self) -> int:
        return self._count

    def to_chrome(self, pid: Optional[int] = None) -> Dict[str, Any]:
        """The Chrome ``trace_event`` JSON object (complete events).

        Timestamps (``ts``) and durations (``dur``) are microseconds from
        the recorder's origin, per the trace-event spec; ``pid`` defaults
        to the live process id (tests pin it for golden comparison).
        """
        process_id = os.getpid() if pid is None else pid
        events: List[Dict[str, Any]] = []
        tids: Dict[int, int] = {}
        for span in self.spans():
            # Stable small tids: Chrome renders one lane per (pid, tid).
            tid = tids.setdefault(span.thread_id, len(tids) + 1)
            args = dict(span.args)
            if span.parent is not None:
                args["parent"] = span.parent
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": (span.start - self.origin) * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": process_id,
                    "tid": tid,
                    "args": args,
                }
            )
        return {
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.obs",
                "schema_version": CHROME_SCHEMA_VERSION,
                "dropped_spans": self.dropped,
            },
            "traceEvents": events,
        }


#: The process-wide default recorder every ``trace()`` span lands in.
RECORDER = TraceRecorder()

#: Per-thread stack of open span names (parent attribution).
_stack = threading.local()


def _span_stack() -> List[str]:
    stack = getattr(_stack, "names", None)
    if stack is None:
        stack = []
        _stack.names = stack
    return stack


def current_span() -> Optional[str]:
    """Name of the innermost open span on this thread, if any."""
    stack = _span_stack()
    return stack[-1] if stack else None


class trace:
    """Span context manager / decorator: ``with trace("scan.merge"): ...``.

    Keyword arguments become the span's ``args`` payload in the export.
    Enablement is checked at *enter* time, so decorating a function with
    ``@trace("name")`` is always safe — it records only while observability
    is on.  Instances are reentrant (recursion keeps per-level start times).
    """

    __slots__ = ("name", "category", "args", "_starts")

    def __init__(self, name: str, category: str = "app", **args: Any):
        self.name = name
        self.category = category
        self.args = args
        self._starts: List[Optional[Tuple[float, Optional[str]]]] = []

    def __enter__(self) -> "trace":
        if not state.enabled():
            self._starts.append(None)
            return self
        stack = _span_stack()
        self._starts.append((time.perf_counter(), stack[-1] if stack else None))
        stack.append(self.name)
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        entry = self._starts.pop()
        if entry is None:
            return False
        start, parent = entry
        stack = _span_stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        RECORDER.record(
            name=self.name,
            category=self.category,
            start=start,
            duration=time.perf_counter() - start,
            parent=parent,
            args=self.args,
        )
        return False

    def __call__(self, fn):  # type: ignore[no-untyped-def]
        import functools

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):  # type: ignore[no-untyped-def]
            with self:
                return fn(*args, **kwargs)

        return wrapper


def write_trace_json(
    path: Union[str, "pathlib.Path"],
    recorder: TraceRecorder = RECORDER,
    pid: Optional[int] = None,
) -> pathlib.Path:
    """Serialize the recorder to Chrome trace JSON at ``path``."""
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(recorder.to_chrome(pid=pid), indent=2) + "\n")
    return out
