"""Global observability switch — the near-zero-cost no-op guard.

Every instrumented hot path asks :func:`enabled` (one module-global read
behind one function call) before touching a timer, a metric, or the trace
recorder.  Observability is **off by default**: all existing callers run
unmodified with no measurable overhead, and enabling it never changes any
scan result (property-tested in ``tests/property/test_obs_properties.py``).

``enable()``/``disable()`` flip the process-local switch; worker processes
forked *after* ``enable()`` inherit it (their in-process metrics die with
them — per-chunk accounting flows back through the supervisor's
:class:`~repro.host.resilience.ScanReport` instead, which is why the
supervised runtime records attempt timings on the parent side).
"""

from __future__ import annotations

_enabled = False


def enable() -> None:
    """Turn observability on for this process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn observability off (instrumented sites become no-ops again)."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    """Whether instrumented sites should record anything."""
    return _enabled
