"""Observability layer: metrics, span tracing, and profiling hooks.

``repro.obs`` is the measurement substrate under the scan/score/accel
stack — dependency-free (stdlib only), **off by default**, and near-zero
cost when off (every hook guards on one boolean).  The paper's evaluation
(§IV) lives on stage-level breakdowns: this package lets any run produce
them instead of relying on ad-hoc timers.

Three pieces:

* :mod:`repro.obs.metrics` — process-local registry of counters, gauges
  and fixed-log-bucket histograms, exported as Prometheus text or JSON;
* :mod:`repro.obs.trace` — hierarchical span tracing (``with
  trace("scan.merge"): ...``) into a bounded ring buffer, exported as
  Chrome ``trace_event`` JSON for ``about:tracing`` / Perfetto;
* :mod:`repro.obs.profile` — the hook catalogue the instrumented modules
  call (engine timers, chunk attempts, checkpoint bytes, shared-memory
  high-water mark, kernel beat accounting).

Typical use (the CLI does exactly this for ``--metrics-json`` /
``--trace-json``)::

    from repro import obs

    obs.enable()
    ...                       # run scans / benches as usual
    obs.write_metrics_json("metrics.json")
    obs.write_trace_json("trace.json")
    print(obs.summarize("metrics.json"))

Guarantee: enabling observability never changes any scan result
(bit-identical; property-tested), and overhead on the quick benchmark is
within noise — see ``docs/observability.md``.
"""

from __future__ import annotations

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    REGISTRY,
    to_json,
    to_prometheus,
    write_metrics_json,
    write_prometheus,
)
from repro.obs.state import disable, enable, enabled
from repro.obs.summary import (
    load_artifact,
    normalize_report_dict,
    summarize,
    summarize_metrics,
    summarize_scan_report,
    summarize_trace,
)
from repro.obs.trace import (
    DEFAULT_CAPACITY,
    RECORDER,
    Span,
    TraceRecorder,
    current_span,
    trace,
    write_trace_json,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_CAPACITY",
    "RECORDER",
    "Span",
    "TraceRecorder",
    "current_span",
    "trace",
    "enable",
    "disable",
    "enabled",
    "reset",
    "to_json",
    "to_prometheus",
    "write_metrics_json",
    "write_prometheus",
    "write_trace_json",
    "load_artifact",
    "normalize_report_dict",
    "summarize",
    "summarize_metrics",
    "summarize_scan_report",
    "summarize_trace",
]


def reset() -> None:
    """Clear every metric and span (fresh CLI runs and tests start clean)."""
    REGISTRY.reset()
    RECORDER.reset()
