"""Process-local metrics registry: counters, gauges, log-bucket histograms.

The registry is deliberately tiny and dependency-free — the point is that a
long scan can account for where its time, retries, and bytes go without
pulling a client library into the hot path.  Three metric kinds cover the
paper's evaluation needs (§IV stage breakdowns):

* :class:`Counter` — monotonically increasing totals (calls, retries, bytes);
* :class:`Gauge` — last-value or high-water-mark samples (shared-memory
  bytes, benchmark throughput);
* :class:`Histogram` — value distributions over **fixed log-scale buckets**
  (the 1-2-5 decade series, like Prometheus' defaults), so per-stage and
  per-engine latencies aggregate without unbounded memory.

Metric *families* are identified by name and declare their label names once;
``family.labels(engine="bitscore")`` returns the child actually incremented.
Two exporters serialize a whole registry: :func:`to_prometheus` (the
Prometheus text exposition format) and :func:`to_json` (a stable
schema-versioned payload ``fabp-repro obs summarize`` consumes).  Both are
golden-file tested in ``tests/obs/test_metrics.py``.
"""

from __future__ import annotations

import json
import pathlib
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

#: JSON artifact schema version (bump on incompatible changes).
JSON_SCHEMA_VERSION = 1

#: Identifies a metrics artifact (``obs summarize`` sniffs this key).
JSON_SCHEMA_NAME = "fabp-metrics"

#: Fixed log-scale latency buckets: the 1-2-5 series over nine decades,
#: 1 microsecond to 500 seconds.  Chosen once so every histogram in the
#: process is cross-comparable and the export is deterministic.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = tuple(
    mantissa * 10.0 ** exponent
    for exponent in range(-6, 3)
    for mantissa in (1.0, 2.0, 5.0)
)

LabelValues = Tuple[Tuple[str, str], ...]


def _format_value(value: float) -> str:
    """Render a sample value: integers bare, floats via ``repr`` (exact)."""
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    """Deterministic bucket-bound label (``1e-06``, ``0.5``, ``+Inf``)."""
    if bound == float("inf"):
        return "+Inf"
    return f"{bound:g}"


def _label_suffix(labels: LabelValues, extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value, optionally used as a high-water mark."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def track_max(self, value: float) -> None:
        """Ratchet: keep the largest value ever seen (high-water mark)."""
        if value > self.value:
            self.value = float(value)


class Histogram:
    """Bucketed value distribution with running count and sum."""

    __slots__ = ("bounds", "bucket_counts", "count", "sum")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_TIME_BUCKETS) -> None:
        self.bounds = tuple(sorted(bounds))
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +1 = overflow
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one sample (linear scan is fine: ~27 fixed buckets)."""
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative(self) -> List[Tuple[str, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, ending at +Inf."""
        pairs: List[Tuple[str, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            running += bucket
            pairs.append((_format_bound(bound), running))
        pairs.append(("+Inf", self.count))
        return pairs


MetricChild = Union[Counter, Gauge, Histogram]


class MetricFamily:
    """All children of one metric name, keyed by label values."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self.buckets = buckets or DEFAULT_TIME_BUCKETS
        self._children: Dict[LabelValues, MetricChild] = {}
        self._lock = threading.Lock()

    def labels(self, **labels: str) -> MetricChild:
        """The child for these label values, created on first use."""
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key: LabelValues = tuple((k, str(labels[k])) for k in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    if self.kind == "counter":
                        child = Counter()
                    elif self.kind == "gauge":
                        child = Gauge()
                    else:
                        child = Histogram(self.buckets)
                    self._children[key] = child
        return child

    @property
    def default(self) -> MetricChild:
        """The unlabeled child (only valid when the family has no labels)."""
        return self.labels()

    def samples(self) -> List[Tuple[LabelValues, MetricChild]]:
        """Children in deterministic (sorted-label) order."""
        return sorted(self._children.items(), key=lambda item: item[0])


class MetricsRegistry:
    """Every metric family of one process, in registration order."""

    def __init__(self) -> None:
        self._families: "Dict[str, MetricFamily]" = {}
        self._lock = threading.Lock()

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: Iterable[str],
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = MetricFamily(
                        name, kind, help_text, tuple(label_names), buckets
                    )
                    self._families[name] = family
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {family.kind}"
            )
        return family

    def counter(
        self, name: str, help_text: str = "", label_names: Iterable[str] = ()
    ) -> MetricFamily:
        return self._family(name, "counter", help_text, label_names)

    def gauge(
        self, name: str, help_text: str = "", label_names: Iterable[str] = ()
    ) -> MetricFamily:
        return self._family(name, "gauge", help_text, label_names)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        label_names: Iterable[str] = (),
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> MetricFamily:
        return self._family(name, "histogram", help_text, label_names, buckets)

    def families(self) -> List[MetricFamily]:
        """Families sorted by name (export order is deterministic)."""
        return [self._families[name] for name in sorted(self._families)]

    def reset(self) -> None:
        """Drop every family (tests and fresh CLI runs start clean)."""
        with self._lock:
            self._families.clear()


#: The process-wide default registry every instrumentation hook writes to.
REGISTRY = MetricsRegistry()


# -- exporters -----------------------------------------------------------------


def to_prometheus(registry: MetricsRegistry = REGISTRY) -> str:
    """The Prometheus text exposition format (version 0.0.4)."""
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, child in family.samples():
            if isinstance(child, Histogram):
                for le, running in child.cumulative():
                    suffix = _label_suffix(labels, f'le="{le}"')
                    lines.append(f"{family.name}_bucket{suffix} {running}")
                suffix = _label_suffix(labels)
                lines.append(f"{family.name}_sum{suffix} {_format_value(child.sum)}")
                lines.append(f"{family.name}_count{suffix} {child.count}")
            else:
                suffix = _label_suffix(labels)
                lines.append(f"{family.name}{suffix} {_format_value(child.value)}")
    return "\n".join(lines) + "\n"


def to_json(registry: MetricsRegistry = REGISTRY) -> Dict[str, object]:
    """A stable JSON payload (see :data:`JSON_SCHEMA_VERSION`)."""
    metrics: List[Dict[str, object]] = []
    for family in registry.families():
        samples: List[Dict[str, object]] = []
        for labels, child in family.samples():
            sample: Dict[str, object] = {"labels": dict(labels)}
            if isinstance(child, Histogram):
                sample["count"] = child.count
                sample["sum"] = child.sum
                sample["buckets"] = {le: n for le, n in child.cumulative()}
            else:
                sample["value"] = child.value
            samples.append(sample)
        metrics.append(
            {
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "label_names": list(family.label_names),
                "samples": samples,
            }
        )
    return {
        "schema": JSON_SCHEMA_NAME,
        "version": JSON_SCHEMA_VERSION,
        "metrics": metrics,
    }


def write_metrics_json(
    path: Union[str, "pathlib.Path"], registry: MetricsRegistry = REGISTRY
) -> pathlib.Path:
    """Serialize the registry to ``path`` (parents created); return the path."""
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(to_json(registry), indent=2, sort_keys=True) + "\n")
    return out


def write_prometheus(
    path: Union[str, "pathlib.Path"], registry: MetricsRegistry = REGISTRY
) -> pathlib.Path:
    """Write the Prometheus text format to ``path``; return the path."""
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(to_prometheus(registry))
    return out
