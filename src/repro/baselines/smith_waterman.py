"""Smith-Waterman local alignment (linear and affine gap penalties).

This is the paper's DP reference point (§II): optimal local alignment
supporting substitutions *and* indels, O(L_a * L_b) time.  Three roles in
the reproduction:

* ground truth for the §IV-A accuracy study (does FabP's substitution-only
  scoring lose hits that a full aligner finds?);
* the rescoring stage of the TBLASTN pipeline;
* the complexity baseline quoted in the paper's motivation.

Implementation notes: plain row-by-row DP with numpy row storage.  The
affine recurrence follows Gotoh:

    E[i][j] = max(E[i][j-1] - extend, H[i][j-1] - open - extend)   (gap in A)
    F[i][j] = max(F[i-1][j] - extend, H[i-1][j] - open - extend)   (gap in B)
    H[i][j] = max(0, H[i-1][j-1] + s(a_i, b_j), E[i][j], F[i][j])

with local-alignment clamping at zero.  Traceback keeps uint8 pointer
matrices (memory: 3 bytes/cell), so use ``traceback=False`` for large
score-only scans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.baselines.scoring import NucleotideScoring, ProteinScoring
from repro.seq import alphabet

_STOP, _DIAG, _LEFT, _UP = 0, 1, 2, 3


@dataclass(frozen=True)
class LocalAlignment:
    """Result of a local alignment.

    ``a_start/a_end`` and ``b_start/b_end`` are half-open ranges into the
    two input strings; ``aligned_a``/``aligned_b`` are the gapped alignment
    rows (empty when traceback was disabled).
    """

    score: int
    a_start: int
    a_end: int
    b_start: int
    b_end: int
    aligned_a: str = ""
    aligned_b: str = ""

    @property
    def length(self) -> int:
        """Alignment columns (including gap columns)."""
        return len(self.aligned_a)

    @property
    def identity(self) -> float:
        """Fraction of identical columns (0 when traceback was disabled)."""
        if not self.aligned_a:
            return 0.0
        same = sum(1 for x, y in zip(self.aligned_a, self.aligned_b) if x == y)
        return same / len(self.aligned_a)

    @property
    def gaps(self) -> int:
        """Total gap characters across both rows."""
        return self.aligned_a.count("-") + self.aligned_b.count("-")

    def __str__(self) -> str:
        return (
            f"LocalAlignment(score={self.score}, a[{self.a_start}:{self.a_end}], "
            f"b[{self.b_start}:{self.b_end}], id={self.identity:.0%})"
        )


def _default_scoring(a: str, b: str):
    """Pick a scorer from content: nucleotide if both look like RNA/DNA."""
    a_rna = alphabet.is_rna(a) or alphabet.is_dna(a)
    b_rna = alphabet.is_rna(b) or alphabet.is_dna(b)
    if a_rna and b_rna:
        return NucleotideScoring()
    return ProteinScoring()


def smith_waterman(
    a: str,
    b: str,
    scoring=None,
    *,
    mode: str = "affine",
    traceback: bool = True,
) -> LocalAlignment:
    """Optimal local alignment of strings ``a`` and ``b``.

    ``mode`` is ``"affine"`` (Gotoh, default), ``"linear"`` (gap cost =
    extend per residue; ``open`` ignored) or ``"ungapped"`` (substitutions
    only — the DP analogue of FabP's scoring model).
    """
    a = str(a)
    b = str(b)
    if scoring is None:
        scoring = _default_scoring(a, b)
    if mode not in ("affine", "linear", "ungapped"):
        raise ValueError(f"unknown mode {mode!r}")
    if not a or not b:
        return LocalAlignment(0, 0, 0, 0, 0)
    codes_a = scoring.encode(a)
    codes_b = scoring.encode(b)
    table = scoring.table
    gap_open = scoring.gap.open if mode == "affine" else 0
    gap_extend = scoring.gap.extend

    n, m = len(a), len(b)
    neg_inf = np.int32(-(10**9))
    h_prev = np.zeros(m + 1, dtype=np.int32)
    f_prev = np.full(m + 1, neg_inf, dtype=np.int32)
    best = 0
    best_pos = (0, 0)
    # Three pointer planes (Gotoh state machine): the H plane records where
    # each cell's max came from; the E/F planes record whether the gap run
    # continues (1) or opens from H (0).
    ptr_h = np.zeros((n + 1, m + 1), dtype=np.uint8) if traceback else None
    ptr_e = np.zeros((n + 1, m + 1), dtype=np.uint8) if traceback else None
    ptr_f = np.zeros((n + 1, m + 1), dtype=np.uint8) if traceback else None

    for i in range(1, n + 1):
        h_row = np.zeros(m + 1, dtype=np.int32)
        f_row = np.full(m + 1, neg_inf, dtype=np.int32)
        e = neg_inf
        row_scores = table[codes_a[i - 1], codes_b]
        for j in range(1, m + 1):
            diag = h_prev[j - 1] + row_scores[j - 1]
            if mode == "ungapped":
                h = diag if diag > 0 else 0
                ptr = _DIAG if h > 0 else _STOP
            else:
                e_extend = e - gap_extend
                e_open = h_row[j - 1] - gap_open - gap_extend
                e = max(e_extend, e_open)
                f_extend = f_prev[j] - gap_extend
                f_open = h_prev[j] - gap_open - gap_extend
                f = max(f_extend, f_open)
                f_row[j] = f
                h = max(0, diag, e, f)
                if h == 0:
                    ptr = _STOP
                elif h == diag:
                    ptr = _DIAG
                elif h == e:
                    ptr = _LEFT
                else:
                    ptr = _UP
                if traceback:
                    ptr_e[i, j] = 1 if e_extend >= e_open else 0
                    ptr_f[i, j] = 1 if f_extend >= f_open else 0
            h_row[j] = h
            if traceback:
                ptr_h[i, j] = ptr
            if h > best:
                best = int(h)
                best_pos = (i, j)
        h_prev = h_row
        f_prev = f_row

    if not traceback:
        i, j = best_pos
        return LocalAlignment(best, 0, i, 0, j)
    return _traceback(a, b, ptr_h, ptr_e, ptr_f, best, best_pos)


def _traceback(
    a: str,
    b: str,
    ptr_h: np.ndarray,
    ptr_e: np.ndarray,
    ptr_f: np.ndarray,
    best: int,
    best_pos: Tuple[int, int],
) -> LocalAlignment:
    """Walk the three-state (H/E/F) pointer planes from the best cell."""
    i, j = best_pos
    end_a, end_b = i, j
    out_a = []
    out_b = []
    state = "H"
    while i > 0 and j > 0:
        if state == "H":
            ptr = ptr_h[i, j]
            if ptr == _STOP:
                break
            if ptr == _DIAG:
                out_a.append(a[i - 1])
                out_b.append(b[j - 1])
                i -= 1
                j -= 1
            elif ptr == _LEFT:
                state = "E"
            else:
                state = "F"
        elif state == "E":
            # Gap in A, consuming b[j-1]; continue the run or close into H.
            out_a.append("-")
            out_b.append(b[j - 1])
            continues = ptr_e[i, j]
            j -= 1
            if not continues:
                state = "H"
        else:  # state == "F"
            out_a.append(a[i - 1])
            out_b.append("-")
            continues = ptr_f[i, j]
            i -= 1
            if not continues:
                state = "H"
    return LocalAlignment(
        score=best,
        a_start=i,
        a_end=end_a,
        b_start=j,
        b_end=end_b,
        aligned_a="".join(reversed(out_a)),
        aligned_b="".join(reversed(out_b)),
    )


def sw_score(a: str, b: str, scoring=None, *, mode: str = "affine") -> int:
    """Score-only Smith-Waterman (no pointer matrices)."""
    return smith_waterman(a, b, scoring, mode=mode, traceback=False).score


def smith_waterman_banded(
    a: str,
    b: str,
    scoring=None,
    *,
    band: int = 16,
    diagonal: int = 0,
    mode: str = "affine",
) -> int:
    """Score-only banded Smith-Waterman.

    Restricts the DP to cells with ``|(j - i) - diagonal| <= band`` — the
    standard trick when a seed fixes the alignment's diagonal (the TBLASTN
    gapped stage, or rescoring a FabP hit whose position pins the
    diagonal).  Runs in ``O(len(a) * band)``; with a band covering the whole
    matrix it equals the full :func:`sw_score`.
    """
    a = str(a)
    b = str(b)
    if band < 0:
        raise ValueError("band must be non-negative")
    if scoring is None:
        scoring = _default_scoring(a, b)
    if mode not in ("affine", "linear", "ungapped"):
        raise ValueError(f"unknown mode {mode!r}")
    if not a or not b:
        return 0
    codes_a = scoring.encode(a)
    codes_b = scoring.encode(b)
    table = scoring.table
    gap_open = scoring.gap.open if mode == "affine" else 0
    gap_extend = scoring.gap.extend

    n, m = len(a), len(b)
    neg_inf = -(10**9)
    h_prev = {0: 0}
    f_prev: dict = {}
    # Virtual row-0 cells inside the band score 0 (local alignment).
    for j in range(max(1, diagonal - band), min(m, diagonal + band) + 1):
        h_prev[j] = 0
    best = 0
    for i in range(1, n + 1):
        j_lo = max(1, i + diagonal - band)
        j_hi = min(m, i + diagonal + band)
        if j_lo > j_hi:
            h_prev, f_prev = {}, {}
            continue
        h_row: dict = {}
        f_row: dict = {}
        e = neg_inf
        for j in range(j_lo, j_hi + 1):
            # Out-of-band predecessors read 0: equivalent to starting a new
            # local alignment at this cell, which is always legal.
            diag = h_prev.get(j - 1, 0) + int(table[codes_a[i - 1], codes_b[j - 1]])
            if mode == "ungapped":
                h = diag if diag > 0 else 0
            else:
                e = max(e - gap_extend, h_row.get(j - 1, neg_inf) - gap_open - gap_extend)
                f = max(
                    f_prev.get(j, neg_inf) - gap_extend,
                    h_prev.get(j, neg_inf) - gap_open - gap_extend,
                )
                f_row[j] = f
                h = max(0, diag, e, f)
            h_row[j] = h
            if h > best:
                best = h
        h_prev, f_prev = h_row, f_row
    return best


def ungapped_extend(
    a: str,
    b: str,
    a_pos: int,
    b_pos: int,
    seed_len: int,
    scoring,
    *,
    x_drop: int = 16,
) -> Tuple[int, int, int]:
    """BLAST-style X-drop ungapped extension around a seed match.

    Extends the seed ``a[a_pos : a_pos + seed_len] ~ b[b_pos : ...]`` in
    both directions, abandoning a direction when the running score falls
    ``x_drop`` below its maximum.  Returns ``(score, a_start, a_end)`` of
    the best-scoring extension (coordinates into ``a``; the ``b`` range has
    the same length at offset ``b_pos - a_pos``).
    """
    if seed_len <= 0:
        raise ValueError("seed length must be positive")
    score = 0
    for k in range(seed_len):
        score += scoring.score(a[a_pos + k], b[b_pos + k])
    best = score
    # Right extension.
    best_right = a_pos + seed_len
    run = score
    i, j = a_pos + seed_len, b_pos + seed_len
    while i < len(a) and j < len(b):
        run += scoring.score(a[i], b[j])
        if run > best:
            best = run
            best_right = i + 1
        if run <= best - x_drop:
            break
        i += 1
        j += 1
    # Left extension.
    best_left = a_pos
    run = best
    i, j = a_pos - 1, b_pos - 1
    while i >= 0 and j >= 0:
        run += scoring.score(a[i], b[j])
        if run > best:
            best = run
            best_left = i
        if run <= best - x_drop:
            break
        i -= 1
        j -= 1
    return best, best_left, best_right
