"""BLAST-style k-mer neighborhood index over a protein query.

BLAST's seeding stage (§II of the paper) puts every query k-mer — plus its
*neighborhood*: all words scoring at least ``threshold`` against it under
the substitution matrix — into a hash table, then streams database words
through the table.  The hash probes are random accesses, which the paper
identifies as the CPU pipeline's bottleneck; our performance model charges
for them and this module implements them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

from repro.baselines.scoring import ProteinScoring
from repro.seq import alphabet


@dataclass(frozen=True)
class WordHit:
    """One seeding event: a subject word matched a query k-mer neighborhood."""

    query_pos: int
    subject_pos: int
    word: str

    @property
    def diagonal(self) -> int:
        """Subject minus query position — BLAST groups hits per diagonal."""
        return self.subject_pos - self.query_pos


class KmerIndex:
    """Neighborhood word table for one protein query.

    ``k`` and ``threshold`` default to NCBI TBLASTN's word size 3 and a
    neighborhood threshold in its usual range (T=13 keeps tables small; we
    default slightly lower for sensitivity on short synthetic queries).
    """

    def __init__(
        self,
        query: str,
        *,
        k: int = 3,
        threshold: int = 11,
        scoring: ProteinScoring = None,
    ):
        if k < 1:
            raise ValueError("k must be positive")
        query = str(query)
        if len(query) < k:
            raise ValueError(f"query shorter than word size {k}")
        self.query = query
        self.k = k
        self.threshold = threshold
        self.scoring = scoring if scoring is not None else ProteinScoring()
        self._table: Dict[str, List[int]] = {}
        self._build()

    def _build(self) -> None:
        # Exact-word self scores first; prune neighborhood enumeration by
        # best-remaining bound to keep the 20^k expansion tractable.
        residues = alphabet.AMINO_ACIDS
        score = self.scoring.score
        for pos in range(len(self.query) - self.k + 1):
            word = self.query[pos : pos + self.k]
            if "*" in word:
                continue  # stops never seed
            # Per-position score ceilings for pruning.
            ceilings = []
            for wc in word:
                ceilings.append(max(score(wc, r) for r in residues))
            suffix_best = [0] * (self.k + 1)
            for i in range(self.k - 1, -1, -1):
                suffix_best[i] = suffix_best[i + 1] + ceilings[i]
            self._expand(word, pos, 0, 0, [], suffix_best)

    def _expand(
        self,
        word: str,
        pos: int,
        depth: int,
        running: int,
        prefix: List[str],
        suffix_best: List[int],
    ) -> None:
        if depth == self.k:
            if running >= self.threshold:
                self._table.setdefault("".join(prefix), []).append(pos)
            return
        for residue in alphabet.AMINO_ACIDS:
            gained = self.scoring.score(word[depth], residue)
            if running + gained + suffix_best[depth + 1] < self.threshold:
                continue
            prefix.append(residue)
            self._expand(word, pos, depth + 1, running + gained, prefix, suffix_best)
            prefix.pop()

    def __len__(self) -> int:
        """Number of distinct neighborhood words."""
        return len(self._table)

    def lookup(self, word: str) -> List[int]:
        """Query positions whose neighborhood contains ``word``."""
        return self._table.get(word, [])

    def scan(self, subject: str) -> Iterator[WordHit]:
        """Stream a subject protein through the table, yielding word hits.

        Yields one :class:`WordHit` per (subject word, matching query
        position) pair — exactly the random-access probe stream the paper's
        CPU bottleneck argument is about.
        """
        k = self.k
        table = self._table
        for j in range(len(subject) - k + 1):
            word = subject[j : j + k]
            positions = table.get(word)
            if positions:
                for pos in positions:
                    yield WordHit(query_pos=pos, subject_pos=j, word=word)

    def stats(self) -> Dict[str, int]:
        """Table statistics (used by the performance-model cross-check)."""
        return {
            "words": len(self._table),
            "entries": sum(len(v) for v in self._table.values()),
            "query_kmers": len(self.query) - self.k + 1,
        }
