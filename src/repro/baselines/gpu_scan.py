"""Functional SIMT execution model of the paper's CUDA baseline.

The paper compares against "our highly optimized GPU implementation ...
written in CUDA" running the same substitution-only scan.  This module
implements that kernel as a functional simulation with an explicit
execution model, the GPU analogue of :class:`repro.accel.FabPKernel`:

* the reference is tiled across thread blocks; each block stages its tile
  (plus a query-length halo) in shared memory;
* each thread computes one alignment position per grid-stride iteration,
  looping over the encoded query's per-element lookup tables;
* hits are emitted with an atomic counter into a global result buffer.

Functionally it produces **exactly** the golden aligner's hits.  On top it
accounts instructions, global-memory traffic and occupancy, from which it
estimates execution time; a test pins this estimate to the closed-form
model in :mod:`repro.perf.gpu` (same machine constants, two derivations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core import comparator as cmp
from repro.core.aligner import Hit, resolve_threshold
from repro.core.encoding import EncodedQuery, encode_query
from repro.perf.platforms import GTX_1080TI, GpuSpec
from repro.seq import packing
from repro.seq.sequence import as_rna

#: SASS instructions per element comparison in the optimized inner loop
#: (bit-sliced LOP3 + add; Pascal dual-issues).  ``ISSUE_RATE /
#: INSTRUCTIONS_PER_COMPARISON`` must equal the closed-form model's
#: ``comparisons_per_core_cycle`` (1.37) — a test enforces the identity.
INSTRUCTIONS_PER_COMPARISON = 2.92
ISSUE_RATE = 4.0

#: Per-position loop overhead (index math, score init, threshold test).
OVERHEAD_INSTRUCTIONS_PER_POSITION = 12.0


@dataclass(frozen=True)
class GpuLaunchConfig:
    """CUDA launch geometry for the scan kernel."""

    threads_per_block: int = 256
    positions_per_thread: int = 4

    @property
    def tile_positions(self) -> int:
        return self.threads_per_block * self.positions_per_thread

    def blocks_for(self, num_positions: int) -> int:
        if num_positions <= 0:
            return 0
        return -(-num_positions // self.tile_positions)


@dataclass(frozen=True)
class GpuScanResult:
    """Hits + execution statistics for one kernel launch."""

    query: EncodedQuery
    threshold: int
    hits: Tuple[Hit, ...]
    blocks: int
    instructions: int
    global_bytes: int
    shared_bytes_per_block: int
    estimated_seconds: float

    def __str__(self) -> str:
        return (
            f"GpuScanResult({len(self.hits)} hits, {self.blocks} blocks, "
            f"{self.instructions / 1e6:.1f} Minstr, "
            f"{self.estimated_seconds * 1e3:.2f} ms est.)"
        )


class GpuScanKernel:
    """The CUDA scan for one encoded query on one GPU."""

    def __init__(
        self,
        query,
        *,
        gpu: GpuSpec = GTX_1080TI,
        config: Optional[GpuLaunchConfig] = None,
        threshold: Optional[int] = None,
        min_identity: Optional[float] = None,
    ):
        self.query = query if isinstance(query, EncodedQuery) else encode_query(query)
        self.gpu = gpu
        self.config = config if config is not None else GpuLaunchConfig()
        self.threshold = resolve_threshold(self.query, threshold, min_identity)
        self._tables, self._configs = cmp.instruction_tables(self.query.as_array())

    def run(self, reference) -> GpuScanResult:
        """Launch the (simulated) kernel over one reference."""
        codes = self._codes(reference)
        num_elements = len(self.query)
        num_positions = max(0, codes.size - num_elements + 1)
        blocks = self.config.blocks_for(num_positions)

        # --- functional execution: block by block over shared-memory tiles.
        hits: List[Hit] = []
        tile = self.config.tile_positions
        for block in range(blocks):
            start = block * tile
            count = min(tile, num_positions - start)
            # The staged tile: tile positions + halo of E-1 (+2 look-back).
            lo = max(0, start - 2)
            hi = min(codes.size, start + count + num_elements - 1)
            stage = codes[lo:hi]
            scores = self._tile_scores(stage, start - lo, count)
            for index in np.nonzero(scores >= self.threshold)[0]:
                hits.append(Hit(start + int(index), int(scores[index])))

        # --- execution statistics.
        comparisons = num_positions * num_elements
        instructions = int(
            comparisons * INSTRUCTIONS_PER_COMPARISON
            + num_positions * OVERHEAD_INSTRUCTIONS_PER_POSITION
        )
        halo = num_elements - 1 + 2
        global_bytes = blocks * packing.packed_size_bytes(tile + halo)
        shared_bytes = packing.packed_size_bytes(tile + halo)
        compute_seconds = instructions / (
            self.gpu.cuda_cores * self.gpu.clock_ghz * 1e9 * ISSUE_RATE
        )
        memory_seconds = global_bytes / self.gpu.memory_bandwidth
        estimated = max(compute_seconds, memory_seconds) + self.gpu.launch_overhead_s
        return GpuScanResult(
            query=self.query,
            threshold=self.threshold,
            hits=tuple(hits),
            blocks=blocks,
            instructions=instructions,
            global_bytes=global_bytes,
            shared_bytes_per_block=shared_bytes,
            estimated_seconds=estimated,
        )

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _codes(reference) -> np.ndarray:
        if isinstance(reference, np.ndarray):
            return np.asarray(reference, dtype=np.uint8)
        return packing.codes_from_text(as_rna(reference).letters)

    def _tile_scores(
        self, stage: np.ndarray, offset: int, count: int
    ) -> np.ndarray:
        """Score ``count`` consecutive positions from a staged tile.

        ``offset`` is the in-tile index of the first position.  Same
        semantics as the golden aligner: look-back past the staged data
        reads as code 0 (only reachable at the reference head, where it is
        correct by convention).
        """
        length = stage.size
        prev1 = np.zeros(length, dtype=np.uint8)
        prev2 = np.zeros(length, dtype=np.uint8)
        if length > 1:
            prev1[1:] = stage[:-1]
        if length > 2:
            prev2[2:] = stage[:-2]
        x_rows = np.zeros((4, length), dtype=np.uint8)
        x_rows[1] = (prev1 >> 1) & 1
        x_rows[2] = prev2 & 1
        x_rows[3] = (prev2 >> 1) & 1
        instructions = self.query.as_array()
        scores = np.zeros(count, dtype=np.int32)
        for i in range(len(self.query)):
            window = stage[offset + i : offset + i + count]
            config = int(self._configs[i])
            if config == 0:
                x = (int(instructions[i]) >> 3) & 1
                scores += self._tables[i, x, window]
            else:
                bits = x_rows[config, offset + i : offset + i + count]
                scores += self._tables[i, bits, window]
        return scores
