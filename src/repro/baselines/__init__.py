"""Baseline aligners the paper compares FabP against.

* :mod:`repro.baselines.smith_waterman` — optimal DP local alignment
  (linear/affine/ungapped), the accuracy ground truth;
* :mod:`repro.baselines.tblastn` — a from-scratch TBLASTN-like pipeline
  (six-frame translation, k-mer neighborhood seeding, two-hit filter,
  X-drop and gapped extension);
* :mod:`repro.baselines.scoring` — BLOSUM62 and nucleotide scoring.
"""

from repro.baselines.kmer_index import KmerIndex, WordHit
from repro.baselines.scoring import (
    BLOSUM62,
    GapPenalty,
    NucleotideScoring,
    ProteinScoring,
)
from repro.baselines.smith_waterman import (
    LocalAlignment,
    smith_waterman,
    sw_score,
    ungapped_extend,
)
from repro.baselines.tblastn import (
    Tblastn,
    TblastnHsp,
    TblastnParams,
    TblastnResult,
    tblastn_search,
)

__all__ = [
    "BLOSUM62",
    "GapPenalty",
    "KmerIndex",
    "LocalAlignment",
    "NucleotideScoring",
    "ProteinScoring",
    "Tblastn",
    "TblastnHsp",
    "TblastnParams",
    "TblastnResult",
    "WordHit",
    "smith_waterman",
    "sw_score",
    "tblastn_search",
    "ungapped_extend",
]
