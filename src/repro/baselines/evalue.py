"""Karlin-Altschul statistics: E-values and bit scores for HSPs.

BLAST-family tools (including the TBLASTN the paper benchmarks) rank hits
by *E-value* — the expected number of alignments of at least a given score
between random sequences of the search dimensions:

    E = K * m * n * exp(-lambda * S)

``lambda`` is the unique positive root of  sum_ij p_i p_j e^{lambda s_ij}
= 1  over the scoring matrix and background composition; ``K`` is a
scale factor for which closed forms are impractical (NCBI computes it
numerically; we solve lambda exactly and default K to the published
ungapped BLOSUM62 value, overridable).

This completes the TBLASTN baseline: HSPs can be ranked and thresholded
the way the real tool's users do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.baselines.scoring import ProteinScoring
from repro.seq.generate import UNIPROT_AA_FREQUENCIES

#: Published NCBI value of K for ungapped BLOSUM62 / standard composition.
BLOSUM62_UNGAPPED_K = 0.134

#: Published NCBI lambda for the same regime (used to validate our solver).
BLOSUM62_UNGAPPED_LAMBDA = 0.3176


class StatisticsError(ValueError):
    """Raised when no valid lambda exists (non-negative expected score)."""


def expected_score(
    scoring: Optional[ProteinScoring] = None,
    frequencies: Optional[Dict[str, float]] = None,
) -> float:
    """Mean per-column score under the background composition.

    Karlin-Altschul theory requires this to be negative (otherwise long
    random alignments score arbitrarily high and E-values are undefined).
    """
    scoring = scoring if scoring is not None else ProteinScoring()
    frequencies = frequencies if frequencies is not None else UNIPROT_AA_FREQUENCIES
    total = 0.0
    for a, pa in frequencies.items():
        for b, pb in frequencies.items():
            total += pa * pb * scoring.score(a, b)
    return total


def solve_lambda(
    scoring: Optional[ProteinScoring] = None,
    frequencies: Optional[Dict[str, float]] = None,
    *,
    tolerance: float = 1e-10,
) -> float:
    """Solve for the Karlin-Altschul lambda by bisection.

    ``phi(x) = sum p_i p_j exp(x * s_ij) - 1`` satisfies ``phi(0) = 0``,
    ``phi'(0) = E[s] < 0`` and ``phi -> inf``, so exactly one positive root
    exists when the expected score is negative.
    """
    scoring = scoring if scoring is not None else ProteinScoring()
    frequencies = frequencies if frequencies is not None else UNIPROT_AA_FREQUENCIES
    if expected_score(scoring, frequencies) >= 0:
        raise StatisticsError(
            "expected per-column score is non-negative; Karlin-Altschul "
            "statistics are undefined for this matrix/composition"
        )
    pairs = [
        (pa * pb, scoring.score(a, b))
        for a, pa in frequencies.items()
        for b, pb in frequencies.items()
    ]

    def phi(x: float) -> float:
        return sum(w * math.exp(x * s) for w, s in pairs) - 1.0

    low, high = 0.0, 1.0
    while phi(high) < 0:
        high *= 2
        if high > 64:
            raise StatisticsError("lambda search diverged")
    # Bisection: phi(low+) < 0 < phi(high).
    for _ in range(200):
        mid = 0.5 * (low + high)
        if high - low < tolerance:
            break
        if phi(mid) < 0:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def relative_entropy(
    scoring: Optional[ProteinScoring] = None,
    frequencies: Optional[Dict[str, float]] = None,
) -> float:
    """H, the relative entropy of the target vs background distribution
    (bits of information per aligned column; NCBI reports this as 'H')."""
    scoring = scoring if scoring is not None else ProteinScoring()
    frequencies = frequencies if frequencies is not None else UNIPROT_AA_FREQUENCIES
    lam = solve_lambda(scoring, frequencies)
    total = 0.0
    for a, pa in frequencies.items():
        for b, pb in frequencies.items():
            s = scoring.score(a, b)
            q = pa * pb * math.exp(lam * s)
            total += q * lam * s
    return total / math.log(2)


@dataclass(frozen=True)
class KarlinAltschulParams:
    """The (lambda, K, H) triple for one scoring regime."""

    lam: float
    k: float
    h: float

    def bit_score(self, raw_score: float) -> float:
        """Normalized (bit) score: S' = (lambda*S - ln K) / ln 2."""
        return (self.lam * raw_score - math.log(self.k)) / math.log(2)

    def evalue(self, raw_score: float, query_len: int, database_len: int) -> float:
        """Expected random hits of at least ``raw_score`` in an m x n search."""
        if query_len <= 0 or database_len <= 0:
            raise ValueError("search space dimensions must be positive")
        return self.k * query_len * database_len * math.exp(-self.lam * raw_score)

    def pvalue(self, raw_score: float, query_len: int, database_len: int) -> float:
        """P(at least one hit >= score) = 1 - exp(-E)."""
        return -math.expm1(-self.evalue(raw_score, query_len, database_len))

    def score_for_evalue(
        self, evalue: float, query_len: int, database_len: int
    ) -> int:
        """Smallest raw score whose E-value is at most ``evalue``."""
        if evalue <= 0:
            raise ValueError("target E-value must be positive")
        raw = math.log(self.k * query_len * database_len / evalue) / self.lam
        return max(0, math.ceil(raw))


def default_protein_params(
    scoring: Optional[ProteinScoring] = None,
    frequencies: Optional[Dict[str, float]] = None,
    *,
    k: float = BLOSUM62_UNGAPPED_K,
) -> KarlinAltschulParams:
    """Build the parameter triple for (by default) ungapped BLOSUM62.

    Lambda and H are solved exactly for the given matrix/composition; K
    defaults to the published BLOSUM62 value and should be overridden when
    a different matrix is used.
    """
    lam = solve_lambda(scoring, frequencies)
    h = relative_entropy(scoring, frequencies)
    return KarlinAltschulParams(lam=lam, k=k, h=h)


def rank_hsps(hsps, query_len: int, database_len: int, params=None):
    """Annotate TBLASTN HSPs with E-values; returns ``[(hsp, evalue)]``
    sorted best (smallest E) first."""
    params = params if params is not None else default_protein_params()
    annotated = [
        (hsp, params.evalue(hsp.score, query_len, database_len)) for hsp in hsps
    ]
    return sorted(annotated, key=lambda pair: pair[1])
