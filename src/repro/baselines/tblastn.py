"""A from-scratch TBLASTN-like pipeline (the paper's CPU baseline).

NCBI TBLASTN aligns a *protein* query against a *nucleotide* database by
translating every subject in all six reading frames and running the protein
BLAST pipeline against the translations.  This module implements that
pipeline end to end:

1. **six-frame translation** of each reference (:mod:`repro.seq.translate`);
2. **seeding** — k-mer neighborhood word hits (:class:`KmerIndex`);
3. **two-hit filtering** — a diagonal must collect two non-overlapping word
   hits within a window before extension is attempted (BLAST's default
   strategy; cuts extension work by an order of magnitude);
4. **ungapped X-drop extension** around the second hit;
5. **gapped Smith-Waterman rescoring** of extensions that clear the
   trigger score, in a band around the ungapped HSP;
6. hit reporting with nucleotide coordinates mapped back through the frame.

This gives the reproduction a semantically faithful heuristic baseline: it
finds (approximately) the same homologies FabP does, with the algorithmic
structure whose random-access seeding behaviour the paper contrasts with
FabP's sequential streaming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.kmer_index import KmerIndex, WordHit
from repro.baselines.scoring import ProteinScoring
from repro.baselines.smith_waterman import smith_waterman, ungapped_extend
from repro.seq.sequence import as_protein, as_rna
from repro.seq.translate import frame_to_nucleotide, translate_six_frames


@dataclass(frozen=True)
class TblastnHsp:
    """A high-scoring segment pair from the TBLASTN pipeline."""

    reference_name: str
    frame: int
    #: Protein-coordinate range in the translated frame.
    subject_start: int
    subject_end: int
    #: Query protein range.
    query_start: int
    query_end: int
    ungapped_score: int
    gapped_score: int
    identity: float
    #: Forward-strand nucleotide coordinate where the HSP begins.
    nucleotide_start: int

    @property
    def score(self) -> int:
        return max(self.gapped_score, self.ungapped_score)

    def __str__(self) -> str:
        return (
            f"HSP(frame={self.frame}, nt={self.nucleotide_start}, "
            f"score={self.score}, id={self.identity:.0%})"
        )


@dataclass(frozen=True)
class TblastnResult:
    """All HSPs for one query against one reference."""

    reference_name: str
    hsps: Tuple[TblastnHsp, ...]
    #: Pipeline work counters (feed the performance-model cross-check).
    word_hits: int
    two_hit_seeds: int
    ungapped_extensions: int
    gapped_extensions: int

    @property
    def best(self) -> Optional[TblastnHsp]:
        return max(self.hsps, key=lambda h: h.score, default=None)

    def ranked_by_evalue(self, query_length: int, database_length: int, params=None):
        """HSPs annotated with Karlin-Altschul E-values, most significant
        first — the ranking NCBI TBLASTN users actually see.

        ``database_length`` is in nucleotides (converted to translated
        residues internally, matching the search space the pipeline scans).
        """
        from repro.baselines.evalue import rank_hsps

        # Six frames of length ~n/3 each: 2n translated residues.
        translated_residues = max(1, 2 * database_length)
        return rank_hsps(self.hsps, query_length, translated_residues, params)


@dataclass
class TblastnParams:
    """Pipeline knobs, NCBI-flavored defaults scaled for synthetic data."""

    k: int = 3
    neighborhood_threshold: int = 11
    two_hit_window: int = 40
    x_drop: int = 16
    gapped_trigger: int = 22
    #: Band half-width (residues) around the ungapped HSP for gapped SW.
    gapped_pad: int = 24
    #: Report HSPs at or above this gapped score.
    min_score: int = 30
    #: Use the two-hit heuristic (disable for maximum sensitivity).
    two_hit: bool = True


class Tblastn:
    """A reusable searcher: index once per query, scan many references."""

    def __init__(
        self,
        query,
        params: Optional[TblastnParams] = None,
        scoring: Optional[ProteinScoring] = None,
    ):
        self.query = as_protein(query).letters
        self.params = params if params is not None else TblastnParams()
        self.scoring = scoring if scoring is not None else ProteinScoring()
        self.index = KmerIndex(
            self.query,
            k=self.params.k,
            threshold=self.params.neighborhood_threshold,
            scoring=self.scoring,
        )

    def search(self, reference) -> TblastnResult:
        """Run the full pipeline against one nucleotide reference."""
        rna = as_rna(reference)
        params = self.params
        hsps: List[TblastnHsp] = []
        word_hits = 0
        seeds = 0
        ungapped_runs = 0
        gapped_runs = 0
        for frame, protein in translate_six_frames(rna):
            subject = protein.letters
            if len(subject) < params.k:
                continue
            last_hit_on_diag: Dict[int, int] = {}
            extended: Dict[int, int] = {}  # diagonal -> subject end covered
            for hit in self.index.scan(subject):
                word_hits += 1
                if not self._seed_accepted(hit, last_hit_on_diag, extended):
                    continue
                seeds += 1
                ungapped_runs += 1
                hsp = self._extend(hit, subject, frame, rna, params)
                if hsp is None:
                    continue
                if hsp.gapped_score != hsp.ungapped_score:
                    gapped_runs += 1
                extended[hit.diagonal] = hsp.subject_end
                if hsp.score >= params.min_score:
                    hsps.append(hsp)
        unique = _deduplicate(hsps)
        return TblastnResult(
            reference_name=rna.name,
            hsps=tuple(sorted(unique, key=lambda h: -h.score)),
            word_hits=word_hits,
            two_hit_seeds=seeds,
            ungapped_extensions=ungapped_runs,
            gapped_extensions=gapped_runs,
        )

    def search_database(self, references: Sequence) -> List[TblastnResult]:
        """Scan a whole database; results in input order."""
        return [self.search(reference) for reference in references]

    # -- internals ------------------------------------------------------------

    def _seed_accepted(
        self,
        hit: WordHit,
        last_hit_on_diag: Dict[int, int],
        extended: Dict[int, int],
    ) -> bool:
        """Apply the two-hit criterion and skip already-extended diagonals."""
        diagonal = hit.diagonal
        covered_to = extended.get(diagonal)
        if covered_to is not None and hit.subject_pos < covered_to:
            return False
        if not self.params.two_hit:
            return True
        previous = last_hit_on_diag.get(diagonal)
        if previous is None:
            last_hit_on_diag[diagonal] = hit.subject_pos
            return False
        distance = hit.subject_pos - previous
        if distance < self.params.k:
            # Overlaps the stored hit; keep the older one (NCBI behaviour) so
            # a later non-overlapping word can still pair with it.
            return False
        last_hit_on_diag[diagonal] = hit.subject_pos
        return distance <= self.params.two_hit_window

    def _extend(
        self,
        hit: WordHit,
        subject: str,
        frame: int,
        rna,
        params: TblastnParams,
    ) -> Optional[TblastnHsp]:
        score, q_start, q_end = ungapped_extend(
            self.query,
            subject,
            hit.query_pos,
            hit.subject_pos,
            params.k,
            self.scoring,
            x_drop=params.x_drop,
        )
        diagonal = hit.diagonal
        s_start, s_end = q_start + diagonal, q_end + diagonal
        gapped_score = score
        identity = 0.0
        if score >= params.gapped_trigger:
            pad = params.gapped_pad
            window_q = self.query[max(0, q_start - pad) : q_end + pad]
            window_s = subject[max(0, s_start - pad) : s_end + pad]
            alignment = smith_waterman(window_q, window_s, self.scoring)
            gapped_score = max(gapped_score, alignment.score)
            identity = alignment.identity
        elif q_end > q_start:
            same = sum(
                1
                for qq, ss in zip(self.query[q_start:q_end], subject[s_start:s_end])
                if qq == ss
            )
            identity = same / (q_end - q_start)
        if max(score, gapped_score) < min(params.gapped_trigger, params.min_score):
            return None
        return TblastnHsp(
            reference_name=getattr(rna, "name", ""),
            frame=frame,
            subject_start=s_start,
            subject_end=s_end,
            query_start=q_start,
            query_end=q_end,
            ungapped_score=score,
            gapped_score=gapped_score,
            identity=identity,
            nucleotide_start=frame_to_nucleotide(frame, s_start, len(rna.letters)),
        )


def _deduplicate(hsps: List[TblastnHsp]) -> List[TblastnHsp]:
    """Collapse HSPs that cover the same (frame, subject range) region."""
    best: Dict[Tuple[int, int], TblastnHsp] = {}
    for hsp in hsps:
        key = (hsp.frame, hsp.subject_start)
        kept = best.get(key)
        if kept is None or hsp.score > kept.score:
            best[key] = hsp
    return list(best.values())


def tblastn_search(query, reference, **params) -> TblastnResult:
    """One-call convenience: search one reference with default params."""
    options = TblastnParams(**params) if params else None
    return Tblastn(query, options).search(reference)
