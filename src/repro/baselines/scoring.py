"""Scoring schemes for the baseline aligners.

* :data:`BLOSUM62` — the standard protein substitution matrix (the default
  of NCBI BLASTP/TBLASTN, which the paper benchmarks against);
* :class:`NucleotideScoring` / :class:`ProteinScoring` — match/mismatch and
  matrix-based scorers with affine gap penalties, shared by the
  Smith-Waterman implementations and the TBLASTN extension stages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.seq import alphabet

#: The standard BLOSUM62 matrix, NCBI ordering, including * (stop) rows.
_BLOSUM62_ALPHABET = "ARNDCQEGHILKMFPSTWYV*"
_BLOSUM62_ROWS = """
 4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0 -4
-1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3 -4
-2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3 -4
-2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3 -4
 0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1 -4
-1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2 -4
-1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2 -4
 0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3 -4
-2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3 -4
-1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3 -4
-1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1 -4
-1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2 -4
-1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1 -4
-2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1 -4
-1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2 -4
 1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2 -4
 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0 -4
-3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3 -4
-2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1 -4
 0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4 -4
-4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4  1
"""


def _parse_blosum() -> Dict[Tuple[str, str], int]:
    matrix: Dict[Tuple[str, str], int] = {}
    rows = [line.split() for line in _BLOSUM62_ROWS.strip().splitlines()]
    for i, row in enumerate(rows):
        for j, value in enumerate(row):
            matrix[(_BLOSUM62_ALPHABET[i], _BLOSUM62_ALPHABET[j])] = int(value)
    return matrix


#: ``BLOSUM62[(a, b)]`` — substitution score of residues a, b.
BLOSUM62: Dict[Tuple[str, str], int] = _parse_blosum()


@dataclass(frozen=True)
class GapPenalty:
    """Affine gap penalty: ``open + extend * length`` (positive costs)."""

    open: int = 11
    extend: int = 1

    def __post_init__(self) -> None:
        if self.open < 0 or self.extend < 0:
            raise ValueError("gap penalties are costs and must be non-negative")

    def cost(self, length: int) -> int:
        if length <= 0:
            return 0
        return self.open + self.extend * length


class ProteinScoring:
    """Matrix-based protein scorer (defaults: BLOSUM62, BLAST gap costs)."""

    def __init__(
        self,
        matrix: Dict[Tuple[str, str], int] = BLOSUM62,
        gap: GapPenalty = GapPenalty(11, 1),
    ):
        self.matrix = matrix
        self.gap = gap
        letters = alphabet.AMINO_ACIDS_WITH_STOP
        self._index = {aa: i for i, aa in enumerate(letters)}
        size = len(letters)
        self._table = np.zeros((size, size), dtype=np.int32)
        for a, i in self._index.items():
            for b, j in self._index.items():
                self._table[i, j] = matrix.get((a, b), matrix.get((b, a), -4))

    def score(self, a: str, b: str) -> int:
        """Substitution score of two residues."""
        return int(self._table[self._index[a], self._index[b]])

    def encode(self, sequence: str) -> np.ndarray:
        """Residues to matrix row indices (vectorized DP uses these)."""
        return np.array([self._index[aa] for aa in sequence], dtype=np.int16)

    @property
    def table(self) -> np.ndarray:
        return self._table


class NucleotideScoring:
    """Match/mismatch nucleotide scorer (BLASTN-style defaults)."""

    def __init__(self, match: int = 2, mismatch: int = -3, gap: GapPenalty = GapPenalty(5, 2)):
        if match <= 0:
            raise ValueError("match score must be positive")
        if mismatch >= 0:
            raise ValueError("mismatch score must be negative")
        self.match = match
        self.mismatch = mismatch
        self.gap = gap
        size = len(alphabet.RNA_NUCLEOTIDES)
        self._table = np.full((size, size), mismatch, dtype=np.int32)
        np.fill_diagonal(self._table, match)
        # Accept both RNA and DNA letters (T aliases U), so mixed inputs
        # from auto-detection or user files score sensibly.
        self._index = dict(alphabet.RNA_CODE)
        self._index.update(alphabet.DNA_CODE)

    def score(self, a: str, b: str) -> int:
        if a in self._index and b in self._index:
            return self.match if self._index[a] == self._index[b] else self.mismatch
        return self.match if a == b else self.mismatch

    def encode(self, sequence: str) -> np.ndarray:
        return np.array([self._index[nt] for nt in sequence], dtype=np.int16)

    @property
    def table(self) -> np.ndarray:
        return self._table
