"""Re-import structural Verilog emitted by :mod:`repro.rtl.verilog`.

Closes the export loop: a netlist written with :func:`to_verilog` can be
parsed back into a :class:`~repro.rtl.netlist.Netlist` and re-simulated,
and the round trip is proven bit-identical by the test suite — the same
guarantee a hardware team gets from reading a synthesized netlist back
into their verification environment.

Scope: exactly the subset the exporter produces — flat module, `input
wire`/`output wire` ports, `wire` declarations, `assign` bindings, and
``LUT6`` / ``LUT6_2`` / ``FDRE`` instances with INIT parameters.  Anything
else raises :class:`VerilogParseError` loudly.
"""

from __future__ import annotations

import re
import os
from typing import Dict, List, Sequence, Tuple, Union

from repro.rtl.netlist import GND, VCC, Netlist


class VerilogParseError(ValueError):
    """Raised on constructs outside the exporter's subset."""


_MODULE_RE = re.compile(r"module\s+(\w+)\s*\(", re.S)
_PORT_RE = re.compile(r"(input|output)\s+wire\s+(\w+)")
_WIRE_RE = re.compile(r"^\s*wire\s+(n\d+)\s*;")
_ASSIGN_RE = re.compile(r"^\s*assign\s+(\S+)\s*=\s*(\S+)\s*;")
_INSTANCE_RE = re.compile(
    r"(LUT6_2|LUT6|FDRE)\s*#\(\.INIT\((\d+)'[hb]([0-9A-Fa-f]+)\)\)\s*(\w+)\s*\((.*?)\);",
    re.S,
)
_PIN_RE = re.compile(r"\.(\w+)\(([^()]*)\)")


def _statements(text: str) -> str:
    """Strip comments; return the body for regex passes."""
    lines = []
    for line in text.splitlines():
        stripped = line.split("//")[0]
        if stripped.strip():
            lines.append(stripped)
    return "\n".join(lines)


class _Importer:
    def __init__(self, text: str) -> None:
        self.text = _statements(text)
        self.netlist = Netlist()
        self._by_name: Dict[str, int] = {"1'b0": GND, "1'b1": VCC}
        self._output_bindings: List[Tuple[str, str]] = []

    def run(self) -> Netlist:
        match = _MODULE_RE.search(self.text)
        if not match:
            raise VerilogParseError("no module declaration found")
        self.netlist.name = match.group(1)
        header_end = self.text.index(");", match.start())
        header = self.text[match.start() : header_end]
        self._parse_ports(header)
        body = self.text[header_end:]
        self._parse_wires(body)
        self._parse_assigns(body)
        self._parse_instances(body)
        self._bind_outputs()
        return self.netlist

    # -- sections -------------------------------------------------------------

    def _parse_ports(self, header: str) -> None:
        for direction, name in _PORT_RE.findall(header):
            if name == "clk":
                continue
            if direction == "input":
                # Restore the exporter's bus flattening: bus_3 -> bus[3].
                net = self.netlist.add_input(self._unflatten(name))
                self._by_name[name] = net
            else:
                self._output_bindings.append((name, ""))  # resolved later

    def _parse_wires(self, body: str) -> None:
        for line in body.splitlines():
            match = _WIRE_RE.match(line)
            if match:
                name = match.group(1)
                handle = self.netlist.new_net(name)
                if name in self._by_name:
                    raise VerilogParseError(f"duplicate wire {name}")
                self._by_name[name] = handle

    def _parse_assigns(self, body: str) -> None:
        outputs = {name for name, _ in self._output_bindings}
        self._output_bindings = []
        for line in body.splitlines():
            if not line.strip().startswith("assign"):
                continue
            match = _ASSIGN_RE.match(line)
            if not match:
                raise VerilogParseError(f"unsupported assign: {line.strip()}")
            left, right = match.group(1), match.group(2)
            if left in outputs:
                self._output_bindings.append((left, right))
            elif left in self._by_name and right in self._by_name:
                # Input binding: the exporter emits `assign nX = port`.  The
                # wire nX was declared; alias it to the port's net instead
                # of modeling a buffer.
                self._alias(left, right)
            else:
                raise VerilogParseError(f"unsupported assign: {line.strip()}")

    def _alias(self, wire: str, source: str) -> None:
        self._by_name[wire] = self._by_name[source]

    def _parse_instances(self, body: str) -> None:
        for kind, width, init_hex, inst, pin_text in _INSTANCE_RE.findall(body):
            init = int(init_hex, 16)
            pins = dict(_PIN_RE.findall(pin_text))
            if kind == "LUT6":
                inputs = [self._resolve(pins.get(f"I{i}", "1'b0")) for i in range(6)]
                output = self._resolve(pins["O"])
                self.netlist.add_lut_driving(output, self._trim(inputs), init, inst)
            elif kind == "LUT6_2":
                inputs = [self._resolve(pins.get(f"I{i}", "1'b0")) for i in range(5)]
                o5 = self._resolve(pins["O5"])
                o6 = self._resolve(pins["O6"])
                init5 = init & 0xFFFFFFFF
                init6 = (init >> 32) & 0xFFFFFFFF
                self._add_lut62_driving(self._trim(inputs), o5, o6, init5, init6, inst)
            else:  # FDRE
                data = self._resolve(pins["D"])
                output = self._resolve(pins["Q"])
                self.netlist.add_ff_driving(output, data, init=init, name=inst)

    def _add_lut62_driving(
        self,
        inputs: Sequence[int],
        o5: int,
        o6: int,
        init5: int,
        init6: int,
        name: str,
    ) -> None:
        from repro.rtl.netlist import Lut6_2

        netlist = self.netlist
        for net in inputs:
            netlist._check_net(net)
        netlist._check_net(o5)
        netlist._check_net(o6)
        netlist._claim(o5, f"LUT6_2 {name}.O5")
        netlist._claim(o6, f"LUT6_2 {name}.O6")
        netlist.luts2.append(Lut6_2(tuple(inputs), o5, o6, init5, init6, name))

    @staticmethod
    def _trim(inputs: List[int]) -> List[int]:
        """Drop trailing GND padding the exporter added."""
        while inputs and inputs[-1] == GND:
            inputs.pop()
        return inputs

    def _resolve(self, token: str) -> int:
        token = token.strip()
        try:
            return self._by_name[token]
        except KeyError:
            raise VerilogParseError(f"unknown net {token!r}") from None

    def _bind_outputs(self) -> None:
        for port, source in self._output_bindings:
            self.netlist.set_output(self._unflatten(port), self._resolve(source))

    @staticmethod
    def _unflatten(name: str) -> str:
        """``bus_3`` -> ``bus[3]`` (inverse of the exporter's flattening)."""
        match = re.fullmatch(r"(.+)_(\d+)", name)
        if match:
            return f"{match.group(1)}[{match.group(2)}]"
        return name


def parse_verilog(text: str) -> Netlist:
    """Parse exporter-subset Verilog back into a netlist."""
    return _Importer(text).run()


def read_verilog(path: Union[str, "os.PathLike[str]"]) -> Netlist:
    """Parse a Verilog file written by :func:`repro.rtl.verilog.write_verilog`."""
    with open(path, "r", encoding="ascii") as handle:
        return parse_verilog(handle.read())
