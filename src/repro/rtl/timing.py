"""Static timing analysis for netlists: logic depth and fmax estimates.

The paper's 200 MHz operating point (12.8 GB/s over a 512-bit AXI) is only
achievable because the datapath is "deeply pipelined" — every pipeline
stage must be a few LUT levels at most.  This module measures that: the
combinational **logic depth** between sequential boundaries, carry-aware
**arrival times**, the critical path, and a first-order fmax estimate.

Delay model (documented constants, Kintex-7-class 28 nm fabric):

* a routed LUT6 level costs ~1.0 ns (0.25 ns logic + 0.75 ns routing);
* a carry hop — a fractured LUT6_2 full adder fed by the previous adder in
  the chain — costs ~0.12 ns (dedicated CARRY4-style routing), which is why
  ripple adders are fast despite their O(n) structural depth;
* sequential overhead (clk->Q + setup) ~0.6 ns.

Crude, but it ranks designs correctly and puts the paper-style pipelined
datapath comfortably above 200 MHz while flagging unpipelined wide
popcounts — the structural checks the test suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.rtl.netlist import Netlist

#: Routed LUT6 level delay, ns (logic + average routing).
LUT_LEVEL_NS = 1.0

#: Carry hop between adjacent fractured adders, ns.
CARRY_HOP_NS = 0.12

#: Clock-to-Q plus setup overhead, ns.
SEQUENTIAL_OVERHEAD_NS = 0.60


@dataclass(frozen=True)
class TimingReport:
    """Result of static timing analysis on one netlist."""

    netlist_name: str
    critical_depth: int  # structural LUT levels on the worst stage
    critical_ns: float  # carry-aware arrival time of the worst stage
    mean_depth: float
    endpoints: int

    @property
    def critical_path_ns(self) -> float:
        return SEQUENTIAL_OVERHEAD_NS + self.critical_ns

    @property
    def fmax_mhz(self) -> float:
        """First-order maximum clock frequency."""
        return 1000.0 / self.critical_path_ns

    def meets(self, clock_mhz: float) -> bool:
        return self.fmax_mhz >= clock_mhz

    def __str__(self) -> str:
        return (
            f"TimingReport({self.netlist_name}: depth {self.critical_depth}, "
            f"~{self.critical_path_ns:.2f} ns, fmax ~{self.fmax_mhz:.0f} MHz)"
        )


def _producers(netlist: Netlist) -> Dict[int, Tuple[str, int]]:
    producers: Dict[int, Tuple[str, int]] = {}
    for index, lut in enumerate(netlist.luts):
        producers[lut.output] = ("lut", index)
    for index, lut in enumerate(netlist.luts2):
        producers[lut.output5] = ("lut2", index)
        producers[lut.output6] = ("lut2", index)
    return producers


def _walk(
    netlist: Netlist,
    combine: Callable[
        [str, Sequence[int], Dict[int, float], Dict[int, Tuple[str, int]]], float
    ],
) -> Dict[int, float]:
    """Shared iterative DFS over combinational logic.

    ``combine(kind, input_values, input_nets, producers)`` computes a net's
    value from its resolved inputs.
    """
    producers = _producers(netlist)
    values: Dict[int, float] = {0: 0.0, 1: 0.0}
    for net in netlist.inputs.values():
        values[net] = 0.0
    for flop in netlist.flops:
        values[flop.output] = 0.0

    for target in list(producers):
        if target in values:
            continue
        stack = [target]
        while stack:
            current = stack[-1]
            if current in values:
                stack.pop()
                continue
            producer = producers.get(current)
            if producer is None:
                values[current] = 0.0  # undriven: constant
                stack.pop()
                continue
            kind, index = producer
            inputs = (
                netlist.luts[index].inputs
                if kind == "lut"
                else netlist.luts2[index].inputs
            )
            pending = [n for n in inputs if n not in values]
            if pending:
                stack.extend(pending)
            else:
                values[current] = combine(kind, inputs, values, producers)
                stack.pop()
    return values


def logic_depths(netlist: Netlist) -> Dict[int, int]:
    """Structural LUT-level depth of every net (sources are depth 0)."""

    def combine(kind, inputs, values, producers):
        return 1 + max((values[n] for n in inputs), default=0)

    return {net: int(v) for net, v in _walk(netlist, combine).items()}


def arrival_times(netlist: Netlist) -> Dict[int, float]:
    """Carry-aware arrival time (ns) of every net."""

    def combine(kind, inputs, values, producers):
        worst = 0.0
        for net in inputs:
            producer = producers.get(net)
            if kind == "lut2" and producer is not None and producer[0] == "lut2":
                edge = CARRY_HOP_NS  # carry chain hop
            else:
                edge = LUT_LEVEL_NS
            worst = max(worst, values[net] + edge)
        return worst if inputs else LUT_LEVEL_NS

    return _walk(netlist, combine)


def analyze(netlist: Netlist) -> TimingReport:
    """Time every sequential/output endpoint; return the report."""
    depth = logic_depths(netlist)
    arrival = arrival_times(netlist)
    endpoint_nets: List[int] = [flop.data for flop in netlist.flops]
    endpoint_nets += list(netlist.outputs.values())
    if not endpoint_nets:
        endpoint_nets = [0]
    depths = [depth.get(net, 0) for net in endpoint_nets]
    times = [arrival.get(net, 0.0) for net in endpoint_nets]
    return TimingReport(
        netlist_name=netlist.name,
        critical_depth=max(depths),
        critical_ns=max(times),
        mean_depth=sum(depths) / len(depths),
        endpoints=len(endpoint_nets),
    )


def stage_depths(netlist: Netlist) -> List[int]:
    """Per-FF input depths (the pipeline-stage profile), sorted descending."""
    depth = logic_depths(netlist)
    return sorted((depth.get(f.data, 0) for f in netlist.flops), reverse=True)
