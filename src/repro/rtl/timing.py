"""Static timing analysis for netlists: logic depth and fmax estimates.

The paper's 200 MHz operating point (12.8 GB/s over a 512-bit AXI) is only
achievable because the datapath is "deeply pipelined" — every pipeline
stage must be a few LUT levels at most.  This module measures that: the
combinational **logic depth** between sequential boundaries, carry-aware
**arrival times**, the critical path, and a first-order fmax estimate.

Delay model (documented constants, Kintex-7-class 28 nm fabric):

* a routed LUT6 level costs ~1.0 ns (0.25 ns logic + 0.75 ns routing);
* a carry hop — a fractured LUT6_2 full adder fed by the previous adder in
  the chain — costs ~0.12 ns (dedicated CARRY4-style routing), which is why
  ripple adders are fast despite their O(n) structural depth;
* sequential overhead (clk->Q + setup) ~0.6 ns.

Crude, but it ranks designs correctly and puts the paper-style pipelined
datapath comfortably above 200 MHz while flagging unpipelined wide
popcounts — the structural checks the test suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.rtl.netlist import Netlist

#: ``{(kind, index): positions}`` of primitive input pins to ignore.
FalsePathMap = Mapping[Tuple[str, int], FrozenSet[int]]

#: Routed LUT6 level delay, ns (logic + average routing).
LUT_LEVEL_NS = 1.0

#: Carry hop between adjacent fractured adders, ns.
CARRY_HOP_NS = 0.12

#: Clock-to-Q plus setup overhead, ns.
SEQUENTIAL_OVERHEAD_NS = 0.60


@dataclass(frozen=True)
class TimingReport:
    """Result of static timing analysis on one netlist."""

    netlist_name: str
    critical_depth: int  # structural LUT levels on the worst stage
    critical_ns: float  # carry-aware arrival time of the worst stage
    mean_depth: float
    endpoints: int
    excluded_false_pins: int = 0  # LUT input pins dropped as proven false paths

    @property
    def critical_path_ns(self) -> float:
        return SEQUENTIAL_OVERHEAD_NS + self.critical_ns

    @property
    def fmax_mhz(self) -> float:
        """First-order maximum clock frequency."""
        return 1000.0 / self.critical_path_ns

    def meets(self, clock_mhz: float) -> bool:
        return self.fmax_mhz >= clock_mhz

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready record (the lint resource payload and CI artifacts)."""
        return {
            "netlist": self.netlist_name,
            "critical_depth": self.critical_depth,
            "critical_ns": round(self.critical_ns, 4),
            "critical_path_ns": round(self.critical_path_ns, 4),
            "fmax_mhz": round(self.fmax_mhz, 2),
            "mean_depth": round(self.mean_depth, 4),
            "endpoints": self.endpoints,
            "excluded_false_pins": self.excluded_false_pins,
        }

    def __str__(self) -> str:
        return (
            f"TimingReport({self.netlist_name}: depth {self.critical_depth}, "
            f"~{self.critical_path_ns:.2f} ns, fmax ~{self.fmax_mhz:.0f} MHz)"
        )


def _producers(netlist: Netlist) -> Dict[int, Tuple[str, int]]:
    producers: Dict[int, Tuple[str, int]] = {}
    for index, lut in enumerate(netlist.luts):
        producers[lut.output] = ("lut", index)
    for index, lut in enumerate(netlist.luts2):
        producers[lut.output5] = ("lut2", index)
        producers[lut.output6] = ("lut2", index)
    return producers


def _walk(
    netlist: Netlist,
    combine: Callable[
        [str, int, Sequence[int], Dict[int, float], Dict[int, Tuple[str, int]]],
        float,
    ],
) -> Dict[int, float]:
    """Shared iterative DFS over combinational logic.

    ``combine(kind, index, input_nets, values, producers)`` computes a
    net's value from its resolved inputs; ``(kind, index)`` identifies the
    producing primitive so delay models can consult per-pin facts.
    """
    producers = _producers(netlist)
    values: Dict[int, float] = {0: 0.0, 1: 0.0}
    for net in netlist.inputs.values():
        values[net] = 0.0
    for flop in netlist.flops:
        values[flop.output] = 0.0

    for target in list(producers):
        if target in values:
            continue
        stack = [target]
        while stack:
            current = stack[-1]
            if current in values:
                stack.pop()
                continue
            producer = producers.get(current)
            if producer is None:
                values[current] = 0.0  # undriven: constant
                stack.pop()
                continue
            kind, index = producer
            inputs = (
                netlist.luts[index].inputs
                if kind == "lut"
                else netlist.luts2[index].inputs
            )
            pending = [n for n in inputs if n not in values]
            if pending:
                stack.extend(pending)
            else:
                values[current] = combine(kind, index, inputs, values, producers)
                stack.pop()
    return values


def _live_positions(
    kind: str,
    index: int,
    inputs: Sequence[int],
    false_paths: Optional[FalsePathMap],
) -> Sequence[int]:
    if not false_paths:
        return range(len(inputs))
    excluded = false_paths.get((kind, index))
    if not excluded:
        return range(len(inputs))
    return [p for p in range(len(inputs)) if p not in excluded]


def logic_depths(
    netlist: Netlist, *, false_paths: Optional[FalsePathMap] = None
) -> Dict[int, int]:
    """Structural LUT-level depth of every net (sources are depth 0).

    ``false_paths`` drops the listed input pins from the walk: a
    transition arriving on a proven-false pin can never propagate, so it
    contributes no depth.
    """

    def combine(kind, index, inputs, values, producers):
        live = _live_positions(kind, index, inputs, false_paths)
        return 1 + max((values[inputs[p]] for p in live), default=0)

    return {net: int(v) for net, v in _walk(netlist, combine).items()}


def arrival_times(
    netlist: Netlist, *, false_paths: Optional[FalsePathMap] = None
) -> Dict[int, float]:
    """Carry-aware arrival time (ns) of every net.

    ``false_paths`` excludes the listed pins, as in :func:`logic_depths`.
    """

    def combine(kind, index, inputs, values, producers):
        worst = 0.0
        for position in _live_positions(kind, index, inputs, false_paths):
            net = inputs[position]
            producer = producers.get(net)
            if kind == "lut2" and producer is not None and producer[0] == "lut2":
                edge = CARRY_HOP_NS  # carry chain hop
            else:
                edge = LUT_LEVEL_NS
            worst = max(worst, values[net] + edge)
        return worst if inputs else LUT_LEVEL_NS

    return _walk(netlist, combine)


def analyze(netlist: Netlist, *, exclude_false_paths: bool = False) -> TimingReport:
    """Time every sequential/output endpoint; return the report.

    ``exclude_false_paths=True`` first proves, per LUT, which input pins no
    output depends on under the actual wiring (don't-care analysis in
    :func:`repro.rtl.symbolic.false_fanin_positions`) and drops those edges
    from the walk — the symbolic upgrade of the plain structural analysis.
    """
    false_paths: Optional[FalsePathMap] = None
    excluded_pins = 0
    if exclude_false_paths:
        from repro.rtl.symbolic import false_fanin_positions

        false_paths = false_fanin_positions(netlist)
        excluded_pins = sum(len(positions) for positions in false_paths.values())
    depth = logic_depths(netlist, false_paths=false_paths)
    arrival = arrival_times(netlist, false_paths=false_paths)
    endpoint_nets: List[int] = [flop.data for flop in netlist.flops]
    endpoint_nets += list(netlist.outputs.values())
    if not endpoint_nets:
        endpoint_nets = [0]
    depths = [depth.get(net, 0) for net in endpoint_nets]
    times = [arrival.get(net, 0.0) for net in endpoint_nets]
    return TimingReport(
        netlist_name=netlist.name,
        critical_depth=max(depths),
        critical_ns=max(times),
        mean_depth=sum(depths) / len(depths),
        endpoints=len(endpoint_nets),
        excluded_false_pins=excluded_pins,
    )


def stage_depths(netlist: Netlist) -> List[int]:
    """Per-FF input depths (the pipeline-stage profile), sorted descending."""
    depth = logic_depths(netlist)
    return sorted((depth.get(f.data, 0) for f in netlist.flops), reverse=True)
