"""Symbolic (SA-family) netlist lint rules — proofs, not heuristics.

The NL rules in :mod:`repro.rtl.lint` check *structure* (driver discipline,
LUT budgets, declared bus widths).  The SA rules use the engines in
:mod:`repro.rtl.symbolic`, :mod:`repro.rtl.ranges` and
:mod:`repro.core.absint` to check *semantics*, without simulating a single
vector:

======  =====================  ========  =====================================
Rule    Name                   Severity  Guards
======  =====================  ========  =====================================
SA001   comparator-divergence  error     each ``match[i]`` cone's symbolic
                                         function equals the §III-B golden
                                         mask over all 2^11 combinations
SA002   score-range            error     the proven output range of the
                                         score datapath fits its declared
                                         bus (the NL008 width heuristic,
                                         upgraded to a proof); warning when
                                         the word-level prover cannot close
SA003   false-path             info      LUT input positions no output
                                         depends on under the actual wiring
                                         (timing may exclude these edges)
SA004   constant-output        warning   no primary output is provably
                                         constant (ternary propagation,
                                         then exact symbolic evaluation)
======  =====================  ========  =====================================

Like NL008/NL009, SA001/SA002 are *interface-triggered*: SA001 needs the
full instance-comparator port naming (``q{i}[0..5]``/``ref{j}[0..1]``/
``match``), SA002 needs the ``bits``/``score`` buses, and both stay silent
otherwise.  Error/warning findings attach their proof object or minimized
counterexample as the finding's ``data`` payload for the JSON reporter.

Entry point: :func:`lint_netlist_symbolic`, or pass ``symbolic=True`` to
:func:`repro.rtl.lint.lint_netlist`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.core import absint
from repro.lint import Finding, LintReport, Rule, RuleRegistry, Severity
from repro.rtl.lint import _bus_width
from repro.rtl.netlist import GND, VCC, Netlist
from repro.rtl.ranges import prove_count_range
from repro.rtl.symbolic import (
    DEFAULT_MAX_SUPPORT,
    X,
    SymbolicEvaluator,
    SymbolicLimitError,
    false_fanin_positions,
    ternary_outputs,
)

#: The symbolic-domain rule registry (import-time populated, read-only after).
SYMBOLIC_RULES = RuleRegistry("netlist-symbolic")


@dataclass(frozen=True)
class SymbolicLintConfig:
    """Tunables for the interface-triggered symbolic rules."""

    count_input_bus: str = "bits"
    score_output_bus: str = "score"
    match_output_bus: str = "match"
    max_support: int = DEFAULT_MAX_SUPPORT


def _is_instance_comparator(netlist: Netlist, elements: int) -> bool:
    """True when the instance-comparator port contract holds completely."""
    for i in range(elements):
        if any(f"q{i}[{bit}]" not in netlist.inputs for bit in range(6)):
            return False
    for j in range(elements + 2):
        if any(f"ref{j}[{bit}]" not in netlist.inputs for bit in range(2)):
            return False
    return True


@SYMBOLIC_RULES.register(
    "SA001",
    "comparator-divergence",
    Severity.ERROR,
    "every generated comparator element implements exactly the §III-B "
    "matching semantics: the match[i] cone's symbolic function equals the "
    "golden reference mask over all 2^11 (instruction, reference, context) "
    "combinations — encoder/netlist drift is refuted with a minimized "
    "counterexample",
)
def _check_comparator_divergence(
    *, rule: Rule, netlist: Netlist, config: SymbolicLintConfig
) -> Iterator[Finding]:
    elements = _bus_width(netlist.outputs, config.match_output_bus)
    if not elements or not _is_instance_comparator(netlist, elements):
        return  # interface-triggered rule: silent without the port contract
    try:
        divergences = absint.check_comparator_netlist(
            netlist, elements, max_support=config.max_support
        )
    except SymbolicLimitError as limit:
        yield rule.finding(
            netlist.name,
            f"symbolic check skipped: {limit}",
            severity=Severity.WARNING,
            suggested_fix="raise max_support or check elements individually",
        )
        return
    for divergence in divergences:
        yield rule.finding(
            f"{config.match_output_bus}[{divergence.element}]",
            divergence.describe(),
            suggested_fix="regenerate the element's LUT INITs from "
            "core.comparator.instruction_tables()",
            data=divergence.to_dict(),
        )


@SYMBOLIC_RULES.register(
    "SA002",
    "score-range",
    Severity.ERROR,
    "the score datapath's *proven* output range fits its declared bus — "
    "the Table I claim that 750 elements score in 10 bits, upgraded from "
    "the NL008 width heuristic to a word-level proof (no vectors "
    "enumerated)",
)
def _check_score_range(
    *, rule: Rule, netlist: Netlist, config: SymbolicLintConfig
) -> Iterator[Finding]:
    in_width = _bus_width(netlist.inputs, config.count_input_bus)
    out_width = _bus_width(netlist.outputs, config.score_output_bus)
    if not in_width or not out_width:
        return  # interface-triggered rule: silent without both buses
    proof = prove_count_range(
        netlist, in_bus=config.count_input_bus, out_bus=config.score_output_bus
    )
    location = f"output bus {config.score_output_bus}"
    if not proof.proven:
        yield rule.finding(
            location,
            f"could not prove the score range statically ({proof.reason}); "
            "only the NL008 width heuristic applies",
            severity=Severity.WARNING,
            suggested_fix="keep the datapath in adder/popcount clusters the "
            "word-level prover can eliminate",
            data=proof.to_dict(),
        )
    elif not proof.width_ok:
        yield rule.finding(
            location,
            f"proven output range [{proof.min_value}, {proof.max_value}] "
            f"needs {proof.needed_bits} bits but the bus has "
            f"{proof.out_width} — overflow is reachable",
            suggested_fix=f"widen the score bus to {proof.needed_bits} bits",
            data=proof.to_dict(),
        )


@SYMBOLIC_RULES.register(
    "SA003",
    "false-path",
    Severity.INFO,
    "LUT input positions whose transitions provably never propagate "
    "(don't-care under the actual wiring) — timing analysis may exclude "
    "these edges from the critical path",
)
def _check_false_path(
    *, rule: Rule, netlist: Netlist, config: SymbolicLintConfig
) -> Iterator[Finding]:
    for (kind, index), positions in sorted(false_fanin_positions(netlist).items()):
        if kind == "lut":
            name = netlist.luts[index].name or f"LUT6#{index}"
        else:
            name = netlist.luts2[index].name or f"LUT6_2#{index}"
        pos_text = ", ".join(str(p) for p in sorted(positions))
        yield rule.finding(
            name,
            f"input position(s) {pos_text} are false paths: no output "
            "depends on them under the actual wiring",
            suggested_fix="exclude with timing analyze("
            "exclude_false_paths=True), or disconnect the pins",
        )


@SYMBOLIC_RULES.register(
    "SA004",
    "constant-output",
    Severity.WARNING,
    "no primary output is provably constant — first by ternary (0/1/X) "
    "propagation with every input unknown, then exactly by symbolic "
    "evaluation where the cone is tractable (ternary alone misses "
    "reconvergence like a XOR a) — a constant port means the whole cone "
    "behind it is wasted fabric",
)
def _check_constant_output(
    *, rule: Rule, netlist: Netlist, config: SymbolicLintConfig
) -> Iterator[Finding]:
    if not netlist.outputs:
        return
    ternary = ternary_outputs(netlist)
    evaluator = SymbolicEvaluator(netlist, max_support=config.max_support)
    for name in sorted(netlist.outputs):
        net = netlist.outputs[name]
        if net in (GND, VCC):
            continue  # deliberately folded constant, not a wasted cone
        value: Optional[int] = ternary[name] if ternary[name] != X else None
        if value is None:
            try:
                value = evaluator.function(net).constant_value()
            except SymbolicLimitError:
                continue  # cone too wide for the exact check; ternary stands
        if value is None:
            continue
        yield rule.finding(
            f"output {name}",
            f"provably constant {value} under every input assignment",
            suggested_fix="fold the cone away and wire the port to GND/VCC",
        )


def lint_netlist_symbolic(
    netlist: Netlist,
    *,
    config: Optional[SymbolicLintConfig] = None,
    ignore: Sequence[str] = (),
    rules: Optional[Sequence[str]] = None,
) -> LintReport:
    """Run the symbolic rule set; returns a :class:`repro.lint.LintReport`.

    ``ignore`` drops rules by id (suppression); ``rules`` restricts the run
    to an explicit subset.
    """
    return SYMBOLIC_RULES.run(
        netlist.name,
        ignore=ignore,
        rules=rules,
        netlist=netlist,
        config=config or SymbolicLintConfig(),
    )
