"""VCD (Value Change Dump) waveform recording for the cycle simulator.

Hardware debugging lives in the waveform viewer; this module gives the
reproduction the same affordance: wrap a :class:`~repro.rtl.simulator.
Simulator`, step it, and get a standard VCD file that GTKWave (or any EDA
waveform tool) opens.  Used by the hardware walkthrough example and by
tests that check stall behaviour cycle by cycle.

Only batch-1 simulators can be traced (a waveform of a 4096-wide batch is
not meaningful).
"""

from __future__ import annotations

import io
import os
from typing import Dict, Iterable, Mapping, Optional, Union

from repro.rtl.simulator import Simulator

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Compact VCD identifier codes (base-94)."""
    out = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        out.append(_ID_CHARS[rem])
    return "".join(out)


class VcdTracer:
    """Record named signals of a simulator into VCD text.

    ``signals`` maps display names to net handles; by default every
    declared input and output port is traced.
    """

    def __init__(
        self,
        simulator: Simulator,
        signals: Optional[Mapping[str, int]] = None,
        *,
        timescale: str = "1 ns",
        clock_period: int = 10,
    ) -> None:
        if simulator.batch != 1:
            raise ValueError("VCD tracing requires a batch-1 simulator")
        self.simulator = simulator
        netlist = simulator.netlist
        if signals is None:
            signals = {}
            signals.update(netlist.inputs)
            for name, net in netlist.outputs.items():
                signals.setdefault(name, net)
        self.signals: Dict[str, int] = dict(signals)
        self.timescale = timescale
        self.clock_period = clock_period
        self._ids = {
            name: _identifier(i) for i, name in enumerate(self.signals)
        }
        self._clock_id = _identifier(len(self.signals))
        self._time = 0
        self._last: Dict[str, int] = {}
        self._body = io.StringIO()

    # -- recording ----------------------------------------------------------

    def step(self, inputs: Mapping[str, int] = ()) -> None:
        """Drive one clock cycle and record both clock phases."""
        self.simulator.settle(inputs)
        self._emit_sample(clock=1)
        self.simulator.step()
        self._time += self.clock_period // 2
        self._body.write(f"#{self._time}\n0{self._clock_id}\n")
        self._time += self.clock_period - self.clock_period // 2

    def run(self, input_stream: Iterable[Mapping[str, int]]) -> None:
        for inputs in input_stream:
            self.step(inputs)

    def _emit_sample(self, clock: int) -> None:
        self._body.write(f"#{self._time}\n")
        self._body.write(f"{clock}{self._clock_id}\n")
        for name, net in self.signals.items():
            value = int(self.simulator.peek(net)[0])
            if self._last.get(name) != value:
                self._body.write(f"{value}{self._ids[name]}\n")
                self._last[name] = value

    # -- output -------------------------------------------------------------

    def header(self) -> str:
        out = io.StringIO()
        out.write("$date repro.rtl.vcd $end\n")
        out.write(f"$timescale {self.timescale} $end\n")
        out.write(f"$scope module {self.simulator.netlist.name or 'top'} $end\n")
        out.write(f"$var wire 1 {self._clock_id} clk $end\n")
        for name in self.signals:
            safe = name.replace(" ", "_")
            out.write(f"$var wire 1 {self._ids[name]} {safe} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")
        return out.getvalue()

    def dump(self) -> str:
        """The complete VCD text recorded so far."""
        return self.header() + self._body.getvalue()

    def write(self, path: Union[str, "os.PathLike[str]"]) -> int:
        """Write the VCD to ``path``; returns byte count."""
        text = self.dump()
        with open(path, "w", encoding="ascii") as handle:
            handle.write(text)
        return len(text)
