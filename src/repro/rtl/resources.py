"""Resource accounting helpers for built netlists.

The Table I reproduction needs LUT/FF counts for design points that are too
big to elaborate in Python (256 alignment instances at 750 elements each is
~0.5 M LUTs).  The accelerator resource model therefore measures *small*
netlists built by :mod:`repro.rtl` and scales them analytically; this module
provides the measuring side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.rtl.netlist import Netlist


@dataclass(frozen=True)
class ResourceCount:
    """LUT/FF usage of one block (BRAM/DSP are tracked at the accel level)."""

    luts: int
    ffs: int

    def __add__(self, other: "ResourceCount") -> "ResourceCount":
        return ResourceCount(self.luts + other.luts, self.ffs + other.ffs)

    def __mul__(self, factor: int) -> "ResourceCount":
        return ResourceCount(self.luts * factor, self.ffs * factor)

    __rmul__ = __mul__


def count_netlist(netlist: Netlist) -> ResourceCount:
    """Measure a netlist's physical LUT and FF usage."""
    return ResourceCount(luts=netlist.lut_count, ffs=netlist.ff_count)


def comparator_cost(num_elements: int) -> ResourceCount:
    """LUT/FF cost of one alignment instance's comparator array.

    Derived from the per-element constant (2 LUTs, §III-D) — validated by a
    test that elaborates a real instance netlist and compares.
    """
    from repro.rtl.comparator import LUTS_PER_ELEMENT

    return ResourceCount(luts=LUTS_PER_ELEMENT * num_elements, ffs=0)


def popcounter_cost(num_elements: int, *, style: str = "fabp") -> ResourceCount:
    """LUT/FF cost of one alignment instance's pop-counter, by elaboration."""
    from repro.rtl.popcount import build_popcounter

    block = build_popcounter(num_elements, style=style, pipelined=True)
    return count_netlist(block.netlist)


def utilization(counts: Dict[str, int], available: Dict[str, int]) -> Dict[str, float]:
    """Fractional utilization per resource class (used/available)."""
    out: Dict[str, float] = {}
    for key, used in counts.items():
        total = available.get(key)
        if total:
            out[key] = used / total
    return out
