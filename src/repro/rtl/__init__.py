"""LUT-level functional RTL substrate.

Models the FPGA primitives FabP instantiates directly (LUT6, fractured
LUT6_2, flip-flops), a structural netlist, a batched cycle simulator, and
the two paper-specified datapath blocks: the custom comparator
(:mod:`repro.rtl.comparator`) and the Pop36-based pop-counter
(:mod:`repro.rtl.popcount`), plus static lint passes over generated
netlists (:mod:`repro.rtl.lint`).
"""

from repro.rtl.lint import NETLIST_RULES, NetlistLintConfig, lint_netlist
from repro.rtl.netlist import GND, VCC, Netlist, NetlistError
from repro.rtl.simulator import CombinationalLoopError, Simulator

__all__ = [
    "GND",
    "VCC",
    "NETLIST_RULES",
    "CombinationalLoopError",
    "Netlist",
    "NetlistError",
    "NetlistLintConfig",
    "Simulator",
    "lint_netlist",
]
