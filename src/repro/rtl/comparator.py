"""Netlist builders for the FabP custom comparator (§III-D, Fig. 5).

One query element costs exactly **two physical LUTs**:

* the *mux LUT* selects the comparison LUT's spare input ``X`` from
  ``{b3, Ref[i-1].hi, Ref[i-2].lo, Ref[i-2].hi}`` under control of the
  instruction's two configuration bits;
* the *comparison LUT* evaluates the match over
  ``(b0, b1, b2, X, ref_hi, ref_lo)``.

Both INIT vectors are derived by enumerating the normative semantic
functions in :mod:`repro.core.comparator` — the netlist cannot drift from
the golden model.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core import comparator as golden
from repro.rtl.netlist import Netlist

#: Cached INIT vectors (pure functions of the instruction set definition).
COMPARISON_LUT_INIT = golden.comparison_lut_init()
MUX_LUT_INIT = golden.mux_lut_init()

#: Physical LUTs per query element — the paper's headline resource figure.
LUTS_PER_ELEMENT = 2


def add_element_comparator(
    netlist: Netlist,
    q_bits: Sequence[int],
    ref_bits: Tuple[int, int],
    prev1_hi: int,
    prev2_lo: int,
    prev2_hi: int,
    name: str = "cmp",
) -> int:
    """Instantiate one element comparator; returns the match net.

    ``q_bits`` are the six instruction nets in transmission order (b0..b5);
    ``ref_bits`` is ``(hi, lo)`` of the reference nucleotide under test;
    the three ``prev*`` nets are the dependency-source bits of the one- and
    two-back reference nucleotides (GND at the stream head, matching the
    hardware's zero-initialized buffer).
    """
    if len(q_bits) != 6:
        raise ValueError(f"an instruction has 6 bits, got {len(q_bits)}")
    b0, b1, b2, b3, b4, b5 = q_bits
    ref_hi, ref_lo = ref_bits
    # Mux LUT input order matches golden.mux_lut_init's address mapping.
    x = netlist.add_lut(
        (b3, prev1_hi, prev2_lo, prev2_hi, b4, b5),
        MUX_LUT_INIT,
        name=f"{name}.mux",
    )
    match = netlist.add_lut(
        (b0, b1, b2, x, ref_hi, ref_lo),
        COMPARISON_LUT_INIT,
        name=f"{name}.cmp",
    )
    return match


def build_element_comparator() -> Netlist:
    """A standalone single-element comparator block (for exhaustive tests).

    Inputs: ``q[0..5]``, ``ref[0..1]`` (bit 0 = lo, bit 1 = hi), ``prev1``
    and ``prev2`` 2-bit buses in the same order.  Output: ``match[0]``.
    """
    netlist = Netlist(name="element_comparator")
    q = netlist.add_input_bus("q", 6)
    ref = netlist.add_input_bus("ref", 2)
    prev1 = netlist.add_input_bus("prev1", 2)
    prev2 = netlist.add_input_bus("prev2", 2)
    match = add_element_comparator(
        netlist,
        q,
        (ref[1], ref[0]),
        prev1_hi=prev1[1],
        prev2_lo=prev2[0],
        prev2_hi=prev2[1],
    )
    netlist.set_output_bus("match", [match])
    return netlist


def add_instance_comparator(
    netlist: Netlist,
    q_element_bits: Sequence[Sequence[int]],
    ref_element_bits: Sequence[Tuple[int, int]],
    name: str = "inst",
) -> List[int]:
    """Instantiate a full alignment-instance comparator.

    ``q_element_bits`` holds the six instruction nets of each of the ``n``
    query elements.  ``ref_element_bits`` holds ``(hi, lo)`` net pairs for
    ``n + 2`` consecutive reference nucleotides: entry ``i + 2`` is the
    nucleotide element ``i`` compares against, and entries ``i + 1`` / ``i``
    are its one- and two-back dependency sources.  Callers at the stream
    head pass GND pairs for the first two entries.

    Returns the ``n`` match nets (one per element, paper Fig. 3: the custom
    comparator output is ``L_q`` bits).
    """
    n = len(q_element_bits)
    if len(ref_element_bits) != n + 2:
        raise ValueError(
            f"need {n + 2} reference elements for {n} query elements, "
            f"got {len(ref_element_bits)}"
        )
    matches: List[int] = []
    for i, q_bits in enumerate(q_element_bits):
        hi, lo = ref_element_bits[i + 2]
        prev1_hi = ref_element_bits[i + 1][0]
        prev2_hi, prev2_lo = ref_element_bits[i]
        matches.append(
            add_element_comparator(
                netlist,
                q_bits,
                (hi, lo),
                prev1_hi=prev1_hi,
                prev2_lo=prev2_lo,
                prev2_hi=prev2_hi,
                name=f"{name}.e{i}",
            )
        )
    return matches


def build_instance_comparator(num_elements: int) -> Netlist:
    """A standalone instance comparator for ``num_elements`` query elements.

    Inputs: ``q{i}[0..5]`` per element and ``ref{j}[0..1]`` for ``j`` in
    ``0 .. num_elements + 1`` (j=0,1 are the two look-back slots; element
    ``i`` is compared against ``ref{i+2}``).  Outputs: ``match[0..n-1]``.
    """
    if num_elements < 1:
        raise ValueError("an instance needs at least one query element")
    netlist = Netlist(name=f"instance_comparator_{num_elements}")
    q_bits = [netlist.add_input_bus(f"q{i}", 6) for i in range(num_elements)]
    ref_bits: List[Tuple[int, int]] = []
    for j in range(num_elements + 2):
        bus = netlist.add_input_bus(f"ref{j}", 2)
        ref_bits.append((bus[1], bus[0]))  # (hi, lo)
    matches = add_instance_comparator(netlist, q_bits, ref_bits)
    netlist.set_output_bus("match", matches)
    return netlist
