"""Combinational equivalence checking between netlists.

The hardware-team workflow this reproduces: after hand-optimizing a block
(the Pop36 compressor vs the naive tree adder, or a re-encoded comparator),
prove the replacement computes the same function.  Two modes:

* **exhaustive** — enumerate all input vectors (feasible to ~22 inputs);
* **random** — seeded sampling for wider blocks, with the sample count
  chosen from a target miss probability for single-minterm bugs.

Both run on the batched simulator, so checks are vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.rtl.netlist import Netlist
from repro.rtl.simulator import Simulator

#: Input-width ceiling for exhaustive checking (2^22 vectors, batched).
EXHAUSTIVE_LIMIT = 22

#: Batch size per simulator pass.
_BATCH = 1 << 14


class EquivalenceError(ValueError):
    """Raised when the two netlists are not comparable (port mismatch)."""


@dataclass(frozen=True)
class Counterexample:
    """A distinguishing input vector."""

    inputs: Dict[str, int]
    outputs_a: Dict[str, int]
    outputs_b: Dict[str, int]

    def __str__(self) -> str:
        diff = {
            name: (self.outputs_a[name], self.outputs_b[name])
            for name in self.outputs_a
            if self.outputs_a[name] != self.outputs_b[name]
        }
        return f"Counterexample(inputs={self.inputs}, differs={diff})"


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of one equivalence check."""

    equivalent: bool
    vectors_checked: int
    mode: str
    counterexample: Optional[Counterexample] = None

    def __bool__(self) -> bool:
        return self.equivalent


def _check_ports(a: Netlist, b: Netlist) -> Tuple[List[str], List[str]]:
    if set(a.inputs) != set(b.inputs):
        raise EquivalenceError(
            f"input ports differ: {sorted(set(a.inputs) ^ set(b.inputs))[:6]}"
        )
    common_outputs = sorted(set(a.outputs) & set(b.outputs))
    if not common_outputs:
        raise EquivalenceError("netlists share no output ports to compare")
    if a.flops or b.flops:
        raise EquivalenceError(
            "combinational check only: netlists contain flip-flops "
            "(compare unpipelined variants, or per pipeline stage)"
        )
    return sorted(a.inputs), common_outputs


def _run_batch(
    netlist: Netlist, input_names: List[str], vectors: np.ndarray
) -> Dict[str, np.ndarray]:
    sim = Simulator(netlist, batch=vectors.shape[0])
    inputs = {
        name: vectors[:, column].astype(np.uint8)
        for column, name in enumerate(input_names)
    }
    return sim.settle(inputs)


def check_equivalence(
    a: Netlist,
    b: Netlist,
    *,
    mode: str = "auto",
    random_vectors: int = 50_000,
    seed: int = 0,
) -> EquivalenceResult:
    """Compare two netlists over their shared outputs.

    ``mode`` is ``"exhaustive"``, ``"random"``, or ``"auto"`` (exhaustive
    when the input count permits).  Returns a result whose truthiness is
    the verdict; on mismatch the first counterexample is attached.
    """
    input_names, output_names = _check_ports(a, b)
    width = len(input_names)
    if mode == "auto":
        mode = "exhaustive" if width <= EXHAUSTIVE_LIMIT else "random"
    if mode not in ("exhaustive", "random"):
        raise ValueError(f"unknown mode {mode!r}")

    rng = np.random.default_rng(seed)
    total_checked = 0
    if mode == "exhaustive":
        total = 1 << width
        starts = range(0, total, _BATCH)
    else:
        total = random_vectors
        starts = range(0, total, _BATCH)

    for start in starts:
        count = min(_BATCH, total - start)
        if mode == "exhaustive":
            indices = np.arange(start, start + count, dtype=np.int64)
            vectors = ((indices[:, None] >> np.arange(width)) & 1).astype(np.uint8)
        else:
            vectors = rng.integers(0, 2, size=(count, width), dtype=np.uint8)
        out_a = _run_batch(a, input_names, vectors)
        out_b = _run_batch(b, input_names, vectors)
        for name in output_names:
            mismatch = np.nonzero(out_a[name] != out_b[name])[0]
            if mismatch.size:
                row = int(mismatch[0])
                example = Counterexample(
                    inputs={
                        port: int(vectors[row, column])
                        for column, port in enumerate(input_names)
                    },
                    outputs_a={n: int(out_a[n][row]) for n in output_names},
                    outputs_b={n: int(out_b[n][row]) for n in output_names},
                )
                return EquivalenceResult(
                    equivalent=False,
                    vectors_checked=total_checked + row + 1,
                    mode=mode,
                    counterexample=example,
                )
        total_checked += count
    return EquivalenceResult(equivalent=True, vectors_checked=total_checked, mode=mode)
