"""Combinational equivalence checking between netlists.

The hardware-team workflow this reproduces: after hand-optimizing a block
(the Pop36 compressor vs the naive tree adder, or a re-encoded comparator),
prove the replacement computes the same function.  Three modes:

* **exhaustive** — enumerate all input vectors (feasible to ~22 inputs);
* **symbolic** — per-output cone extraction and truth-table comparison via
  :mod:`repro.rtl.symbolic`: a *proof* for arbitrary input widths as long
  as each shared output's combined cone stays within ``max_support``
  variables, refutations come with a minimized counterexample;
* **random** — seeded sampling for blocks no proof mode can close, with
  duplicate vectors removed and the *achieved* miss-probability bound
  (from the effective, deduplicated sample count) reported.

``mode="auto"`` picks the strongest feasible mode in that order.  The
sampling modes run on the batched simulator, so checks are vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.rtl.netlist import Netlist
from repro.rtl.simulator import Simulator
from repro.rtl.symbolic import (
    DEFAULT_MAX_SUPPORT,
    Space,
    SymbolicEvaluator,
    SymbolicFunction,
    SymbolicLimitError,
)

#: Input-width ceiling for exhaustive checking (2^22 vectors, batched).
EXHAUSTIVE_LIMIT = 22

#: Batch size per simulator pass.
_BATCH = 1 << 14


class EquivalenceError(ValueError):
    """Raised when the two netlists are not comparable (port mismatch)."""


@dataclass(frozen=True)
class Counterexample:
    """A distinguishing input vector.

    ``essential`` (symbolic mode only) names the inputs the mismatch
    actually depends on — every other input is a don't-care, so the
    counterexample generalizes to 2^(width - len(essential)) vectors.
    """

    inputs: Dict[str, int]
    outputs_a: Dict[str, int]
    outputs_b: Dict[str, int]
    essential: Optional[Tuple[str, ...]] = None

    def __str__(self) -> str:
        diff = {
            name: (self.outputs_a[name], self.outputs_b[name])
            for name in self.outputs_a
            if self.outputs_a[name] != self.outputs_b[name]
        }
        text = f"Counterexample(inputs={self.inputs}, differs={diff}"
        if self.essential is not None:
            text += f", essential={list(self.essential)}"
        return text + ")"


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of one equivalence check.

    ``proven`` is True for the exhaustive and symbolic modes (the verdict
    covers the whole input space).  For random mode, ``unique_vectors`` is
    the deduplicated sample count actually simulated, and
    ``miss_probability_bound`` is the achieved probability that a
    single-minterm bug escaped: ``1 - unique_vectors / 2^width``.
    """

    equivalent: bool
    vectors_checked: int
    mode: str
    counterexample: Optional[Counterexample] = None
    proven: bool = False
    unique_vectors: int = 0
    miss_probability_bound: Optional[float] = None

    def __bool__(self) -> bool:
        return self.equivalent

    def to_dict(self) -> Dict[str, object]:
        example: Optional[Dict[str, object]] = None
        if self.counterexample is not None:
            example = {
                "inputs": dict(self.counterexample.inputs),
                "outputs_a": dict(self.counterexample.outputs_a),
                "outputs_b": dict(self.counterexample.outputs_b),
            }
            if self.counterexample.essential is not None:
                example["essential"] = list(self.counterexample.essential)
        return {
            "equivalent": self.equivalent,
            "proven": self.proven,
            "mode": self.mode,
            "vectors_checked": self.vectors_checked,
            "unique_vectors": self.unique_vectors,
            "miss_probability_bound": self.miss_probability_bound,
            "counterexample": example,
        }


def _check_ports(a: Netlist, b: Netlist) -> Tuple[List[str], List[str]]:
    if set(a.inputs) != set(b.inputs):
        raise EquivalenceError(
            f"input ports differ: {sorted(set(a.inputs) ^ set(b.inputs))[:6]}"
        )
    common_outputs = sorted(set(a.outputs) & set(b.outputs))
    if not common_outputs:
        raise EquivalenceError("netlists share no output ports to compare")
    if a.flops or b.flops:
        raise EquivalenceError(
            "combinational check only: netlists contain flip-flops "
            "(compare unpipelined variants, or per pipeline stage)"
        )
    return sorted(a.inputs), common_outputs


def _run_batch(
    netlist: Netlist, input_names: List[str], vectors: np.ndarray
) -> Dict[str, np.ndarray]:
    sim = Simulator(netlist, batch=vectors.shape[0])
    inputs = {
        name: vectors[:, column].astype(np.uint8)
        for column, name in enumerate(input_names)
    }
    return sim.settle(inputs)


def _symbolic_check(
    a: Netlist,
    b: Netlist,
    input_names: List[str],
    output_names: List[str],
    max_support: int,
) -> EquivalenceResult:
    """Prove or refute equivalence per shared output, no vectors enumerated.

    Raises :class:`~repro.rtl.symbolic.SymbolicLimitError` when some
    output's combined cone exceeds ``max_support`` variables.
    """
    eval_a = SymbolicEvaluator(a, max_support=max_support)
    eval_b = SymbolicEvaluator(b, max_support=max_support)
    for name in output_names:
        net_a = a.outputs[name]
        net_b = b.outputs[name]
        support = sorted(
            set(eval_a.cone_support([net_a])) | set(eval_b.cone_support([net_b]))
        )
        if len(support) > max_support:
            raise SymbolicLimitError(
                f"combined cone of output {name!r} spans {len(support)} "
                f"variables, over the {max_support}-variable limit",
                support=len(support),
                limit=max_support,
            )
        space = Space(support)
        function_a = eval_a.functions([net_a], space)[0]
        function_b = eval_b.functions([net_b], space)[0]
        diff = function_a.mask ^ function_b.mask
        if not diff:
            continue
        diff_function = SymbolicFunction(space, diff)
        minterm = diff_function.satisfying_minterm()
        assert minterm is not None  # diff != 0 guarantees a witness
        assignment = space.assignment_of(minterm)
        inputs = {port: 0 for port in input_names}
        inputs.update(assignment)
        vector = np.array(
            [[inputs[port] for port in input_names]], dtype=np.uint8
        )
        out_a = _run_batch(a, input_names, vector)
        out_b = _run_batch(b, input_names, vector)
        example = Counterexample(
            inputs=inputs,
            outputs_a={n: int(out_a[n][0]) for n in output_names},
            outputs_b={n: int(out_b[n][0]) for n in output_names},
            essential=tuple(sorted(diff_function.support())),
        )
        return EquivalenceResult(
            equivalent=False,
            vectors_checked=0,
            mode="symbolic",
            counterexample=example,
            proven=True,
        )
    return EquivalenceResult(
        equivalent=True,
        vectors_checked=0,
        mode="symbolic",
        proven=True,
        miss_probability_bound=0.0,
    )


def check_equivalence(
    a: Netlist,
    b: Netlist,
    *,
    mode: str = "auto",
    random_vectors: int = 50_000,
    seed: int = 0,
    max_support: int = DEFAULT_MAX_SUPPORT,
) -> EquivalenceResult:
    """Compare two netlists over their shared outputs.

    ``mode`` is ``"exhaustive"``, ``"symbolic"``, ``"random"``, or
    ``"auto"`` — auto proves exhaustively when the input count permits,
    then symbolically when every shared output's cone fits ``max_support``
    variables, and only then falls back to seeded random sampling.
    Returns a result whose truthiness is the verdict; on mismatch the
    first counterexample is attached (minimized, in symbolic mode, to the
    inputs the difference depends on).
    """
    input_names, output_names = _check_ports(a, b)
    width = len(input_names)
    if mode == "auto":
        if width <= EXHAUSTIVE_LIMIT:
            mode = "exhaustive"
        else:
            try:
                return _symbolic_check(
                    a, b, input_names, output_names, max_support
                )
            except SymbolicLimitError:
                mode = "random"
    if mode == "symbolic":
        return _symbolic_check(a, b, input_names, output_names, max_support)
    if mode not in ("exhaustive", "random"):
        raise ValueError(f"unknown mode {mode!r}")

    rng = np.random.default_rng(seed)
    seen: Set[bytes] = set()
    total_checked = 0
    unique_checked = 0
    total = (1 << width) if mode == "exhaustive" else random_vectors

    def bound() -> Optional[float]:
        if mode == "exhaustive":
            return 0.0
        return max(0.0, 1.0 - unique_checked * (0.5**width))

    for start in range(0, total, _BATCH):
        count = min(_BATCH, total - start)
        if mode == "exhaustive":
            indices = np.arange(start, start + count, dtype=np.int64)
            vectors = ((indices[:, None] >> np.arange(width)) & 1).astype(np.uint8)
        else:
            drawn = rng.integers(0, 2, size=(count, width), dtype=np.uint8)
            fresh: List[int] = []
            for row in range(count):
                key = drawn[row].tobytes()
                if key not in seen:
                    seen.add(key)
                    fresh.append(row)
            if not fresh:
                total_checked += count
                continue
            vectors = drawn[np.array(fresh, dtype=np.int64)]
        out_a = _run_batch(a, input_names, vectors)
        out_b = _run_batch(b, input_names, vectors)
        for name in output_names:
            mismatch = np.nonzero(out_a[name] != out_b[name])[0]
            if mismatch.size:
                row = int(mismatch[0])
                example = Counterexample(
                    inputs={
                        port: int(vectors[row, column])
                        for column, port in enumerate(input_names)
                    },
                    outputs_a={n: int(out_a[n][row]) for n in output_names},
                    outputs_b={n: int(out_b[n][row]) for n in output_names},
                )
                unique_checked += row + 1
                return EquivalenceResult(
                    equivalent=False,
                    vectors_checked=total_checked + row + 1,
                    mode=mode,
                    counterexample=example,
                    proven=mode == "exhaustive",
                    unique_vectors=unique_checked,
                    miss_probability_bound=bound(),
                )
        total_checked += count
        unique_checked += vectors.shape[0]
    return EquivalenceResult(
        equivalent=True,
        vectors_checked=total_checked,
        mode=mode,
        proven=mode == "exhaustive",
        unique_vectors=unique_checked,
        miss_probability_bound=bound(),
    )
