"""Symbolic evaluation of netlists: exact functions, no simulation vectors.

:mod:`repro.rtl.equivalence` can only *sample* blocks wider than ~22 inputs,
and the lint passes in :mod:`repro.rtl.lint` reason about one LUT at a time.
This module closes the gap between the two with a small symbolic engine:

* :class:`Space` — an ordered set of Boolean variables.  A function over the
  space is a *bit-parallel truth table*: a Python integer whose bit ``a`` is
  the function's output for input minterm ``a`` (the same convention as a
  LUT ``INIT`` vector, generalized to any variable count).  AND/OR/NOT/XOR
  are plain integer bit operations over all ``2^n`` minterms at once, and
  ITE/cofactor/sensitivity are shift-and-mask tricks — this is a
  reduced-*ordered* representation like a BDD, but flat rather than shared.
* :class:`SymbolicFunction` — a truth table bound to its space, with the
  derived queries the checkers need (support, cofactors, satisfying
  minterms, evaluation).
* :class:`SymbolicEvaluator` — computes the exact function of any net of a
  :class:`~repro.rtl.netlist.Netlist` by composing LUT truth tables over the
  net's input cone.  Cone extraction is per output, so a 4500-LUT
  comparator array whose individual match cones span 12 inputs is checked
  exactly even though the whole netlist has thousands of inputs.  Flip-flop
  outputs become free *state* variables (``ff:<name>``), which analyzes one
  pipeline stage at a time.
* :func:`ternary_settle` — 0/1/X constant propagation: evaluate the netlist
  with only some inputs bound and the rest unknown.  A LUT output is 0 or 1
  only when every completion of its unknown inputs agrees.
* :func:`false_fanin_positions` — per-LUT don't-care analysis: input pins
  the LUT's function provably ignores under its actual wiring (INIT
  insensitivity, constant pins, duplicated nets).  :mod:`repro.rtl.timing`
  excludes these *false paths* from the critical path.

Tractability: a function over ``n`` variables is a ``2^n``-bit integer, so
cones are capped (:data:`DEFAULT_MAX_SUPPORT`, 20 ≈ 128 KiB per function).
:class:`SymbolicLimitError` signals the caller to fall back to sampling —
``docs/symbolic.md`` has the decision table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.rtl.netlist import GND, VCC, Netlist, NetlistError

#: Default ceiling on cone support (2^20-bit truth tables, ~128 KiB each).
DEFAULT_MAX_SUPPORT = 20

#: Ternary "unknown" value for :func:`ternary_settle`.
X = 2


class SymbolicLimitError(ValueError):
    """A cone's support exceeds the configured truth-table limit."""

    def __init__(self, message: str, support: int, limit: int) -> None:
        super().__init__(message)
        self.support = support
        self.limit = limit


class Space:
    """An ordered tuple of Boolean variables and the masks to compute over it.

    Variable ``i`` corresponds to address bit ``i`` of every truth table in
    the space; the table of the bare variable is precomputed
    (:meth:`variable`), and every composite function is built from those
    masks with integer bit operations.
    """

    def __init__(self, names: Sequence[str]) -> None:
        ordered = tuple(names)
        if len(set(ordered)) != len(ordered):
            raise ValueError(f"duplicate variable names in space: {ordered!r}")
        self.names: Tuple[str, ...] = ordered
        self.size = 1 << len(ordered)
        self.full = (1 << self.size) - 1
        self._index = {name: i for i, name in enumerate(ordered)}
        self._var_masks: List[int] = [
            self._pattern(i) for i in range(len(ordered))
        ]

    def _pattern(self, position: int) -> int:
        """Truth table of bare variable ``position``: 0^(2^p) 1^(2^p) repeated."""
        block = 1 << position
        period = block << 1
        one_period = ((1 << block) - 1) << block
        repeats = self.size // period
        # Repunit trick: repeat ``one_period`` every ``period`` bits.
        repunit = ((1 << (period * repeats)) - 1) // ((1 << period) - 1)
        return one_period * repunit

    def __len__(self) -> int:
        return len(self.names)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"no variable {name!r} in space {self.names!r}") from None

    def variable(self, name: str) -> "SymbolicFunction":
        return SymbolicFunction(self, self._var_masks[self.index(name)])

    def constant(self, value: int) -> "SymbolicFunction":
        if value not in (0, 1):
            raise ValueError(f"constant must be 0 or 1, got {value!r}")
        return SymbolicFunction(self, self.full if value else 0)

    def variable_mask(self, position: int) -> int:
        return self._var_masks[position]

    def lut(self, init: int, inputs: Sequence["SymbolicFunction"]) -> "SymbolicFunction":
        """Compose a LUT: output truth table from its INIT and input functions.

        Shannon-expands the INIT over the input functions: fold each input
        in as an if-then-else between the two half tables.
        """
        if len(inputs) > 6:
            raise ValueError(f"a LUT has at most 6 inputs, got {len(inputs)}")
        for function in inputs:
            if function.space is not self:
                raise ValueError("LUT inputs must live in the same space")
        width = len(inputs)
        # Leaves: one constant per INIT address over the connected inputs.
        tables = [
            self.full if (init >> address) & 1 else 0
            for address in range(1 << width)
        ]
        for position in range(width):
            selector = inputs[position].mask
            inv = ~selector & self.full
            tables = [
                (tables[2 * k] & inv) | (tables[2 * k + 1] & selector)
                for k in range(len(tables) // 2)
            ]
        return SymbolicFunction(self, tables[0])

    def assignment_of(self, minterm: int) -> Dict[str, int]:
        """Decode a minterm index into a variable assignment."""
        return {
            name: (minterm >> i) & 1 for i, name in enumerate(self.names)
        }


@dataclass(frozen=True)
class SymbolicFunction:
    """A Boolean function: a truth-table integer bound to its :class:`Space`."""

    space: Space
    mask: int

    def _check(self, other: "SymbolicFunction") -> None:
        if other.space is not self.space:
            raise ValueError("functions live in different spaces")

    # -- composition --------------------------------------------------------

    def __and__(self, other: "SymbolicFunction") -> "SymbolicFunction":
        self._check(other)
        return SymbolicFunction(self.space, self.mask & other.mask)

    def __or__(self, other: "SymbolicFunction") -> "SymbolicFunction":
        self._check(other)
        return SymbolicFunction(self.space, self.mask | other.mask)

    def __xor__(self, other: "SymbolicFunction") -> "SymbolicFunction":
        self._check(other)
        return SymbolicFunction(self.space, self.mask ^ other.mask)

    def __invert__(self) -> "SymbolicFunction":
        return SymbolicFunction(self.space, ~self.mask & self.space.full)

    def ite(self, then: "SymbolicFunction", other: "SymbolicFunction") -> "SymbolicFunction":
        """If-then-else with ``self`` as the selector."""
        self._check(then)
        self._check(other)
        mask = (self.mask & then.mask) | (~self.mask & self.space.full & other.mask)
        return SymbolicFunction(self.space, mask)

    # -- queries ------------------------------------------------------------

    def is_constant(self) -> bool:
        return self.mask in (0, self.space.full)

    def constant_value(self) -> Optional[int]:
        if self.mask == 0:
            return 0
        if self.mask == self.space.full:
            return 1
        return None

    def cofactor(self, name: str, value: int) -> "SymbolicFunction":
        """Restrict variable ``name`` to ``value`` (result stays full-width)."""
        position = self.space.index(name)
        pattern = self.space.variable_mask(position)
        shift = 1 << position  # address distance between the paired halves
        if value:
            half = self.mask & pattern
            mask = half | (half >> shift)
        else:
            half = self.mask & ~pattern & self.space.full
            mask = half | (half << shift)
        return SymbolicFunction(self.space, mask)

    def depends_on(self, name: str) -> bool:
        return self.cofactor(name, 0).mask != self.cofactor(name, 1).mask

    def support(self) -> Tuple[str, ...]:
        """The variables the function actually depends on."""
        return tuple(name for name in self.space.names if self.depends_on(name))

    def restrict(self, assignment: Mapping[str, int]) -> "SymbolicFunction":
        """Cofactor several variables at once."""
        function = self
        for name, value in assignment.items():
            function = function.cofactor(name, value)
        return function

    def value_at(self, assignment: Mapping[str, int]) -> int:
        """Evaluate at a full (or covering) assignment.

        Variables absent from ``assignment`` default to 0; that is only
        sound when the function does not depend on them, which callers
        ensure by passing every support variable.
        """
        minterm = 0
        for name, value in assignment.items():
            if name in self.space and value:
                minterm |= 1 << self.space.index(name)
        return (self.mask >> minterm) & 1

    def count_minterms(self) -> int:
        """Number of satisfying assignments (over the full space)."""
        return bin(self.mask).count("1")

    def satisfying_minterm(self) -> Optional[int]:
        """The lowest satisfying minterm index, or None if unsatisfiable."""
        if self.mask == 0:
            return None
        return (self.mask & -self.mask).bit_length() - 1

    def satisfying_assignment(self) -> Optional[Dict[str, int]]:
        minterm = self.satisfying_minterm()
        if minterm is None:
            return None
        return self.space.assignment_of(minterm)

    def equivalent(self, other: "SymbolicFunction") -> bool:
        self._check(other)
        return self.mask == other.mask


# -- cone-based netlist evaluation --------------------------------------------


def state_variable(netlist: Netlist, flop_index: int) -> str:
    """The symbolic variable name of a flip-flop's Q output."""
    flop = netlist.flops[flop_index]
    return f"ff:{flop.name or flop_index}"


class SymbolicEvaluator:
    """Exact per-net functions of a netlist, one input cone at a time.

    Primary inputs become variables named by their port name; flip-flop
    outputs become free state variables (``ff:<name>``), so combinational
    logic is analyzed per pipeline stage.  Undriven nets read constant 0,
    matching :class:`repro.rtl.simulator.Simulator`.
    """

    def __init__(self, netlist: Netlist, *, max_support: int = DEFAULT_MAX_SUPPORT) -> None:
        self.netlist = netlist
        self.max_support = max_support
        self._producers: Dict[int, Tuple[str, int]] = {}
        for index, lut in enumerate(netlist.luts):
            self._producers[lut.output] = ("lut", index)
        for index, lut2 in enumerate(netlist.luts2):
            self._producers[lut2.output5] = ("lut2", index)
            self._producers[lut2.output6] = ("lut2", index)
        self._source_names: Dict[int, str] = {}
        for name, net in netlist.inputs.items():
            self._source_names[net] = name
        for index, flop in enumerate(netlist.flops):
            self._source_names.setdefault(flop.output, state_variable(netlist, index))

    # -- cone extraction ----------------------------------------------------

    def cone_support(self, nets: Iterable[int]) -> Tuple[str, ...]:
        """Variable names feeding the combined cone of ``nets`` (source order)."""
        support: List[str] = []
        seen_vars: Set[int] = set()
        seen: Set[int] = set()
        stack = list(nets)
        while stack:
            net = stack.pop()
            if net in seen or net in (GND, VCC):
                continue
            seen.add(net)
            producer = self._producers.get(net)
            if producer is None or net in self._source_names:
                # Primary input, FF output, or undriven (constant 0).
                if net in self._source_names and net not in seen_vars:
                    seen_vars.add(net)
                    support.append(self._source_names[net])
                continue
            kind, index = producer
            inputs = (
                self.netlist.luts[index].inputs
                if kind == "lut"
                else self.netlist.luts2[index].inputs
            )
            stack.extend(inputs)
        return tuple(sorted(support))

    def space_for(self, nets: Iterable[int]) -> Space:
        """A :class:`Space` over the combined cone support of ``nets``."""
        support = self.cone_support(nets)
        if len(support) > self.max_support:
            raise SymbolicLimitError(
                f"cone support of {len(support)} variables exceeds the "
                f"{self.max_support}-variable truth-table limit in "
                f"{self.netlist.name!r}",
                support=len(support),
                limit=self.max_support,
            )
        return Space(support)

    # -- evaluation ---------------------------------------------------------

    def functions(
        self, nets: Sequence[int], space: Optional[Space] = None
    ) -> List[SymbolicFunction]:
        """Exact functions of ``nets``, all bound to one shared space.

        ``space`` may be supplied to fix the variable order (it must cover
        the cone support); otherwise one is built from the combined cone.
        """
        if space is None:
            space = self.space_for(nets)
        cache: Dict[int, SymbolicFunction] = {
            GND: space.constant(0),
            VCC: space.constant(1),
        }

        def source(net: int) -> Optional[SymbolicFunction]:
            name = self._source_names.get(net)
            if name is not None:
                if name not in space:
                    raise KeyError(
                        f"space does not cover cone variable {name!r} "
                        f"(net {net}) in {self.netlist.name!r}"
                    )
                return space.variable(name)
            if net not in self._producers:
                return space.constant(0)  # undriven: simulator reads 0
            return None

        for target in nets:
            if target in cache:
                continue
            stack = [target]
            while stack:
                net = stack[-1]
                if net in cache:
                    stack.pop()
                    continue
                value = source(net)
                if value is not None:
                    cache[net] = value
                    stack.pop()
                    continue
                kind, index = self._producers[net]
                inputs = (
                    self.netlist.luts[index].inputs
                    if kind == "lut"
                    else self.netlist.luts2[index].inputs
                )
                pending = [n for n in inputs if n not in cache]
                if pending:
                    stack.extend(pending)
                    continue
                resolved = [cache[n] for n in inputs]
                if kind == "lut":
                    lut = self.netlist.luts[index]
                    cache[lut.output] = space.lut(lut.init, resolved)
                else:
                    lut2 = self.netlist.luts2[index]
                    cache[lut2.output5] = space.lut(lut2.init5, resolved)
                    cache[lut2.output6] = space.lut(lut2.init6, resolved)
                stack.pop()
        return [cache[net] for net in nets]

    def function(self, net: int, space: Optional[Space] = None) -> SymbolicFunction:
        return self.functions([net], space)[0]

    def output_function(self, name: str, space: Optional[Space] = None) -> SymbolicFunction:
        """Exact function of a named primary output."""
        try:
            net = self.netlist.outputs[name]
        except KeyError:
            raise KeyError(f"no output named {name!r} in {self.netlist.name!r}") from None
        return self.function(net, space)

    def output_bus_functions(self, name: str) -> Tuple[Space, List[SymbolicFunction]]:
        """Functions of bus ``name[0..]``, sharing one space."""
        nets: List[int] = []
        bit = 0
        while f"{name}[{bit}]" in self.netlist.outputs:
            nets.append(self.netlist.outputs[f"{name}[{bit}]"])
            bit += 1
        if not nets:
            raise KeyError(f"no output bus named {name!r} in {self.netlist.name!r}")
        space = self.space_for(nets)
        return space, self.functions(nets, space)


# -- ternary (0/1/X) propagation ----------------------------------------------


def _ternary_lut(init: int, values: Sequence[int]) -> int:
    """Evaluate one LUT over ternary inputs.

    Enumerate completions of the X inputs only; the output is known when
    every completion agrees.
    """
    unknown = [i for i, v in enumerate(values) if v == X]
    base = 0
    for i, v in enumerate(values):
        if v == 1:
            base |= 1 << i
    result = -1
    for combo in range(1 << len(unknown)):
        address = base
        for k, position in enumerate(unknown):
            if (combo >> k) & 1:
                address |= 1 << position
        bit = (init >> address) & 1
        if result == -1:
            result = bit
        elif result != bit:
            return X
    return result


def ternary_settle(
    netlist: Netlist,
    inputs: Optional[Mapping[str, int]] = None,
    *,
    state: Optional[Mapping[str, int]] = None,
) -> Dict[int, int]:
    """Propagate 0/1/X through the combinational logic; returns net values.

    ``inputs`` maps primary-input names to 0, 1 or :data:`X` (unlisted
    inputs are X); ``state`` does the same for flip-flop variables (named as
    in :func:`state_variable`).  Undriven nets read 0, like the simulator.
    Raises :class:`~repro.rtl.netlist.NetlistError` on combinational loops.
    """
    bound = dict(inputs or {})
    state_bound = dict(state or {})
    for mapping, label in ((bound, "input"), (state_bound, "state")):
        for name, value in mapping.items():
            if value not in (0, 1, X):
                raise ValueError(f"{label} {name!r} must be 0, 1 or X, got {value!r}")
    values: Dict[int, int] = {GND: 0, VCC: 1}
    for name, net in netlist.inputs.items():
        values[net] = bound.get(name, X)
    for index, flop in enumerate(netlist.flops):
        values.setdefault(flop.output, state_bound.get(state_variable(netlist, index), X))

    # Topological sweep (Kahn) over the combinational primitives.
    producers: Dict[int, Tuple[str, int]] = {}
    for index, lut in enumerate(netlist.luts):
        producers[lut.output] = ("lut", index)
    for index, lut2 in enumerate(netlist.luts2):
        producers[lut2.output5] = ("lut2", index)
        producers[lut2.output6] = ("lut2", index)

    def prim_inputs(kind: str, index: int) -> Tuple[int, ...]:
        return netlist.luts[index].inputs if kind == "lut" else netlist.luts2[index].inputs

    nodes = [("lut", i) for i in range(len(netlist.luts))]
    nodes += [("lut2", i) for i in range(len(netlist.luts2))]
    indegree: Dict[Tuple[str, int], int] = {}
    dependents: Dict[Tuple[str, int], List[Tuple[str, int]]] = {n: [] for n in nodes}
    for node in nodes:
        deps = {
            producers[n]
            for n in prim_inputs(*node)
            if n in producers and n not in values
        }
        deps.discard(node)
        indegree[node] = len(deps)
        for dep in deps:
            dependents[dep].append(node)
    ready = [node for node in nodes if indegree[node] == 0]
    done = 0
    while ready:
        kind, index = ready.pop()
        done += 1
        ins = [values.get(n, 0) for n in prim_inputs(kind, index)]
        if kind == "lut":
            lut = netlist.luts[index]
            values[lut.output] = _ternary_lut(lut.init, ins)
        else:
            lut2 = netlist.luts2[index]
            values[lut2.output5] = _ternary_lut(lut2.init5, ins)
            values[lut2.output6] = _ternary_lut(lut2.init6, ins)
        for dependent in dependents[(kind, index)]:
            indegree[dependent] -= 1
            if indegree[dependent] == 0:
                ready.append(dependent)
    if done != len(nodes):
        raise NetlistError(
            f"combinational loop: {len(nodes) - done} primitives unresolved "
            f"in {netlist.name!r}"
        )
    return values


def ternary_outputs(
    netlist: Netlist,
    inputs: Optional[Mapping[str, int]] = None,
    *,
    state: Optional[Mapping[str, int]] = None,
) -> Dict[str, int]:
    """:func:`ternary_settle`, projected onto the named primary outputs."""
    values = ternary_settle(netlist, inputs, state=state)
    return {name: values.get(net, 0) for name, net in netlist.outputs.items()}


# -- false-path (don't-care) analysis -----------------------------------------


def _local_insensitive_nets(
    inputs: Tuple[int, ...], inits: Sequence[int]
) -> FrozenSet[int]:
    """Distinct free input nets none of the LUT's outputs depend on.

    Wiring-aware: constant pins restrict the reachable addresses and a
    duplicated net toggles every pin it drives at once.
    """
    free: List[int] = []
    for net in inputs:
        if net not in (GND, VCC) and net not in free:
            free.append(net)
    if not free:
        return frozenset()
    space = Space([f"n{net}" for net in free])
    pin_functions = [
        space.constant(1)
        if net == VCC
        else space.constant(0)
        if net == GND
        else space.variable(f"n{net}")
        for net in inputs
    ]
    insensitive = set(free)
    for init in inits:
        function = space.lut(init, pin_functions)
        for net in list(insensitive):
            if function.depends_on(f"n{net}"):
                insensitive.discard(net)
        if not insensitive:
            break
    return frozenset(insensitive)


def false_fanin_positions(netlist: Netlist) -> Dict[Tuple[str, int], FrozenSet[int]]:
    """Per-LUT input *positions* that are provably false paths.

    Returns ``{(kind, index): positions}`` where ``kind`` is ``"lut"`` or
    ``"lut2"`` and each position indexes the primitive's ``inputs`` tuple.
    A position is false when no output of the primitive depends on its net
    under the actual wiring — a transition arriving there can never
    propagate, so timing analysis may ignore the edge.  Constant pins
    (GND/VCC) are not reported: they carry no timing path to begin with.
    """
    false: Dict[Tuple[str, int], FrozenSet[int]] = {}
    for index, lut in enumerate(netlist.luts):
        nets = _local_insensitive_nets(lut.inputs, (lut.init,))
        if nets:
            false[("lut", index)] = frozenset(
                pos for pos, net in enumerate(lut.inputs) if net in nets
            )
    for index, lut2 in enumerate(netlist.luts2):
        nets = _local_insensitive_nets(lut2.inputs, (lut2.init5, lut2.init6))
        if nets:
            false[("lut2", index)] = frozenset(
                pos for pos, net in enumerate(lut2.inputs) if net in nets
            )
    return false
