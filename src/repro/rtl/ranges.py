"""Word-level value-range proofs for counting datapaths.

Table I's claim that 750 query elements score in **10 bits** is, in lint
rule NL008, a width *heuristic*: ``ceil(log2(W+1))`` bits for ``W`` inputs.
This module turns it into a *proof*: the score word a pop-counter netlist
computes equals the population count of its input bus, hence lies in
``[0, W]`` — established compositionally, without enumerating a single
input vector (2^750 of them at the paper's maximum query length).

The proof system is a small word-level theory over the netlist:

1. **Cluster extraction** — primitives are grouped into *sum clusters*:
   LUT6s sharing one input tuple (the Pop36 shared-input popcount groups,
   or a naive adder's sum/carry LUT pair), each fractured ``LUT6_2`` full
   adder, and each flip-flop (a word-level identity).  For every cluster the
   engine *verifies by 2^k-row local enumeration* (k ≤ 6 free nets — cluster
   inputs, never primary input vectors) a weighted-sum identity::

       sum_k  w_k * out_k  =  const + sum_j in_j        (w_k a power of two)

   When a carry output was never built (``max_bits`` truncation), a
   *virtual* output is synthesized so the identity still closes; virtual
   and dead outputs become *slack* terms tracked separately.

2. **Forward range pass** — input bits lie in [0,1]; a cluster's word is
   bounded by the sum of its input bounds, and an output bit whose weight
   exceeds the word bound is provably 0.

3. **Backward elimination** — starting from the score word
   ``sum_i 2^i * score[i]``, cluster identities are substituted in reverse
   topological order until only primary inputs remain.  A successful
   elimination yields ``score_word + sum_k s_k*c_k = count_word`` with every
   slack coefficient ``s_k`` positive, so ``score_word <= count_word <= W``
   — the range bound.  When every slack weight also exceeds ``W`` (true for
   the shipped builders: a dropped carry weighs ``2^10 = 1024 > 750``), each
   slack bit is forced to 0 and the score **equals** the popcount exactly.

Entry point: :func:`prove_count_range`.  Lint rule SA002
(:mod:`repro.rtl.symbolic_lint`) and ``fabp-repro prove`` run it over the
generated pop-counters; ``docs/symbolic.md`` documents the theory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from functools import lru_cache
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

from repro.rtl.netlist import GND, VCC, Netlist

#: Candidate weights tried for cluster outputs (LUT counts fit 6 bits).
_WEIGHTS = (1, 2, 4, 8, 16, 32, 64)

#: Largest cluster (outputs) for which weights are brute-force solved.
_MAX_CLUSTER_OUTPUTS = 4


@dataclass(frozen=True)
class Cluster:
    """One verified word-level identity: ``sum w_k*out_k = const + sum in_j``.

    ``outputs``/``weights`` include synthesized *virtual* outputs (negative
    pseudo-net handles) for carries the builder provably never needed;
    ``virtual_zero`` marks virtual outputs whose table is constant 0 (no
    slack at all).
    """

    name: str
    outputs: Tuple[int, ...]
    weights: Tuple[int, ...]
    inputs: Tuple[int, ...]  # free input nets, with multiplicity
    const: int  # contribution of VCC-tied pins
    virtual: Tuple[int, ...] = ()  # synthesized outputs (subset of outputs)
    virtual_zero: Tuple[int, ...] = ()  # virtual outputs proven constant 0
    const_zero: Tuple[int, ...] = ()  # real outputs proven constant 0


@dataclass(frozen=True)
class WordProof:
    """Outcome of :func:`prove_count_range` on one netlist."""

    netlist_name: str
    out_bus: str
    in_bus: str
    proven: bool  # the range bound [min_value, max_value] is proven
    exact: bool  # the word provably *equals* the popcount of the input bus
    max_value: int
    min_value: int
    width: int  # input bus width W
    out_width: int  # score bus width in bits
    needed_bits: int  # bits required for max_value
    slack_terms: int  # dangling carries the proof had to bound
    reason: str  # human-readable proof summary or failure cause

    @property
    def width_ok(self) -> bool:
        """True when the proven range fits the declared output bus."""
        return self.proven and self.max_value < (1 << self.out_width)

    def to_dict(self) -> Dict[str, object]:
        return {
            "netlist": self.netlist_name,
            "out_bus": self.out_bus,
            "in_bus": self.in_bus,
            "proven": self.proven,
            "exact": self.exact,
            "max_value": self.max_value,
            "min_value": self.min_value,
            "width": self.width,
            "out_width": self.out_width,
            "needed_bits": self.needed_bits,
            "slack_terms": self.slack_terms,
            "width_ok": self.width_ok,
            "reason": self.reason,
        }


@dataclass
class _Extraction:
    clusters: List[Cluster] = field(default_factory=list)
    producer: Dict[int, int] = field(default_factory=dict)  # net -> cluster index
    opaque: Dict[int, str] = field(default_factory=dict)  # unclustered LUT outputs


def _bus_nets(ports: Dict[str, int], name: str) -> List[int]:
    nets: List[int] = []
    while f"{name}[{len(nets)}]" in ports:
        nets.append(ports[f"{name}[{len(nets)}]"])
    return nets


def _table(init: int, width: int) -> List[int]:
    return [(init >> a) & 1 for a in range(1 << width)]


def _solve_cluster(
    name: str,
    inputs: Tuple[int, ...],
    outputs: Tuple[int, ...],
    tables: Sequence[List[int]],
) -> Optional[Cluster]:
    """Verify a weighted-sum identity for one candidate cluster.

    Enumerates the ≤ 2^6 assignments of the distinct free input nets and
    solves for power-of-two weights; if no exact solution exists, tries to
    synthesize one *virtual* output (a dropped carry) whose 0/1 table makes
    the identity close.  Returns None when the primitives are not sum-like.
    """
    free: List[int] = []
    for net in inputs:
        if net not in (GND, VCC) and net not in free:
            free.append(net)
    rows: List[Tuple[Tuple[int, ...], int]] = []  # (per-output bits, target)
    const = sum(1 for net in inputs if net == VCC)
    for bits in product((0, 1), repeat=len(free)):
        assignment = dict(zip(free, bits))
        address = 0
        target = 0
        for position, net in enumerate(inputs):
            bit = 1 if net == VCC else 0 if net == GND else assignment[net]
            address |= bit << position
            target += bit
        rows.append((tuple(t[address] for t in tables), target))

    free_inputs = tuple(net for net in inputs if net not in (GND, VCC))
    # Outputs whose table is 0 at every reachable address are provably
    # constant 0 — their weight is degenerate, so mark them for the range
    # pass instead of trusting whichever weight the search happens to pick.
    const_zero = tuple(
        net
        for k, net in enumerate(outputs)
        if all(outs[k] == 0 for outs, _ in rows)
    )

    if len(outputs) > _MAX_CLUSTER_OUTPUTS:
        return None
    for weights in product(_WEIGHTS, repeat=len(outputs)):
        if all(sum(w * o for w, o in zip(weights, outs)) == t for outs, t in rows):
            return Cluster(
                name, outputs, weights, free_inputs, const, const_zero=const_zero
            )
    # Retry with one synthesized (virtual) output — a carry the builder
    # provably never materialized.  Its table must come out 0/1 everywhere.
    for weights in product(_WEIGHTS, repeat=len(outputs)):
        for virtual_weight in _WEIGHTS:
            virtual_bits: List[int] = []
            for outs, target in rows:
                rem = target - sum(w * o for w, o in zip(weights, outs))
                if rem == 0:
                    virtual_bits.append(0)
                elif rem == virtual_weight:
                    virtual_bits.append(1)
                else:
                    virtual_bits.append(-1)
                    break
            if virtual_bits and virtual_bits[-1] != -1:
                virtual_net = -(1 + len(_WEIGHTS))  # placeholder, fixed by caller
                zero = tuple([virtual_net]) if not any(virtual_bits) else ()
                return Cluster(
                    name,
                    outputs + (virtual_net,),
                    weights + (virtual_weight,),
                    free_inputs,
                    const,
                    virtual=(virtual_net,),
                    virtual_zero=zero,
                    const_zero=const_zero,
                )
    return None


def _extract_clusters(netlist: Netlist) -> _Extraction:
    """Group the netlist's primitives into verified sum clusters."""
    result = _Extraction()
    next_virtual = -1

    def add(cluster: Optional[Cluster], outputs: Tuple[int, ...], label: str) -> None:
        nonlocal next_virtual
        if cluster is None:
            for net in outputs:
                result.opaque[net] = label
            return
        if cluster.virtual:
            # Re-home the placeholder virtual net to a unique negative handle.
            placeholder = cluster.virtual[0]
            renamed = tuple(
                next_virtual if net == placeholder else net for net in cluster.outputs
            )
            cluster = Cluster(
                cluster.name,
                renamed,
                cluster.weights,
                cluster.inputs,
                cluster.const,
                virtual=(next_virtual,),
                virtual_zero=(next_virtual,) if cluster.virtual_zero else (),
                const_zero=cluster.const_zero,
            )
            next_virtual -= 1
        index = len(result.clusters)
        result.clusters.append(cluster)
        for net in cluster.outputs:
            result.producer[net] = index

    # Fractured full adders: one cluster per LUT6_2.
    for index, lut2 in enumerate(netlist.luts2):
        name = lut2.name or f"LUT6_2#{index}"
        outputs = (lut2.output5, lut2.output6)
        tables = [
            _table(lut2.init5, len(lut2.inputs)),
            _table(lut2.init6, len(lut2.inputs)),
        ]
        add(_solve_cluster(name, lut2.inputs, outputs, tables), outputs, name)

    # Single-output LUTs sharing an identical input tuple form one cluster
    # (Pop36 shared-input groups; a naive adder's sum/carry pair).
    by_inputs: Dict[Tuple[int, ...], List[int]] = {}
    for index, lut in enumerate(netlist.luts):
        by_inputs.setdefault(lut.inputs, []).append(index)
    for inputs, members in by_inputs.items():
        outputs = tuple(netlist.luts[i].output for i in members)
        tables = [_table(netlist.luts[i].init, len(inputs)) for i in members]
        name = netlist.luts[members[0]].name or f"LUT6#{members[0]}"
        add(_solve_cluster(name, inputs, outputs, tables), outputs, name)

    # Flip-flops: word-level identities (steady-state q = d).
    for index, flop in enumerate(netlist.flops):
        name = flop.name or f"FF#{index}"
        cluster = Cluster(name, (flop.output,), (1,), (flop.data,), 0)
        result.producer[flop.output] = len(result.clusters)
        result.clusters.append(cluster)

    return result


def _topo_order(extraction: _Extraction) -> Optional[List[int]]:
    """Topological order of cluster indices (None on a cycle)."""
    clusters = extraction.clusters
    indegree = [0] * len(clusters)
    dependents: List[List[int]] = [[] for _ in clusters]
    for index, cluster in enumerate(clusters):
        deps = {
            extraction.producer[net]
            for net in cluster.inputs
            if net in extraction.producer
        }
        deps.discard(index)
        indegree[index] = len(deps)
        for dep in deps:
            dependents[dep].append(index)
    ready = [i for i, d in enumerate(indegree) if d == 0]
    order: List[int] = []
    while ready:
        index = ready.pop()
        order.append(index)
        for dependent in dependents[index]:
            indegree[dependent] -= 1
            if indegree[dependent] == 0:
                ready.append(dependent)
    return order if len(order) == len(clusters) else None


def _cone_forces_zero(
    extraction: _Extraction,
    order: Sequence[int],
    target: int,
    cluster_index: int,
) -> bool:
    """Prove a dangling cluster output is constant 0 from its *cone-local*
    word identity.

    A dropped carry can be unresolvable globally (its coefficient is below
    the whole-design count bound) yet trivially zero locally: the tail
    Pop36 of a 300-bit counter only ever sums 12 bits, so its weight-16
    carry cannot fire.  This derives exactly that bound: starting from the
    producing cluster's identity (kept as a signed form ``sum coef*net =
    const``, outputs positive, inputs negative), producer identities are
    substituted in reverse topological order until only primary inputs
    remain negative.  Every net is a bit in [0,1], so::

        w_t * target  <=  const + sum |negative coef|

    and when that bound is below ``w_t`` the carry is forced to 0.  All
    cluster identities were verified by local enumeration, so this is a
    proof, not a heuristic.
    """
    position = {index: rank for rank, index in enumerate(order)}
    # Transitive fan-in cluster set of the target's producer.
    cone = set()
    stack = [cluster_index]
    while stack:
        index = stack.pop()
        if index in cone:
            continue
        cone.add(index)
        for net in extraction.clusters[index].inputs:
            producer = extraction.producer.get(net)
            if producer is not None:
                stack.append(producer)

    # Outputs proven constant 0 by local enumeration are literal zeros:
    # keeping them in the form would manufacture demands on their cones.
    zeros = set()
    for index in cone:
        member = extraction.clusters[index]
        zeros.update(member.const_zero)
        zeros.update(member.virtual_zero)
    if target in zeros:
        return True

    cluster = extraction.clusters[cluster_index]
    zero = Fraction(0)
    form: Dict[int, Fraction] = {}
    for net, weight in zip(cluster.outputs, cluster.weights):
        form[net] = form.get(net, zero) + weight
    for net in cluster.inputs:
        form[net] = form.get(net, zero) - 1
    const = Fraction(cluster.const)

    def settle() -> None:
        nonlocal const
        if VCC in form:
            const -= form.pop(VCC)
        form.pop(GND, None)
        for net in zeros.intersection(form):
            del form[net]

    settle()
    # One reverse-topological sweep: each producer identity is added exactly
    # once, scaled to cancel every demand on its outputs accumulated so far
    # (consumers all sit later in the order, so demands are complete).  On a
    # consistent counting network the cancellation is exact and the form
    # telescopes to the cone's word identity over primary inputs; partial
    # overshoot only leaves non-negative residue, which the bound drops.
    for index in sorted(cone - {cluster_index}, key=lambda i: -position[i]):
        producer = extraction.clusters[index]
        demands = [
            -form.get(net, zero) / weight
            for net, weight in zip(producer.outputs, producer.weights)
            if form.get(net, zero) < 0
        ]
        if not demands:
            continue
        lam = max(demands)
        for net, weight in zip(producer.outputs, producer.weights):
            form[net] = form.get(net, zero) + lam * weight
        for net in producer.inputs:
            form[net] = form.get(net, zero) - lam
        const += lam * producer.const
        settle()

    target_weight = form.get(target, zero)
    if target_weight <= 0:
        return False
    bound = const + sum(-c for c in form.values() if c < 0)
    return bound < target_weight


def prove_count_range(
    netlist: Netlist,
    *,
    in_bus: str = "bits",
    out_bus: str = "score",
) -> WordProof:
    """Prove the range (and, where possible, the exact function) of a
    counting datapath's output word.  See the module docstring for the
    proof system; the result is sound in every field — ``proven`` is only
    set when the elimination closed over primary inputs.
    """
    in_nets = _bus_nets(netlist.inputs, in_bus)
    out_nets = _bus_nets(netlist.outputs, out_bus)
    width = len(in_nets)
    out_width = len(out_nets)

    def fail(reason: str) -> WordProof:
        return WordProof(
            netlist_name=netlist.name,
            out_bus=out_bus,
            in_bus=in_bus,
            proven=False,
            exact=False,
            max_value=(1 << out_width) - 1 if out_width else 0,
            min_value=0,
            width=width,
            out_width=out_width,
            needed_bits=out_width,
            slack_terms=0,
            reason=reason,
        )

    if not in_nets:
        return fail(f"netlist exposes no {in_bus!r} input bus")
    if not out_nets:
        return fail(f"netlist exposes no {out_bus!r} output bus")

    extraction = _extract_clusters(netlist)
    order = _topo_order(extraction)
    if order is None:
        return fail("cluster graph is cyclic (sequential feedback)")

    # -- forward range pass -------------------------------------------------
    hi: Dict[int, int] = {GND: 0, VCC: 1}
    for net in netlist.inputs.values():
        hi[net] = 1
    for net in extraction.opaque:
        hi[net] = 1  # unclustered logic: sound 1-bit bound
    for index in order:
        cluster = extraction.clusters[index]
        word_hi = cluster.const + sum(hi.get(net, 1) for net in cluster.inputs)
        for net, weight in zip(cluster.outputs, cluster.weights):
            if net in cluster.virtual_zero or net in cluster.const_zero:
                hi[net] = 0
            else:
                hi[net] = 0 if weight > word_hi else 1

    # -- backward elimination -----------------------------------------------
    form: Dict[int, int] = {}
    for bit, net in enumerate(out_nets):
        form[net] = form.get(net, 0) + (1 << bit)
    const_acc = 0
    slack: List[Tuple[int, int, str]] = []  # (net, coefficient, cluster name)

    for index in reversed(order):
        cluster = extraction.clusters[index]
        present = [
            (net, weight)
            for net, weight in zip(cluster.outputs, cluster.weights)
            if form.get(net)
        ]
        if not present:
            continue
        lam: Optional[int] = None
        for net, weight in present:
            coefficient = form[net]
            if coefficient % weight:
                lam = None
                break
            candidate = coefficient // weight
            if lam is None:
                lam = candidate
            elif lam != candidate:
                # Mixed scale: only tolerable on provably-zero outputs.
                if hi.get(net, 1) == 0:
                    continue
                lam = None
                break
        if lam is None:
            # Outputs with range 0 can simply be deleted; retry without them.
            zeroed = [net for net, _ in present if hi.get(net, 1) == 0]
            for net in zeroed:
                del form[net]
            present = [(n, w) for n, w in present if n not in zeroed]
            if not present:
                continue
            lams = {form[n] // w for n, w in present if form[n] % w == 0}
            if len(lams) != 1 or any(form[n] % w for n, w in present):
                bad = extraction.clusters[index].name
                return fail(
                    f"cluster {bad!r}: output coefficients are not proportional "
                    "to the verified weights"
                )
            lam = lams.pop()
        for net, weight in zip(cluster.outputs, cluster.weights):
            if net in form:
                del form[net]
            elif hi.get(net, 1) != 0:
                # Dangling (dead or virtual) output: becomes a slack term.
                slack.append((net, lam * weight, cluster.name))
        const_acc += lam * cluster.const
        for net in cluster.inputs:
            form[net] = form.get(net, 0) + lam

    # -- close over primary inputs ------------------------------------------
    input_nets = set(netlist.inputs.values())
    leftovers = [net for net in form if net not in input_nets]
    if leftovers:
        labels = ", ".join(
            extraction.opaque.get(net, f"net {net}") for net in leftovers[:4]
        )
        return fail(f"elimination stuck on non-input terms ({labels})")

    count_hi = const_acc + sum(form.values())
    count_lo = const_acc
    in_set = set(in_nets)
    counts_exactly_bus = (
        set(form) == in_set and all(c == 1 for c in form.values()) and const_acc == 0
    )

    # score_word = count_word - sum(slack_k * c_k):  the upper bound holds
    # regardless of the slack bits; exactness needs each one forced to 0 —
    # either its coefficient exceeds the count bound outright, or its own
    # cone's word identity bounds it (a tail chunk sums far fewer bits).
    unresolved: List[Tuple[int, int, str]] = []
    for entry in slack:
        net, coefficient, _ = entry
        if coefficient > count_hi:
            continue
        producer_index = extraction.producer.get(net)
        if producer_index is not None and _cone_forces_zero(
            extraction, order, net, producer_index
        ):
            continue
        unresolved.append(entry)
    exact = counts_exactly_bus and not unresolved
    if exact:
        reason = (
            f"score = popcount({in_bus}[0..{width - 1}]) exactly; "
            f"range [0, {width}]"
            + (f" ({len(slack)} dropped carries proven 0)" if slack else "")
        )
    elif counts_exactly_bus:
        reason = (
            f"score <= popcount({in_bus}) <= {count_hi} proven, but "
            f"{len(unresolved)} slack term(s) keep equality open"
        )
    else:
        reason = (
            f"score word proven within [{count_lo}, {count_hi}] "
            "(not a pure popcount of the input bus)"
        )
    return WordProof(
        netlist_name=netlist.name,
        out_bus=out_bus,
        in_bus=in_bus,
        proven=True,
        exact=exact,
        max_value=count_hi,
        min_value=0,
        width=width,
        out_width=out_width,
        needed_bits=max(1, count_hi.bit_length()),
        slack_terms=len(slack),
        reason=reason,
    )


@dataclass(frozen=True)
class LaneBudget:
    """A proven counter lane budget: ``width`` one-bit inputs vs ``out_bits``.

    The software analogue of the paper's Pop36 claim (Table I: 750 query
    elements fit a 10-bit count): the budget *fits* when the word-level
    prover establishes that a ``width``-input carry-save pop-counter's
    output word is exactly the popcount — hence at most ``width`` — and
    the bits needed for that maximum do not exceed ``out_bits``.
    """

    width: int
    out_bits: int
    proof: WordProof

    @property
    def proven(self) -> bool:
        return self.proof.proven

    @property
    def exact(self) -> bool:
        return self.proof.exact

    @property
    def max_value(self) -> int:
        return self.proof.max_value

    @property
    def needed_bits(self) -> int:
        return self.proof.needed_bits

    @property
    def fits(self) -> bool:
        """True when the proven maximum count fits ``out_bits`` bits."""
        return self.proof.proven and self.needed_bits <= self.out_bits

    def to_dict(self) -> Dict[str, object]:
        return {
            "width": self.width,
            "out_bits": self.out_bits,
            "needed_bits": self.needed_bits,
            "max_value": self.max_value,
            "proven": self.proven,
            "exact": self.exact,
            "fits": self.fits,
            "proof": self.proof.to_dict(),
        }


@lru_cache(maxsize=8)
def lane_budget(width: int, out_bits: Optional[int] = None) -> LaneBudget:
    """Prove the carry-save lane budget for a ``width``-bit count.

    Builds the paper-style Pop36 pop-counter for ``width`` inputs and runs
    :func:`prove_count_range` over it.  ``out_bits`` is the accumulator
    budget to check against (defaults to the netlist's own score width,
    ``ceil(log2(width+1))``); pass a smaller value to *refute* a budget —
    ``lane_budget(750, out_bits=9).fits`` is False because 750 needs 10
    bits.  Cached (bounded): static rules and the prover CLI ask for the
    same handful of widths repeatedly, and each proof costs ~0.1 s at the
    paper's maximum width.
    """
    from repro.rtl.popcount import build_popcounter

    block = build_popcounter(width, style="fabp", pipelined=False)
    proof = prove_count_range(block.netlist)
    resolved = out_bits if out_bits is not None else proof.out_width
    return LaneBudget(width=width, out_bits=resolved, proof=proof)
