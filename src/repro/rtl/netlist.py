"""A small structural netlist model of FPGA primitives.

The paper's key hardware claims are LUT-level: the custom comparator is
*exactly two* LUT6s per query element, and the hand-crafted Pop36-based
pop-counter is ~20 % smaller than a naive tree adder.  To reproduce those
claims honestly we build the actual netlists out of primitive models and
count them, instead of asserting numbers.

Primitives modeled (the subset FabP instantiates directly, §III-D):

* :class:`Lut6` — any 6-input/1-output function, programmed by a 64-bit
  ``INIT`` vector (Xilinx ``LUT6`` convention: output for input vector ``a``
  is bit ``a`` of ``INIT``, address bit ``i`` driven by input ``i``).
* :class:`Lut6_2` — the fractured dual-output LUT: two functions of the same
  ≤5 inputs (``O5``/``O6``), costing a single physical LUT.  Used for full
  adders in ripple-carry chains.
* :class:`FlipFlop` — a D flip-flop (``FDRE``-style: synchronous, reset to
  ``init``).

Nets are integer handles.  Net 0 is constant 0 and net 1 is constant 1.
The netlist is purely structural; evaluation lives in
:mod:`repro.rtl.simulator`.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

#: Constant-zero and constant-one net handles, present in every netlist.
GND = 0
VCC = 1


class NetlistError(ValueError):
    """Raised on structural errors (bad arity, duplicate drivers, ...)."""


@dataclass(frozen=True)
class Lut6:
    """A 6-input LUT.  ``inputs`` may be shorter than 6; missing inputs are GND."""

    inputs: Tuple[int, ...]
    output: int
    init: int
    name: str = ""

    def __post_init__(self) -> None:
        if len(self.inputs) > 6:
            raise NetlistError(f"LUT6 {self.name!r} has {len(self.inputs)} inputs")
        if not 0 <= self.init < (1 << 64):
            raise NetlistError(f"LUT6 {self.name!r} INIT out of 64-bit range")
        _check_net_handles(self.name, "LUT6", (*self.inputs, self.output))


@dataclass(frozen=True)
class Lut6_2:
    """A fractured LUT: two outputs (O5, O6) from the same ≤5 inputs.

    ``init5``/``init6`` are 32-bit INIT vectors over the shared inputs.
    Physically this is one LUT6 in dual-output mode, so it counts as one LUT.
    """

    inputs: Tuple[int, ...]
    output5: int
    output6: int
    init5: int
    init6: int
    name: str = ""

    def __post_init__(self) -> None:
        if len(self.inputs) > 5:
            raise NetlistError(f"LUT6_2 {self.name!r} has {len(self.inputs)} inputs")
        for init in (self.init5, self.init6):
            if not 0 <= init < (1 << 32):
                raise NetlistError(f"LUT6_2 {self.name!r} INIT out of 32-bit range")
        _check_net_handles(
            self.name, "LUT6_2", (*self.inputs, self.output5, self.output6)
        )


@dataclass(frozen=True)
class FlipFlop:
    """A D flip-flop clocked by the single implicit clock."""

    data: int
    output: int
    init: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        if self.init not in (0, 1):
            # A non-binary init would silently corrupt the simulator's
            # uint8 value planes; reject it at construction.
            raise NetlistError(
                f"FF {self.name!r} init must be 0 or 1, got {self.init!r}"
            )
        _check_net_handles(self.name, "FF", (self.data, self.output))


def _check_net_handles(name: str, kind: str, nets: Tuple[int, ...]) -> None:
    """Primitive-level sanity: net handles are non-negative integers.

    Upper-bound checks against ``num_nets`` need the owning netlist and
    happen in :meth:`Netlist.validate` (and in the ``add_*`` helpers).
    """
    for net in nets:
        try:
            handle = operator.index(net)
        except TypeError:
            raise NetlistError(
                f"{kind} {name!r} has non-integer net handle {net!r}"
            ) from None
        if handle < 0:
            raise NetlistError(f"{kind} {name!r} has negative net handle {net!r}")


@dataclass
class Netlist:
    """A flat netlist: nets, primitives, and named ports."""

    name: str = "top"
    num_nets: int = 2  # GND and VCC pre-exist
    luts: List[Lut6] = field(default_factory=list)
    luts2: List[Lut6_2] = field(default_factory=list)
    flops: List[FlipFlop] = field(default_factory=list)
    inputs: Dict[str, int] = field(default_factory=dict)
    outputs: Dict[str, int] = field(default_factory=dict)
    _drivers: Dict[int, str] = field(default_factory=dict)

    # -- construction -----------------------------------------------------

    def new_net(self, label: str = "") -> int:
        """Allocate a fresh net and return its handle."""
        handle = self.num_nets
        self.num_nets += 1
        return handle

    def new_nets(self, count: int, label: str = "") -> List[int]:
        """Allocate ``count`` fresh nets."""
        return [self.new_net(label) for _ in range(count)]

    def add_input(self, name: str) -> int:
        """Declare a primary input; returns its net."""
        if name in self.inputs:
            raise NetlistError(f"duplicate input {name!r}")
        net = self.new_net(name)
        self.inputs[name] = net
        self._claim(net, f"input {name}")
        return net

    def add_input_bus(self, name: str, width: int) -> List[int]:
        """Declare a bus of inputs ``name[0..width-1]``."""
        return [self.add_input(f"{name}[{i}]") for i in range(width)]

    def set_output(self, name: str, net: int) -> None:
        """Mark a net as a named primary output."""
        if name in self.outputs:
            raise NetlistError(f"duplicate output {name!r}")
        self._check_net(net)
        self.outputs[name] = net

    def set_output_bus(self, name: str, nets: Sequence[int]) -> None:
        """Mark a bus of nets as outputs ``name[0..]``."""
        for i, net in enumerate(nets):
            self.set_output(f"{name}[{i}]", net)

    def add_lut(self, inputs: Sequence[int], init: int, name: str = "") -> int:
        """Instantiate a LUT6; returns its output net."""
        for net in inputs:
            self._check_net(net)
        output = self.new_net(name)
        lut = Lut6(tuple(inputs), output, init, name)
        self._claim(output, f"LUT {name or len(self.luts)}")
        self.luts.append(lut)
        return output

    def add_lut62(
        self, inputs: Sequence[int], init5: int, init6: int, name: str = ""
    ) -> Tuple[int, int]:
        """Instantiate a dual-output LUT6_2; returns ``(o5, o6)`` nets."""
        for net in inputs:
            self._check_net(net)
        o5 = self.new_net(name + ".o5")
        o6 = self.new_net(name + ".o6")
        lut = Lut6_2(tuple(inputs), o5, o6, init5, init6, name)
        self._claim(o5, f"LUT6_2 {name}.O5")
        self._claim(o6, f"LUT6_2 {name}.O6")
        self.luts2.append(lut)
        return o5, o6

    def add_lut_driving(
        self, output: int, inputs: Sequence[int], init: int, name: str = ""
    ) -> None:
        """Instantiate a LUT6 driving a pre-allocated net.

        Needed for sequential feedback (e.g. a clock-enable hold mux whose
        inputs include the Q of the flip-flop it feeds): allocate the D net
        with :meth:`new_net`, create the FF, then drive D here.
        """
        for net in inputs:
            self._check_net(net)
        self._check_net(output)
        self._claim(output, f"LUT {name or len(self.luts)}")
        self.luts.append(Lut6(tuple(inputs), output, init, name))

    def add_ff(self, data: int, init: int = 0, name: str = "") -> int:
        """Instantiate a flip-flop; returns its Q net."""
        self._check_net(data)
        output = self.new_net(name)
        self._claim(output, f"FF {name or len(self.flops)}")
        self.flops.append(FlipFlop(data, output, init, name))
        return output

    def add_ff_driving(self, output: int, data: int, init: int = 0, name: str = "") -> None:
        """Instantiate a flip-flop whose Q drives a pre-allocated net.

        Counterpart of :meth:`add_lut_driving`, used by netlist importers
        that must honor existing net names.
        """
        self._check_net(data)
        self._check_net(output)
        self._claim(output, f"FF {name or len(self.flops)}")
        self.flops.append(FlipFlop(data, output, init, name))

    def add_ff_bus(self, data: Sequence[int], name: str = "") -> List[int]:
        """Register a bus; returns the Q nets."""
        return [self.add_ff(d, name=f"{name}[{i}]") for i, d in enumerate(data)]

    # -- structural audit ---------------------------------------------------

    def validate(self) -> None:
        """Full structural audit; raises :class:`NetlistError` on the first defect.

        The ``add_*`` helpers keep incrementally-built netlists consistent,
        but importers and fault-injection tests append primitives directly to
        the ``luts``/``luts2``/``flops`` lists.  This recomputes everything
        from the primitive lists: net handles in range, exactly one driver
        per driven net, and port nets that exist.
        """
        drivers: Dict[int, str] = {}

        def claim(net: int, driver: str) -> None:
            self._check_net(net)
            if net in (GND, VCC):
                raise NetlistError(
                    f"{driver} drives constant net {net} in {self.name!r}"
                )
            if net in drivers:
                raise NetlistError(
                    f"net {net} driven by both {drivers[net]} and {driver} "
                    f"in {self.name!r}"
                )
            drivers[net] = driver

        for name, net in self.inputs.items():
            claim(net, f"input {name}")
        for index, lut in enumerate(self.luts):
            for net in lut.inputs:
                self._check_net(net)
            claim(lut.output, f"LUT6 {lut.name or index}")
        for index, lut2 in enumerate(self.luts2):
            for net in lut2.inputs:
                self._check_net(net)
            claim(lut2.output5, f"LUT6_2 {lut2.name or index}.O5")
            claim(lut2.output6, f"LUT6_2 {lut2.name or index}.O6")
        for index, ff in enumerate(self.flops):
            self._check_net(ff.data)
            claim(ff.output, f"FF {ff.name or index}")
        for name, net in self.outputs.items():
            self._check_net(net)

    # -- resource accounting ----------------------------------------------

    @property
    def lut_count(self) -> int:
        """Physical LUTs used (LUT6_2 counts once)."""
        return len(self.luts) + len(self.luts2)

    @property
    def ff_count(self) -> int:
        return len(self.flops)

    def stats(self) -> Dict[str, int]:
        """Summary used by the resource model and by tests."""
        return {
            "luts": self.lut_count,
            "ffs": self.ff_count,
            "nets": self.num_nets,
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
        }

    # -- helpers ------------------------------------------------------------

    def _check_net(self, net: int) -> None:
        if not 0 <= net < self.num_nets:
            raise NetlistError(f"net {net} does not exist in {self.name!r}")

    def _claim(self, net: int, driver: str) -> None:
        if net in self._drivers:
            raise NetlistError(
                f"net {net} already driven by {self._drivers[net]}, "
                f"cannot also drive from {driver}"
            )
        self._drivers[net] = driver


def const_net(value: int) -> int:
    """The net handle of a constant bit."""
    if value not in (0, 1):
        raise NetlistError(f"constant must be 0 or 1, got {value!r}")
    return VCC if value else GND
