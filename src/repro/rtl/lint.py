"""Static netlist lint passes over :class:`repro.rtl.netlist.Netlist`.

These passes prove the paper's structural claims — and catch the classic
netlist-construction bugs — without simulating a single vector:

======  ====================  ========  =============================================
Rule    Name                  Severity  Guards
======  ====================  ========  =============================================
NL001   undriven-net          error     every read net has a driver (no X sources)
NL002   multiply-driven       error     single-driver discipline (no bus contention)
NL003   floating-input        warning   every declared port is actually used
NL004   dead-logic            warning   all primitives reach a primary output
NL005   combinational-loop    error     the LUT graph is acyclic (simulable, timable)
NL006   degenerate-init       warning   no LUT wastes a connected input (§III-D
                                        two-LUT budget: wasted inputs should be
                                        fractured into a LUT6_2)
NL007   constant-lut          info      no LUT computes a constant (fold it away)
NL008   score-width           error     pop-counter score width fits its input count
                                        (Table I: 10-bit score at 750 elements)
NL009   comparator-budget     error     exactly 2 LUT6s per query element (§III-D)
======  ====================  ========  =============================================

Rules NL008/NL009 are *interface-triggered*: they only run when the netlist
exposes the conventional buses (``bits``/``score`` for pop-counters,
``match`` outputs for comparators) and are silent otherwise, so a generic
netlist can always be linted with the full registry.

Entry point: :func:`lint_netlist`.  Pass ``symbolic=True`` to append the
SA-family semantic proofs from :mod:`repro.rtl.symbolic_lint`.  See
``docs/lint_rules.md`` for the catalogue and suppression guidance.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.lint import Finding, LintReport, Rule, RuleRegistry, Severity
from repro.rtl.netlist import GND, VCC, Netlist

#: The netlist-domain rule registry (import-time populated, read-only after).
NETLIST_RULES = RuleRegistry("netlist")


@dataclass(frozen=True)
class NetlistLintConfig:
    """Tunables for the interface-triggered rules.

    ``luts_per_element=None`` defers to the paper constant
    :data:`repro.rtl.comparator.LUTS_PER_ELEMENT` at check time.
    """

    count_input_bus: str = "bits"
    score_output_bus: str = "score"
    match_output_bus: str = "match"
    luts_per_element: Optional[int] = None


class _Primitive(NamedTuple):
    """Uniform view of one primitive for graph-style passes."""

    kind: str  # "LUT6" | "LUT6_2" | "FF"
    index: int
    name: str
    inputs: Tuple[int, ...]
    outputs: Tuple[int, ...]


def _primitives(netlist: Netlist) -> Iterator[_Primitive]:
    for index, lut in enumerate(netlist.luts):
        name = lut.name or f"LUT6#{index}"
        yield _Primitive("LUT6", index, name, lut.inputs, (lut.output,))
    for index, lut2 in enumerate(netlist.luts2):
        name = lut2.name or f"LUT6_2#{index}"
        yield _Primitive(
            "LUT6_2", index, name, lut2.inputs, (lut2.output5, lut2.output6)
        )
    for index, flop in enumerate(netlist.flops):
        name = flop.name or f"FF#{index}"
        yield _Primitive("FF", index, name, (flop.data,), (flop.output,))


def _driver_map(netlist: Netlist) -> Dict[int, List[str]]:
    """Recompute net drivers from the primitive lists themselves.

    Independent of the construction-time ``_drivers`` bookkeeping, so
    netlists assembled by direct list manipulation (importers, fault
    injectors) are checked honestly.
    """
    drivers: Dict[int, List[str]] = {GND: ["const GND"], VCC: ["const VCC"]}
    for name, net in netlist.inputs.items():
        drivers.setdefault(net, []).append(f"input {name}")
    for prim in _primitives(netlist):
        for net in prim.outputs:
            drivers.setdefault(net, []).append(f"{prim.kind} {prim.name}")
    return drivers


def _bus_width(ports: Dict[str, int], name: str) -> int:
    """Width of a contiguous ``name[0..k-1]`` bus (0 when absent)."""
    width = 0
    while f"{name}[{width}]" in ports:
        width += 1
    return width


# -- functional LUT analysis -------------------------------------------------


def _lut_profiles(
    inputs: Tuple[int, ...], tables: Sequence[Sequence[int]]
) -> Tuple[bool, List[int]]:
    """Analyze one LUT's function under its actual wiring.

    ``tables[k][address]`` is output ``k``'s bit for ``address`` (addresses
    over the *connected* input positions; unconnected high positions read 0,
    matching the simulator).  Constant nets (GND/VCC) and duplicate nets
    restrict the reachable address set; the analysis enumerates assignments
    of the distinct non-constant nets only.

    Returns ``(is_constant, insensitive_positions)`` where the positions
    index ``inputs`` and name connected, non-constant inputs that affect no
    output under any reachable assignment.
    """
    free_nets: List[int] = []
    for net in inputs:
        if net not in (GND, VCC) and net not in free_nets:
            free_nets.append(net)

    def address_for(assignment: Dict[int, int]) -> int:
        address = 0
        for position, net in enumerate(inputs):
            bit = 1 if net == VCC else 0 if net == GND else assignment[net]
            address |= bit << position
        return address

    outputs_seen: Set[Tuple[int, ...]] = set()
    sensitive: Set[int] = set()
    for bits in product((0, 1), repeat=len(free_nets)):
        assignment = dict(zip(free_nets, bits))
        address = address_for(assignment)
        outputs = tuple(table[address] for table in tables)
        outputs_seen.add(outputs)
        for net in free_nets:
            flipped = dict(assignment)
            flipped[net] = 1 - assignment[net]
            flipped_outputs = tuple(
                table[address_for(flipped)] for table in tables
            )
            if flipped_outputs != outputs:
                sensitive.add(net)
    is_constant = len(outputs_seen) <= 1
    insensitive = [
        position
        for position, net in enumerate(inputs)
        if net not in (GND, VCC)
        and net not in sensitive
        # report each distinct net once, at its first position
        and inputs.index(net) == position
    ]
    return is_constant, insensitive


def _init_table(init: int, width: int) -> List[int]:
    return [(init >> address) & 1 for address in range(1 << width)]


# -- rules -------------------------------------------------------------------


@NETLIST_RULES.register(
    "NL001",
    "undriven-net",
    Severity.ERROR,
    "every net read by a primitive or exported as an output has a driver "
    "(the hardware would float; the simulator silently reads 0)",
)
def _check_undriven(*, rule: Rule, netlist: Netlist, config: NetlistLintConfig) -> Iterator[Finding]:
    drivers = _driver_map(netlist)
    reported: Set[int] = set()
    for prim in _primitives(netlist):
        for net in prim.inputs:
            if net not in drivers and net not in reported:
                reported.add(net)
                yield rule.finding(
                    prim.name,
                    f"net {net} is read but has no driver",
                    suggested_fix="drive the net or wire the pin to GND/VCC",
                )
    for name, net in netlist.outputs.items():
        if net not in drivers and net not in reported:
            reported.add(net)
            yield rule.finding(
                f"output {name}",
                f"output net {net} has no driver",
                suggested_fix="drive the net before exporting it as a port",
            )


@NETLIST_RULES.register(
    "NL002",
    "multiply-driven",
    Severity.ERROR,
    "single-driver discipline: two primitives driving one net short their "
    "outputs together on real fabric",
)
def _check_multiply_driven(*, rule: Rule, netlist: Netlist, config: NetlistLintConfig) -> Iterator[Finding]:
    for net, sources in sorted(_driver_map(netlist).items()):
        if len(sources) > 1:
            yield rule.finding(
                f"net {net}",
                f"driven by {len(sources)} sources: {', '.join(sources)}",
                suggested_fix="keep one driver; mux the others explicitly",
            )


@NETLIST_RULES.register(
    "NL003",
    "floating-input",
    Severity.WARNING,
    "every declared primary input feeds logic (a floating port is almost "
    "always a wiring bug in the generator)",
)
def _check_floating_input(*, rule: Rule, netlist: Netlist, config: NetlistLintConfig) -> Iterator[Finding]:
    used: Set[int] = set()
    for prim in _primitives(netlist):
        used.update(prim.inputs)
    used.update(netlist.outputs.values())
    for name, net in netlist.inputs.items():
        if net not in used:
            yield rule.finding(
                f"input {name}",
                "primary input drives nothing",
                suggested_fix="wire the input or drop the port",
            )


@NETLIST_RULES.register(
    "NL004",
    "dead-logic",
    Severity.WARNING,
    "every primitive lies in the fan-in cone of a primary output (dead "
    "logic silently inflates the resource counts the Table I model scales)",
)
def _check_dead_logic(*, rule: Rule, netlist: Netlist, config: NetlistLintConfig) -> Iterator[Finding]:
    prims = list(_primitives(netlist))
    if not netlist.outputs:
        if prims:
            yield rule.finding(
                netlist.name,
                "netlist declares no primary outputs; every primitive is dead",
                suggested_fix="export the result nets with set_output()",
            )
        return
    producer: Dict[int, _Primitive] = {}
    for prim in prims:
        for net in prim.outputs:
            producer[net] = prim
    live: Set[Tuple[str, int]] = set()
    stack: List[int] = list(netlist.outputs.values())
    seen_nets: Set[int] = set()
    while stack:
        net = stack.pop()
        if net in seen_nets:
            continue
        seen_nets.add(net)
        prim = producer.get(net)
        if prim is None:
            continue
        key = (prim.kind, prim.index)
        if key in live:
            continue
        live.add(key)
        stack.extend(prim.inputs)
    for prim in prims:
        if (prim.kind, prim.index) not in live:
            yield rule.finding(
                prim.name,
                f"{prim.kind} output reaches no primary output",
                suggested_fix="remove the primitive or export its cone",
            )


@NETLIST_RULES.register(
    "NL005",
    "combinational-loop",
    Severity.ERROR,
    "the LUT graph is acyclic — loops are unsimulable and untimable "
    "(sequential feedback must pass through a flip-flop)",
)
def _check_combinational_loop(*, rule: Rule, netlist: Netlist, config: NetlistLintConfig) -> Iterator[Finding]:
    prims = [p for p in _primitives(netlist) if p.kind != "FF"]
    producer: Dict[int, Tuple[str, int]] = {}
    for prim in prims:
        for net in prim.outputs:
            producer[net] = (prim.kind, prim.index)
    by_key = {(p.kind, p.index): p for p in prims}
    indegree: Dict[Tuple[str, int], int] = {}
    dependents: Dict[Tuple[str, int], List[Tuple[str, int]]] = {
        key: [] for key in by_key
    }
    for key, prim in by_key.items():
        deps = {producer[n] for n in prim.inputs if n in producer}
        deps.discard(key)  # self-loop handled by the leftover count below
        if any(n in prim.outputs for n in prim.inputs):
            deps.add(key)  # direct self-loop: make the node unschedulable
        indegree[key] = len(deps)
        for dep in deps:
            if dep != key:
                dependents[dep].append(key)
    ready = [key for key, degree in indegree.items() if degree == 0]
    scheduled = 0
    while ready:
        key = ready.pop()
        scheduled += 1
        for dependent in dependents[key]:
            indegree[dependent] -= 1
            if indegree[dependent] == 0:
                ready.append(dependent)
    if scheduled < len(by_key):
        stuck = [key for key, degree in indegree.items() if degree > 0]
        names = ", ".join(by_key[key].name for key in stuck[:6])
        if len(stuck) > 6:
            names += ", ..."
        yield rule.finding(
            netlist.name,
            f"combinational loop involving {len(stuck)} primitives ({names})",
            suggested_fix="break the cycle with a flip-flop",
        )


@NETLIST_RULES.register(
    "NL006",
    "degenerate-init",
    Severity.WARNING,
    "no LUT ignores a connected input — a wasted input means the function "
    "fits a smaller LUT and could be fractured into a LUT6_2 (§III-D keeps "
    "the comparator at exactly two LUTs by packing functions tightly)",
)
def _check_degenerate_init(*, rule: Rule, netlist: Netlist, config: NetlistLintConfig) -> Iterator[Finding]:
    for prim in _primitives(netlist):
        if prim.kind == "FF":
            continue
        if prim.kind == "LUT6":
            lut = netlist.luts[prim.index]
            tables: List[List[int]] = [_init_table(lut.init, len(lut.inputs))]
        else:
            lut2 = netlist.luts2[prim.index]
            tables = [
                _init_table(lut2.init5, len(lut2.inputs)),
                _init_table(lut2.init6, len(lut2.inputs)),
            ]
        is_constant, insensitive = _lut_profiles(prim.inputs, tables)
        if is_constant:
            continue  # NL007's finding; don't double-report
        for position in insensitive:
            yield rule.finding(
                prim.name,
                f"INIT ignores connected input {position} (net "
                f"{prim.inputs[position]})",
                suggested_fix="disconnect the input, or fracture the LUT "
                "into a LUT6_2 to reuse the wasted capacity",
            )


@NETLIST_RULES.register(
    "NL007",
    "constant-lut",
    Severity.INFO,
    "no LUT computes a constant under its wiring — constants should fold "
    "to GND/VCC instead of burning a LUT (generator padding shows up here)",
)
def _check_constant_lut(*, rule: Rule, netlist: Netlist, config: NetlistLintConfig) -> Iterator[Finding]:
    for prim in _primitives(netlist):
        if prim.kind == "FF":
            continue
        if prim.kind == "LUT6":
            lut = netlist.luts[prim.index]
            tables = [_init_table(lut.init, len(lut.inputs))]
        else:
            lut2 = netlist.luts2[prim.index]
            tables = [
                _init_table(lut2.init5, len(lut2.inputs)),
                _init_table(lut2.init6, len(lut2.inputs)),
            ]
        is_constant, _ = _lut_profiles(prim.inputs, tables)
        if is_constant:
            yield rule.finding(
                prim.name,
                "output is constant under the LUT's wiring",
                suggested_fix="replace the LUT output with GND/VCC",
            )


@NETLIST_RULES.register(
    "NL008",
    "score-width",
    Severity.ERROR,
    "a pop-counter's score bus holds its maximum count: ceil(log2(W+1)) "
    "bits for W inputs — the Table I claim that 750 elements score in 10 "
    "bits is an instance of this bound",
)
def _check_score_width(*, rule: Rule, netlist: Netlist, config: NetlistLintConfig) -> Iterator[Finding]:
    in_width = _bus_width(netlist.inputs, config.count_input_bus)
    out_width = _bus_width(netlist.outputs, config.score_output_bus)
    if not in_width or not out_width:
        return  # interface-triggered rule: silent without both buses
    needed = max(1, in_width.bit_length())
    location = f"output bus {config.score_output_bus}"
    if out_width < needed:
        yield rule.finding(
            location,
            f"score bus is {out_width} bits but a population count of "
            f"{in_width} inputs needs {needed} bits — overflow possible",
            suggested_fix=f"widen the score bus to {needed} bits",
        )
    elif out_width > needed:
        yield rule.finding(
            location,
            f"score bus is {out_width} bits but {needed} suffice for "
            f"{in_width} inputs — the extra bits waste registers",
            suggested_fix=f"truncate the score bus to {needed} bits",
            severity=Severity.INFO,
        )


@NETLIST_RULES.register(
    "NL009",
    "comparator-budget",
    Severity.ERROR,
    "the custom comparator costs exactly LUTS_PER_ELEMENT (= 2) physical "
    "LUTs per query element — the paper's headline §III-D resource claim",
)
def _check_comparator_budget(*, rule: Rule, netlist: Netlist, config: NetlistLintConfig) -> Iterator[Finding]:
    elements = _bus_width(netlist.outputs, config.match_output_bus)
    if not elements:
        return  # interface-triggered rule: silent without a match bus
    per_element = config.luts_per_element
    if per_element is None:
        from repro.rtl.comparator import LUTS_PER_ELEMENT

        per_element = LUTS_PER_ELEMENT
    budget = per_element * elements
    actual = netlist.lut_count
    location = f"{elements}-element comparator"
    if actual > budget:
        yield rule.finding(
            location,
            f"uses {actual} LUTs; the paper budget is {per_element}/element "
            f"= {budget}",
            suggested_fix="re-pack the comparison into the two-LUT form of "
            "Fig. 5 (mux LUT + comparison LUT)",
        )
    elif actual < budget:
        yield rule.finding(
            location,
            f"uses {actual} LUTs, under the {budget}-LUT paper budget — "
            "update the resource model if this is intentional",
            severity=Severity.INFO,
        )


# -- entry points ------------------------------------------------------------


def lint_netlist(
    netlist: Netlist,
    *,
    config: Optional[NetlistLintConfig] = None,
    ignore: Sequence[str] = (),
    rules: Optional[Sequence[str]] = None,
    symbolic: bool = False,
) -> LintReport:
    """Run the netlist rule set; returns a :class:`repro.lint.LintReport`.

    ``ignore`` drops rules by id (suppression); ``rules`` restricts the run
    to an explicit subset (``NL*`` and, with ``symbolic=True``, ``SA*``
    ids).  ``symbolic=True`` appends the SA-family proofs from
    :mod:`repro.rtl.symbolic_lint` to the structural findings.
    """
    nl_rules = rules
    sa_rules = None
    if rules is not None:
        nl_rules = [r for r in rules if not r.upper().startswith("SA")]
        sa_rules = [r for r in rules if r.upper().startswith("SA")]
    report = NETLIST_RULES.run(
        netlist.name,
        ignore=ignore,
        rules=nl_rules,
        netlist=netlist,
        config=config or NetlistLintConfig(),
    )
    if symbolic:
        # Imported lazily: the symbolic engines are heavier than the
        # structural passes and only needed behind the --symbolic flag.
        from repro.rtl.symbolic_lint import lint_netlist_symbolic

        symbolic_report = lint_netlist_symbolic(
            netlist, ignore=ignore, rules=sa_rules
        )
        report = LintReport(
            subject=report.subject,
            findings=report.findings + symbolic_report.findings,
        )
    return report


def demo_designs() -> List[Tuple[str, Netlist]]:
    """The built-in design points ``fabp-repro lint`` checks by default.

    Element and instance comparators (the §III-D two-LUT claim), fabp-style
    pop-counters at 36/72/750 inputs (the Table I 10-bit score bound at the
    paper's maximum query length) and the naive tree-adder baseline.
    """
    from repro.rtl.comparator import build_element_comparator, build_instance_comparator
    from repro.rtl.popcount import build_popcounter

    designs: List[Tuple[str, Netlist]] = [
        ("element_comparator", build_element_comparator()),
        ("instance_comparator_4", build_instance_comparator(4)),
    ]
    for width in (36, 72, 750):
        designs.append(
            (f"popcounter_fabp_{width}", build_popcounter(width, style="fabp").netlist)
        )
    designs.append(
        ("popcounter_tree_36", build_popcounter(36, style="tree").netlist)
    )
    return designs
