"""Pop-counter netlists (§III-D, Fig. 4).

The alignment score is the population count of the comparator's match bits.
Pop-counters dominate FabP's area (one per alignment instance), so the paper
hand-crafts them around **Pop36**: a block that sums 36 bits into a 6-bit
count.  Its first stage is six groups of three LUT6s sharing six inputs
(each group = a 6-bit popcount emitting a 3-bit result); the groups' results
are then "summed up together according to their bit order" — a column-wise
compression reusing the same 3-LUT popcount trick — and a final ripple adder
merges the shifted partial sums.

Two construction styles are provided so the paper's 20 % area claim can be
measured instead of asserted:

* :func:`add_pop36` / ``style="fabp"`` — the hand-crafted compressor;
* ``style="tree"`` — the "simple HDL description of a tree-adder-style
  Pop-Counter": a binary tree of ripple-carry adders as a synthesizer would
  emit from ``score = b0 + b1 + ... ;`` with plain single-output LUTs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.rtl.netlist import GND, Netlist

#: Bits summed by one Pop36 block.
POP36_WIDTH = 36


def lut_init(function: Callable[..., int], num_inputs: int) -> int:
    """Build a LUT INIT vector by enumerating ``function`` over its inputs.

    Address bit ``i`` carries input ``i``; unused high inputs (when the LUT
    is wired with fewer than 6 nets) read 0, so only the low ``2**n``
    addresses matter — we still fill all 64 for LUT6s by ignoring high bits.
    """
    init = 0
    for address in range(1 << num_inputs):
        bits = [(address >> i) & 1 for i in range(num_inputs)]
        if function(*bits):
            init |= 1 << address
    return init


def _popcount_bit(bit: int) -> Callable[..., int]:
    def function(*inputs: int) -> int:
        return (sum(inputs) >> bit) & 1

    return function


#: INIT vectors of the three shared-input popcount-of-6 LUTs.
POPCOUNT6_INITS: Tuple[int, int, int] = (
    lut_init(_popcount_bit(0), 6),
    lut_init(_popcount_bit(1), 6),
    lut_init(_popcount_bit(2), 6),
)

_FA_SUM_INIT5 = lut_init(lambda a, b, c: a ^ b ^ c, 3) & 0xFFFFFFFF
_FA_CARRY_INIT5 = lut_init(lambda a, b, c: int(a + b + c >= 2), 3) & 0xFFFFFFFF
_FA_SUM_INIT64 = lut_init(lambda a, b, c: a ^ b ^ c, 3)
_FA_CARRY_INIT64 = lut_init(lambda a, b, c: int(a + b + c >= 2), 3)


def add_popcount6(
    netlist: Netlist, inputs: Sequence[int], name: str = "pc6", *, max_bits: int = 3
) -> List[int]:
    """Sum up to six bits with shared-input LUT6s; returns up to 3 count bits.

    Count bit ``b`` can only be non-zero when at least ``2**b`` inputs are
    real (non-GND) nets, so provably-zero bits are returned as ``GND``
    instead of spending a constant LUT; ``max_bits`` lets the caller trim
    further when it can bound the total (lint rules NL004/NL007 keep this
    honest).  The full-width case still costs exactly three LUTs.
    """
    if not 1 <= len(inputs) <= 6:
        raise ValueError(f"popcount6 takes 1..6 inputs, got {len(inputs)}")
    if max_bits < 1:
        raise ValueError(f"max_bits must be >= 1, got {max_bits}")
    padded = list(inputs) + [GND] * (6 - len(inputs))
    real = sum(1 for net in inputs if net != GND)
    return [
        netlist.add_lut(padded, POPCOUNT6_INITS[bit], name=f"{name}.b{bit}")
        if real >= (1 << bit)
        else GND
        for bit in range(min(3, max_bits))
    ]


def add_ripple_adder(
    netlist: Netlist,
    a_bits: Sequence[int],
    b_bits: Sequence[int],
    name: str = "add",
    *,
    fractured: bool = True,
    max_bits: Optional[int] = None,
) -> List[int]:
    """Add two unsigned bit vectors; returns ``max(len)+1`` sum bits.

    ``fractured=True`` packs each full adder into one dual-output LUT6_2
    (sum on O6, carry on O5) — the hand-optimized style.  ``fractured=False``
    spends two single-output LUTs per bit — the naive HDL style.

    ``max_bits`` caps the result width when the *caller* can prove the sum
    fits (e.g. a pop-counter partial sum bounded by its input count): sum
    bits past the cap are never built, and in the naive style the final
    carry LUT is skipped when its carry-out is unused — so provably-dead
    logic is never instantiated (lint rule NL004 keeps this honest).
    """
    width = max(len(a_bits), len(b_bits))
    if width == 0:
        raise ValueError("cannot add empty vectors")
    if max_bits is not None and max_bits < 1:
        raise ValueError(f"max_bits must be >= 1, got {max_bits}")
    out_width = width + 1 if max_bits is None else min(width + 1, max_bits)
    a = list(a_bits) + [GND] * (width - len(a_bits))
    b = list(b_bits) + [GND] * (width - len(b_bits))
    carry = GND
    sums: List[int] = []
    produce = min(width, out_width)
    for i in range(produce):
        need_carry = i < produce - 1 or out_width > width
        if fractured:
            cout, sum_bit = netlist.add_lut62(
                (a[i], b[i], carry),
                _FA_CARRY_INIT5,
                _FA_SUM_INIT5,
                name=f"{name}.fa{i}",
            )
        else:
            sum_bit = netlist.add_lut(
                (a[i], b[i], carry), _FA_SUM_INIT64, name=f"{name}.s{i}"
            )
            cout = (
                netlist.add_lut(
                    (a[i], b[i], carry), _FA_CARRY_INIT64, name=f"{name}.c{i}"
                )
                if need_carry
                else GND
            )
        sums.append(sum_bit)
        carry = cout
    if out_width > width:
        sums.append(carry)
    return sums


def add_pop36(
    netlist: Netlist, inputs: Sequence[int], name: str = "pop36", *, max_bits: int = 6
) -> List[int]:
    """The hand-crafted Pop36 block; returns up to 6 count bits (Fig. 4).

    Accepts 1..36 inputs (short tails are padded with constant zero, which
    costs nothing in the LUT INIT).  Short tails never instantiate logic
    for provably-zero count bits: empty groups and columns fold to ``GND``
    (via :func:`add_popcount6`), and ``max_bits`` caps the whole block when
    the caller can bound the count — the full 36-input block is bit-for-bit
    the paper's 36-LUT structure.
    """
    if not 1 <= len(inputs) <= POP36_WIDTH:
        raise ValueError(f"Pop36 takes 1..36 inputs, got {len(inputs)}")
    if max_bits < 1:
        raise ValueError(f"max_bits must be >= 1, got {max_bits}")
    cap = min(6, max_bits)
    padded = list(inputs) + [GND] * (POP36_WIDTH - len(inputs))
    # Stage 1: six shared-input popcount6 groups -> six 3-bit counts (18 LUTs).
    groups = [
        add_popcount6(
            netlist, padded[g * 6 : (g + 1) * 6], name=f"{name}.g{g}", max_bits=min(3, cap)
        )
        for g in range(6)
    ]
    # Stage 2: column-wise compression "according to their bit order":
    # the six weight-2^b bits of the group counts are themselves popcounted
    # (9 LUTs), giving three 3-bit partial sums with weights 1, 2, 4.  A
    # weight-2^b partial is bounded by total/2^b, so its width caps too.
    partials = [
        add_popcount6(
            netlist,
            [groups[g][bit] for g in range(6)],
            name=f"{name}.col{bit}",
            max_bits=cap - bit,
        )
        for bit in range(min(3, cap))
    ]
    # Stage 3: total = p0 + (p1 << 1) + (p2 << 2), two fractured ripple adders.
    # All-GND partials (possible on short tails) contribute nothing and are
    # skipped outright rather than fed through a degenerate adder.
    total = partials[0]
    for bit in (1, 2):
        if bit < len(partials) and any(net != GND for net in partials[bit]):
            shifted = [GND] * bit + list(partials[bit])
            total = add_ripple_adder(
                netlist, total, shifted, name=f"{name}.a{bit - 1}", max_bits=cap
            )
    return total[:cap]


def add_tree_adder_popcount(
    netlist: Netlist, inputs: Sequence[int], name: str = "tree", *, fractured: bool = False
) -> List[int]:
    """Naive tree-adder popcount: binary tree of ripple-carry adders.

    With ``fractured=False`` (default) every full adder costs two LUTs —
    modelling the paper's "simple HDL description".
    """
    if not inputs:
        raise ValueError("popcount of zero bits")
    # Any partial sum is bounded by the total input count, so every adder
    # can be capped at the final score width — a synthesizer would likewise
    # trim the provably-zero high bits.
    needed = max(1, len(inputs).bit_length())
    values: List[List[int]] = [[bit] for bit in inputs]
    level = 0
    while len(values) > 1:
        next_values: List[List[int]] = []
        for i in range(0, len(values) - 1, 2):
            next_values.append(
                add_ripple_adder(
                    netlist,
                    values[i],
                    values[i + 1],
                    name=f"{name}.l{level}.a{i // 2}",
                    fractured=fractured,
                    max_bits=needed,
                )
            )
        if len(values) % 2:
            next_values.append(values[-1])
        values = next_values
        level += 1
    result = values[0]
    max_count = len(inputs)
    needed = max(1, max_count.bit_length())
    return result[:needed]


@dataclass(frozen=True)
class PopCounterBlock:
    """A built pop-counter: its netlist, I/O names and pipeline latency."""

    netlist: Netlist
    width: int
    score_bits: int
    latency: int
    style: str

    @property
    def lut_count(self) -> int:
        return self.netlist.lut_count

    @property
    def ff_count(self) -> int:
        return self.netlist.ff_count


def build_popcounter(
    width: int, *, style: str = "fabp", pipelined: bool = True
) -> PopCounterBlock:
    """Build a full match-vector pop-counter for ``width`` input bits.

    ``style="fabp"`` chunks the input into Pop36 blocks and merges their
    6-bit counts with a fractured adder tree; ``style="tree"`` is the naive
    single-output-LUT adder tree.  With ``pipelined=True`` a register stage
    follows the Pop36 layer and every merge level (the paper's deep
    pipeline); latency is the number of register stages.

    Inputs: ``bits[0..width-1]``; outputs: ``score[0..]`` sized to hold
    ``width`` (10 bits at the paper's maximum of 750 elements).
    """
    if width < 1:
        raise ValueError("pop-counter width must be >= 1")
    if style not in ("fabp", "tree"):
        raise ValueError(f"unknown pop-counter style {style!r}")
    netlist = Netlist(name=f"popcounter_{style}_{width}")
    bits = netlist.add_input_bus("bits", width)
    latency = 0
    needed = max(1, width.bit_length())

    if style == "tree":
        score = add_tree_adder_popcount(netlist, bits, fractured=False)
        if pipelined:
            score = netlist.add_ff_bus(score, name="score_ff")
            latency = 1
    else:
        chunks = [bits[i : i + POP36_WIDTH] for i in range(0, width, POP36_WIDTH)]
        # Chunk counts and every merge level are capped at the final score
        # width (a partial popcount can never exceed the total input count),
        # so the pipeline registers no provably-dead bits.
        counts = [
            add_pop36(
                netlist,
                chunk,
                name=f"pop36_{i}",
                max_bits=min(needed, max(1, len(chunk).bit_length())),
            )
            for i, chunk in enumerate(chunks)
        ]
        if pipelined:
            counts = [netlist.add_ff_bus(c, name=f"p36ff_{i}") for i, c in enumerate(counts)]
            latency += 1
        level = 0
        while len(counts) > 1:
            merged: List[List[int]] = []
            for i in range(0, len(counts) - 1, 2):
                merged.append(
                    add_ripple_adder(
                        netlist,
                        counts[i],
                        counts[i + 1],
                        name=f"m{level}.a{i // 2}",
                        max_bits=needed,
                    )
                )
            if len(counts) % 2:
                merged.append(counts[-1])
            if pipelined:
                merged = [
                    netlist.add_ff_bus(value, name=f"m{level}ff_{i}")
                    for i, value in enumerate(merged)
                ]
                latency += 1
            counts = merged
            level += 1
        score = counts[0]

    score = score[:needed]
    netlist.set_output_bus("score", score)
    return PopCounterBlock(
        netlist=netlist,
        width=width,
        score_bits=len(score),
        latency=latency,
        style=style,
    )
