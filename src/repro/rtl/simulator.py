"""Cycle-driven functional simulator for :class:`repro.rtl.netlist.Netlist`.

Evaluation model:

* all combinational primitives (LUTs) are levelized once at construction —
  a topological order over the net graph; combinational loops are rejected;
* :meth:`Simulator.step` applies primary inputs, settles combinational
  logic, samples outputs, then clocks every flip-flop — i.e. outputs
  observed at cycle *t* are the pre-edge values, like a waveform viewer;
* values are numpy ``uint8`` arrays, so a single pass can evaluate a whole
  *batch* of input vectors in parallel (exhaustive LUT verification runs all
  64 comparator input combinations in one step).

This is a functional simulator: no timing, single implicit clock, no X
propagation (undriven nets read 0, matching FPGA GND defaults).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple, Union

import numpy as np

from repro.rtl.netlist import VCC, Netlist, NetlistError

Value = Union[int, np.ndarray]


class CombinationalLoopError(NetlistError):
    """Raised when the combinational netlist graph is cyclic."""


class Simulator:
    """Simulate a netlist cycle by cycle (optionally batched)."""

    def __init__(self, netlist: Netlist, batch: int = 1) -> None:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.netlist = netlist
        self.batch = batch
        self._order = self._levelize(netlist)
        self._values = np.zeros((netlist.num_nets, batch), dtype=np.uint8)
        self._values[VCC] = 1
        for flop in netlist.flops:
            self._values[flop.output] = flop.init
        self._settled = False
        # Precompute per-LUT init bit arrays for vectorized lookup.
        self._init_bits: Dict[int, np.ndarray] = {}
        for index, lut in enumerate(netlist.luts):
            bits = np.array([(lut.init >> a) & 1 for a in range(64)], dtype=np.uint8)
            self._init_bits[index] = bits
        self._init_bits2: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        for index, lut in enumerate(netlist.luts2):
            bits5 = np.array([(lut.init5 >> a) & 1 for a in range(32)], dtype=np.uint8)
            bits6 = np.array([(lut.init6 >> a) & 1 for a in range(32)], dtype=np.uint8)
            self._init_bits2[index] = (bits5, bits6)

    # -- public API ---------------------------------------------------------

    def step(self, inputs: Mapping[str, Value] = ()) -> Dict[str, np.ndarray]:
        """Advance one clock cycle; returns the pre-edge output values."""
        outputs = self.settle(inputs)
        self._clock()
        return outputs

    def settle(self, inputs: Mapping[str, Value] = ()) -> Dict[str, np.ndarray]:
        """Apply inputs and propagate combinationally (no clock edge)."""
        if inputs:
            self._apply_inputs(inputs)
        self._evaluate()
        self._settled = True
        return self.read_outputs()

    def run(
        self, input_stream: Iterable[Mapping[str, Value]]
    ) -> List[Dict[str, np.ndarray]]:
        """Clock the design once per element of ``input_stream``."""
        return [self.step(vector) for vector in input_stream]

    def read_outputs(self) -> Dict[str, np.ndarray]:
        """Current values of all declared outputs."""
        return {
            name: self._values[net].copy()
            for name, net in self.netlist.outputs.items()
        }

    def output_bus(self, name: str) -> np.ndarray:
        """Read output bus ``name[*]`` as integers (shape: batch)."""
        values = np.zeros(self.batch, dtype=np.int64)
        bit = 0
        while f"{name}[{bit}]" in self.netlist.outputs:
            net = self.netlist.outputs[f"{name}[{bit}]"]
            values |= self._values[net].astype(np.int64) << bit
            bit += 1
        if bit == 0:
            raise KeyError(f"no output bus named {name!r}")
        return values

    def set_input_bus(self, name: str, values: Value) -> Dict[str, Value]:
        """Build the input mapping that drives bus ``name[*]`` with integers."""
        values = np.asarray(values, dtype=np.int64)
        mapping: Dict[str, Value] = {}
        bit = 0
        while f"{name}[{bit}]" in self.netlist.inputs:
            mapping[f"{name}[{bit}]"] = ((values >> bit) & 1).astype(np.uint8)
            bit += 1
        if bit == 0:
            raise KeyError(f"no input bus named {name!r}")
        return mapping

    def peek(self, net: int) -> np.ndarray:
        """Read an arbitrary net (debug aid)."""
        return self._values[net].copy()

    # -- internals ----------------------------------------------------------

    def _apply_inputs(self, inputs: Mapping[str, Value]) -> None:
        for name, value in inputs.items():
            try:
                net = self.netlist.inputs[name]
            except KeyError:
                raise KeyError(f"no input named {name!r}") from None
            arr = np.asarray(value, dtype=np.uint8)
            if arr.ndim == 0:
                arr = np.full(self.batch, int(arr), dtype=np.uint8)
            if arr.shape != (self.batch,):
                raise ValueError(
                    f"input {name!r}: expected shape ({self.batch},), got {arr.shape}"
                )
            if arr.max(initial=0) > 1:
                raise ValueError(f"input {name!r} carries non-binary values")
            self._values[net] = arr

    def _evaluate(self) -> None:
        values = self._values
        for kind, index in self._order:
            if kind == 0:
                lut = self.netlist.luts[index]
                address = np.zeros(self.batch, dtype=np.uint8)
                for bit, net in enumerate(lut.inputs):
                    address |= values[net] << bit
                values[lut.output] = self._init_bits[index][address]
            else:
                lut2 = self.netlist.luts2[index]
                address = np.zeros(self.batch, dtype=np.uint8)
                for bit, net in enumerate(lut2.inputs):
                    address |= values[net] << bit
                bits5, bits6 = self._init_bits2[index]
                values[lut2.output5] = bits5[address]
                values[lut2.output6] = bits6[address]

    def _clock(self) -> None:
        if not self._settled:
            self._evaluate()
        # Sample all D pins before updating any Q (two-phase, race-free).
        sampled = [self._values[flop.data].copy() for flop in self.netlist.flops]
        for flop, value in zip(self.netlist.flops, sampled):
            self._values[flop.output] = value
        self._settled = False

    @staticmethod
    def _levelize(netlist: Netlist) -> List[Tuple[int, int]]:
        """Topologically order combinational primitives.

        FF outputs, primary inputs and constants are level-0 sources; each
        LUT is scheduled after all its input drivers.  Returns a list of
        ``(kind, index)`` with kind 0 = Lut6, 1 = Lut6_2.
        """
        producers: Dict[int, Tuple[int, int]] = {}
        for index, lut in enumerate(netlist.luts):
            producers[lut.output] = (0, index)
        for index, lut2 in enumerate(netlist.luts2):
            producers[lut2.output5] = (1, index)
            producers[lut2.output6] = (1, index)

        nodes: List[Tuple[int, int]] = [(0, i) for i in range(len(netlist.luts))]
        nodes += [(1, i) for i in range(len(netlist.luts2))]

        def node_inputs(node: Tuple[int, int]) -> Sequence[int]:
            kind, index = node
            return (
                netlist.luts[index].inputs if kind == 0 else netlist.luts2[index].inputs
            )

        # Kahn's algorithm (iterative: ripple-carry chains get very deep).
        indegree: Dict[Tuple[int, int], int] = {}
        dependents: Dict[Tuple[int, int], List[Tuple[int, int]]] = {n: [] for n in nodes}
        for node in nodes:
            deps = {producers[n] for n in node_inputs(node) if n in producers}
            indegree[node] = len(deps)
            for dep in deps:
                dependents[dep].append(node)
        ready = [node for node in nodes if indegree[node] == 0]
        order: List[Tuple[int, int]] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for dependent in dependents[node]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(nodes):
            raise CombinationalLoopError(
                f"combinational loop among {len(nodes) - len(order)} primitives "
                f"in {netlist.name!r}"
            )
        return order
