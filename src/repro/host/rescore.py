"""Host-side rescoring: verify FabP hits with gapped Smith-Waterman.

This is the deployment pattern the paper's architecture implies but leaves
to the host: the FPGA is a massively parallel *filter* that reduces a
gigabyte-scale database to a handful of candidate positions; the host then
spends CPU time only on those, running a full gapped protein alignment (and
Karlin-Altschul statistics) on a small window around each hit.  The
combination restores indel tolerance and E-value ranking at negligible
cost — exactly what substitution-only scoring gives up.

Pipeline: hit position -> translate the window in the hit's frame ->
gapped Smith-Waterman (BLOSUM62) against the query -> E-value -> rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.evalue import KarlinAltschulParams, default_protein_params
from repro.baselines.scoring import ProteinScoring
from repro.baselines.smith_waterman import LocalAlignment, smith_waterman
from repro.core.encoding import EncodedQuery, encode_query
from repro.host.session import HostSearchResult, NamedHit
from repro.seq.sequence import RnaSequence
from repro.seq.translate import translate


@dataclass(frozen=True)
class RescoredHit:
    """A FabP hit after gapped verification on the host."""

    hit: NamedHit
    alignment: LocalAlignment
    evalue: float
    bit_score: float

    @property
    def accepted(self) -> bool:
        """Convenience: did the gapped alignment confirm the hit at all?"""
        return self.alignment.score > 0

    def __str__(self) -> str:
        return (
            f"RescoredHit({self.hit}, sw={self.alignment.score}, "
            f"E={self.evalue:.2g})"
        )


@dataclass(frozen=True)
class RescoreReport:
    """Ranked, verified hits for one query."""

    query: EncodedQuery
    hits: Tuple[RescoredHit, ...]
    max_evalue: float

    @property
    def best(self) -> Optional[RescoredHit]:
        return self.hits[0] if self.hits else None

    def __str__(self) -> str:
        return f"RescoreReport({len(self.hits)} verified hits)"


def rescore_hits(
    query,
    hits: Sequence[NamedHit],
    references: Dict[str, str],
    *,
    window_margin_codons: int = 10,
    max_evalue: float = 1e-3,
    scoring: Optional[ProteinScoring] = None,
    params: Optional[KarlinAltschulParams] = None,
) -> RescoreReport:
    """Verify FabP hits with gapped SW and rank by E-value.

    ``references`` maps reference names to their RNA/DNA text.  Each hit's
    window (the aligned span ± ``window_margin_codons`` codons) is extracted
    in the hit's reading frame and strand, translated, and aligned to the
    protein query; hits above ``max_evalue`` are dropped.
    """
    encoded = query if isinstance(query, EncodedQuery) else encode_query(query)
    protein = encoded.protein.letters
    scoring = scoring if scoring is not None else ProteinScoring()
    params = params if params is not None else default_protein_params()
    database_len = sum(len(text) for text in references.values()) // 3 or 1

    rescored: List[RescoredHit] = []
    for hit in hits:
        text = references.get(hit.reference)
        if text is None:
            raise KeyError(f"hit references unknown sequence {hit.reference!r}")
        window = _extract_window(
            text, hit, len(encoded), margin=3 * window_margin_codons
        )
        subject = translate(window).letters
        alignment = smith_waterman(protein, subject, scoring)
        evalue = params.evalue(alignment.score, len(protein), database_len)
        if evalue <= max_evalue:
            rescored.append(
                RescoredHit(
                    hit=hit,
                    alignment=alignment,
                    evalue=evalue,
                    bit_score=params.bit_score(alignment.score),
                )
            )
    rescored.sort(key=lambda r: (r.evalue, -r.alignment.score))
    return RescoreReport(query=encoded, hits=tuple(rescored), max_evalue=max_evalue)


def rescore_search_result(
    result: HostSearchResult,
    references: Dict[str, str],
    **options,
) -> RescoreReport:
    """Rescore everything a :meth:`FabPHost.search` call returned."""
    return rescore_hits(result.query, result.hits, references, **options)


def _extract_window(text: str, hit: NamedHit, span: int, margin: int) -> RnaSequence:
    """The hit's aligned region ± margin, oriented to the hit's strand.

    Kept frame-aligned to the hit position: the returned window starts an
    exact multiple of 3 before the hit so frame-0 translation matches the
    hit's codon boundaries.
    """
    from repro.seq.sequence import as_rna

    rna = as_rna(text)
    if hit.strand == "-":
        rna = rna.reverse_complement()
        start = len(rna.letters) - hit.position - span
    else:
        start = hit.position
    margin = (margin // 3) * 3
    lo = max(0, start - margin)
    lo += (start - lo) % 3  # stay frame-aligned with the hit
    hi = min(len(rna.letters), start + span + margin)
    return RnaSequence(rna.letters[lo:hi])
