"""Deterministic fault injection for the supervised scan runtime.

Fault-tolerance code that is only ever exercised by real failures is
untested code.  A :class:`FaultPlan` makes chosen chunks of a database scan
misbehave in fully reproducible ways so the retry/timeout/checkpoint
machinery in :mod:`repro.host.resilience` can be driven through every
failure path in CI:

* ``crash``   — the worker process holding the chunk dies (``os._exit``);
* ``hang``    — the worker sleeps past the per-chunk timeout and must be
  killed by the supervisor;
* ``raise``   — the chunk raises a (typed) exception back to the driver;
* ``corrupt`` — the chunk returns structurally plausible but wrong data
  (out-of-range scores, perturbed lengths) that the per-chunk sanity check
  must catch and turn into a retry.

Faults are keyed on ``(chunk index, attempt number)``: a spec with
``attempts=N`` fires on attempts ``0 .. N-1`` and then lets the chunk
succeed, so any plan with a finite ``attempts`` and a retry budget
``>= attempts`` is recoverable.  Plans are value objects (picklable, so a
forked or spawned worker can carry one) and every generated plan is a pure
function of its seed.

:class:`ShardFaultPlan` extends the same idea to the sharded runtime in
:mod:`repro.host.shards`: faults keyed on ``(shard, chunk, attempt)``
(CLI grammar ``shard:IDX:KIND[:CHUNK[:ATTEMPTS]]``) fire inside a chosen
shard runner, so shard crash/hang/corrupt recovery — elastic resume,
hedging, dead-shard degradation — is deterministically injectable too.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: Attempts value meaning "fault on every attempt" (never recovers on its own).
ALWAYS = 1_000_000


class FaultKind(str, enum.Enum):
    """The four ways a chunk can misbehave."""

    CRASH = "crash"
    HANG = "hang"
    RAISE = "raise"
    CORRUPT = "corrupt"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Kinds that a recoverable plan may draw from (all of them).
ALL_KINDS: Tuple[FaultKind, ...] = (
    FaultKind.CRASH,
    FaultKind.HANG,
    FaultKind.RAISE,
    FaultKind.CORRUPT,
)


@dataclass(frozen=True)
class FaultSpec:
    """One chunk's planned misbehaviour.

    ``attempts`` is how many leading attempts fault before the chunk is
    allowed to succeed; :data:`ALWAYS` makes it permanent (useful to force
    retry exhaustion and degradation).
    """

    chunk: int
    kind: FaultKind
    attempts: int = 1

    def fires(self, attempt: int) -> bool:
        return attempt < self.attempts


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of per-chunk faults.

    The plan is consulted by workers (and the serial fallback) via
    :meth:`lookup`; two plans built from the same arguments are equal, and
    a plan survives pickling into worker processes unchanged.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: Optional[int] = None
    #: How long a ``hang`` fault sleeps; the supervisor kills the worker at
    #: the policy timeout, so this only bounds unsupervised (serial) hangs.
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        seen: Dict[int, FaultSpec] = {}
        for spec in self.specs:
            if spec.chunk < 0:
                raise ValueError(f"fault chunk index {spec.chunk} is negative")
            if spec.chunk in seen:
                raise ValueError(f"duplicate fault spec for chunk {spec.chunk}")
            seen[spec.chunk] = spec

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_seed(
        cls,
        seed: int,
        num_chunks: int,
        *,
        rate: float = 0.3,
        kinds: Sequence[FaultKind] = ALL_KINDS,
        max_attempts: int = 1,
        hang_seconds: float = 3600.0,
    ) -> "FaultPlan":
        """Draw a reproducible plan: each chunk faults with ``rate``.

        Uses ``random.Random(seed)`` so the plan depends only on the
        arguments, never on global state.  ``max_attempts`` bounds how many
        leading attempts each chosen chunk faults (uniform in
        ``1..max_attempts``), so the plan is recoverable with a retry
        budget ``>= max_attempts``.
        """
        import random

        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not kinds:
            raise ValueError("kinds must be non-empty")
        rng = random.Random(seed)
        specs: List[FaultSpec] = []
        for chunk in range(num_chunks):
            if rng.random() < rate:
                kind = kinds[rng.randrange(len(kinds))]
                attempts = rng.randint(1, max_attempts)
                specs.append(FaultSpec(chunk, kind, attempts))
        return cls(specs=tuple(specs), seed=seed, hang_seconds=hang_seconds)

    @classmethod
    def parse(cls, text: str, *, hang_seconds: float = 3600.0) -> "FaultPlan":
        """Parse a CLI spec like ``"1:crash,4:hang,7:corrupt:3"``.

        Each comma-separated item is ``CHUNK:KIND[:ATTEMPTS]``; ``ATTEMPTS``
        defaults to 1 and accepts ``always`` for a permanent fault.
        """
        specs: List[FaultSpec] = []
        for item in filter(None, (piece.strip() for piece in text.split(","))):
            parts = item.split(":")
            if len(parts) not in (2, 3):
                raise ValueError(
                    f"bad fault spec {item!r}; expected CHUNK:KIND[:ATTEMPTS]"
                )
            try:
                chunk = int(parts[0])
            except ValueError:
                raise ValueError(f"bad fault chunk index {parts[0]!r}") from None
            try:
                kind = FaultKind(parts[1].lower())
            except ValueError:
                raise ValueError(
                    f"unknown fault kind {parts[1]!r}; expected one of "
                    + "/".join(k.value for k in ALL_KINDS)
                ) from None
            attempts = 1
            if len(parts) == 3:
                attempts = (
                    ALWAYS if parts[2].lower() == "always" else int(parts[2])
                )
            specs.append(FaultSpec(chunk, kind, attempts))
        return cls(specs=tuple(specs), hang_seconds=hang_seconds)

    # -- queries --------------------------------------------------------------

    def lookup(self, chunk: int, attempt: int) -> Optional[FaultKind]:
        """The fault (if any) that fires for this chunk attempt."""
        for spec in self.specs:
            if spec.chunk == chunk and spec.fires(attempt):
                return spec.kind
        return None

    @property
    def recoverable_attempts(self) -> int:
        """Retries needed to outlast every non-permanent fault (0 if none)."""
        finite = [s.attempts for s in self.specs if s.attempts < ALWAYS]
        return max(finite, default=0)

    @property
    def permanent_chunks(self) -> Tuple[int, ...]:
        """Chunks that fault on every attempt (force degradation/failure)."""
        return tuple(s.chunk for s in self.specs if s.attempts >= ALWAYS)

    def __bool__(self) -> bool:
        return bool(self.specs)

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "hang_seconds": self.hang_seconds,
            "specs": [
                {"chunk": s.chunk, "kind": s.kind.value, "attempts": s.attempts}
                for s in self.specs
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        return cls(
            specs=tuple(
                FaultSpec(int(s["chunk"]), FaultKind(s["kind"]), int(s["attempts"]))
                for s in payload.get("specs", ())
            ),
            seed=payload.get("seed"),
            hang_seconds=float(payload.get("hang_seconds", 3600.0)),
        )

    def without_chunks(self, chunks: Sequence[int]) -> "FaultPlan":
        """A copy with the given chunks' faults removed (used by tests)."""
        drop = set(chunks)
        return dataclasses.replace(
            self, specs=tuple(s for s in self.specs if s.chunk not in drop)
        )


# -- shard-scoped faults -------------------------------------------------------


@dataclass(frozen=True)
class ShardFaultSpec:
    """One planned misbehaviour of one shard runner.

    The key is ``(shard, chunk, attempt)``: the fault fires inside shard
    ``shard``'s runner, at its ``chunk``-th scoring call of the current
    attempt (checkpoint-restored chunks never reach the scorer, so a
    resumed attempt counts only the work it actually replays), on runner
    attempts ``0 .. attempts-1``.
    """

    shard: int
    kind: FaultKind
    chunk: int = 0
    attempts: int = 1

    def fires(self, attempt: int) -> bool:
        return attempt < self.attempts


@dataclass(frozen=True)
class ShardFaultPlan:
    """A deterministic set of shard-runner faults.

    The shard analogue of :class:`FaultPlan`, consulted by
    :class:`repro.host.shards.ShardedScanRuntime` runners via
    :meth:`lookup`.  Plans are value objects and survive pickling into
    forked shard runners unchanged.
    """

    specs: Tuple[ShardFaultSpec, ...] = ()
    #: How long a ``hang`` fault sleeps; the supervisor kills the runner at
    #: the shard timeout, so this only bounds unsupervised hangs.
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        seen: Dict[Tuple[int, int], ShardFaultSpec] = {}
        for spec in self.specs:
            if spec.shard < 0:
                raise ValueError(f"fault shard index {spec.shard} is negative")
            if spec.chunk < 0:
                raise ValueError(f"fault chunk index {spec.chunk} is negative")
            key = (spec.shard, spec.chunk)
            if key in seen:
                raise ValueError(
                    f"duplicate fault spec for shard {spec.shard} "
                    f"chunk {spec.chunk}"
                )
            seen[key] = spec

    @classmethod
    def parse(cls, text: str, *, hang_seconds: float = 3600.0) -> "ShardFaultPlan":
        """Parse a CLI spec like ``"shard:0:crash,shard:1:hang:2:always"``.

        Each comma-separated item is ``shard:IDX:KIND[:CHUNK[:ATTEMPTS]]``;
        ``CHUNK`` defaults to 0 (the shard's first scored chunk) and
        ``ATTEMPTS`` defaults to 1, accepting ``always`` for a permanent
        fault (the way to force a dead shard).
        """
        specs: List[ShardFaultSpec] = []
        for item in filter(None, (piece.strip() for piece in text.split(","))):
            parts = item.split(":")
            if len(parts) not in (3, 4, 5) or parts[0].lower() != "shard":
                raise ValueError(
                    f"bad shard fault spec {item!r}; expected "
                    "shard:IDX:KIND[:CHUNK[:ATTEMPTS]]"
                )
            try:
                shard = int(parts[1])
            except ValueError:
                raise ValueError(f"bad fault shard index {parts[1]!r}") from None
            try:
                kind = FaultKind(parts[2].lower())
            except ValueError:
                raise ValueError(
                    f"unknown fault kind {parts[2]!r}; expected one of "
                    + "/".join(k.value for k in ALL_KINDS)
                ) from None
            chunk = 0
            if len(parts) >= 4:
                try:
                    chunk = int(parts[3])
                except ValueError:
                    raise ValueError(
                        f"bad fault chunk index {parts[3]!r}"
                    ) from None
            attempts = 1
            if len(parts) == 5:
                attempts = (
                    ALWAYS if parts[4].lower() == "always" else int(parts[4])
                )
            specs.append(ShardFaultSpec(shard, kind, chunk, attempts))
        return cls(specs=tuple(specs), hang_seconds=hang_seconds)

    # -- queries --------------------------------------------------------------

    def lookup(self, shard: int, chunk: int, attempt: int) -> Optional[FaultKind]:
        """The fault (if any) that fires for this shard chunk attempt."""
        for spec in self.specs:
            if (
                spec.shard == shard
                and spec.chunk == chunk
                and spec.fires(attempt)
            ):
                return spec.kind
        return None

    def affects(self, shard: int) -> bool:
        """Whether any spec targets this shard (skip installation if not)."""
        return any(spec.shard == shard for spec in self.specs)

    @property
    def recoverable_attempts(self) -> int:
        """Attempts needed to outlast every non-permanent fault (0 if none)."""
        finite = [s.attempts for s in self.specs if s.attempts < ALWAYS]
        return max(finite, default=0)

    @property
    def permanent_shards(self) -> Tuple[int, ...]:
        """Shards that fault on every attempt (force a dead shard)."""
        return tuple(
            sorted({s.shard for s in self.specs if s.attempts >= ALWAYS})
        )

    def __bool__(self) -> bool:
        return bool(self.specs)

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "hang_seconds": self.hang_seconds,
            "specs": [
                {
                    "shard": s.shard,
                    "kind": s.kind.value,
                    "chunk": s.chunk,
                    "attempts": s.attempts,
                }
                for s in self.specs
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardFaultPlan":
        return cls(
            specs=tuple(
                ShardFaultSpec(
                    int(s["shard"]),
                    FaultKind(s["kind"]),
                    int(s.get("chunk", 0)),
                    int(s.get("attempts", 1)),
                )
                for s in payload.get("specs", ())
            ),
            hang_seconds=float(payload.get("hang_seconds", 3600.0)),
        )
