"""Host-side runtime (the paper's OpenCL host program, in model form)."""

from repro.host.checkpoint import CheckpointStore, scan_fingerprint
from repro.host.cluster import ClusterSearchResult, FabPCluster
from repro.host.errors import (
    CheckpointError,
    CheckpointMismatchError,
    ChunkFailedError,
    ChunkTimeoutError,
    CorruptResultError,
    InjectedFaultError,
    PoolUnhealthyError,
    ScanError,
    ShardFailedError,
    WorkerCrashError,
)
from repro.host.faults import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    ShardFaultPlan,
    ShardFaultSpec,
)
from repro.host.rescore import RescoreReport, RescoredHit, rescore_hits, rescore_search_result
from repro.host.resilience import (
    RetryPolicy,
    ScanOutcome,
    ScanReport,
    ShardStatus,
    supervised_scan,
)
from repro.host.scan import PackedDatabase, scan_database
from repro.host.scan_session import ScanSession, SessionCheckpointStore
from repro.host.session import (
    DatabaseEntry,
    FabPHost,
    HostSearchResult,
    NamedHit,
    PCIE_BANDWIDTH,
)
from repro.host.shards import (
    ShardPolicy,
    ShardSpec,
    ShardedScanRuntime,
    plan_shards,
    shard_database,
)

__all__ = [
    "CheckpointError",
    "CheckpointMismatchError",
    "CheckpointStore",
    "ChunkFailedError",
    "ChunkTimeoutError",
    "ClusterSearchResult",
    "CorruptResultError",
    "DatabaseEntry",
    "FabPCluster",
    "FabPHost",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "HostSearchResult",
    "InjectedFaultError",
    "NamedHit",
    "PCIE_BANDWIDTH",
    "PackedDatabase",
    "PoolUnhealthyError",
    "RescoreReport",
    "RescoredHit",
    "RetryPolicy",
    "ScanError",
    "ScanOutcome",
    "ScanReport",
    "ScanSession",
    "SessionCheckpointStore",
    "ShardFailedError",
    "ShardFaultPlan",
    "ShardFaultSpec",
    "ShardPolicy",
    "ShardSpec",
    "ShardStatus",
    "ShardedScanRuntime",
    "WorkerCrashError",
    "plan_shards",
    "rescore_hits",
    "rescore_search_result",
    "scan_database",
    "scan_fingerprint",
    "shard_database",
    "supervised_scan",
]
