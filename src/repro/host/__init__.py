"""Host-side runtime (the paper's OpenCL host program, in model form)."""

from repro.host.cluster import ClusterSearchResult, FabPCluster
from repro.host.rescore import RescoreReport, RescoredHit, rescore_hits, rescore_search_result
from repro.host.scan import PackedDatabase, scan_database
from repro.host.session import (
    DatabaseEntry,
    FabPHost,
    HostSearchResult,
    NamedHit,
    PCIE_BANDWIDTH,
)

__all__ = [
    "ClusterSearchResult",
    "DatabaseEntry",
    "FabPCluster",
    "FabPHost",
    "HostSearchResult",
    "NamedHit",
    "PCIE_BANDWIDTH",
    "PackedDatabase",
    "RescoreReport",
    "RescoredHit",
    "rescore_hits",
    "rescore_search_result",
    "scan_database",
]
