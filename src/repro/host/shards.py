"""Supervised multi-shard scan runtime: the cluster *model* made executable.

:mod:`repro.host.cluster` models the paper's multi-board deployment
analytically (shard balance, straggler-bound speedup) but never runs a
scan.  This module promotes that model to an execution path: the packed
database is partitioned into ``S`` contiguous shards, each shard is scanned
by its own supervised :class:`repro.host.scan_session.ScanSession` runtime
running in a dedicated **shard runner process** (its own shared-memory
image, warm pool, and checkpoint store), and per-shard hit lists are merged
seam-exactly — bit-identical to a single-shard scan, because shards
partition the reference list and results merge in global reference order.

Shard-level supervision stacks on top of the worker-level supervision each
session already provides:

* **health budgets and respawn** — a shard runner that crashes, hangs past
  its deadline, raises, or returns corrupt results is killed and respawned
  with seeded backoff, up to :attr:`ShardPolicy.max_attempts` attempts;
* **elastic shard resume** — with a checkpoint directory every shard owns a
  fingerprinted :class:`~repro.host.scan_session.SessionCheckpointStore`
  subdirectory (``shard_00/``, ``shard_01/``, …); a respawned runner
  resumes from it and replays only the chunks its predecessor never
  finished;
* **hedged re-dispatch** — once every other shard is done, a straggler
  older than :attr:`ShardPolicy.hedge_after` is speculatively re-run by a
  spare runner (resuming from the same checkpoint); the first sane result
  wins and the twin is discarded;
* **partial-result degraded mode** — a shard that exhausts its health
  budget is *reported*, not fatal (unless :attr:`ShardPolicy.allow_partial`
  is off, which raises :class:`~repro.host.errors.ShardFailedError`):
  the :class:`~repro.host.resilience.ScanReport` carries a schema-v3
  ``shards`` section with per-shard status/attempts/resumed-chunk counts
  and the CLI exits 4 ("complete with dead shards").

Every recovery path is deterministically injectable through
:class:`repro.host.faults.ShardFaultPlan` (``shard:{i}`` crash / hang /
raise / corrupt keyed on ``(shard, chunk, attempt)``), and observable
through the ``fabp_shard_*`` hook family in :mod:`repro.obs.profile`.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.aligner import (
    AlignmentResult,
    QueryLike,
)
from repro.core.encoding import EncodedQuery, encode_query
from repro.host.checkpoint import ChunkPayload
from repro.host.errors import InjectedFaultError, ScanError, ShardFailedError
from repro.host.faults import FaultKind, ShardFaultPlan
from repro.host.resilience import ScanReport, ShardStatus, check_chunk_payload
from repro.host.scan import PackedDatabase, _build_result
from repro.host.scan_session import resolve_batch_thresholds
from repro.obs import profile as _obs_profile

__all__ = [
    "ShardPolicy",
    "ShardSpec",
    "ShardedScanRuntime",
    "plan_shards",
    "shard_database",
]


# -- shard planning ------------------------------------------------------------


@dataclass(frozen=True)
class ShardSpec:
    """One contiguous reference range ``[start, stop)`` of the database."""

    shard: int
    start: int
    stop: int
    nucleotides: int

    @property
    def num_references(self) -> int:
        return self.stop - self.start


def plan_shards(lengths: Sequence[int], num_shards: int) -> List[ShardSpec]:
    """Partition references into contiguous, nucleotide-balanced shards.

    The same greedy position-balancing idea as
    :func:`repro.host.windows.plan_windows`, applied at shard granularity:
    walk the reference list accumulating nucleotides toward an adaptive
    target (``remaining / shards_left``), cutting where adding the next
    reference would overshoot more than stopping undershoots.  Shards are
    reference-aligned (a reference never straddles two shards — every
    reference starts at a byte boundary in the packed image, so shard
    slices are exact sub-databases) and ``num_shards`` is clamped to the
    reference count.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    sizes = [int(x) for x in lengths]
    n = len(sizes)
    if n == 0:
        return []
    count = min(num_shards, n)
    specs: List[ShardSpec] = []
    start = 0
    remaining = sum(sizes)
    for shard in range(count):
        shards_left = count - shard
        if shards_left == 1:
            stop = n
            taken = remaining
        else:
            # Later shards need at least one reference each.
            stop_max = n - (shards_left - 1)
            target = remaining / shards_left
            stop = start + 1
            taken = sizes[start]
            while stop < stop_max:
                nxt = sizes[stop]
                if taken + nxt - target > target - taken:
                    break
                taken += nxt
                stop += 1
        specs.append(ShardSpec(shard, start, stop, taken))
        remaining -= taken
        start = stop
    return specs


def shard_database(database: PackedDatabase, spec: ShardSpec) -> PackedDatabase:
    """Slice one shard out of a packed database, exactly.

    Every reference is packed at a byte boundary
    (:meth:`PackedDatabase.from_references` packs per reference, then
    concatenates), so the shard's buffer is a plain byte-range slice and
    its offsets rebase by subtraction — no repacking, no seam effects.
    """
    lo = int(database.byte_offsets[spec.start])
    hi = int(database.byte_offsets[spec.stop])
    return PackedDatabase(
        names=tuple(database.names[spec.start : spec.stop]),
        lengths=np.ascontiguousarray(database.lengths[spec.start : spec.stop]),
        byte_offsets=np.ascontiguousarray(
            database.byte_offsets[spec.start : spec.stop + 1] - lo
        ),
        buffer=np.ascontiguousarray(database.buffer[lo:hi]),
    )


# -- policy --------------------------------------------------------------------


@dataclass(frozen=True)
class ShardPolicy:
    """Shard-level supervision knobs (all durations in seconds)."""

    #: Total runner attempts allowed per shard (first attempt included).
    max_attempts: int = 3
    #: Per-attempt wall-clock budget for one whole shard; ``None`` disables.
    timeout: Optional[float] = None
    #: Base backoff delay between shard respawns.
    backoff: float = 0.05
    #: Ceiling on the exponential backoff delay.
    backoff_max: float = 2.0
    #: Multiplicative jitter: the delay is scaled by ``1 + jitter * u``.
    jitter: float = 0.25
    #: Hedge a straggler shard once every other shard is done and it has
    #: run longer than this; ``None`` disables hedging.
    hedge_after: Optional[float] = None
    #: A shard that exhausts ``max_attempts`` is reported dead and its
    #: references omitted (CLI exit 4) instead of raising
    #: :class:`~repro.host.errors.ShardFailedError`.
    allow_partial: bool = True
    #: Workers of each shard's inner :class:`ScanSession` (1 = in-runner
    #: serial with identical checkpoint semantics — the right setting when
    #: shard runners already saturate the cores).
    shard_workers: int = 1
    #: Seed of the jitter RNG — respawn schedules are reproducible.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.backoff < 0 or self.backoff_max < 0 or self.jitter < 0:
            raise ValueError("backoff, backoff_max and jitter must be >= 0")
        if self.shard_workers < 1:
            raise ValueError("shard_workers must be >= 1")

    def delay(self, failures: int, rng: random.Random) -> float:
        """Backoff before respawn number ``failures`` (1-based), with jitter."""
        base = min(self.backoff_max, self.backoff * (2.0 ** max(0, failures - 1)))
        return base * (1.0 + self.jitter * rng.random())


# -- shard fault installation (runs inside the runner process) -----------------


def _damage_session_record(record: tuple) -> tuple:
    """Mis-key one session record so the sanity check must reject it.

    Shifting the slot key is detectable on *every* cell — including
    zero-hit windows, where score perturbation alone would be invisible.
    """
    slot, reference, start, hits, hit_scores, scores = record
    return (slot + 1, reference, start, hits, hit_scores, scores)


def _install_shard_faults(
    shard: int,
    attempt: int,
    plan: ShardFaultPlan,
    parent_pid: int,
    inline: bool,
) -> Any:
    """Wrap the session scoring core so this shard's faults fire on cue.

    ``chunk`` in the plan's ``(shard, chunk, attempt)`` key counts scoring
    calls within the current attempt — checkpoint-restored chunks never
    reach the scorer, so a resumed attempt counts only the work it actually
    replays.  Returns the original scorer for the inline path to restore.
    """
    from repro.host import scan_session as session_mod
    from repro.host.resilience import _hang_sleep

    inner = session_mod._score_session_windows
    calls = {"chunk": 0}

    def scorer(*args: Any, **kwargs: Any) -> Any:
        chunk = calls["chunk"]
        calls["chunk"] += 1
        fault = plan.lookup(shard, chunk, attempt)
        if fault is FaultKind.CRASH:
            if inline:
                raise InjectedFaultError(chunk, attempt, "crash")
            os._exit(23)
        if fault is FaultKind.HANG:
            # A supervised runner is killed at the shard deadline; the
            # sleep only bounds unsupervised (inline / kill-test) hangs.
            _hang_sleep(plan.hang_seconds, parent_pid)
            raise InjectedFaultError(chunk, attempt, "hang")
        if fault is FaultKind.RAISE:
            raise InjectedFaultError(chunk, attempt, "raise")
        payload = inner(*args, **kwargs)
        if fault is FaultKind.CORRUPT:
            payload = [_damage_session_record(record) for record in payload]
        return payload

    session_mod._score_session_windows = scorer
    return inner


# -- the shard runner (one supervised ScanSession per process) -----------------


def _payload_from_results(
    results: Sequence[AlignmentResult], start: int
) -> ChunkPayload:
    """Re-key one query's shard-local results to global reference indices."""
    payload: ChunkPayload = []
    for offset, result in enumerate(results):
        positions = np.asarray(
            [hit.position for hit in result.hits], dtype=np.int64
        )
        hit_scores = np.asarray(
            [hit.score for hit in result.hits], dtype=np.int64
        )
        payload.append(
            (
                start + offset,
                positions,
                hit_scores,
                result.scores,
                result.reference_length,
            )
        )
    return payload


def _scan_shard(
    spec: ShardSpec,
    database: PackedDatabase,
    encoded: Sequence[EncodedQuery],
    threshold: Optional[Union[int, Sequence[Optional[int]]]],
    min_identity: Optional[float],
    keep_scores: bool,
    engine: str,
    shard_workers: int,
    checkpoint_dir: Optional[str],
    resume: bool,
) -> Tuple[List[ChunkPayload], Dict[str, Any]]:
    """Score one shard with its own warm session; shared by runner + inline."""
    from repro.host.scan_session import ScanSession

    with ScanSession(database, engine=engine, workers=shard_workers) as session:
        batches, report = session.scan_batch(
            list(encoded),
            threshold=threshold,
            min_identity=min_identity,
            keep_scores=keep_scores,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            with_report=True,
        )
    payloads = [_payload_from_results(batch, spec.start) for batch in batches]
    summary = {
        "chunks_total": report.chunks_total,
        "chunks_completed": report.chunks_completed,
        "chunks_from_checkpoint": report.chunks_from_checkpoint,
        "retries": report.retries,
        "degraded": report.degraded,
        "degraded_reason": report.degraded_reason,
    }
    return payloads, summary


def _shard_runner_main(
    conn,
    spec: ShardSpec,
    database: PackedDatabase,
    encoded: Sequence[EncodedQuery],
    threshold: Optional[Union[int, Sequence[Optional[int]]]],
    min_identity: Optional[float],
    keep_scores: bool,
    engine: str,
    shard_workers: int,
    checkpoint_dir: Optional[str],
    resume: bool,
    attempt: int,
    fault_plan: Optional[ShardFaultPlan],
) -> None:
    """Entry point of one shard runner process.

    The runner *is* the shard's runtime: it owns the shard's shared-memory
    image, warm pool, and checkpoint store via its inner
    :class:`ScanSession`, scans the whole query batch, and reports exactly
    once — ``("ok", shard, attempt, payloads, summary)`` or
    ``("err", shard, attempt, message)``.  Killing this process kills the
    shard runtime; the parent respawns it with ``resume=True`` and the
    session replays only unfinished chunks.
    """
    parent_pid = os.getppid()
    if fault_plan is not None and fault_plan.affects(spec.shard):
        _install_shard_faults(
            spec.shard, attempt, fault_plan, parent_pid, inline=False
        )
    try:
        payloads, summary = _scan_shard(
            spec, database, encoded, threshold, min_identity, keep_scores,
            engine, shard_workers, checkpoint_dir, resume,
        )
        conn.send(("ok", spec.shard, attempt, payloads, summary))
    except ScanError as exc:
        _send_runner_error(conn, spec.shard, attempt, exc)
    except (ValueError, IndexError, OSError) as exc:
        _send_runner_error(conn, spec.shard, attempt, exc)
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _send_runner_error(conn, shard: int, attempt: int, exc: Exception) -> None:
    try:
        conn.send(("err", shard, attempt, f"{type(exc).__name__}: {exc}"))
    except (OSError, BrokenPipeError):
        pass  # parent already gone; its sentinel sweep records the death


# -- parent-side state ---------------------------------------------------------


class _RunnerHandle:
    """Parent-side view of one live shard runner process."""

    __slots__ = ("shard", "attempt", "process", "conn", "started", "deadline", "hedge")

    def __init__(self, shard, attempt, process, conn, started, deadline, hedge):
        self.shard = shard
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.started = started
        self.deadline = deadline
        self.hedge = hedge


class _ShardState:
    """Everything the supervisor tracks about one shard."""

    __slots__ = (
        "spec", "status", "failures", "attempts", "resumed_chunks",
        "hedges", "payloads", "first_started", "elapsed", "detail",
    )

    def __init__(self, spec: ShardSpec):
        self.spec = spec
        self.status = "pending"  # pending | ok | dead
        self.failures: List[str] = []
        self.attempts = 0
        self.resumed_chunks = 0
        self.hedges = 0
        self.payloads: Optional[List[ChunkPayload]] = None
        self.first_started: Optional[float] = None
        self.elapsed = 0.0
        self.detail = ""

    def to_status(self) -> ShardStatus:
        return ShardStatus(
            shard=self.spec.shard,
            start=self.spec.start,
            stop=self.spec.stop,
            nucleotides=self.spec.nucleotides,
            status="ok" if self.status == "ok" else "dead",
            attempts=self.attempts,
            resumed_chunks=self.resumed_chunks,
            hedges=self.hedges,
            elapsed_seconds=self.elapsed,
            detail=self.detail,
        )


# -- the sharded runtime -------------------------------------------------------


class ShardedScanRuntime:
    """Scan one packed database as ``S`` supervised shard runtimes.

    ``references`` is anything :class:`PackedDatabase` accepts, or a ready
    database.  Each :meth:`scan_batch` call plans the shards once
    (position-balanced, reference-aligned), runs one supervised shard
    runner per shard, and merges per-shard hit lists in global reference
    order — bit-identical to a single-shard scan of the same database.

        runtime = ShardedScanRuntime(references, num_shards=4)
        batches, report = runtime.scan_batch(queries, with_report=True)
        report.exit_code()  # 0 clean / 3 degraded / 4 dead shards

    In restricted environments (no fork, no pipes) shards execute inline,
    in shard order, with the same retry/budget/partial-result semantics.
    """

    def __init__(
        self,
        references: Union[PackedDatabase, Iterable],
        *,
        num_shards: int,
        engine: Optional[str] = None,
        names: Optional[Sequence[str]] = None,
        policy: Optional[ShardPolicy] = None,
        faults: Optional[ShardFaultPlan] = None,
    ):
        from repro.host.scan_session import SESSION_ENGINE

        self._database = (
            references
            if isinstance(references, PackedDatabase)
            else PackedDatabase.from_references(references, names)
        )
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self._num_shards = num_shards
        self._engine = engine or SESSION_ENGINE
        self._policy = policy or ShardPolicy()
        self._faults = faults
        self._specs = plan_shards(self._database.lengths, num_shards)

    @property
    def database(self) -> PackedDatabase:
        return self._database

    @property
    def num_shards(self) -> int:
        """Planned shard count (clamped to the reference count)."""
        return len(self._specs)

    @property
    def shard_specs(self) -> Tuple[ShardSpec, ...]:
        return tuple(self._specs)

    @property
    def engine(self) -> str:
        return self._engine

    # -- public API -----------------------------------------------------------

    def scan_batch(
        self,
        queries: Iterable[QueryLike],
        *,
        threshold: Optional[Union[int, Sequence[Optional[int]]]] = None,
        min_identity: Optional[float] = None,
        keep_scores: bool = False,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        resume: bool = False,
        with_report: bool = False,
    ) -> Union[
        List[List[AlignmentResult]],
        Tuple[List[List[AlignmentResult]], ScanReport],
    ]:
        """Score ``k`` queries across every shard; merge seam-exactly.

        Returns one result list per query, in input order, covering the
        references of every *surviving* shard in global order (all of them
        on a clean run — bit-identical to a single-shard scan).
        ``threshold`` may be a per-query sequence, exactly as in
        :meth:`repro.host.scan_session.ScanSession.scan_batch`.  With
        ``with_report`` the :class:`ScanReport` (``mode="sharded"``,
        schema v3) carries the per-shard ``shards`` section.
        """
        query_list = list(queries)
        encoded = [
            q if isinstance(q, EncodedQuery) else encode_query(q)
            for q in query_list
        ]
        resolved = resolve_batch_thresholds(encoded, threshold, min_identity)
        spans = [len(e) for e in encoded]

        report = ScanReport(
            mode="sharded",
            workers=len(self._specs),
            chunk_size=0,
            chunks_total=len(self._specs),
            engine=self._engine,
            threshold=min(resolved) if resolved else 0,
        )
        if checkpoint_dir is not None:
            report.checkpoint_dir = str(checkpoint_dir)
            report.resumed = bool(resume)

        states = {spec.shard: _ShardState(spec) for spec in self._specs}
        started = time.monotonic()
        if states:
            try:
                self._run_supervised(
                    states, encoded, resolved, spans, threshold, min_identity,
                    keep_scores, checkpoint_dir, resume, report,
                )
            except (ImportError, OSError, PermissionError):
                # Restricted environments (no fork, no pipes): same
                # budgets and partial-result semantics, inline.
                self._run_inline(
                    states, encoded, resolved, spans, threshold, min_identity,
                    keep_scores, checkpoint_dir, resume, report,
                )
        report.chunks_completed = sum(
            1 for state in states.values() if state.status == "ok"
        )
        report.shards = [
            states[spec.shard].to_status() for spec in self._specs
        ]
        report.elapsed_seconds = time.monotonic() - started

        with _obs_profile.stage("scan.merge", category="scan") as merge_timer:
            results = self._merge(states, encoded, resolved)
        _obs_profile.record_shard_merge(merge_timer.seconds)
        report.metrics["stage_seconds"] = {
            "merge": round(merge_timer.seconds, 6)
        }
        _obs_profile.record_scan_report_counters(
            report.retries, report.hedges, report.respawns, report.degraded
        )
        if with_report:
            return results, report
        return results

    # -- checkpoint layout ----------------------------------------------------

    @staticmethod
    def _shard_checkpoint(
        checkpoint_dir: Optional[Union[str, Path]], shard: int
    ) -> Optional[str]:
        """Each shard owns a subdirectory; fingerprints stay per shard."""
        if checkpoint_dir is None:
            return None
        return str(Path(checkpoint_dir) / f"shard_{shard:02d}")

    # -- supervised (process-per-shard) execution ------------------------------

    def _run_supervised(
        self,
        states: Dict[int, _ShardState],
        encoded: List[EncodedQuery],
        resolved: List[int],
        spans: List[int],
        threshold: Optional[Union[int, Sequence[Optional[int]]]],
        min_identity: Optional[float],
        keep_scores: bool,
        checkpoint_dir: Optional[Union[str, Path]],
        resume: bool,
        report: ScanReport,
    ) -> None:
        import multiprocessing
        from multiprocessing import connection

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()

        policy = self._policy
        rng = random.Random(policy.seed)
        handles: List[_RunnerHandle] = []
        now = time.monotonic()
        pending: List[Tuple[float, int]] = [
            (now, spec.shard) for spec in self._specs
        ]

        def _spawn(shard: int, hedge: bool) -> None:
            state = states[shard]
            attempt = state.attempts
            state.attempts += 1
            shard_resume = resume or attempt > 0 or hedge
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_shard_runner_main,
                args=(
                    child_conn,
                    state.spec,
                    shard_database(self._database, state.spec),
                    encoded,
                    threshold,
                    min_identity,
                    keep_scores,
                    self._engine,
                    policy.shard_workers,
                    self._shard_checkpoint(checkpoint_dir, shard),
                    shard_resume,
                    attempt,
                    self._faults,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            t_now = time.monotonic()
            deadline = None if policy.timeout is None else t_now + policy.timeout
            handles.append(
                _RunnerHandle(shard, attempt, process, parent_conn, t_now, deadline, hedge)
            )
            if state.first_started is None:
                state.first_started = t_now
            if hedge:
                state.hedges += 1
                report.hedges += 1
                _obs_profile.record_shard_hedge()
            _obs_profile.record_shard_active(len(handles))

        def _reap(handle: _RunnerHandle) -> None:
            handles.remove(handle)
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.process.join(timeout=0.5)
            _obs_profile.record_shard_active(len(handles))

        def _kill(handle: _RunnerHandle) -> None:
            handle.process.terminate()
            handle.process.join(timeout=1.0)
            if handle.process.is_alive():  # pragma: no cover - stubborn child
                handle.process.kill()
                handle.process.join(timeout=1.0)
            _reap(handle)

        def _kill_twins(shard: int) -> None:
            for twin in [h for h in handles if h.shard == shard]:
                _kill(twin)

        def _finish(state: _ShardState, t_now: float) -> None:
            if state.first_started is not None:
                state.elapsed = t_now - state.first_started

        def _register_failure(shard: int, outcome: str, t_now: float) -> None:
            state = states[shard]
            state.failures.append(outcome)
            if len(state.failures) >= policy.max_attempts:
                state.detail = (
                    f"health budget exhausted after {len(state.failures)} "
                    f"attempts: {', '.join(state.failures)}"
                )
                _finish(state, t_now)
                if policy.allow_partial:
                    state.status = "dead"
                    _kill_twins(shard)
                    return
                raise ShardFailedError(shard, state.failures)
            report.retries += 1
            report.respawns += 1
            pending.append(
                (t_now + policy.delay(len(state.failures), rng), shard)
            )

        def _accept(
            handle: _RunnerHandle, payloads, summary, t_now: float
        ) -> None:
            state = states[handle.shard]
            spec = state.spec
            error: Optional[str] = None
            if not isinstance(payloads, list) or len(payloads) != len(encoded):
                error = f"expected {len(encoded)} query payloads"
            else:
                for q, payload in enumerate(payloads):
                    error = check_chunk_payload(
                        payload, spec.start, spec.stop, self._database.lengths,
                        resolved[q], spans[q], keep_scores,
                    )
                    if error is not None:
                        error = f"query {q}: {error}"
                        break
            elapsed = t_now - handle.started
            if error is not None:
                report.record(
                    handle.shard, handle.attempt, "corrupt", elapsed, None, error
                )
                _register_failure(handle.shard, "corrupt", t_now)
                return
            state.status = "ok"
            state.payloads = payloads
            state.resumed_chunks = int(summary.get("chunks_from_checkpoint", 0))
            if state.resumed_chunks and handle.attempt > 0:
                _obs_profile.record_shard_resume(state.resumed_chunks)
            if summary.get("degraded"):
                report.degraded = True
                report.degraded_reason = (
                    f"shard {handle.shard}: "
                    f"{summary.get('degraded_reason') or 'inner session degraded'}"
                )
            report.record(handle.shard, handle.attempt, "ok", elapsed, None)
            _finish(state, t_now)
            _kill_twins(handle.shard)

        def _service(handle: _RunnerHandle, t_now: float) -> None:
            message = None
            try:
                if handle.conn.poll():
                    message = handle.conn.recv()
            except (EOFError, OSError):
                message = None
            if message is not None:
                kind = message[0]
                state = states[handle.shard]
                if state.status != "pending":
                    report.record(
                        handle.shard, handle.attempt, "duplicate",
                        t_now - handle.started, None,
                        "hedged twin finished first",
                    )
                    if handle in handles:
                        _reap(handle)
                    return
                if kind == "ok":
                    _accept(handle, message[3], message[4], t_now)
                else:
                    report.record(
                        handle.shard, handle.attempt, "raise",
                        t_now - handle.started, None, message[3],
                    )
                    _register_failure(handle.shard, "raise", t_now)
                if handle in handles:
                    _reap(handle)
                return
            if not handle.process.is_alive():
                exitcode = handle.process.exitcode
                state = states[handle.shard]
                in_flight = sum(1 for h in handles if h.shard == handle.shard)
                _reap(handle)
                if state.status == "pending" and in_flight == 1:
                    report.record(
                        handle.shard, handle.attempt, "crash",
                        t_now - handle.started, None, f"exitcode {exitcode}",
                    )
                    _register_failure(handle.shard, "crash", t_now)
                elif state.status == "pending":
                    report.record(
                        handle.shard, handle.attempt, "crash",
                        t_now - handle.started, None,
                        f"exitcode {exitcode} (twin still running)",
                    )

        def _sweep_timeouts(t_now: float) -> None:
            for handle in list(handles):
                if handle.deadline is None or t_now <= handle.deadline:
                    continue
                state = states[handle.shard]
                in_flight = sum(1 for h in handles if h.shard == handle.shard)
                _kill(handle)
                if state.status == "pending" and in_flight == 1:
                    report.record(
                        handle.shard, handle.attempt, "timeout",
                        t_now - handle.started, None,
                        f"exceeded {policy.timeout:.3g}s",
                    )
                    _register_failure(handle.shard, "timeout", t_now)

        def _maybe_hedge(t_now: float) -> None:
            if policy.hedge_after is None or pending:
                return
            stragglers = {
                h.shard for h in handles if states[h.shard].status == "pending"
            }
            finished = all(
                state.status != "pending" or state.spec.shard in stragglers
                for state in states.values()
            )
            if not finished or len(stragglers) != 1:
                return
            for handle in list(handles):
                shard = handle.shard
                if states[shard].status != "pending":
                    continue
                if sum(1 for h in handles if h.shard == shard) > 1:
                    continue
                if t_now - handle.started < policy.hedge_after:
                    continue
                _spawn(shard, hedge=True)

        def _wait_timeout(t_now: float) -> Optional[float]:
            candidates: List[float] = []
            for handle in handles:
                if handle.deadline is not None:
                    candidates.append(handle.deadline)
                if policy.hedge_after is not None:
                    candidates.append(handle.started + policy.hedge_after)
            candidates.extend(ready for ready, _ in pending)
            if not candidates:
                return None
            return max(0.0, min(candidates) - t_now) + 0.005

        def _dispatch(t_now: float) -> None:
            pending.sort(key=lambda item: (item[0], item[1]))
            while pending and pending[0][0] <= t_now:
                _, shard = pending.pop(0)
                if states[shard].status != "pending":
                    continue
                _spawn(shard, hedge=False)

        try:
            while any(s.status == "pending" for s in states.values()):
                t_now = time.monotonic()
                _dispatch(t_now)
                conn_map = {h.conn: h for h in handles}
                sentinel_map = {h.process.sentinel: h for h in handles}
                ready = connection.wait(
                    list(conn_map) + list(sentinel_map),
                    timeout=_wait_timeout(t_now),
                )
                t_now = time.monotonic()
                handled = set()
                for obj in ready:
                    handle = conn_map.get(obj)
                    if handle is None:
                        handle = sentinel_map.get(obj)
                    if handle is None or id(handle) in handled:
                        continue
                    handled.add(id(handle))
                    _service(handle, t_now)
                _sweep_timeouts(time.monotonic())
                _maybe_hedge(time.monotonic())
        finally:
            for handle in list(handles):
                _kill(handle)

    # -- inline fallback -------------------------------------------------------

    def _run_inline(
        self,
        states: Dict[int, _ShardState],
        encoded: List[EncodedQuery],
        resolved: List[int],
        spans: List[int],
        threshold: Optional[Union[int, Sequence[Optional[int]]]],
        min_identity: Optional[float],
        keep_scores: bool,
        checkpoint_dir: Optional[Union[str, Path]],
        resume: bool,
        report: ScanReport,
    ) -> None:
        """Shard-by-shard in-process execution with the same semantics.

        Crash faults raise (there is no runner process to sacrifice) and
        hang faults genuinely sleep for the plan's ``hang_seconds`` —
        mirroring :func:`repro.host.resilience._serial_supervised`.
        """
        from repro.host import scan_session as session_mod

        policy = self._policy
        rng = random.Random(policy.seed)
        for spec in self._specs:
            state = states[spec.shard]
            if state.status != "pending":
                continue
            state.first_started = time.monotonic()
            database = shard_database(self._database, spec)
            while state.status == "pending":
                attempt = state.attempts
                state.attempts += 1
                shard_resume = resume or attempt > 0
                original = None
                if self._faults is not None and self._faults.affects(spec.shard):
                    original = _install_shard_faults(
                        spec.shard, attempt, self._faults, os.getpid(),
                        inline=True,
                    )
                t0 = time.monotonic()
                try:
                    payloads, summary = _scan_shard(
                        spec, database, encoded, threshold, min_identity,
                        keep_scores, self._engine, 1,
                        self._shard_checkpoint(checkpoint_dir, spec.shard),
                        shard_resume,
                    )
                except ScanError as exc:
                    t_now = time.monotonic()
                    report.record(
                        spec.shard, attempt, "raise", t_now - t0, None,
                        f"{type(exc).__name__}: {exc}",
                    )
                    state.failures.append("raise")
                    if len(state.failures) >= policy.max_attempts:
                        state.detail = (
                            f"health budget exhausted after "
                            f"{len(state.failures)} attempts: "
                            f"{', '.join(state.failures)}"
                        )
                        state.elapsed = t_now - state.first_started
                        if policy.allow_partial:
                            state.status = "dead"
                            break
                        raise ShardFailedError(spec.shard, state.failures) from exc
                    report.retries += 1
                    time.sleep(policy.delay(len(state.failures), rng))
                    continue
                finally:
                    if original is not None:
                        session_mod._score_session_windows = original
                t_now = time.monotonic()
                error: Optional[str] = None
                for q, payload in enumerate(payloads):
                    error = check_chunk_payload(
                        payload, spec.start, spec.stop, self._database.lengths,
                        resolved[q], spans[q], keep_scores,
                    )
                    if error is not None:
                        error = f"query {q}: {error}"
                        break
                if error is not None:
                    report.record(
                        spec.shard, attempt, "corrupt", t_now - t0, None, error
                    )
                    state.failures.append("corrupt")
                    if len(state.failures) >= policy.max_attempts:
                        state.detail = (
                            f"health budget exhausted after "
                            f"{len(state.failures)} attempts: "
                            f"{', '.join(state.failures)}"
                        )
                        state.elapsed = t_now - state.first_started
                        if policy.allow_partial:
                            state.status = "dead"
                            break
                        raise ShardFailedError(spec.shard, state.failures)
                    report.retries += 1
                    time.sleep(policy.delay(len(state.failures), rng))
                    continue
                state.status = "ok"
                state.payloads = payloads
                state.resumed_chunks = int(
                    summary.get("chunks_from_checkpoint", 0)
                )
                if state.resumed_chunks and attempt > 0:
                    _obs_profile.record_shard_resume(state.resumed_chunks)
                report.record(spec.shard, attempt, "ok", t_now - t0, None)
                state.elapsed = t_now - state.first_started

    # -- merge -----------------------------------------------------------------

    def _merge(
        self,
        states: Dict[int, _ShardState],
        encoded: List[EncodedQuery],
        resolved: List[int],
    ) -> List[List[AlignmentResult]]:
        """Concatenate per-shard payloads in global reference order.

        Shards partition the reference list, so shard order *is* reference
        order and the merged output is bit-identical to a single-shard
        scan.  A dead shard contributes nothing: its references are simply
        absent from the (partial) results.
        """
        results: List[List[AlignmentResult]] = [[] for _ in encoded]
        for spec in self._specs:
            state = states[spec.shard]
            if state.status != "ok" or state.payloads is None:
                continue
            for q, payload in enumerate(state.payloads):
                for index, positions, hit_scores, scores, length in payload:
                    results[q].append(
                        _build_result(
                            encoded[q], self._database.names[index], length,
                            resolved[q], positions, hit_scores, scores,
                        )
                    )
        return results
