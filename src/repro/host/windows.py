"""Position-balanced reference windows for parallel scans.

The original parallel scan chunked work by *reference count* — chunk ``i``
scores references ``[start, stop)``.  That balances only when references
are uniform: one long reference pins a single worker while the rest idle,
which is exactly why the committed baseline showed 4 workers delivering
only ~1.3x.  This module splits work by *alignment positions* instead:
every reference is cut into windows of roughly equal position count, and
windows — not references — are what gets distributed.

Correctness of splitting is subtle because the comparator is contextual:
the match bit at position ``p`` reads ``Ref[p]``, ``Ref[p-1]`` and
``Ref[p-2]`` (the ``x_bit_rows`` look-back that resolves R/Y/N wildcard
codes), and a query spanning ``span`` elements reads forward through
``Ref[p + span - 1]``.  A window producing positions ``[a, b)`` therefore
scores the nucleotide slice::

    codes[a - lookback : min(L, b + span - 1)],   lookback = min(2, a)

and keeps ``scores[lookback : lookback + (b - a)]``.  For ``a >= 2`` the
two look-back nucleotides are real database content, so every kept score
is computed from exactly the same context as the full-reference scan; for
``a < 2`` the missing predecessors fall before the sequence start, which
is the identical boundary condition the full scan sees.  Concatenating
the kept slices in window order is therefore **bit-identical** to scoring
the whole reference in one call — the invariant the regression tests in
``tests/host/test_scan_windows.py`` pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.seq import packing

__all__ = [
    "LOOKBACK",
    "MIN_WINDOW_POSITIONS",
    "OVERSUBSCRIPTION",
    "Window",
    "num_positions",
    "plan_windows",
    "window_codes",
    "merge_window_records",
]

#: Nucleotides of context *behind* a window start the comparator may read
#: (``x_bit_rows`` resolves wildcard codes from the two previous bases).
LOOKBACK = 2

#: Floor on window size: below this the per-call numpy overhead and the
#: ``span - 1`` halo re-scored at every seam outweigh the balance win.
MIN_WINDOW_POSITIONS = 1 << 15

#: Target chunks per worker.  More than one chunk per worker lets the pool
#: rebalance when windows finish at different speeds.
OVERSUBSCRIPTION = 4


@dataclass(frozen=True)
class Window:
    """Alignment positions ``[start, stop)`` of reference ``reference``."""

    reference: int
    start: int
    stop: int

    @property
    def positions(self) -> int:
        return self.stop - self.start


def num_positions(length: int, span: int) -> int:
    """Alignment positions a ``span``-element query has on a reference."""
    return max(0, int(length) - int(span) + 1)


def plan_windows(
    lengths: Sequence[int],
    span: int,
    num_workers: int,
    *,
    target_positions: Optional[int] = None,
) -> List[List[Window]]:
    """Split a database into chunks of windows balanced by position count.

    Returns a list of chunks; each chunk is a list of :class:`Window`
    covering roughly ``total_positions / (num_workers * OVERSUBSCRIPTION)``
    positions (never less than :data:`MIN_WINDOW_POSITIONS`, and never
    less than ``4 * (span - 1)`` so the per-seam halo stays a small
    fraction of the work).  References with zero positions (shorter than
    the query) yield no windows — the driver synthesizes their empty
    results.  Windows within a chunk and chunks themselves are emitted in
    (reference, start) order, so the merge is deterministic.
    """
    if span < 1:
        raise ValueError("span must be >= 1")
    total = sum(num_positions(length, span) for length in lengths)
    if total <= 0:
        return []
    if target_positions is None:
        per_chunk = -(-total // max(1, num_workers * OVERSUBSCRIPTION))
        target_positions = max(MIN_WINDOW_POSITIONS, 4 * (span - 1), per_chunk)
    target = max(1, int(target_positions))

    chunks: List[List[Window]] = []
    current: List[Window] = []
    room = target
    for reference, length in enumerate(lengths):
        remaining = num_positions(length, span)
        start = 0
        while remaining > 0:
            take = min(remaining, room)
            # Absorb a sliver tail rather than leave a tiny trailing window.
            if 0 < remaining - take < max(1, MIN_WINDOW_POSITIONS // 4) <= room:
                take = remaining
            current.append(Window(reference, start, start + take))
            start += take
            remaining -= take
            room -= take
            if room <= 0:
                chunks.append(current)
                current = []
                room = target
    if current:
        chunks.append(current)
    return chunks


def window_codes(
    buffer: np.ndarray,
    byte_base: int,
    length: int,
    start: int,
    stop: int,
    span: int,
) -> Tuple[np.ndarray, int]:
    """Unpack the code slice a window needs; return ``(codes, lookback)``.

    ``buffer`` is the packed database image, ``byte_base`` the byte offset
    of this reference within it.  The slice covers ``[start - lookback,
    min(length, stop + span - 1))`` so scores at every position in
    ``[start, stop)`` see full context; the caller keeps
    ``scores[lookback : lookback + (stop - start)]``.
    """
    lookback = LOOKBACK if start >= LOOKBACK else start
    nt_start = start - lookback
    nt_stop = min(int(length), stop + span - 1)
    byte_start = nt_start // 4
    byte_stop = (nt_stop + 3) // 4
    codes = packing.unpack(
        buffer[byte_base + byte_start : byte_base + byte_stop],
        nt_stop - byte_start * 4,
    )
    offset = nt_start - byte_start * 4
    if offset:
        codes = codes[offset:]
    return codes, lookback


#: One scored window: ``(reference, start, hit_positions_local, hit_scores,
#: scores_slice | None)``.  Hit positions are local to the window; the merge
#: re-bases them by ``start``.
WindowRecord = Tuple[int, int, np.ndarray, np.ndarray, Optional[np.ndarray]]


def merge_window_records(
    records: Sequence[WindowRecord],
    lengths: Sequence[int],
    span: int,
    keep_scores: bool,
) -> List[Tuple[np.ndarray, np.ndarray, Optional[np.ndarray], int]]:
    """Stitch window records back into per-reference scan results.

    Returns, for every reference in input order, ``(positions, hit_scores,
    scores | None, length)`` exactly as a whole-reference scan would have
    produced them: windows are sorted by start, hit positions re-based to
    absolute coordinates, and (with ``keep_scores``) the score slices
    concatenated into the full per-position vector.
    """
    by_reference: Dict[int, List[WindowRecord]] = {}
    for record in records:
        by_reference.setdefault(record[0], []).append(record)
    merged: List[Tuple[np.ndarray, np.ndarray, Optional[np.ndarray], int]] = []
    for reference, length in enumerate(lengths):
        parts = sorted(by_reference.get(reference, []), key=lambda r: r[1])
        total = num_positions(length, span)
        if parts:
            positions = np.concatenate(
                [r[2].astype(np.int64) + r[1] for r in parts]
            )
            hit_scores = np.concatenate([r[3] for r in parts])
        else:
            positions = np.zeros(0, dtype=np.int64)
            hit_scores = np.zeros(0, dtype=np.int32)
        scores: Optional[np.ndarray] = None
        if keep_scores:
            if parts:
                scores = np.concatenate([r[4] for r in parts])
            else:
                scores = np.zeros(0, dtype=np.int32)
            if scores.size != total:
                raise ValueError(
                    f"reference {reference}: merged scores cover "
                    f"{scores.size} of {total} positions"
                )
        merged.append((positions, hit_scores, scores, int(length)))
    return merged
