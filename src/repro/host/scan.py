"""Chunked, multi-process database scan over shared-memory packed references.

The paper's host program keeps the database resident in FPGA DRAM as a dense
2-bit array and streams it through parallel kernel instances; the software
counterpart is one packed buffer in POSIX shared memory scanned by a pool of
worker processes:

* :class:`PackedDatabase` packs every reference once (2 bits/nt, the FabP
  DRAM layout from :mod:`repro.seq.packing`) into a single byte buffer with
  an offset table — the in-memory database image;
* :func:`scan_database` splits the reference list into chunks, publishes the
  packed image in a :class:`multiprocessing.shared_memory.SharedMemory`
  segment (workers attach zero-copy; nothing is pickled per task beyond the
  chunk bounds), scores each chunk with the selected engine, thresholds
  worker-side so only hits travel back, and merges results in input order;
* ``workers`` / ``chunk_size`` are the scaling knobs; ``workers <= 1`` (or a
  tiny database) runs serially in-process, so the scanner degrades cleanly
  on single-core machines and under restricted multiprocessing.

Results are plain :class:`repro.core.aligner.AlignmentResult` objects, so a
parallel scan is a drop-in replacement for the serial ``search_database``.
"""

from __future__ import annotations

import atexit
import json
import os
import pathlib
import signal
import threading
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.aligner import (
    DEFAULT_ENGINE,
    AlignmentResult,
    Hit,
    QueryLike,
    ReferenceLike,
    iter_reference_codes,
    resolve_threshold,
    scores_from_codes,
)
from repro.core.encoding import EncodedQuery, encode_query
from repro.host import windows as _windows
from repro.obs import profile as _obs_profile
from repro.obs import state as _obs_state
from repro.seq import packing

#: Default references per work item (small enough to load-balance, large
#: enough that task dispatch does not dominate).  Used by the supervised
#: runtime, whose retry/checkpoint granule is a reference chunk.
DEFAULT_CHUNK_SIZE = 8

#: Fallback serial/parallel cutover: databases smaller than this many
#: nucleotides are scanned serially even when workers are requested — pool
#: startup would cost more than the scan.  Used only when no committed
#: benchmark baseline is available; see :func:`parallel_cutover_nucleotides`.
MIN_PARALLEL_NUCLEOTIDES = 1 << 18

#: Bounds on the baseline-derived cutover, so a noisy or degenerate
#: benchmark artifact can never disable parallelism (or force it on for
#: trivially small scans).
CUTOVER_FLOOR = 1 << 15
CUTOVER_CEILING = 1 << 24


@dataclass(frozen=True)
class PackedDatabase:
    """Many references packed into one contiguous 2-bit buffer.

    ``buffer[byte_offsets[i] : byte_offsets[i + 1]]`` is reference ``i``
    packed at 2 bits per nucleotide; ``lengths[i]`` its nucleotide count.
    This is the image :func:`scan_database` publishes in shared memory.
    """

    names: Tuple[str, ...]
    lengths: np.ndarray
    byte_offsets: np.ndarray
    buffer: np.ndarray

    @classmethod
    def from_references(
        cls,
        references: Iterable[ReferenceLike],
        names: Optional[Sequence[str]] = None,
    ) -> "PackedDatabase":
        """Pack references (strings, sequences, or code arrays) once.

        ``names`` overrides the per-reference names (useful for pre-packed
        code arrays, which carry none of their own).  Names are otherwise
        kept exactly as coerced — possibly empty — so a scan is a drop-in
        replacement for the serial ``search_database``.
        """
        resolved_names: List[str] = []
        lengths: List[int] = []
        chunks: List[np.ndarray] = []
        with _obs_profile.stage("scan.pack", category="scan"):
            for index, (codes, name) in enumerate(iter_reference_codes(references)):
                if names is not None:
                    name = names[index]
                resolved_names.append(name)
                lengths.append(int(codes.size))
                chunks.append(packing.pack(codes))
        byte_offsets = np.zeros(len(chunks) + 1, dtype=np.int64)
        if chunks:
            np.cumsum([c.size for c in chunks], out=byte_offsets[1:])
        buffer = (
            np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.uint8)
        )
        return cls(
            names=tuple(resolved_names),
            lengths=np.asarray(lengths, dtype=np.int64),
            byte_offsets=byte_offsets,
            buffer=buffer,
        )

    @property
    def num_references(self) -> int:
        return len(self.names)

    @property
    def total_nucleotides(self) -> int:
        return int(self.lengths.sum()) if self.lengths.size else 0

    @property
    def packed_bytes(self) -> int:
        return int(self.buffer.size)

    def reference_codes(self, index: int) -> np.ndarray:
        """Unpack reference ``index`` back to a 2-bit code array."""
        start = int(self.byte_offsets[index])
        stop = int(self.byte_offsets[index + 1])
        return packing.unpack(self.buffer[start:stop], int(self.lengths[index]))


# -- shared-memory lifecycle ---------------------------------------------------


@dataclass(frozen=True)
class _SegmentLease:
    """One created segment plus the pid that owns its unlink."""

    segment: object
    owner_pid: int


# Every segment this process created, by name.  ``publish_segment`` registers,
# ``retire_segment`` releases; the ``atexit`` guard (and the lazy SIGTERM
# sweep) retire whatever survives an exception, Ctrl-C, or a supervisor kill
# mid-scan, so a crashed scan can never leak ``/dev/shm`` segments.  Worker
# processes only *attach* and never own a registration; forked children that
# inherit this dict by copy-on-write are excluded by the lease's owner pid.
_LIVE_SEGMENTS: Dict[str, _SegmentLease] = {}

# Names already retired by this process.  Retirement can race — explicit
# ``finally`` blocks, the atexit sweep, and the SIGTERM sweep may all reach
# the same segment — and unlinking a name twice is an error the kernel
# reports to whichever caller loses, so the set (under the lock) guarantees
# exactly one close/unlink per segment no matter how many paths fire.
_RETIRED: set = set()

_SEGMENTS_LOCK = threading.Lock()

_SIGTERM_SWEEP_INSTALLED = False


def _cleanup_segments() -> None:
    for lease in list(_LIVE_SEGMENTS.values()):
        retire_segment(lease.segment)


atexit.register(_cleanup_segments)


def _sweep_on_sigterm(signum, frame) -> None:
    """Retire live segments, then die with the default SIGTERM status.

    ``atexit`` never runs on a signal death, so a supervisor that SIGTERMs
    a scan mid-chunk would otherwise strand the published image in
    ``/dev/shm``.  After the sweep the default handler is restored and the
    signal re-raised so the exit status still says "killed by SIGTERM".
    """
    _cleanup_segments()
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    os.kill(os.getpid(), signal.SIGTERM)


def _install_sigterm_sweep() -> None:
    """Install the sweep lazily, and only where it is safe to do so.

    Only the main thread may set signal handlers, and an application that
    installed its own SIGTERM handler keeps it — the sweep only ever
    replaces ``SIG_DFL``.
    """
    global _SIGTERM_SWEEP_INSTALLED
    if _SIGTERM_SWEEP_INSTALLED:
        return
    if threading.current_thread() is not threading.main_thread():
        return
    try:
        if signal.getsignal(signal.SIGTERM) is not signal.SIG_DFL:
            _SIGTERM_SWEEP_INSTALLED = True  # somebody owns SIGTERM; stand down
            return
        signal.signal(signal.SIGTERM, _sweep_on_sigterm)
        _SIGTERM_SWEEP_INSTALLED = True
    except (ValueError, OSError):
        # Restricted environments (no signals, embedded interpreters) just
        # keep the atexit guard.
        return


def publish_segment(buffer: np.ndarray):
    """Create a shared-memory segment holding ``buffer``; track it for cleanup.

    The returned segment is registered so that even if the caller dies
    before its ``finally`` runs, the :mod:`atexit` guard — or, on a
    supervisor kill, the SIGTERM sweep — unlinks it.  Pair with
    :func:`retire_segment` (idempotent) in a ``try/finally``.
    """
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(create=True, size=max(1, buffer.size))
    with _SEGMENTS_LOCK:
        _LIVE_SEGMENTS[segment.name] = _SegmentLease(segment, os.getpid())
    _install_sigterm_sweep()
    np.frombuffer(segment.buf, dtype=np.uint8, count=buffer.size)[:] = buffer
    _obs_profile.record_shm_bytes(segment.size)
    return segment


def retire_segment(segment) -> bool:
    """Close and unlink a published segment exactly once.

    Idempotent and race-safe: no matter how many of the explicit
    ``finally``, atexit, and SIGTERM paths reach the same segment — even
    concurrently from different threads — exactly one caller performs the
    close/unlink and returns ``True``; every other caller returns
    ``False``.  A forked child that inherited the registry returns
    ``False`` without touching the segment: the owner pid recorded at
    publish time keeps children from unlinking their parent's image.
    """
    if segment is None:
        return False
    name = segment.name
    with _SEGMENTS_LOCK:
        lease = _LIVE_SEGMENTS.get(name)
        if lease is not None and lease.owner_pid != os.getpid():
            return False
        _LIVE_SEGMENTS.pop(name, None)
        if name in _RETIRED:
            return False
        _RETIRED.add(name)
    try:
        segment.close()
    except (OSError, BufferError):
        pass
    try:
        segment.unlink()
    except (FileNotFoundError, OSError):
        pass
    return True


# -- worker side ---------------------------------------------------------------

# One scan job's context, installed by the pool initializer.  With the fork
# start method the arrays arrive copy-on-write; the packed buffer itself is
# always read through the shared-memory segment.
_WORKER: dict = {}


def _worker_init(
    shm_name: str,
    packed_bytes: int,
    lengths: np.ndarray,
    byte_offsets: np.ndarray,
    instructions: np.ndarray,
    threshold: int,
    engine: str,
    keep_scores: bool,
) -> None:
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=shm_name)
    _WORKER["segment"] = segment
    _WORKER["buffer"] = np.frombuffer(segment.buf, dtype=np.uint8, count=packed_bytes)
    _WORKER["lengths"] = lengths
    _WORKER["byte_offsets"] = byte_offsets
    _WORKER["instructions"] = instructions
    _WORKER["threshold"] = threshold
    _WORKER["engine"] = engine
    _WORKER["keep_scores"] = keep_scores
    _WORKER["span"] = int(instructions.size)


def _scan_reference_codes(
    instructions: np.ndarray,
    codes: np.ndarray,
    threshold: int,
    engine: str,
    keep_scores: bool,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray], int]:
    """Score one reference; return (positions, hit_scores, scores?, length)."""
    scores = scores_from_codes(instructions, codes, engine)
    positions = np.nonzero(scores >= threshold)[0]
    return (
        positions.astype(np.int64),
        scores[positions],
        scores if keep_scores else None,
        int(codes.size),
    )


def _scan_chunk(
    bounds: Tuple[int, int]
) -> List[Tuple[int, np.ndarray, np.ndarray, Optional[np.ndarray], int]]:
    """Pool task: scan references ``[start, stop)`` of the shared image."""
    start, stop = bounds
    buffer = _WORKER["buffer"]
    lengths = _WORKER["lengths"]
    byte_offsets = _WORKER["byte_offsets"]
    out = []
    for index in range(start, stop):
        codes = packing.unpack(
            buffer[int(byte_offsets[index]) : int(byte_offsets[index + 1])],
            int(lengths[index]),
        )
        positions, hit_scores, scores, length = _scan_reference_codes(
            _WORKER["instructions"],
            codes,
            _WORKER["threshold"],
            _WORKER["engine"],
            _WORKER["keep_scores"],
        )
        out.append((index, positions, hit_scores, scores, length))
    return out


def _score_window(
    buffer: np.ndarray,
    byte_base: int,
    length: int,
    window: "_windows.Window",
    instructions: np.ndarray,
    threshold: int,
    engine: str,
    keep_scores: bool,
) -> "_windows.WindowRecord":
    """Score one window; return its :data:`repro.host.windows.WindowRecord`."""
    codes, lookback = _windows.window_codes(
        buffer, byte_base, length, window.start, window.stop, int(instructions.size)
    )
    scores = scores_from_codes(instructions, codes, engine)
    wanted = scores[lookback : lookback + window.positions]
    hits_local = np.nonzero(wanted >= threshold)[0]
    return (
        window.reference,
        window.start,
        hits_local.astype(np.int64),
        wanted[hits_local],
        wanted if keep_scores else None,
    )


def _scan_window_chunk(
    chunk: Sequence[Tuple[int, int, int]]
) -> List["_windows.WindowRecord"]:
    """Pool task: score a list of ``(reference, start, stop)`` windows."""
    buffer = _WORKER["buffer"]
    lengths = _WORKER["lengths"]
    byte_offsets = _WORKER["byte_offsets"]
    out: List["_windows.WindowRecord"] = []
    for reference, start, stop in chunk:
        out.append(
            _score_window(
                buffer,
                int(byte_offsets[reference]),
                int(lengths[reference]),
                _windows.Window(reference, start, stop),
                _WORKER["instructions"],
                _WORKER["threshold"],
                _WORKER["engine"],
                _WORKER["keep_scores"],
            )
        )
    return out


# -- driver side ---------------------------------------------------------------


def resolve_workers(workers: Optional[int]) -> int:
    """``None`` means one worker per CPU; always at least 1."""
    if workers is None:
        return max(1, os.cpu_count() or 1)
    if workers < 0:
        raise ValueError("workers must be >= 0")
    return max(1, workers)


def _baseline_artifact_path() -> pathlib.Path:
    """The committed benchmark baseline this checkout carries (if any)."""
    root = pathlib.Path(__file__).resolve().parents[3]
    return root / "benchmarks" / "baselines" / "BENCH_scoring.json"


def derive_cutover(payload: dict) -> Optional[int]:
    """Derive the serial/parallel cutover (nt) from a benchmark artifact.

    The artifact carries two serial/parallel wall-time pairs at different
    database sizes: ``parallel-scan-small`` (workers 1 and 2, parallelism
    forced) and ``parallel-scan`` (workers 1 and 2) on the big scan
    workload.  Modeling the parallel overhead ``wall_parallel -
    wall_serial`` as linear in database size, the cutover is the size at
    which that difference crosses zero — below it the fixed pool/segment
    cost exceeds what two workers save.  Returns ``None`` when the
    artifact lacks either pair; the result is clamped to
    ``[CUTOVER_FLOOR, CUTOVER_CEILING]``.
    """

    def _pair(engine: str) -> Optional[Tuple[float, float, float]]:
        serial = parallel = size = None
        for record in payload.get("records", []):
            if record.get("engine") != engine:
                continue
            if record.get("workers") == 1:
                serial = float(record["wall_s"])
                size = float(record["L_r"])
            elif record.get("workers") == 2:
                parallel = float(record["wall_s"])
        if serial is None or parallel is None or size is None:
            return None
        return size, serial, parallel

    small = _pair("parallel-scan-small")
    big = _pair("parallel-scan")
    if small is None or big is None:
        return None
    small_size, small_serial, small_parallel = small
    big_size, big_serial, big_parallel = big
    d_small = small_parallel - small_serial
    d_big = big_parallel - big_serial
    if d_small <= 0:
        # Parallel already wins at the small size: cutover is the floor.
        return CUTOVER_FLOOR
    if d_big >= 0 or big_size <= small_size:
        # Parallel never measured faster (e.g. a single-core recording
        # machine): no crossover exists, keep the conservative default.
        return None
    crossover = small_size + (big_size - small_size) * d_small / (d_small - d_big)
    return int(max(CUTOVER_FLOOR, min(CUTOVER_CEILING, crossover)))


@lru_cache(maxsize=1)
def _derived_cutover() -> Optional[int]:
    """Read the committed baseline once per process; derive the cutover."""
    try:
        payload = json.loads(_baseline_artifact_path().read_text())
    except (OSError, ValueError):
        return None
    return derive_cutover(payload)


def parallel_cutover_nucleotides() -> int:
    """Databases below this many nucleotides scan serially by default.

    Derived from the committed benchmark baseline
    (``benchmarks/baselines/BENCH_scoring.json``) via :func:`derive_cutover`
    so the threshold tracks measured pool overhead on the recorded machine
    rather than a guess; falls back to the (monkeypatchable)
    :data:`MIN_PARALLEL_NUCLEOTIDES` when the artifact is missing,
    predates the small-scan records, or records no serial/parallel
    crossover at all.
    """
    derived = _derived_cutover()
    return MIN_PARALLEL_NUCLEOTIDES if derived is None else derived


def chunk_bounds(num_references: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Split ``range(num_references)`` into ``[start, stop)`` chunks."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [
        (start, min(start + chunk_size, num_references))
        for start in range(0, num_references, chunk_size)
    ]


def resolve_chunk_size(
    num_references: int, num_workers: int, chunk_size: Optional[int]
) -> int:
    """The references-per-chunk actually used for a scan.

    An explicit ``chunk_size`` wins; otherwise chunks are the default size,
    shrunk so every worker gets at least one chunk.  Shared by the plain
    scan, the supervised runtime, and the CLI (which needs the chunk count
    up front to size fault plans and checkpoints).
    """
    if chunk_size is not None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        return chunk_size
    if num_references <= 0:
        return DEFAULT_CHUNK_SIZE
    return max(1, min(DEFAULT_CHUNK_SIZE, -(-num_references // max(1, num_workers))))


def _build_result(
    encoded: EncodedQuery,
    name: str,
    length: int,
    threshold: int,
    positions: np.ndarray,
    hit_scores: np.ndarray,
    scores: Optional[np.ndarray],
) -> AlignmentResult:
    hits = tuple(
        Hit(int(p), int(s)) for p, s in zip(positions.tolist(), hit_scores.tolist())
    )
    return AlignmentResult(
        query=encoded,
        reference_name=name,
        reference_length=length,
        threshold=threshold,
        hits=hits,
        scores=scores,
    )


def _serial_scan(
    encoded: EncodedQuery,
    database: PackedDatabase,
    threshold: int,
    engine: str,
    keep_scores: bool,
) -> List[AlignmentResult]:
    instructions = encoded.as_array()
    results = []
    for index in range(database.num_references):
        positions, hit_scores, scores, length = _scan_reference_codes(
            instructions, database.reference_codes(index), threshold, engine, keep_scores
        )
        results.append(
            _build_result(
                encoded, database.names[index], length, threshold,
                positions, hit_scores, scores,
            )
        )
    return results


def scan_database(
    query: QueryLike,
    references: object,
    *,
    threshold: Optional[int] = None,
    min_identity: Optional[float] = None,
    engine: str = DEFAULT_ENGINE,
    workers: Optional[int] = 1,
    chunk_size: Optional[int] = None,
    keep_scores: bool = False,
    policy: object = None,
    faults: object = None,
    checkpoint_dir: object = None,
    resume: bool = False,
    with_report: bool = False,
    parallel_threshold: Optional[int] = None,
) -> Union[List[AlignmentResult], Tuple[List[AlignmentResult], object]]:
    """Scan one query over a database, optionally across worker processes.

    ``references`` is any iterable the aligner accepts (strings, sequence
    objects, pre-packed 2-bit code arrays) or a ready
    :class:`PackedDatabase`.  Results come back in input order regardless
    of which worker finished first.  ``workers=None`` uses every CPU;
    ``workers <= 1`` or a small database scans serially in-process.

    Parallel work is split into position-balanced reference *windows*
    (:mod:`repro.host.windows`), so a single long reference parallelizes
    as well as many uniform ones and the merged results — hits and
    ``keep_scores`` vectors alike — are bit-identical to a serial scan.
    ``parallel_threshold`` overrides the serial/parallel cutover in
    nucleotides (``0`` forces the parallel path; by default the cutover is
    derived from the committed bench baseline, see
    :func:`parallel_cutover_nucleotides`).

    Robustness (see :mod:`repro.host.resilience` and
    ``docs/robustness.md``): passing any of ``policy`` (a
    :class:`~repro.host.resilience.RetryPolicy`), ``faults`` (a
    :class:`~repro.host.faults.FaultPlan`), ``checkpoint_dir``, ``resume``
    or ``with_report=True`` routes the scan through the supervised runtime
    — per-chunk timeout/retry/backoff, dead-worker replacement, durable
    checkpointing — which honours ``workers`` literally (no small-database
    gate).  With ``with_report=True`` the return value is
    ``(results, ScanReport)``.
    """
    encoded = query if isinstance(query, EncodedQuery) else encode_query(query)
    resolved = resolve_threshold(encoded, threshold, min_identity)
    database = (
        references
        if isinstance(references, PackedDatabase)
        else PackedDatabase.from_references(references)  # type: ignore[arg-type]
    )
    supervised = (
        policy is not None
        or faults is not None
        or checkpoint_dir is not None
        or resume
        or with_report
    )
    if supervised:
        from repro.host.resilience import supervised_scan

        outcome = supervised_scan(
            encoded,
            database,
            threshold=resolved,
            engine=engine,
            keep_scores=keep_scores,
            workers=workers,
            chunk_size=chunk_size,
            policy=policy,  # type: ignore[arg-type]
            faults=faults,  # type: ignore[arg-type]
            checkpoint_dir=checkpoint_dir,
            resume=resume,
        )
        if with_report:
            return outcome.results, outcome.report
        return outcome.results
    num_workers = resolve_workers(workers)
    cutover = (
        parallel_cutover_nucleotides()
        if parallel_threshold is None
        else max(0, int(parallel_threshold))
    )
    span = len(encoded)
    chunks = (
        _windows.plan_windows(database.lengths.tolist(), span, num_workers)
        if num_workers > 1
        else []
    )
    if (
        num_workers <= 1
        or len(chunks) <= 1
        or database.total_nucleotides < cutover
    ):
        with _obs_profile.stage("scan.score", category="scan", mode="serial"):
            results_serial = _serial_scan(
                encoded, database, resolved, engine, keep_scores
            )
        _record_scan_totals(results_serial)
        return results_serial
    try:
        with _obs_profile.stage(
            "scan.score", category="scan", mode="parallel", workers=num_workers
        ):
            records = _parallel_scan(
                encoded, database, resolved, engine, keep_scores, num_workers, chunks
            )
    except (ImportError, OSError, PermissionError):
        # Restricted environments (no /dev/shm, no fork) fall back cleanly.
        with _obs_profile.stage("scan.score", category="scan", mode="serial"):
            results_serial = _serial_scan(
                encoded, database, resolved, engine, keep_scores
            )
        _record_scan_totals(results_serial)
        return results_serial
    with _obs_profile.stage("scan.merge", category="scan"):
        per_reference = _windows.merge_window_records(
            records, database.lengths.tolist(), span, keep_scores
        )
        results = [
            _build_result(
                encoded, database.names[index], length, resolved,
                positions, hit_scores, scores,
            )
            for index, (positions, hit_scores, scores, length) in enumerate(
                per_reference
            )
        ]
    _record_scan_totals(results)
    return results


def _record_scan_totals(results: Sequence[AlignmentResult]) -> None:
    """Feed post-merge reference/hit totals to the metrics registry."""
    if not _obs_state.enabled():
        return
    _obs_profile.record_scan_merge(
        len(results), sum(len(r.hits) for r in results)
    )


def _parallel_scan(
    encoded: EncodedQuery,
    database: PackedDatabase,
    threshold: int,
    engine: str,
    keep_scores: bool,
    num_workers: int,
    chunks: Sequence[Sequence["_windows.Window"]],
) -> List["_windows.WindowRecord"]:
    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        context = multiprocessing.get_context()
    segment = publish_segment(database.buffer)
    try:
        init_args = (
            segment.name,
            database.packed_bytes,
            database.lengths,
            database.byte_offsets,
            encoded.as_array(),
            threshold,
            engine,
            keep_scores,
        )
        tasks = [
            [(w.reference, w.start, w.stop) for w in chunk] for chunk in chunks
        ]
        with context.Pool(
            processes=min(num_workers, len(tasks)),
            initializer=_worker_init,
            initargs=init_args,
        ) as pool:
            chunk_results = pool.map(_scan_window_chunk, tasks, chunksize=1)
    finally:
        retire_segment(segment)
    return [record for chunk in chunk_results for record in chunk]
